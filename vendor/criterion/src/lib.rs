//! Offline stand-in for the subset of the `criterion` benchmark API this
//! workspace uses: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The workspace must build with no network access, so the real crate is
//! replaced by this shim via a `path` dependency in the workspace root.
//! Measurement is wall-clock over auto-scaled batches — good enough to
//! compare runs of the same machine, with none of criterion's statistics.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: filters and runs the registered benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(300),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments: the first non-flag
    /// argument is a substring filter, `--quick` shortens measurement,
    /// and harness flags cargo passes (`--bench`, ...) are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => {
                    c.warmup = Duration::from_millis(10);
                    c.measure = Duration::from_millis(30);
                }
                a if a.starts_with('-') => {}
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }

    /// Times `f` (via the [`Bencher`] it is handed) and prints one
    /// `name ... ns/iter` line, criterion-style.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.ran += 1;
        let ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{id:<40} time: {ns:>12.1} ns/iter  ({} iters)", b.iters);
        self
    }

    /// Starts a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Prints a one-line summary after all groups have run.
    pub fn final_summary(&self) {
        println!("ran {} benchmark(s)", self.ran);
    }
}

/// A named group of benchmarks (configuration methods are accepted and
/// ignored; the shim has no sampling statistics to configure).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim does not sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: first untimed until the warmup budget is
    /// spent (calibrating the batch size), then timed until the
    /// measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch = 1u64;
        let warmup_start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Defines a benchmark group function that runs each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target: builds a
/// [`Criterion`] from the CLI arguments and runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            ..Criterion::default()
        };
        let mut x = 0u64;
        c.bench_function("smoke", |b| b.iter(|| x = x.wrapping_add(1)));
        assert_eq!(c.ran, 1);
        assert!(x > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            ..Criterion::default()
        };
        c.bench_function("other", |b| b.iter(|| 1));
        assert_eq!(c.ran, 0);
    }
}
