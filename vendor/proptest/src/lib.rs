//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`bool::weighted`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! The workspace must build with no network access, so the real crate is
//! replaced by this shim via a `path` dependency in the workspace root.
//! Semantics: each `proptest!` test runs `cases` random instantiations
//! of its strategies from a fixed seed (deterministic across runs);
//! failures panic with the case number. There is no shrinking.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod bool;
pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply produces one value per call from the test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to pick a follow-on strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                #[allow(clippy::redundant_closure_call)]
                ($gen)(self, rng)
            }
        }
    )*};
}

macro_rules! int_range_gen {
    ($t:ty) => {
        |r: &Range<$t>, rng: &mut TestRng| {
            let span = r.end.wrapping_sub(r.start) as u64;
            r.start.wrapping_add((rng.next_u64() % span) as $t)
        }
    };
}

impl_range_strategy!(
    u8 => int_range_gen!(u8),
    u16 => int_range_gen!(u16),
    u32 => int_range_gen!(u32),
    u64 => int_range_gen!(u64),
    usize => int_range_gen!(usize),
    i32 => int_range_gen!(i32),
    i64 => int_range_gen!(i64),
    f64 => |r: &Range<f64>, rng: &mut TestRng| {
        r.start + rng.unit_f64() * (r.end - r.start)
    },
    f32 => |r: &Range<f32>, rng: &mut TestRng| {
        r.start + (rng.unit_f64() as f32) * (r.end - r.start)
    },
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
);

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Drives the cases of one `proptest!`-generated test. Not public API in
/// real proptest; the [`proptest!`] macro expansion calls it.
pub fn run_cases<F: FnMut(&mut TestRng, u32)>(config: ProptestConfig, mut case: F) {
    // Fixed base seed: failures reproduce across runs and machines.
    let mut rng = TestRng::new(0x5EED_CA5E_0000_0000);
    for i in 0..config.cases {
        case(&mut rng, i);
    }
}

/// Generates deterministic property tests. Supports the forms
/// `proptest! { #[test] fn name(x in strat, ...) { body } ... }` with an
/// optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases($cfg, |rng, _case| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a property holds, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.0f64..1.0, n in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u16..4, 0u64..100), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn flat_map_and_boxed(v in (2usize..8).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n).prop_map(|v| (v.len(), v))
        }).boxed()) {
            let (n, vals) = v;
            prop_assert_eq!(n, vals.len());
            prop_assert!((2..8).contains(&n));
        }

        #[test]
        fn weighted_bool_extremes(a in crate::bool::weighted(0.0), b in crate::bool::weighted(1.0)) {
            prop_assert!(!a);
            prop_assert!(b);
        }
    }

    #[test]
    fn fixed_size_vec() {
        let s = crate::collection::vec(0u64..10, 3);
        crate::run_cases(ProptestConfig::with_cases(8), |rng, _| {
            assert_eq!(Strategy::new_value(&s, rng).len(), 3);
        });
    }
}
