//! Boolean strategies (`proptest::bool::weighted`).

use crate::test_runner::TestRng;
use crate::Strategy;

/// Strategy producing `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    Weighted { p }
}

/// Strategy returned by [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}
