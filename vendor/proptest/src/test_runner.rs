//! The RNG backing generated cases (xoshiro256** seeded via SplitMix64,
//! same generator family as the workspace's `rand` shim).

/// Deterministic test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        TestRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
