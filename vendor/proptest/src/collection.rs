//! Collection strategies (`proptest::collection::vec`).

use crate::test_runner::TestRng;
use crate::Strategy;

/// A length specification for [`vec()`]: an exact `usize` or a half-open
/// `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        assert!(
            self.size.lo < self.size.hi,
            "cannot sample empty size range"
        );
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
