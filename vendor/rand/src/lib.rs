//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The workspace must build with no network access, so the real crate is
//! replaced by this shim via a `path` dependency in the workspace root.
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the simulator's workload models need
//! (they always seed explicitly; there is no `thread_rng`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod rngs;

/// A source of random 64-bit values. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only `seed_from_u64` is supported).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a half-open range (the shim's analogue
/// of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = high.wrapping_sub(low) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                low + (unit_f64(rng) as $t) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`] (the shim's analogue of sampling the
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value (uniform over the type's canonical domain;
    /// `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a value uniformly distributed in `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..5usize);
            assert!(w < 5);
            let s = rng.gen_range(-4..9i64);
            assert!((-4..9).contains(&s));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
