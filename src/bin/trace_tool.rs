//! `trace_tool` — record, inspect, and replay `.wpt` access traces.
//!
//! ```text
//! trace_tool record <app>... --out <file> [--scheme S] [--classification C]
//!                          [--warmup N] [--measure N] [--sixteen-core]
//! trace_tool record --parallel <app> --out <file> [--scheme S] [--policy paws|stealing]
//! trace_tool info   <file>
//! trace_tool dump   <file> [--limit N] [--stream K]
//! trace_tool replay <file> [--scheme S | --all-schemes] [--stream K | --mix]
//!                          [--warmup N] [--measure N] [--no-pools] [--sixteen-core]
//! trace_tool profile <file> [--stream K | --all-streams]
//!                           [--exact | --sample-rate R] [--s-max N]
//!                           [--granule L] [--json]
//!                           [--verify-exact] [--max-err E] [--capacity-slack S]
//! trace_tool bench-check --baseline <BENCH_*.json>... --fresh-dir <dir>
//!                        [--max-regress R]
//! trace_tool obs <app|file> [--scheme S] [--classification C]
//!                           [--warmup N] [--measure N] [--sixteen-core]
//!                           [--sample-every N] [--obs-out <file>]
//! ```
//!
//! `record` runs one registry app — or, with several apps, a whole
//! multi-program mix (one app per core, one stream per core), or with
//! `--parallel`, a task-parallel app on the 16-core chip — under a
//! scheme and captures every pulled event; `replay` drives a recorded
//! file through one scheme (or the full Fig. 10 set), printing one JSON
//! `RunSummary` line per scheme. By default replay attaches stream 0;
//! `--stream K` picks another core's stream, and `--mix` re-attaches
//! *every* stream of a multi-core capture to its own core. Replaying with
//! the warmup/measure budgets of the recording reproduces its statistics
//! bit for bit (mix captures: `--warmup 6000000`, the fixed mix warmup;
//! parallel captures: no flags, they run to exhaustion).
//!
//! `profile` computes stream miss curves without any simulation: exact
//! Mattson by default, or SHARDS-sampled (`--sample-rate`, optionally
//! `--s-max` capped so memory stays constant) — any number of streams in
//! one file scan. `--verify-exact` profiles both ways and exits non-zero
//! if the sampled miss ratio strays more than `--max-err` (default 0.02)
//! from exact at any capacity, which is the contract CI enforces.
//!
//! `obs` runs one experiment — a registry app live, or a `.wpt` recording
//! if the positional names an existing file — with the observability
//! probes attached, and emits the JSONL timeline (pool-occupancy samples,
//! reconfiguration log, registry snapshot): to stdout by default, or to
//! `--obs-out <file>` (then the `RunSummary` JSON goes to stdout, as for
//! `replay`). Probes read scheme state without mutating it, so the
//! summary is bit-identical to the same run without `obs`.
//!
//! `bench-check` is CI's perf-regression gate: it pairs each committed
//! `BENCH_*.json` baseline with the same-named fresh report in
//! `--fresh-dir` and fails if any metric in the baseline's `"gate"`
//! object (bigger-is-better speedups and events/s) fell more than
//! `--max-regress` (default 0.25) below the committed value.
//!
//! Everything goes through the [`Experiment`] builder, so bad inputs —
//! unknown apps or schemes (with did-you-mean suggestions), too many
//! streams for the chip, missing or corrupt traces — exit non-zero with
//! a one-line message, never a backtrace.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use whirlpool_repro::harness::{
    sixteen_core_config, Classification, Experiment, SchemeKind, MIX_WARMUP_INSTRS,
};
use wp_mrc::{
    max_miss_ratio_error_with_slack, profile_streams, profile_streams_scanned, ProfileMode,
    ShardsConfig, StreamProfile,
};
use wp_paws::SchedPolicy;
use wp_trace::{TraceInfo, TraceReader};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench-check") => cmd_bench_check(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("trace_tool: unknown subcommand '{other}'");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_tool: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  trace_tool record <app>... --out <file> [--scheme S] [--classification none|manual|auto]
                    [--warmup N] [--measure N] [--sixteen-core]
                    (several apps record a multi-program mix, one stream per core)
  trace_tool record --parallel <app> --out <file> [--scheme S] [--policy paws|stealing]
                    (task-parallel app on the 16-core chip, one stream per core)
  trace_tool info   <file>
  trace_tool dump   <file> [--limit N] [--stream K]
  trace_tool replay <file> [--scheme S | --all-schemes] [--stream K | --mix]
                    [--warmup N] [--measure N] [--no-pools] [--sixteen-core]
  trace_tool profile <file> [--stream K | --all-streams] [--exact | --sample-rate R]
                    [--s-max N] [--granule L] [--json] [--verify-exact] [--max-err E] [--capacity-slack S]
                    (miss curves straight from the trace: exact Mattson or
                     SHARDS-sampled, all requested streams in one scan)
  trace_tool bench-check --baseline <BENCH_*.json>... --fresh-dir <dir>
                    [--max-regress R]
                    (compare each committed baseline's \"gate\" metrics against
                     the same-named fresh report in <dir>; exits non-zero if any
                     metric fell more than R, default 0.25, below baseline)
  trace_tool obs <app|file> [--scheme S] [--classification none|manual|auto]
                    [--warmup N] [--measure N] [--sixteen-core]
                    [--sample-every N] [--obs-out <file>]
                    (run with observability probes attached and emit the JSONL
                     timeline: pool occupancy, reconfigurations, registry
                     snapshot; stdout unless --obs-out)

schemes: LRU, DRRIP, IdealSPD, Awasthi, Jigsaw, Jigsaw-NoBypass,
         Whirlpool, Whirlpool-NoBypass
";

/// Minimal flag cursor: positionals plus `--flag [value]` pairs.
struct Args<'a> {
    rest: &'a [String],
    positional: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn parse(rest: &'a [String], with_value: &[&str], boolean: &[&str]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = rest[i].as_str();
            if with_value.contains(&arg) {
                i += 2;
                if i > rest.len() {
                    return Err(format!("{arg} needs a value"));
                }
            } else if boolean.contains(&arg) {
                i += 1;
            } else if arg.starts_with("--") {
                return Err(format!("unknown flag '{arg}'"));
            } else {
                positional.push(arg);
                i += 1;
            }
        }
        Ok(Self { rest, positional })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Every value of a repeatable `--flag value` pair, in order.
    fn values(&self, flag: &str) -> Vec<&str> {
        self.rest
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == flag)
            .filter_map(|(i, _)| self.rest.get(i + 1))
            .map(String::as_str)
            .collect()
    }

    fn number(&self, flag: &str) -> Result<Option<u64>, String> {
        self.value(flag)
            .map(|v| {
                v.replace('_', "")
                    .parse::<u64>()
                    .map_err(|_| format!("{flag} expects an integer, got '{v}'"))
            })
            .transpose()
    }
}

fn parse_scheme(s: &str) -> Result<SchemeKind, String> {
    SchemeKind::resolve(s).map_err(|e| e.to_string())
}

/// Applies the shared `--warmup/--measure/--sixteen-core` overrides.
fn apply_common(mut exp: Experiment, args: &Args) -> Result<Experiment, String> {
    if let Some(n) = args.number("--warmup")? {
        exp = exp.warmup(n);
    }
    if let Some(n) = args.number("--measure")? {
        exp = exp.measure(n);
    }
    if args.flag("--sixteen-core") {
        exp = exp.system(sixteen_core_config());
    }
    Ok(exp)
}

fn cmd_record(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(
        rest,
        &[
            "--out",
            "--scheme",
            "--classification",
            "--warmup",
            "--measure",
            "--policy",
        ],
        &["--sixteen-core", "--parallel"],
    )?;
    if args.positional.is_empty() {
        return Err("record takes at least one app name".into());
    }
    let out = PathBuf::from(args.value("--out").ok_or("record needs --out <file>")?);
    let kind = args
        .value("--scheme")
        .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?;
    if args.flag("--parallel") {
        return record_parallel(&args, kind, &out);
    }
    if args.value("--policy").is_some() {
        return Err("--policy applies to --parallel records only".into());
    }
    // Surface unknown names before the progress chatter starts.
    for app in &args.positional {
        whirlpool_repro::harness::resolve_app(app).map_err(|e| e.to_string())?;
    }
    if let [_, _, ..] = args.positional[..] {
        // Several apps: record a whole multi-program mix, one stream per
        // core. Mixes use the fixed shared warmup and the per-scheme
        // classification, so the single-app-only flags error.
        if args.value("--classification").is_some() {
            return Err("--classification applies to single-app records only".into());
        }
        if args.number("--warmup")?.is_some() {
            return Err(format!(
                "mix records use the fixed shared warmup ({MIX_WARMUP_INSTRS}); \
                 --warmup applies to single-app records only"
            ));
        }
        // --warmup was rejected above, so the shared overrides apply only
        // --measure and --sixteen-core here.
        let exp = apply_common(
            Experiment::mix(kind, &args.positional).capture_to(&out),
            &args,
        )?;
        let (warmup, measure) = exp.budgets();
        eprintln!(
            "recording mix {:?} under {} (warmup {warmup}, measure {measure})...",
            args.positional,
            kind.label(),
        );
        let summary = exp.run().map_err(|e| e.to_string())?;
        println!("{}", summary.to_json());
        return validate_capture(&out);
    }
    let app = args.positional[0];
    let classification = match args.value("--classification") {
        None => kind.default_classification(),
        Some("none") => Classification::None,
        Some("manual") => Classification::Manual,
        Some("auto") => Classification::WhirlTool {
            pools: 3,
            train: true,
        },
        Some(other) => return Err(format!("unknown classification '{other}'")),
    };
    let exp = apply_common(
        Experiment::single(kind, app)
            .classification(classification)
            .capture_to(&out),
        &args,
    )?;
    let (warmup, measure) = exp.budgets();
    eprintln!(
        "recording {app} under {} (warmup {warmup}, measure {measure})...",
        kind.label(),
    );
    let summary = exp.run().map_err(|e| e.to_string())?;
    println!("{}", summary.to_json());
    validate_capture(&out)
}

/// `record --parallel <app>`: capture a Fig.-13 task-parallel app (one
/// stream per core of the 16-core chip).
fn record_parallel(args: &Args, kind: SchemeKind, out: &Path) -> Result<(), String> {
    let [app] = args.positional[..] else {
        return Err("record --parallel takes exactly one parallel app name".into());
    };
    if args.value("--classification").is_some()
        || args.number("--warmup")?.is_some()
        || args.number("--measure")?.is_some()
    {
        return Err("--parallel records run their task traces to exhaustion; \
             --classification/--warmup/--measure apply to single-app records only"
            .into());
    }
    if args.flag("--sixteen-core") {
        return Err(
            "--parallel records always run on the 16-core chip; drop --sixteen-core".into(),
        );
    }
    let policy = match args.value("--policy") {
        None | Some("paws") => SchedPolicy::Paws,
        Some("stealing" | "ws" | "work-stealing") => SchedPolicy::WorkStealing,
        Some(other) => {
            return Err(format!(
                "unknown policy '{other}' (expected 'paws' or 'stealing')"
            ))
        }
    };
    let specs = wp_workloads::parallel::parallel_apps(16, 42);
    let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
    let Some(spec) = specs.iter().find(|s| s.name == app).cloned() else {
        return Err(format!(
            "unknown parallel app '{app}' (expected one of: {})",
            names.join(", ")
        ));
    };
    eprintln!(
        "recording parallel {app} under {} / {policy:?} (16 cores, to exhaustion)...",
        kind.label(),
    );
    let run = Experiment::parallel(kind, spec, policy)
        .capture_to(out)
        .run_full()
        .map_err(|e| e.to_string())?;
    println!("{}", run.summary.to_json());
    validate_capture(out)
}

/// Deliberate full re-read: validates every checksum of the file we just
/// wrote before anyone ships it, and yields the summary line.
fn validate_capture(out: &Path) -> Result<(), String> {
    let info = TraceInfo::scan(out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote and validated {} ({} events, {} bytes, {:.2}x vs naive encoding)",
        out.display(),
        info.total_events(),
        info.file_bytes,
        info.compression_ratio(),
    );
    Ok(())
}

fn cmd_info(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &[], &[])?;
    let [file] = args.positional[..] else {
        return Err("info takes exactly one trace file".into());
    };
    let info = TraceInfo::scan(Path::new(file)).map_err(|e| e.to_string())?;
    println!("{file}");
    println!(
        "  {} bytes, {} chunks, {} streams, {} events total",
        info.file_bytes,
        info.chunks,
        info.streams.len(),
        info.total_events(),
    );
    println!(
        "  naive fixed-width size {} bytes -> compression {:.2}x ({:.2} bytes/event)",
        info.naive_bytes(),
        info.compression_ratio(),
        if info.total_events() == 0 {
            0.0
        } else {
            info.file_bytes as f64 / info.total_events() as f64
        },
    );
    for s in &info.streams {
        println!(
            "  stream {} '{}': {} events, {} instructions, {} writes",
            s.meta.id, s.meta.name, s.events, s.instructions, s.writes
        );
        if let Some((lo, hi)) = s.line_span {
            println!("    lines {lo:#x}..{hi:#x}");
        }
        for (i, p) in s.meta.pools.iter().enumerate() {
            println!(
                "    pool {i} '{}': {} KB, {} pages{}",
                p.name,
                p.bytes / 1024,
                p.pages.len(),
                p.pool
                    .map(|id| format!(", allocator pool {id}"))
                    .unwrap_or_default(),
            );
        }
    }
    Ok(())
}

fn cmd_dump(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &["--limit", "--stream"], &[])?;
    let [file] = args.positional[..] else {
        return Err("dump takes exactly one trace file".into());
    };
    let limit = args.number("--limit")?.unwrap_or(64);
    let only = args.number("--stream")?;
    let mut reader = TraceReader::open(Path::new(file)).map_err(|e| e.to_string())?;
    println!(
        "{:>10} {:>6} {:>8} {:>14} {:>3} {:>5}",
        "seq", "stream", "gap", "line", "rw", "pool"
    );
    let mut seq = 0u64;
    let mut shown = 0u64;
    loop {
        match reader.next_record() {
            Ok(Some((sid, rec))) => {
                seq += 1;
                if only.is_some_and(|k| u64::from(sid) != k) {
                    continue;
                }
                if shown >= limit {
                    println!("... (truncated at --limit {limit})");
                    return Ok(());
                }
                println!(
                    "{:>10} {:>6} {:>8} {:>#14x} {:>3} {:>5}",
                    seq - 1,
                    sid,
                    rec.gap_instrs,
                    rec.line.0,
                    if rec.is_write { "w" } else { "r" },
                    rec.pool
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "-".into()),
                );
                shown += 1;
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// `profile <file>`: miss curves straight from a recording — exact
/// Mattson or SHARDS-sampled — with an optional exact-vs-sampled error
/// check that gates CI.
fn cmd_profile(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(
        rest,
        &[
            "--stream",
            "--sample-rate",
            "--s-max",
            "--granule",
            "--max-err",
            "--capacity-slack",
        ],
        &["--all-streams", "--exact", "--json", "--verify-exact"],
    )?;
    let [file] = args.positional[..] else {
        return Err("profile takes exactly one trace file".into());
    };
    let path = Path::new(file);
    let parse_f64 = |flag: &str| -> Result<Option<f64>, String> {
        args.value(flag)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("{flag} expects a number, got '{v}'"))
            })
            .transpose()
    };
    if args.flag("--exact")
        && (args.value("--sample-rate").is_some() || args.value("--s-max").is_some())
    {
        return Err("--exact conflicts with --sample-rate/--s-max".into());
    }
    let rate = parse_f64("--sample-rate")?;
    if let Some(r) = rate {
        if !(r > 0.0 && r <= 1.0) {
            return Err(format!("--sample-rate must be in (0, 1], got {r}"));
        }
    }
    let s_max = match args.number("--s-max")? {
        Some(0) => return Err("--s-max must be positive".into()),
        other => other.map(|n| n as usize),
    };
    // `--s-max N` alone means "adaptive from rate 1": sample everything
    // until the cap forces the rate down.
    let sample = match (rate, s_max) {
        (None, None) => None,
        (r, m) => Some(ShardsConfig {
            rate: r.unwrap_or(1.0),
            s_max: m,
        }),
    };
    let granule = args.number("--granule")?.unwrap_or(64).max(1);
    let max_err = parse_f64("--max-err")?.unwrap_or(0.02);
    // Traces with near-vertical working-set cliffs need a little
    // horizontal tolerance: sampling reproduces a cliff's height but can
    // place it a percent or two off in capacity.
    let slack = parse_f64("--capacity-slack")?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&slack) {
        return Err(format!("--capacity-slack must be in [0, 1], got {slack}"));
    }
    if (args.value("--max-err").is_some() || args.value("--capacity-slack").is_some())
        && !args.flag("--verify-exact")
    {
        return Err("--max-err/--capacity-slack only apply with --verify-exact".into());
    }
    if args.flag("--verify-exact") && sample.is_none() {
        return Err("--verify-exact needs a sampled profile (--sample-rate/--s-max)".into());
    }
    if args.flag("--all-streams") && args.value("--stream").is_some() {
        return Err("--all-streams profiles every stream; it conflicts with --stream".into());
    }
    // `--all-streams` needs a full scan to enumerate the streams; hold
    // the summary so the exact profiles below reuse it for pre-sizing
    // instead of scanning the file again.
    let mut info: Option<TraceInfo> = None;
    let streams: Vec<u16> = if args.flag("--all-streams") {
        let i = TraceInfo::scan(path).map_err(|e| e.to_string())?;
        if i.streams.is_empty() {
            return Err(format!("{file} defines no streams"));
        }
        let ids = i.streams.iter().map(|s| s.meta.id).collect();
        info = Some(i);
        ids
    } else {
        let k = args.number("--stream")?.unwrap_or(0);
        vec![u16::try_from(k).map_err(|_| format!("stream index {k} is out of range"))?]
    };
    let mode = match sample {
        Some(cfg) => ProfileMode::Sampled(cfg),
        None => ProfileMode::Exact,
    };
    let profile = |mode: ProfileMode| match &info {
        Some(i) => profile_streams_scanned(path, i, &streams, mode),
        None => profile_streams(path, &streams, mode),
    };
    let profiles = profile(mode).map_err(|e| e.to_string())?;
    // The verification pass re-profiles exactly; each stream's error is
    // the max absolute miss-ratio gap over the capacity sweep.
    let errors: Option<Vec<f64>> = if args.flag("--verify-exact") {
        let exact = profile(ProfileMode::Exact).map_err(|e| e.to_string())?;
        Some(
            exact
                .iter()
                .zip(&profiles)
                .map(|(e, s)| {
                    max_miss_ratio_error_with_slack(&e.histogram, &s.histogram, granule, slack)
                })
                .collect(),
        )
    } else {
        None
    };
    if args.flag("--json") {
        println!(
            "{}",
            profile_json(file, sample, granule, &profiles, errors.as_deref())
        );
    } else {
        print_profiles(file, sample, granule, &profiles, errors.as_deref());
    }
    if let Some(errs) = &errors {
        let worst = errs.iter().cloned().fold(0.0f64, f64::max);
        if worst > max_err {
            return Err(format!(
                "sampled miss ratio is off by {worst:.4} (> --max-err {max_err}) vs exact"
            ));
        }
        eprintln!("verified: max |miss-ratio error| {worst:.4} <= {max_err}");
    }
    Ok(())
}

fn profile_json(
    file: &str,
    sample: Option<ShardsConfig>,
    granule: u64,
    profiles: &[StreamProfile],
    errors: Option<&[f64]>,
) -> String {
    let mode = match sample {
        Some(cfg) => format!(
            "{{\"rate\":{},\"s_max\":{}}}",
            cfg.rate,
            cfg.s_max.map_or("null".into(), |n| n.to_string())
        ),
        None => "\"exact\"".to_string(),
    };
    let rows: Vec<String> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let curve = p.curve(granule);
            let mpki: Vec<String> = curve.points().iter().map(f64::to_string).collect();
            let mut row = format!(
                "{{\"stream\":{},\"events\":{},\"instructions\":{},\"cold_misses\":{},\
                 \"max_distance\":{},\"final_rate\":{},\"peak_tracked\":{},\"mpki\":[{}]",
                p.stream,
                p.events,
                p.instructions,
                p.histogram.cold_misses(),
                p.histogram.max_distance(),
                p.sampled_rate.map_or("null".into(), |r| r.to_string()),
                p.peak_tracked.map_or("null".into(), |n| n.to_string()),
                mpki.join(","),
            );
            if let Some(errs) = errors {
                row.push_str(&format!(",\"max_miss_ratio_error\":{}", errs[i]));
            }
            row.push('}');
            row
        })
        .collect();
    format!(
        "{{\"file\":{},\"mode\":{mode},\"granule_lines\":{granule},\"streams\":[{}]}}",
        wp_sim::json_string(file),
        rows.join(","),
    )
}

fn print_profiles(
    file: &str,
    sample: Option<ShardsConfig>,
    granule: u64,
    profiles: &[StreamProfile],
    errors: Option<&[f64]>,
) {
    match sample {
        Some(cfg) => println!(
            "{file} (sampled, rate {}{})",
            cfg.rate,
            cfg.s_max
                .map(|n| format!(", s_max {n}"))
                .unwrap_or_default(),
        ),
        None => println!("{file} (exact)"),
    }
    for (i, p) in profiles.iter().enumerate() {
        println!(
            "  stream {}: {} events, {} instructions, {} cold, max distance {}",
            p.stream,
            p.events,
            p.instructions,
            p.histogram.cold_misses(),
            p.histogram.max_distance(),
        );
        if let (Some(rate), Some(peak)) = (p.sampled_rate, p.peak_tracked) {
            println!("    final rate {rate:.6}, peak tracked lines {peak}");
        }
        let total = p.histogram.total().max(1);
        let mut caps = vec![0u64];
        let mut c = granule;
        while c < p.histogram.max_distance() + granule {
            caps.push(c);
            c = c.saturating_mul(4);
        }
        let ratios: Vec<String> = caps
            .iter()
            .map(|&cap| {
                format!(
                    "{cap}:{:.3}",
                    p.histogram.misses_at(cap) as f64 / total as f64
                )
            })
            .collect();
        println!("    miss ratio by capacity (lines): {}", ratios.join(" "));
        if let Some(errs) = errors {
            println!("    max |miss-ratio error| vs exact: {:.4}", errs[i]);
        }
    }
}

/// `bench-check`: the CI perf gate. Each committed `BENCH_*.json`
/// baseline is paired by file name with a freshly measured report in
/// `--fresh-dir`; every numeric metric in the baseline's `"gate"` object
/// (all bigger-is-better throughputs/speedups) must stay above
/// `baseline * (1 - max_regress)`.
fn cmd_bench_check(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest, &["--baseline", "--fresh-dir", "--max-regress"], &[])?;
    if !args.positional.is_empty() {
        return Err(format!(
            "bench-check takes no positional arguments (got '{}')",
            args.positional[0]
        ));
    }
    let baselines = args.values("--baseline");
    if baselines.is_empty() {
        return Err("bench-check needs at least one --baseline <BENCH_*.json>".into());
    }
    let fresh_dir = PathBuf::from(
        args.value("--fresh-dir")
            .ok_or("bench-check needs --fresh-dir <dir>")?,
    );
    let max_regress = match args.value("--max-regress") {
        None => 0.25,
        Some(v) => {
            let r: f64 = v
                .parse()
                .map_err(|_| format!("--max-regress expects a number, got '{v}'"))?;
            if !(0.0..1.0).contains(&r) {
                return Err(format!("--max-regress must be in [0, 1), got {r}"));
            }
            r
        }
    };
    let mut regressions = 0usize;
    for baseline in baselines {
        let baseline = Path::new(baseline);
        let name = baseline
            .file_name()
            .ok_or_else(|| format!("--baseline '{}' has no file name", baseline.display()))?;
        let fresh = fresh_dir.join(name);
        let comparisons = whirlpool_repro::bench_check::check_files(baseline, &fresh, max_regress)?;
        println!("{}:", name.to_string_lossy());
        for c in &comparisons {
            println!("  {c}");
            regressions += usize::from(c.regressed);
        }
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} gate metric(s) regressed more than {:.0}% vs committed baselines",
            max_regress * 100.0
        ));
    }
    eprintln!(
        "bench-check: all gate metrics within {:.0}%",
        max_regress * 100.0
    );
    Ok(())
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(
        rest,
        &["--scheme", "--warmup", "--measure", "--stream"],
        &["--all-schemes", "--no-pools", "--sixteen-core", "--mix"],
    )?;
    let [file] = args.positional[..] else {
        return Err("replay takes exactly one trace file".into());
    };
    let path = Path::new(file);
    let kinds: Vec<SchemeKind> = if args.flag("--all-schemes") {
        SchemeKind::FIG10.to_vec()
    } else {
        vec![args
            .value("--scheme")
            .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?]
    };
    let stream = args.number("--stream")?;
    if args.flag("--mix") && stream.is_some() {
        return Err("--mix re-attaches every stream; it conflicts with --stream".into());
    }
    // The recorded pools are restored by default (pools-agnostic schemes
    // ignore them); --no-pools strips them.
    let classification = if args.flag("--no-pools") {
        Classification::None
    } else {
        Classification::Manual
    };
    // One validating scan up front — every block's checksum is checked
    // here, so mid-replay corruption cannot panic out of the simulator —
    // which also enumerates the streams once (not once per scheme).
    let info = TraceInfo::scan(path).map_err(|e| e.to_string())?;
    let mix_streams: Option<Vec<u16>> = if args.flag("--mix") {
        if info.streams.is_empty() {
            return Err(format!("{file} defines no streams"));
        }
        Some(info.streams.iter().map(|s| s.meta.id).collect())
    } else {
        None
    };
    for kind in kinds {
        let mut exp = Experiment::replay(kind, path).classification(classification);
        if let Some(ids) = &mix_streams {
            exp = exp.streams(ids.clone());
        } else if let Some(k) = stream {
            let k = u16::try_from(k)
                .map_err(|_| format!("stream index {k} is out of range (max 65535)"))?;
            exp = exp.stream(k);
        }
        let exp = apply_common(exp, &args)?;
        let summary = exp.run().map_err(|e| e.to_string())?;
        println!("{}", summary.to_json());
    }
    Ok(())
}

/// `obs <app|file>`: one run with the observability probes attached,
/// JSONL timeline out. An existing file replays the recording; any other
/// positional runs the registry app live.
fn cmd_obs(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(
        rest,
        &[
            "--scheme",
            "--classification",
            "--warmup",
            "--measure",
            "--sample-every",
            "--obs-out",
        ],
        &["--sixteen-core"],
    )?;
    let [target] = args.positional[..] else {
        return Err("obs takes exactly one app name or trace file".into());
    };
    let kind = args
        .value("--scheme")
        .map_or(Ok(SchemeKind::Whirlpool), parse_scheme)?;
    let classification = match args.value("--classification") {
        None => kind.default_classification(),
        Some("none") => Classification::None,
        Some("manual") => Classification::Manual,
        Some("auto") => Classification::WhirlTool {
            pools: 3,
            train: true,
        },
        Some(other) => return Err(format!("unknown classification '{other}'")),
    };
    let mut obs = match args.number("--sample-every")? {
        Some(n) => wp_obs::ObsConfig::every(n),
        None => wp_obs::ObsConfig::default(),
    };
    let out = args.value("--obs-out").map(PathBuf::from);
    if let Some(path) = &out {
        obs = obs.out(path);
    }
    let path = Path::new(target);
    let exp = if path.exists() {
        // Replays restore the recorded pools unless told otherwise, same
        // as `replay` without `--no-pools`.
        Experiment::replay(kind, path)
    } else {
        whirlpool_repro::harness::resolve_app(target).map_err(|e| e.to_string())?;
        Experiment::single(kind, target)
    };
    let exp = apply_common(exp.classification(classification).observe(obs), &args)?;
    let run = exp.run_full().map_err(|e| e.to_string())?;
    let report = run.obs.as_ref().expect("observe() attaches a report");
    match out {
        Some(path) => {
            println!("{}", run.summary.to_json());
            eprintln!(
                "wrote {} ({} pool samples, {} reconfigurations)",
                path.display(),
                report.timeline.len(),
                report.reconfigs.len(),
            );
        }
        None => print!("{}", report.to_jsonl(&run.summary.scheme)),
    }
    Ok(())
}
