//! Top-level harness for the Whirlpool (ASPLOS'16) reproduction.
//!
//! This crate glues the workspace together for experiments: scheme
//! factories, single-app / multi-program / parallel runners, and the
//! WhirlTool end-to-end pipeline. The per-figure binaries in `wp-bench`,
//! the runnable examples, and the integration tests are all thin wrappers
//! over [`harness`].
//!
//! ```no_run
//! use whirlpool_repro::harness::{run_single_app, Classification, SchemeKind};
//!
//! let jig = run_single_app(SchemeKind::Jigsaw, "delaunay", Classification::None, 4_000_000);
//! let wp = run_single_app(
//!     SchemeKind::Whirlpool,
//!     "delaunay",
//!     Classification::Manual,
//!     4_000_000,
//! );
//! println!("speedup: {:.1}%", (jig.cores[0].cycles / wp.cores[0].cycles - 1.0) * 100.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
