//! Top-level harness for the Whirlpool (ASPLOS'16) reproduction.
//!
//! This crate glues the workspace together for experiments: scheme
//! factories, the [`harness::Experiment`] builder covering single-app /
//! multi-program / parallel / replay runs, and the WhirlTool end-to-end
//! pipeline. The per-figure binaries in `wp-bench`, the runnable
//! examples, and the integration tests are all thin wrappers over
//! [`harness`].
//!
//! ```no_run
//! use whirlpool_repro::harness::{Classification, Experiment, SchemeKind};
//!
//! let jig = Experiment::single(SchemeKind::Jigsaw, "delaunay")
//!     .measure(4_000_000)
//!     .run()
//!     .unwrap();
//! let wp = Experiment::single(SchemeKind::Whirlpool, "delaunay")
//!     .classification(Classification::Manual)
//!     .measure(4_000_000)
//!     .run()
//!     .unwrap();
//! println!("speedup: {:.1}%", (jig.cores[0].cycles / wp.cores[0].cycles - 1.0) * 100.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_check;
pub mod harness;
