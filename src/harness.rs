//! Experiment harness: scheme factories and the one experiment entry
//! point shared by the per-figure benchmarks, the examples, the
//! `trace_tool` CLI, and the integration tests.
//!
//! [`Experiment`] is the single builder every consumer goes through: a
//! [`Placement`] (one app, a multi-program mix, a task-parallel app, a
//! trace replay, or pre-built bundles) plus the knobs that used to be
//! scattered across free functions — classification, warmup/measure
//! budgets, system configuration, RNG seed, and capture. Misuse surfaces
//! as a typed [`HarnessError`] (with did-you-mean suggestions for app and
//! scheme names) instead of a panic or a misfiled
//! [`wp_trace::TraceError`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use whirlpool::WhirlpoolScheme;
use wp_baselines::{
    AwasthiParams, AwasthiScheme, IdealSpdScheme, MemshareScheme, SNucaScheme, SnucaReplacement,
};
use wp_jigsaw::JigsawScheme;
use wp_mem::{CallpointId, PageId, LINES_PER_PAGE};
use wp_noc::CoreId;
use wp_paws::{core_workloads, schedule, ParallelClassification, SchedPolicy, Schedule};
use wp_sim::{ExecMode, LlcScheme, MultiCoreSim, RunSummary, SystemConfig, WorkloadBundle};
use wp_trace::{TraceError, TraceInfo};
use wp_whirltool::{cluster, profile, ProfilerConfig};
use wp_workloads::parallel::{ParallelApp, ParallelSpec};
use wp_workloads::registry;
use wp_workloads::AppModel;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong building or running an [`Experiment`].
///
/// Each variant corresponds to one way a consumer used to panic (unknown
/// registry names, over-subscribed floorplans) or to receive a misfiled
/// [`TraceError`]. The [`Display`](std::fmt::Display) rendering is a
/// single line suitable for CLI output, including a did-you-mean
/// suggestion where one exists.
#[derive(Debug)]
pub enum HarnessError {
    /// The app name is neither a registry benchmark nor a `trace:<path>`
    /// URI.
    UnknownApp {
        /// The name that failed to resolve.
        name: String,
        /// Closest registry name, if one is plausibly intended.
        suggestion: Option<String>,
    },
    /// The scheme name matches no [`SchemeKind`] label or alias.
    UnknownScheme {
        /// The name that failed to resolve.
        name: String,
        /// Closest scheme label, if one is plausibly intended.
        suggestion: Option<String>,
    },
    /// More workloads (mix apps, replay streams, bundles) than the
    /// floorplan has cores.
    TooManyWorkloads {
        /// Workloads requested.
        workloads: usize,
        /// Cores available on the configured chip.
        cores: usize,
    },
    /// Two workloads of a mix occupy overlapping page ranges — typically
    /// two `trace:` recordings replayed in the same recorded address
    /// space, which would silently alias pages across cores.
    AddressSpaceCollision {
        /// First colliding core.
        core_a: usize,
        /// Its workload name.
        app_a: String,
        /// Second colliding core.
        core_b: usize,
        /// Its workload name.
        app_b: String,
    },
    /// A trace file failed to open, read, or validate (missing,
    /// truncated, corrupt, or capture I/O).
    Trace(TraceError),
    /// A multi-tenant scenario (`.wps`) failed to parse or validate:
    /// malformed JSON, missing/ill-typed fields, negative times, or an
    /// inconsistent tenant set.
    Scenario(String),
    /// A worker thread panicked mid-run and was isolated by
    /// `catch_unwind`; the payload's one-line rendering is preserved.
    /// The job (or cell) fails with this typed error instead of tearing
    /// down the process or the daemon.
    Panic(String),
    /// The run's [`CancelToken`] fired before or between its cooperative
    /// checkpoints; no result was produced.
    Cancelled,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::UnknownApp { name, suggestion } => {
                write!(f, "unknown app '{name}'")?;
                match suggestion {
                    Some(s) => write!(f, " (did you mean '{s}'?)"),
                    None => write!(f, " (expected a registry name or trace:<path>)"),
                }
            }
            HarnessError::UnknownScheme { name, suggestion } => {
                write!(f, "unknown scheme '{name}'")?;
                match suggestion {
                    Some(s) => write!(f, " (did you mean '{s}'?)"),
                    None => write!(
                        f,
                        " (expected one of: {})",
                        SchemeKind::ALL.map(SchemeKind::label).join(", ")
                    ),
                }
            }
            HarnessError::TooManyWorkloads { workloads, cores } => {
                write!(f, "{workloads} workloads exceed the {cores}-core chip")?;
                if *cores < 16 && *workloads <= 16 {
                    write!(f, " (try the 16-core system, e.g. --sixteen-core)")?;
                }
                Ok(())
            }
            HarnessError::AddressSpaceCollision {
                core_a,
                app_a,
                core_b,
                app_b,
            } => write!(
                f,
                "workloads on core {core_a} ('{app_a}') and core {core_b} ('{app_b}') \
                 overlap in the page address space; traces replay in their recorded \
                 address spaces, so re-record them at disjoint bases or replay them \
                 in separate runs"
            ),
            HarnessError::Trace(e) => write!(f, "{e}"),
            HarnessError::Scenario(msg) => write!(f, "scenario error: {msg}"),
            HarnessError::Panic(msg) => write!(f, "worker panicked: {msg}"),
            HarnessError::Cancelled => write!(f, "cancelled before completion"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for HarnessError {
    fn from(e: TraceError) -> Self {
        HarnessError::Trace(e)
    }
}

/// Renders a `catch_unwind` payload as a one-line message — the string
/// the `panic!` carried when there is one, a placeholder otherwise.
/// Shared by every worker-isolation site (sweep cells, serve workers).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// A shared cancellation flag, checked cooperatively at the coarse
/// checkpoints of a run: before an [`Experiment`] builds its workloads,
/// before it launches the simulator, and (in `wp_bench::sweep`) before
/// each capture and each cell. Cloning shares the flag; any clone's
/// [`cancel`](Self::cancel) stops every holder at its next checkpoint,
/// surfacing as [`HarnessError::Cancelled`].
///
/// The experiment service hands one token per job to the code it runs,
/// which is how a `cancel` verb (or a daemon shutdown drain) stops an
/// in-flight sweep without poisoning shared state: workers finish the
/// cell they are on and release everything normally.
///
/// A token can also carry a wall-clock **deadline**
/// ([`set_deadline_in`](Self::set_deadline_in)): once it passes, the
/// token behaves as if cancelled, but [`timed_out`](Self::timed_out)
/// distinguishes the two so callers (the serve dispatcher) can surface
/// "timed out" rather than "cancelled by request".
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<CancelInner>);

#[derive(Debug, Default)]
struct CancelInner {
    fired: AtomicBool,
    timed_out: AtomicBool,
    /// Deadline in nanoseconds since [`cancel_anchor`]; 0 = none.
    deadline_ns: AtomicU64,
}

/// The process-wide instant deadlines are measured from (an `Instant`
/// cannot live in an atomic, its offset from a fixed anchor can).
fn cancel_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token; every holder errors at its next checkpoint.
    pub fn cancel(&self) {
        self.0.fired.store(true, Ordering::Relaxed);
    }

    /// Arms (or, with `None`, disarms) a wall-clock deadline `budget`
    /// from now. Checkpoints past the deadline fire the token and mark
    /// it [`timed_out`](Self::timed_out).
    pub fn set_deadline_in(&self, budget: Option<Duration>) {
        let ns = budget.map_or(0, |d| {
            let at = cancel_anchor().elapsed() + d;
            // Saturate, and avoid 0 ("no deadline") for a degenerate
            // zero-budget arm.
            u64::try_from(at.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.0.deadline_ns.store(ns, Ordering::Relaxed);
    }

    /// Whether the token has fired (including by deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.0.fired.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.0.deadline_ns.load(Ordering::Relaxed);
        if deadline != 0 && cancel_anchor().elapsed().as_nanos() >= u128::from(deadline) {
            self.0.timed_out.store(true, Ordering::Relaxed);
            self.0.fired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Whether the token fired by blowing its wall-clock deadline
    /// rather than by an explicit [`cancel`](Self::cancel).
    pub fn timed_out(&self) -> bool {
        self.0.timed_out.load(Ordering::Relaxed)
    }

    /// `Err(Cancelled)` once the token has fired — the checkpoint
    /// helper run loops call.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Cancelled`] when [`cancel`](Self::cancel) has been
    /// called on any clone.
    pub fn check(&self) -> Result<(), HarnessError> {
        if self.is_cancelled() {
            Err(HarnessError::Cancelled)
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Classification memo
// ---------------------------------------------------------------------------

/// Memo key: everything that determines a WhirlTool classification run's
/// output, including the `WP_MRC_SAMPLE` configuration in effect (keyed
/// by bit pattern so `0.01` and `0.0100000001` never alias).
type ClassifyKey = (String, usize, bool, Option<(u64, Option<usize>)>);

/// Memoized classification result, shared across experiments by `Arc`.
type ClassifyMemo = Mutex<HashMap<ClassifyKey, Arc<HashMap<CallpointId, usize>>>>;

fn classify_memo() -> &'static ClassifyMemo {
    static MEMO: OnceLock<ClassifyMemo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Levenshtein edit distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance small enough to be a
/// plausible typo (case-insensitive), or `None`.
fn suggest<'a, I: IntoIterator<Item = &'a str>>(input: &str, candidates: I) -> Option<String> {
    let needle = input.to_ascii_lowercase();
    candidates
        .into_iter()
        .map(|c| (edit_distance(&needle, &c.to_ascii_lowercase()), c))
        .filter(|(d, c)| *d <= 3 && *d * 2 < c.len().max(needle.len()))
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_string())
}

/// Validates that `app` is a registry benchmark or a `trace:<path>` URI.
///
/// # Errors
///
/// [`HarnessError::UnknownApp`], with a did-you-mean suggestion drawn
/// from the registry names.
pub fn resolve_app(app: &str) -> Result<(), HarnessError> {
    if registry::trace_path(app).is_some() || registry::all_apps().contains(&app) {
        return Ok(());
    }
    Err(HarnessError::UnknownApp {
        name: app.to_string(),
        suggestion: suggest(app, registry::all_apps()),
    })
}

// ---------------------------------------------------------------------------
// Schemes
// ---------------------------------------------------------------------------

/// The evaluated LLC schemes (Fig. 10/21 set plus the bypass ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// S-NUCA with LRU banks.
    SNucaLru,
    /// S-NUCA with DRRIP banks.
    SNucaDrrip,
    /// Idealized shared-private D-NUCA (Appendix A).
    IdealSpd,
    /// Awasthi et al. page migration.
    Awasthi,
    /// Jigsaw (with bypassing).
    Jigsaw,
    /// Jigsaw without bypassing (ablation).
    JigsawNoBypass,
    /// Whirlpool (per-pool VCs + bypassing).
    Whirlpool,
    /// Whirlpool without bypassing (ablation).
    WhirlpoolNoBypass,
    /// Memshare-style greedy marginal-benefit capacity apportioning
    /// (the multi-tenant baseline).
    Memshare,
}

impl SchemeKind {
    /// The six-scheme comparison of Figs. 10/19/20/21.
    pub const FIG10: [SchemeKind; 6] = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::Whirlpool,
    ];

    /// Every evaluated scheme, including the bypass ablations.
    pub const ALL: [SchemeKind; 9] = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::JigsawNoBypass,
        SchemeKind::Whirlpool,
        SchemeKind::WhirlpoolNoBypass,
        SchemeKind::Memshare,
    ];

    /// Parses a scheme name: the figure labels of [`label`](Self::label)
    /// (case-insensitive, `_`/space tolerated) plus the `snuca-lru` /
    /// `snuca-drrip` long forms.
    pub fn parse(s: &str) -> Option<SchemeKind> {
        let norm = s.trim().to_ascii_lowercase().replace(['_', ' '], "-");
        match norm.as_str() {
            "snuca-lru" => return Some(SchemeKind::SNucaLru),
            "snuca-drrip" => return Some(SchemeKind::SNucaDrrip),
            _ => {}
        }
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.label().to_ascii_lowercase() == norm)
    }

    /// [`parse`](Self::parse) with a typed error: unknown names come back
    /// as [`HarnessError::UnknownScheme`] with a did-you-mean suggestion
    /// drawn from the labels and aliases.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownScheme`] when the name matches nothing.
    pub fn resolve(s: &str) -> Result<SchemeKind, HarnessError> {
        SchemeKind::parse(s).ok_or_else(|| HarnessError::UnknownScheme {
            name: s.to_string(),
            suggestion: suggest(
                s,
                SchemeKind::ALL
                    .iter()
                    .map(|k| k.label())
                    .chain(["snuca-lru", "snuca-drrip"]),
            ),
        })
    }

    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::SNucaLru => "LRU",
            SchemeKind::SNucaDrrip => "DRRIP",
            SchemeKind::IdealSpd => "IdealSPD",
            SchemeKind::Awasthi => "Awasthi",
            SchemeKind::Jigsaw => "Jigsaw",
            SchemeKind::JigsawNoBypass => "Jigsaw-NoBypass",
            SchemeKind::Whirlpool => "Whirlpool",
            SchemeKind::WhirlpoolNoBypass => "Whirlpool-NoBypass",
            SchemeKind::Memshare => "Memshare",
        }
    }

    /// Whether this scheme consumes static classification.
    pub fn uses_pools(self) -> bool {
        matches!(self, SchemeKind::Whirlpool | SchemeKind::WhirlpoolNoBypass)
    }

    /// The classification this scheme receives by default: the manual
    /// Table-2 pools for Whirlpool variants, none for everything else
    /// (which would ignore pools anyway).
    pub fn default_classification(self) -> Classification {
        if self.uses_pools() {
            Classification::Manual
        } else {
            Classification::None
        }
    }
}

/// Instantiates a scheme for a system.
pub fn make_scheme(kind: SchemeKind, sys: &SystemConfig) -> Box<dyn LlcScheme> {
    match kind {
        SchemeKind::SNucaLru => Box::new(SNucaScheme::new(sys, SnucaReplacement::Lru)),
        SchemeKind::SNucaDrrip => Box::new(SNucaScheme::new(sys, SnucaReplacement::Drrip)),
        SchemeKind::IdealSpd => Box::new(IdealSpdScheme::new(sys)),
        SchemeKind::Awasthi => Box::new(AwasthiScheme::new(sys, AwasthiParams::default())),
        SchemeKind::Jigsaw => Box::new(JigsawScheme::new(sys.clone())),
        SchemeKind::JigsawNoBypass => Box::new(JigsawScheme::without_bypass(sys.clone())),
        SchemeKind::Whirlpool => Box::new(WhirlpoolScheme::new(sys.clone())),
        SchemeKind::WhirlpoolNoBypass => Box::new(WhirlpoolScheme::without_bypass(sys.clone())),
        SchemeKind::Memshare => Box::new(MemshareScheme::new(sys)),
    }
}

/// How a workload's data is classified into pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// No pools (baselines and Jigsaw ignore them anyway).
    None,
    /// The manual Table-2-style classification built into the app model.
    Manual,
    /// WhirlTool's automatic classification with `pools` clusters,
    /// profiled on the train (`train = true`) or reference input.
    WhirlTool {
        /// Number of pools to cluster into.
        pools: usize,
        /// Profile on the training input (the paper's default).
        train: bool,
    },
}

/// The default 4-core system used for single-app and 4-core mix runs,
/// with the reconfiguration interval scaled to our run lengths.
pub fn four_core_config() -> SystemConfig {
    let mut sys = SystemConfig::four_core();
    sys.reconfig_interval_cycles = 2_500_000;
    sys
}

/// The 16-core system (Fig. 12/13/22b).
pub fn sixteen_core_config() -> SystemConfig {
    let mut sys = SystemConfig::sixteen_core();
    sys.reconfig_interval_cycles = 2_500_000;
    sys
}

/// The SHARDS sampling configuration the `WP_MRC_SAMPLE` environment
/// knob selects (`"R"` or `"R:SMAX"`, e.g. `0.01` or `0.01:16384`), or
/// `None` when unset/unparsable — the same forgiving convention as
/// `RUN_SCALE`. WhirlTool profiling (and therefore the Fig. 16/21 sweep
/// cells that classify with it) opts into sampled MRC profiling through
/// this.
pub fn mrc_sample_from_env() -> Option<wp_mrc::ShardsConfig> {
    std::env::var("WP_MRC_SAMPLE")
        .ok()
        .and_then(|s| wp_mrc::ShardsConfig::parse(&s))
}

/// Runs WhirlTool end to end for `app`: profile (train or ref input),
/// cluster, return the callpoint→pool assignment. Set `WP_MRC_SAMPLE`
/// (see [`mrc_sample_from_env`]) to profile with SHARDS sampling instead
/// of exact Mattson stacks.
///
/// Classification is pure in `(app, pools, train)` plus the sampling
/// config, so results are memoized process-wide: repeat invocations —
/// every cell of a sweep, every request a resident `wp-serve` daemon
/// handles — reuse the first run's assignment instead of re-profiling
/// 10 M instructions. Hits and misses are tallied under
/// `wp_obs::Counter::{ClassifyMemoHits, ClassifyMemoMisses}`.
pub fn classify_with_whirltool(
    app: &str,
    pools: usize,
    train: bool,
) -> HashMap<CallpointId, usize> {
    let sample = mrc_sample_from_env();
    let key: ClassifyKey = (
        app.to_string(),
        pools,
        train,
        sample.as_ref().map(|s| (s.rate.to_bits(), s.s_max)),
    );
    if let Some(hit) = classify_memo()
        .lock()
        .expect("classification memo poisoned")
        .get(&key)
    {
        wp_obs::add(wp_obs::Counter::ClassifyMemoHits, 1);
        return HashMap::clone(hit);
    }
    wp_obs::add(wp_obs::Counter::ClassifyMemoMisses, 1);
    let spec = if train {
        registry::train_spec(app)
    } else {
        registry::spec(app)
    };
    let model = AppModel::new(spec);
    let page_map: HashMap<PageId, CallpointId> = model
        .callpoints()
        .iter()
        .flat_map(|(cp, _, pages)| pages.iter().map(move |p| (*p, *cp)))
        .collect();
    let mut trace = model.trace();
    let data = profile(
        &mut trace,
        &page_map,
        ProfilerConfig {
            interval_instrs: 2_000_000,
            total_instrs: 10_000_000,
            granule_lines: 1024,
            curve_points: 201,
            sample,
        },
    );
    let tree = cluster(&data, 200);
    let assignment = Arc::new(tree.assignment(pools));
    classify_memo()
        .lock()
        .expect("classification memo poisoned")
        .insert(key, Arc::clone(&assignment));
    HashMap::clone(&assignment)
}

/// Builds the pool descriptors of `model` under a classification.
pub fn descriptors_for(
    model: &AppModel,
    app: &str,
    classification: Classification,
) -> Vec<wp_sim::PoolDescriptor> {
    match classification {
        Classification::None => Vec::new(),
        Classification::Manual => model.descriptors_manual(),
        Classification::WhirlTool { pools, train } => {
            let assignment = classify_with_whirltool(app, pools, train);
            model.descriptors_from_clusters(&assignment)
        }
    }
}

/// Per-app run budget `(warmup_instrs, measure_instrs)`, the scaled-down
/// analogue of the paper's 20 B fast-forward + 10 B measurement: warmup
/// covers ~3 walks of the (LLC-capped) working set; measurement covers at
/// least twice that, a 10 M floor, and ≥3 full phase cycles for phased
/// apps.
pub fn run_budget(app: &str) -> (u64, u64) {
    if registry::trace_path(app).is_some() {
        // Recorded traces replay raw by default: no warmup (the capture
        // already includes the original run's warmup events) and run to
        // exhaustion. Override via `Experiment::warmup` / `measure`.
        return (0, u64::MAX);
    }
    let spec = registry::spec(app);
    // 4-core LLC (12.5 MB).
    let llc_lines = 200u64 * 1024;
    // Monitors need ~2 walks of each pool's footprint at that pool's access
    // rate before its curve tail converges, plus the EWMA window. Budget 3
    // walks of the slowest LLC-fitting pool (streaming pools never converge
    // to cacheable and are capped at the LLC size).
    let weight_sum: f64 = spec.phases[0].mix.iter().map(|m| m.weight).sum();
    let slowest_walk = spec
        .pools
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let weight: f64 = spec
                .phases
                .iter()
                .flat_map(|ph| ph.mix.iter())
                .filter(|m| m.pool == i)
                .map(|m| m.weight)
                .fold(0.0, f64::max);
            let share = (weight / weight_sum).max(1e-3);
            let pool_apki = spec.apki * share;
            let lines = (p.bytes / 64).min(2 * llc_lines);
            (lines * 1000) as f64 / pool_apki
        })
        .fold(0.0, f64::max) as u64;
    let warmup = (3 * slowest_walk + 3_000_000).clamp(4_000_000, 120_000_000);
    let phase_cycle: u64 = spec
        .phases
        .iter()
        .map(|p| {
            if p.duration_instrs == u64::MAX {
                0
            } else {
                p.duration_instrs
            }
        })
        .sum();
    let measure = (2 * warmup).max(10_000_000).max(3 * phase_cycle);
    (warmup, measure)
}

/// Builds the workload bundle for `app` under a classification — the one
/// shared app-lookup path. `app` is a registry name (`"delaunay"`) or a
/// `trace:<path>` URI naming a recorded `.wpt` file.
///
/// For traces, [`Classification::None`] strips the recorded pools and any
/// other classification replays them as recorded (a trace carries its
/// producer's classification; WhirlTool cannot re-profile a registry
/// model that is not there).
///
/// # Errors
///
/// [`HarnessError::UnknownApp`] for unresolvable names (with a
/// did-you-mean suggestion) and [`HarnessError::Trace`] for `trace:` apps
/// whose file is missing or malformed.
pub fn app_bundle(
    app: &str,
    classification: Classification,
) -> Result<WorkloadBundle, HarnessError> {
    resolve_app(app)?;
    if let Some(path) = registry::trace_path(app) {
        let with_pools = !matches!(classification, Classification::None);
        return Ok(wp_sim::trace_bundle(path, 0, with_pools)?);
    }
    let model = AppModel::new(registry::spec(app));
    let pools = descriptors_for(&model, app, classification);
    Ok(model.bundle(pools))
}

// ---------------------------------------------------------------------------
// The Experiment builder
// ---------------------------------------------------------------------------

/// Shared warmup budget of multi-program mixes: enough for the mix's
/// caches and monitors to settle. Replaying a mix capture with this
/// warmup (and the recording's measurement budget) reproduces the
/// original statistics bit for bit.
pub const MIX_WARMUP_INSTRS: u64 = 6_000_000;

/// Default measurement budget of multi-program mixes (per core,
/// fixed-work), matching the Fig. 22 4-core configuration.
pub const MIX_MEASURE_INSTRS: u64 = 8_000_000;

/// The `WP_EXEC` environment override for the event delivery path
/// (`per-event` or `batched`), if set and parseable.
fn default_exec_mode() -> Option<ExecMode> {
    std::env::var("WP_EXEC").ok()?.parse().ok()
}

/// Default RNG seed for the per-core trace streams of a mix.
const MIX_SEED: u64 = 0xC0FE;

/// Default RNG seed for parallel-app task schedules.
const PARALLEL_SEED: u64 = 0xBEEF;

/// Base *page* of core `core`'s address space in a multi-program mix:
/// processes are spaced 1 TB apart (far beyond any model's footprint) so
/// pages never collide across cores, as real virtual memory provides.
pub fn mix_base_page(core: usize) -> u64 {
    const TB: u64 = 1 << 40;
    (core as u64 + 1) * (TB / wp_mem::PAGE_BYTES)
}

/// Which streams of a trace capture a [`Placement::Replay`] re-attaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSelect {
    /// One stream, attached to core 0.
    One(u16),
    /// Every stream of the capture, each to its own core — the way to
    /// replay a whole mix or parallel capture. Enumerating the streams
    /// costs one full [`TraceInfo::scan`]; callers replaying the same
    /// file repeatedly can scan once themselves and pass
    /// [`StreamSelect::Set`].
    All,
    /// An explicit stream list, attached to cores 0..n in order.
    Set(Vec<u16>),
}

/// What an [`Experiment`] runs and where.
///
/// The first three variants cover the paper's scenarios (single-app
/// figures, multi-program mixes, task-parallel apps); `Replay` re-attaches
/// recorded capture streams; `Bundles` accepts pre-built
/// [`WorkloadBundle`]s for bespoke models (tests, sweep-cache replays).
#[derive(Debug)]
pub enum Placement {
    /// One app (registry name or `trace:<path>`) alone on core 0.
    Single(String),
    /// A multi-program mix: one app per core, fixed-work (Appendix A).
    Mix(Vec<String>),
    /// A task-parallel app on every core under a scheduling policy
    /// (Sec. 3.4, Fig. 13).
    Parallel(ParallelSpec, SchedPolicy),
    /// Streams of a recorded `.wpt` capture, re-attached to cores.
    Replay {
        /// The capture file.
        trace: PathBuf,
        /// Which streams to attach.
        select: StreamSelect,
    },
    /// Pre-built workload bundles, one per core in order.
    Bundles(Vec<WorkloadBundle>),
}

impl Placement {
    /// Short display label ("delaunay", "mcf+lbm", "fft/paws", …).
    pub fn label(&self) -> String {
        match self {
            Placement::Single(app) => app.clone(),
            Placement::Mix(apps) => apps.join("+"),
            Placement::Parallel(spec, policy) => format!("{}/{policy:?}", spec.name),
            Placement::Replay { trace, .. } => format!("replay:{}", trace.display()),
            Placement::Bundles(bundles) => bundles
                .iter()
                .map(|b| b.name.as_str())
                .collect::<Vec<_>>()
                .join("+"),
        }
    }
}

/// Result of an [`Experiment`]: the run summary plus, for
/// [`Placement::Parallel`], the task schedule that produced it and, when
/// [`Experiment::observe`] was set, the run's observability report.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// The simulation summary.
    pub summary: RunSummary,
    /// The task schedule (parallel placements only).
    pub schedule: Option<Schedule>,
    /// The observability report ([`Experiment::observe`] runs only).
    pub obs: Option<ObsReport>,
}

/// The time-series artifacts of one observed run: the driver's pool
/// occupancy timeline and the scheme's reconfiguration log. Collected by
/// reading scheme state — never by mutating it — so an observed run's
/// [`RunSummary`] is bit-identical to an unobserved one.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Per-pool occupancy samples, one group every
    /// [`sample_every`](wp_obs::ObsConfig::sample_every) events.
    pub timeline: Vec<wp_obs::PoolSample>,
    /// One entry per runtime reallocation the scheme performed.
    pub reconfigs: Vec<wp_obs::ReconfigEvent>,
}

impl ObsReport {
    /// The report as JSONL: `pool_sample` and `reconfig` lines merged in
    /// cycle order, closed by one `metrics` line carrying the scheme name
    /// and the metrics-registry snapshot (all zeros unless `WP_OBS=1` /
    /// [`wp_obs::enable`]).
    pub fn to_jsonl(&self, scheme: &str) -> String {
        let mut lines: Vec<(u64, String)> = self
            .timeline
            .iter()
            .map(|s| (s.cycle, s.to_json_line()))
            .collect();
        for ev in &self.reconfigs {
            for line in ev.to_json_lines() {
                lines.push((ev.cycle, line));
            }
        }
        lines.sort_by_key(|(cycle, _)| *cycle);
        let mut out = String::new();
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"type\":\"metrics\",\"scheme\":{},\"registry\":{}}}\n",
            wp_obs::quote(scheme),
            wp_obs::snapshot().to_json(),
        ));
        out
    }
}

/// A fully specified experiment: the one entry point the figure binaries,
/// examples, sweep engine, `trace_tool`, and tests all share.
///
/// Defaults depend on the placement: single-app runs get the app's
/// [`run_budget`] and the [`four_core_config`]; mixes get the shared
/// [`MIX_WARMUP_INSTRS`]/[`MIX_MEASURE_INSTRS`] budgets; parallel apps get
/// the [`sixteen_core_config`] and run their (finite) task traces to
/// exhaustion; replays and bundles run raw to exhaustion. Every placement
/// accepts [`capture_to`](Self::capture_to) — parallel runs record one
/// stream per core exactly like mixes, and replay bit-identically.
///
/// ```no_run
/// use whirlpool_repro::harness::{Experiment, SchemeKind};
///
/// // Capture a run...
/// let live = Experiment::single(SchemeKind::Whirlpool, "delaunay")
///     .measure(1_000_000)
///     .capture_to("/tmp/dt.wpt")
///     .run()
///     .unwrap();
/// // ...and replay it through another scheme.
/// let replayed = Experiment::single(SchemeKind::Jigsaw, "trace:/tmp/dt.wpt")
///     .run()
///     .unwrap();
/// assert!(replayed.cores[0].instructions > 0 && live.cores[0].instructions > 0);
/// ```
///
/// A multi-program mix, captured, on one line per concern:
///
/// ```no_run
/// use whirlpool_repro::harness::{Experiment, SchemeKind};
///
/// let out = Experiment::mix(SchemeKind::Whirlpool, &["delaunay", "mcf"])
///     .measure(2_000_000)
///     .capture_to("/tmp/mix.wpt")
///     .run()
///     .unwrap();
/// assert_eq!(out.cores.len(), 4);
/// ```
#[derive(Debug)]
pub struct Experiment {
    kind: SchemeKind,
    placement: Placement,
    classification: Option<Classification>,
    warmup: Option<u64>,
    measure: Option<u64>,
    sys: Option<SystemConfig>,
    seed: Option<u64>,
    capture_to: Option<PathBuf>,
    exec: Option<ExecMode>,
    obs: Option<wp_obs::ObsConfig>,
    cancel: Option<CancelToken>,
}

impl Experiment {
    fn with_placement(kind: SchemeKind, placement: Placement) -> Self {
        Self {
            kind,
            placement,
            classification: None,
            warmup: None,
            measure: None,
            sys: None,
            seed: None,
            capture_to: None,
            exec: None,
            obs: None,
            cancel: None,
        }
    }

    /// One app (registry name or `trace:<path>`) alone on core 0 of the
    /// 4-core chip, with the app's [`run_budget`].
    pub fn single(kind: SchemeKind, app: &str) -> Self {
        Self::with_placement(kind, Placement::Single(app.to_string()))
    }

    /// A multi-program mix, one app per core (registry names or `trace:`
    /// URIs), fixed-work, with the shared mix budgets.
    pub fn mix(kind: SchemeKind, apps: &[&str]) -> Self {
        Self::with_placement(
            kind,
            Placement::Mix(apps.iter().map(|a| a.to_string()).collect()),
        )
    }

    /// A task-parallel app under a scheduling policy on the 16-core chip
    /// — the four Fig. 13 configurations are `(SNucaLru, WorkStealing)`,
    /// `(Jigsaw, WorkStealing)`, `(Jigsaw, Paws)`, `(Whirlpool, Paws)`.
    /// Task traces are finite, so the run goes to exhaustion.
    pub fn parallel(kind: SchemeKind, spec: ParallelSpec, policy: SchedPolicy) -> Self {
        Self::with_placement(kind, Placement::Parallel(spec, policy))
    }

    /// Replays stream 0 of a recorded capture on core 0. Select another
    /// stream with [`stream`](Self::stream) or re-attach every stream
    /// (mix/parallel captures) with [`all_streams`](Self::all_streams).
    pub fn replay(kind: SchemeKind, trace: impl Into<PathBuf>) -> Self {
        Self::with_placement(
            kind,
            Placement::Replay {
                trace: trace.into(),
                select: StreamSelect::One(0),
            },
        )
    }

    /// Pre-built workload bundles, attached to cores 0..n in order. For
    /// bespoke models (tests) and cache-backed replays (the sweep
    /// engine); bundles carry their own pools, so
    /// [`classification`](Self::classification) is ignored.
    pub fn bundles(kind: SchemeKind, bundles: Vec<WorkloadBundle>) -> Self {
        Self::with_placement(kind, Placement::Bundles(bundles))
    }

    /// Selects one stream of a replay.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not [`Placement::Replay`].
    #[must_use]
    pub fn stream(mut self, stream: u16) -> Self {
        match &mut self.placement {
            Placement::Replay { select, .. } => *select = StreamSelect::One(stream),
            other => panic!("stream() applies to replay experiments, not {other:?}"),
        }
        self
    }

    /// Re-attaches every stream of a replay to its own core.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not [`Placement::Replay`].
    #[must_use]
    pub fn all_streams(mut self) -> Self {
        match &mut self.placement {
            Placement::Replay { select, .. } => *select = StreamSelect::All,
            other => panic!("all_streams() applies to replay experiments, not {other:?}"),
        }
        self
    }

    /// Attaches an explicit stream list of a replay to cores 0..n in
    /// order — [`all_streams`](Self::all_streams) without its per-run
    /// stream-enumeration scan, for callers that already know the ids.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not [`Placement::Replay`].
    #[must_use]
    pub fn streams(mut self, ids: Vec<u16>) -> Self {
        match &mut self.placement {
            Placement::Replay { select, .. } => *select = StreamSelect::Set(ids),
            other => panic!("streams() applies to replay experiments, not {other:?}"),
        }
        self
    }

    /// Overrides the classification (default: the scheme's
    /// [`SchemeKind::default_classification`]). For mixes it applies to
    /// every registry app; for traces and replays, [`Classification::None`]
    /// strips the recorded pools and anything else restores them.
    #[must_use]
    pub fn classification(mut self, c: Classification) -> Self {
        self.classification = Some(c);
        self
    }

    /// Overrides the warmup budget (instructions).
    ///
    /// When replaying a `trace:` app, keep warmup + measure within the
    /// recording's budgets: a trace that runs dry during warmup reports
    /// its warmup-window statistics as the counted result (see
    /// [`MultiCoreSim::run_with_warmup`]).
    #[must_use]
    pub fn warmup(mut self, instrs: u64) -> Self {
        self.warmup = Some(instrs);
        self
    }

    /// Overrides the measurement budget (instructions, per core).
    #[must_use]
    pub fn measure(mut self, instrs: u64) -> Self {
        self.measure = Some(instrs);
        self
    }

    /// Overrides the system configuration (default: [`four_core_config`],
    /// or [`sixteen_core_config`] for parallel placements).
    #[must_use]
    pub fn system(mut self, sys: SystemConfig) -> Self {
        self.sys = Some(sys);
        self
    }

    /// Overrides the RNG seed: the per-core trace seeds of a mix
    /// (`seed + core`) and the task-schedule seed of a parallel run.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Captures the run's full event stream (warmup included, one stream
    /// per core) to a `.wpt` file — uniformly across placements,
    /// including parallel runs.
    #[must_use]
    pub fn capture_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.capture_to = Some(path.into());
        self
    }

    /// Turns on the run's observability probes: the driver samples every
    /// pool's occupancy per [`wp_obs::ObsConfig::sample_every`] events and
    /// the scheme's reconfiguration log is collected, both surfaced as
    /// [`ExperimentRun::obs`] (and written as JSONL when the config names
    /// an output path). Probes read scheme state without mutating it, so
    /// the [`RunSummary`] stays bit-identical to an unobserved run.
    #[must_use]
    pub fn observe(mut self, obs: wp_obs::ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: the run checks it before
    /// building workloads (the Capture/Profile/Classify work) and again
    /// before launching the simulator, returning
    /// [`HarnessError::Cancelled`] if it has fired. This is the hook the
    /// experiment service's `cancel` verb and shutdown drain use; batch
    /// runs never set it and pay nothing.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides the event delivery path (default: `WP_EXEC` if set and
    /// parseable — `per-event` or `batched` — else [`ExecMode::default`]).
    /// Both modes produce bit-identical [`RunSummary`]s; this knob exists
    /// for the throughput benchmarks and determinism tests that compare
    /// the two.
    #[must_use]
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = Some(exec);
        self
    }

    /// The system this experiment will run on (the override or the
    /// placement's default).
    pub fn system_config(&self) -> SystemConfig {
        match (&self.sys, &self.placement) {
            (Some(sys), _) => sys.clone(),
            (None, Placement::Parallel(..)) => sixteen_core_config(),
            (None, _) => four_core_config(),
        }
    }

    /// The `(warmup, measure)` budgets this experiment will use.
    pub fn budgets(&self) -> (u64, u64) {
        let (dw, dm) = match &self.placement {
            // An unresolvable name gets placeholder budgets; the run
            // itself reports the typed UnknownApp error.
            Placement::Single(app) if resolve_app(app).is_err() => (0, u64::MAX),
            Placement::Single(app) => run_budget(app),
            Placement::Mix(_) => (MIX_WARMUP_INSTRS, MIX_MEASURE_INSTRS),
            // Finite task/recorded/bespoke streams: run to exhaustion.
            Placement::Parallel(..) | Placement::Replay { .. } | Placement::Bundles(_) => {
                (0, u64::MAX)
            }
        };
        (self.warmup.unwrap_or(dw), self.measure.unwrap_or(dm))
    }

    /// Runs the experiment and returns the summary.
    ///
    /// # Errors
    ///
    /// Any [`HarnessError`]: unknown app names, over-subscribed
    /// floorplans, colliding trace address spaces, missing/corrupt trace
    /// files, capture I/O. Trace files are validated as far as replay
    /// opens them (header, stream definitions; mixes scan the whole
    /// file); corruption deeper in the body surfaces when the replay
    /// reaches it (see [`wp_sim::TraceWorkload`]) — pre-validate with
    /// [`TraceInfo::scan`] where that matters, as `trace_tool` does.
    pub fn run(self) -> Result<RunSummary, HarnessError> {
        self.run_full().map(|r| r.summary)
    }

    /// [`run`](Self::run), also returning the task schedule of a parallel
    /// placement.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_full(self) -> Result<ExperimentRun, HarnessError> {
        let sys = self.system_config();
        let kind = self.kind;
        self.run_with_scheme(make_scheme(kind, &sys))
            .map(|(run, _)| run)
    }

    /// Runs with a caller-provided scheme instance and hands it back for
    /// post-run introspection (occupancy maps, reconfiguration history).
    /// Construct the scheme against [`system_config`](Self::system_config)
    /// so the scheme and the simulated chip agree.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with_scheme<S: LlcScheme>(
        self,
        scheme: S,
    ) -> Result<(ExperimentRun, S), HarnessError> {
        let sys = self.system_config();
        let (warmup, measure) = self.budgets();
        let classification = self
            .classification
            .unwrap_or_else(|| self.kind.default_classification());
        let cores = sys.floorplan.num_cores();
        let cancel = self.cancel;
        if let Some(tok) = &cancel {
            tok.check()?;
        }
        let mut sched = None;

        // Build the per-core attachments. This is where trace scans,
        // capture replays, and (for WhirlTool classifications) profiling
        // happen, so it is the Capture phase of the run's timing
        // breakdown (Profile/Classify nest inside it and also count
        // toward their own phases).
        let _capture = wp_obs::span(wp_obs::Phase::Capture);
        let attachments: Vec<(CoreId, WorkloadBundle)> = match self.placement {
            Placement::Single(app) => {
                vec![(CoreId(0), app_bundle(&app, classification)?)]
            }
            Placement::Mix(apps) => {
                if apps.len() > cores {
                    return Err(HarnessError::TooManyWorkloads {
                        workloads: apps.len(),
                        cores,
                    });
                }
                let seed = self.seed.unwrap_or(MIX_SEED);
                let mut out = Vec::with_capacity(apps.len());
                for (i, app) in apps.iter().enumerate() {
                    out.push((CoreId(i as u16), mix_bundle(app, i, classification, seed)?));
                }
                check_mix_address_spaces(&apps, &out)?;
                out
            }
            Placement::Parallel(spec, policy) => {
                let app = Arc::new(ParallelApp::new(spec));
                let s = schedule(&app, cores, policy, self.seed.unwrap_or(PARALLEL_SEED));
                let pc = match classification {
                    Classification::None => ParallelClassification::None,
                    _ => ParallelClassification::PerPartition,
                };
                let bundles = core_workloads(&app, &s, pc);
                sched = Some(s);
                bundles
                    .into_iter()
                    .enumerate()
                    .map(|(c, b)| (CoreId(c as u16), b))
                    .collect()
            }
            Placement::Replay { trace, select } => {
                let with_pools = !matches!(classification, Classification::None);
                let streams: Vec<u16> = match select {
                    StreamSelect::One(k) => vec![k],
                    StreamSelect::Set(ids) => ids,
                    StreamSelect::All => {
                        let info = TraceInfo::scan(&trace)?;
                        if info.streams.is_empty() {
                            return Err(HarnessError::Trace(TraceError::Corrupt(format!(
                                "{} defines no streams",
                                trace.display()
                            ))));
                        }
                        info.streams.iter().map(|s| s.meta.id).collect()
                    }
                };
                if streams.len() > cores {
                    return Err(HarnessError::TooManyWorkloads {
                        workloads: streams.len(),
                        cores,
                    });
                }
                let mut out = Vec::with_capacity(streams.len());
                for (c, sid) in streams.into_iter().enumerate() {
                    out.push((
                        CoreId(c as u16),
                        wp_sim::trace_bundle(&trace, sid, with_pools)?,
                    ));
                }
                out
            }
            Placement::Bundles(bundles) => {
                if bundles.len() > cores {
                    return Err(HarnessError::TooManyWorkloads {
                        workloads: bundles.len(),
                        cores,
                    });
                }
                bundles
                    .into_iter()
                    .enumerate()
                    .map(|(c, b)| (CoreId(c as u16), b))
                    .collect()
            }
        };

        drop(_capture);

        // Second cancellation checkpoint: after the (potentially long)
        // workload build, before the simulator runs.
        if let Some(tok) = &cancel {
            tok.check()?;
        }

        // One uniform launch path: capture, attach, run, finalize.
        let mut cfg = wp_sim::SimConfig::new(sys);
        if let Some(path) = self.capture_to {
            cfg = cfg.capture_to(path);
        }
        let obs_cfg = self.obs;
        if let Some(o) = obs_cfg.clone() {
            cfg = cfg.observe(o);
        }
        let exec = self.exec.or_else(default_exec_mode);
        if let Some(exec) = exec {
            cfg = cfg.exec_mode(exec);
        }
        let mut sim = MultiCoreSim::with_config(cfg, scheme)?;
        for (core, bundle) in attachments {
            sim.attach(core, bundle);
        }
        let summary = sim.run_with_warmup(warmup, measure);
        sim.finish_capture()?;
        let timeline = if obs_cfg.is_some() {
            sim.take_timeline()
        } else {
            Vec::new()
        };
        let scheme = sim.into_scheme();
        let accesses: u64 = summary
            .cores
            .iter()
            .map(|c| c.llc_accesses + c.llc_bypasses)
            .sum();
        let misses: u64 = summary
            .cores
            .iter()
            .map(|c| c.llc_misses + c.llc_bypasses)
            .sum();
        wp_obs::record_scheme(&summary.scheme, accesses, misses);
        let obs = match obs_cfg {
            Some(o) => {
                let report = ObsReport {
                    timeline,
                    reconfigs: scheme.reconfig_log(),
                };
                if let Some(path) = &o.out {
                    std::fs::write(path, report.to_jsonl(&summary.scheme))
                        .map_err(|e| HarnessError::Trace(TraceError::Io(e)))?;
                }
                Some(report)
            }
            None => None,
        };
        Ok((
            ExperimentRun {
                summary,
                schedule: sched,
                obs,
            },
            scheme,
        ))
    }
}

/// Builds core `core`'s workload bundle for a multi-program mix: a
/// registry model instantiated in that core's [disjoint address
/// space](mix_base_page), or a `trace:<path>` recording (which plays back
/// in the address space it was recorded in).
fn mix_bundle(
    app: &str,
    core: usize,
    classification: Classification,
    seed: u64,
) -> Result<WorkloadBundle, HarnessError> {
    resolve_app(app)?;
    if let Some(path) = registry::trace_path(app) {
        let with_pools = !matches!(classification, Classification::None);
        let mut b = wp_sim::trace_bundle(path, 0, with_pools)?;
        b.name = format!("{}.core{core}", b.name);
        return Ok(b);
    }
    let model = AppModel::new_with_base(registry::spec(app), mix_base_page(core));
    let pools = descriptors_for(&model, app, classification);
    Ok(WorkloadBundle {
        trace: Box::new(model.trace_seeded(seed + core as u64)),
        pools,
        name: format!("{app}.core{core}"),
    })
}

/// The inclusive page span `(lo, hi)` a mix workload occupies, or `None`
/// when it cannot be determined (an empty trace stream).
///
/// # Errors
///
/// A trace file that fails its validating scan (truncation, bit flips)
/// is reported here, at build time, rather than panicking mid-replay.
fn mix_page_span(
    app: &str,
    core: usize,
    bundle: &WorkloadBundle,
) -> Result<Option<(u64, u64)>, HarnessError> {
    let pool_span = |bundle: &WorkloadBundle| {
        let pages = bundle
            .pools
            .iter()
            .flat_map(|p| p.pages.iter().map(|p| p.0));
        Some((pages.clone().min()?, pages.max()?))
    };
    if let Some(path) = registry::trace_path(app) {
        // The stream's recorded line span is exact — it covers every
        // access, including ones outside the recorded pool tables (the
        // pools alone could under-cover and let aliasing traces through).
        if let Some((lo, hi)) = TraceInfo::scan(path)?
            .streams
            .first()
            .and_then(|s| s.line_span)
        {
            return Ok(Some((lo / LINES_PER_PAGE, hi / LINES_PER_PAGE)));
        }
        // An empty stream: fall back to the recorded pools, if any.
        return Ok(pool_span(bundle));
    }
    if !bundle.pools.is_empty() {
        return Ok(pool_span(bundle));
    }
    // A registry model without pools: its heap occupies its 1 TB slot
    // starting at the core's base page. Bound the span by the footprint
    // plus per-pool page-rounding slack.
    let spec = registry::spec(app);
    let base = mix_base_page(core);
    let pages = spec.footprint() / wp_mem::PAGE_BYTES + spec.pools.len() as u64 + 1;
    Ok(Some((base, base + pages)))
}

/// Rejects mixes whose workloads occupy overlapping page ranges. Registry
/// models are spaced 1 TB apart by construction, but `trace:` recordings
/// replay in their *recorded* address spaces — two traces recorded at the
/// same base (or a trace recorded in a slot a registry app now occupies)
/// would silently alias pages across cores.
fn check_mix_address_spaces(
    apps: &[String],
    attachments: &[(CoreId, WorkloadBundle)],
) -> Result<(), HarnessError> {
    let spans: Vec<Option<(u64, u64)>> = attachments
        .iter()
        .enumerate()
        .map(|(i, (_, b))| mix_page_span(&apps[i], i, b))
        .collect::<Result<_, _>>()?;
    for i in 0..spans.len() {
        for j in i + 1..spans.len() {
            // Only pairs involving a trace can collide; registry models
            // are provably disjoint (and their spans are estimates).
            if registry::trace_path(&apps[i]).is_none() && registry::trace_path(&apps[j]).is_none()
            {
                continue;
            }
            if let (Some(a), Some(b)) = (spans[i], spans[j]) {
                if a.0 <= b.1 && b.0 <= a.1 {
                    return Err(HarnessError::AddressSpaceCollision {
                        core_a: i,
                        app_a: apps[i].clone(),
                        core_b: j,
                        app_b: apps[j].clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Thin compatibility shims
// ---------------------------------------------------------------------------

/// A single-core run specification — a thin shim over
/// [`Experiment::single`] kept so existing call sites read unchanged.
///
/// ```no_run
/// use whirlpool_repro::harness::{RunSpec, SchemeKind};
///
/// let out = RunSpec::new(SchemeKind::Whirlpool, "delaunay")
///     .measure(1_000_000)
///     .run()
///     .unwrap();
/// assert!(out.cores[0].instructions > 0);
/// ```
#[derive(Debug)]
pub struct RunSpec(Experiment);

impl RunSpec {
    /// A run of `app` (registry name or `trace:<path>`) under `kind`,
    /// with all defaults.
    pub fn new(kind: SchemeKind, app: &str) -> Self {
        Self(Experiment::single(kind, app))
    }

    /// Overrides the classification.
    #[must_use]
    pub fn classification(self, c: Classification) -> Self {
        Self(self.0.classification(c))
    }

    /// Overrides the warmup budget (instructions).
    #[must_use]
    pub fn warmup(self, instrs: u64) -> Self {
        Self(self.0.warmup(instrs))
    }

    /// Overrides the measurement budget (instructions).
    #[must_use]
    pub fn measure(self, instrs: u64) -> Self {
        Self(self.0.measure(instrs))
    }

    /// Overrides the system configuration.
    #[must_use]
    pub fn system(self, sys: SystemConfig) -> Self {
        Self(self.0.system(sys))
    }

    /// Captures the run's full event stream (warmup included) to a
    /// `.wpt` file.
    #[must_use]
    pub fn capture_to(self, path: impl Into<PathBuf>) -> Self {
        Self(self.0.capture_to(path))
    }

    /// Runs on core 0 and returns the summary.
    ///
    /// # Errors
    ///
    /// As for [`Experiment::run`].
    pub fn run(self) -> Result<RunSummary, HarnessError> {
        self.0.run()
    }
}

/// Runs one app alone on core 0 of the 4-core chip for
/// `instrs` measured instructions (after the app's warmup budget).
///
/// # Panics
///
/// Panics on [`HarnessError`]s (unknown apps, missing traces); use
/// [`Experiment`] directly for a fallible run.
pub fn run_single_app(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
    instrs: u64,
) -> RunSummary {
    run_single_app_with(kind, app, classification, instrs, four_core_config())
}

/// Runs one app alone with its default budget (warmup + measurement).
///
/// # Panics
///
/// As for [`run_single_app`].
pub fn run_single_app_budgeted(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
) -> RunSummary {
    let (_, measure) = run_budget(app);
    run_single_app_with(kind, app, classification, measure, four_core_config())
}

/// [`run_single_app`] with an explicit system configuration.
///
/// # Panics
///
/// As for [`run_single_app`].
pub fn run_single_app_with(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
    instrs: u64,
    sys: SystemConfig,
) -> RunSummary {
    Experiment::single(kind, app)
        .classification(classification)
        .measure(instrs)
        .system(sys)
        .run()
        .unwrap_or_else(|e| panic!("running '{app}' failed: {e}"))
}

// ---------------------------------------------------------------------------
// Reporting helpers
// ---------------------------------------------------------------------------

/// Execution-time proxy for a single-app run: core 0's cycles.
pub fn exec_cycles(s: &RunSummary) -> f64 {
    s.cores[0].cycles
}

/// Execution-time proxy for a parallel run: the slowest core (makespan).
pub fn makespan_cycles(s: &RunSummary) -> f64 {
    s.cores.iter().map(|c| c.cycles).fold(0.0, f64::max)
}

/// Speedup of `new` over `base` in percent (positive = faster).
pub fn speedup_pct(base_cycles: f64, new_cycles: f64) -> f64 {
    (base_cycles / new_cycles - 1.0) * 100.0
}

/// Renders a bank-occupancy map as an ASCII chip diagram (Figs. 3–5):
/// each tile shows the label of its dominant owner.
pub fn render_occupancy(sys: &SystemConfig, occupancy: &[(usize, String, f64)]) -> String {
    let mesh = sys.floorplan.mesh();
    let mut owner: Vec<(String, f64)> = vec![(String::from("."), 0.0); mesh.tiles()];
    for (bank, label, frac) in occupancy {
        if *frac > owner[*bank].1 {
            owner[*bank] = (label.clone(), *frac);
        }
    }
    let width = owner
        .iter()
        .map(|(l, _)| l.len().min(9))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut s = String::new();
    for y in 0..mesh.height() {
        for x in 0..mesh.width() {
            let idx = mesh.index_of(wp_noc::Coord::new(x, y));
            let (label, frac) = &owner[idx];
            let cell = if *frac == 0.0 {
                "-".to_string()
            } else {
                label.chars().take(9).collect()
            };
            s.push_str(&format!("{cell:>w$} ", w = width));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_instantiate() {
        let sys = four_core_config();
        for kind in SchemeKind::FIG10 {
            let s = make_scheme(kind, &sys);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn single_app_run_produces_stats() {
        let out = run_single_app(
            SchemeKind::SNucaLru,
            "delaunay",
            Classification::None,
            500_000,
        );
        // Fixed-work freezes at the first event crossing the target, so a
        // single gap of overshoot is expected.
        assert!(out.cores[0].instructions >= 500_000);
        assert!(out.cores[0].instructions < 501_000);
        assert!(out.cores[0].llc_apki() > 10.0);
        assert!(out.energy.total_nj() > 0.0);
    }

    #[test]
    fn whirlpool_gets_manual_pools() {
        let out = run_single_app(
            SchemeKind::Whirlpool,
            "delaunay",
            Classification::Manual,
            500_000,
        );
        assert_eq!(out.scheme, "Whirlpool");
        assert!(out.cores[0].llc_accesses > 0);
    }

    #[test]
    fn whirltool_classification_runs() {
        let assignment = classify_with_whirltool("delaunay", 3, true);
        assert!(!assignment.is_empty());
        let clusters: std::collections::HashSet<usize> = assignment.values().copied().collect();
        assert!(clusters.len() <= 3);
    }

    #[test]
    fn occupancy_render_has_grid_shape() {
        let sys = four_core_config();
        let occ = vec![(0usize, "points".to_string(), 0.5)];
        let s = render_occupancy(&sys, &occ);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("points"));
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_pct(120.0, 100.0) - 20.0).abs() < 1e-9);
        assert!(speedup_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn scheme_parse_accepts_labels_and_aliases() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(kind.label()), Some(kind));
            assert_eq!(SchemeKind::parse(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(SchemeKind::parse("snuca-lru"), Some(SchemeKind::SNucaLru));
        assert_eq!(
            SchemeKind::parse("SNUCA_DRRIP"),
            Some(SchemeKind::SNucaDrrip)
        );
        assert_eq!(
            SchemeKind::parse("whirlpool nobypass"),
            Some(SchemeKind::WhirlpoolNoBypass)
        );
        assert_eq!(SchemeKind::parse("zcache"), None);
    }

    #[test]
    fn scheme_resolve_suggests_labels() {
        assert_eq!(SchemeKind::resolve("Jigsaw").unwrap(), SchemeKind::Jigsaw);
        match SchemeKind::resolve("whirlpol") {
            Err(HarnessError::UnknownScheme { suggestion, .. }) => {
                assert_eq!(suggestion.as_deref(), Some("Whirlpool"));
            }
            other => panic!("expected UnknownScheme, got {other:?}"),
        }
        // Nothing close: no suggestion, but still the typed variant.
        match SchemeKind::resolve("zcache") {
            Err(HarnessError::UnknownScheme { suggestion, .. }) => assert!(suggestion.is_none()),
            other => panic!("expected UnknownScheme, got {other:?}"),
        }
    }

    #[test]
    fn app_resolve_suggests_registry_names() {
        assert!(resolve_app("delaunay").is_ok());
        assert!(resolve_app("trace:/tmp/whatever.wpt").is_ok());
        match resolve_app("delauny") {
            Err(HarnessError::UnknownApp { suggestion, .. }) => {
                assert_eq!(suggestion.as_deref(), Some("delaunay"));
            }
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn default_classification_matches_pool_use() {
        assert_eq!(
            SchemeKind::Whirlpool.default_classification(),
            Classification::Manual
        );
        assert_eq!(
            SchemeKind::Jigsaw.default_classification(),
            Classification::None
        );
    }

    #[test]
    fn experiment_defaults_follow_placement() {
        let single = Experiment::single(SchemeKind::SNucaLru, "delaunay");
        assert_eq!(single.budgets(), run_budget("delaunay"));
        assert_eq!(single.system_config().floorplan.num_cores(), 4);

        let mix = Experiment::mix(SchemeKind::SNucaLru, &["delaunay", "mcf"]);
        assert_eq!(mix.budgets(), (MIX_WARMUP_INSTRS, MIX_MEASURE_INSTRS));

        let spec = wp_workloads::parallel::parallel_apps(16, 1)
            .into_iter()
            .next()
            .unwrap();
        let par = Experiment::parallel(SchemeKind::Whirlpool, spec, SchedPolicy::Paws);
        assert_eq!(par.budgets(), (0, u64::MAX));
        assert_eq!(par.system_config().floorplan.num_cores(), 16);
    }

    #[test]
    fn runspec_capture_then_replay_matches() {
        let path =
            std::env::temp_dir().join(format!("wp-harness-capture-{}.wpt", std::process::id()));
        let live = RunSpec::new(SchemeKind::SNucaLru, "delaunay")
            .warmup(100_000)
            .measure(200_000)
            .capture_to(&path)
            .run()
            .unwrap();
        let uri = format!("trace:{}", path.display());
        let replayed = RunSpec::new(SchemeKind::SNucaLru, &uri)
            .warmup(100_000)
            .measure(200_000)
            .run()
            .unwrap();
        assert_eq!(live.to_json(), replayed.to_json());
        // The Replay placement drives the same stream to the same result.
        let via_replay = Experiment::replay(SchemeKind::SNucaLru, &path)
            .warmup(100_000)
            .measure(200_000)
            .classification(Classification::None)
            .run()
            .unwrap();
        assert_eq!(live.to_json(), via_replay.to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_trace_file_is_an_error_not_a_panic() {
        match RunSpec::new(SchemeKind::SNucaLru, "trace:/nonexistent/x.wpt").run() {
            Err(HarnessError::Trace(_)) => {}
            other => panic!("expected a Trace error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_app_is_a_typed_error_everywhere() {
        assert!(matches!(
            Experiment::single(SchemeKind::SNucaLru, "doom").run(),
            Err(HarnessError::UnknownApp { .. })
        ));
        assert!(matches!(
            Experiment::mix(SchemeKind::SNucaLru, &["delaunay", "doom"]).run(),
            Err(HarnessError::UnknownApp { .. })
        ));
        assert!(matches!(
            app_bundle("doom", Classification::None),
            Err(HarnessError::UnknownApp { .. })
        ));
    }

    #[test]
    fn oversubscribed_mix_is_a_typed_error() {
        let apps = ["delaunay"; 5];
        match Experiment::mix(SchemeKind::SNucaLru, &apps).run() {
            Err(HarnessError::TooManyWorkloads { workloads, cores }) => {
                assert_eq!((workloads, cores), (5, 4));
            }
            other => panic!("expected TooManyWorkloads, got {other:?}"),
        }
    }

    #[test]
    fn run_with_scheme_hands_the_scheme_back() {
        let sys = four_core_config();
        let (run, scheme) = Experiment::single(SchemeKind::Whirlpool, "delaunay")
            .measure(300_000)
            .system(sys.clone())
            .run_with_scheme(make_scheme(SchemeKind::Whirlpool, &sys))
            .unwrap();
        assert!(run.summary.cores[0].instructions >= 300_000);
        assert!(run.schedule.is_none());
        // The returned scheme carries the run's end state.
        assert!(!scheme.bank_occupancy().is_empty());
    }

    #[test]
    fn mix_address_spaces_are_1tb_apart_and_disjoint() {
        // Regression test for the run_mix spacing: `mix_base_page` is a
        // *page* id, so consecutive cores' byte bases must sit exactly
        // 1 TB apart, and no two per-core bundles' pool page ranges may
        // overlap.
        const TB: u64 = 1 << 40;
        for core in 0..16 {
            let base_bytes = mix_base_page(core) * wp_mem::PAGE_BYTES;
            assert_eq!(base_bytes, (core as u64 + 1) * TB, "core {core} base");
        }
        // The largest-footprint apps in the registry, Whirlpool-classified
        // so every pool's pages are present in the bundles.
        let apps = ["MIS", "lbm", "mcf", "sort"];
        let spans: Vec<(u64, u64)> = apps
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let b = mix_bundle(app, i, Classification::Manual, MIX_SEED).unwrap();
                assert!(!b.pools.is_empty(), "{app} has pools");
                let pages = b.pools.iter().flat_map(|p| p.pages.iter());
                let lo = pages.clone().map(|p| p.0).min().unwrap();
                let hi = pages.map(|p| p.0).max().unwrap();
                assert!(lo >= mix_base_page(i), "{app} starts in its region");
                (lo, hi)
            })
            .collect();
        for (i, a) in spans.iter().enumerate() {
            for (j, b) in spans.iter().enumerate().skip(i + 1) {
                assert!(
                    a.1 < b.0 || b.1 < a.0,
                    "core {i} pages {a:?} overlap core {j} pages {b:?}"
                );
            }
        }
    }

    #[test]
    fn colliding_trace_mix_is_rejected_by_core() {
        let path =
            std::env::temp_dir().join(format!("wp-harness-collide-{}.wpt", std::process::id()));
        RunSpec::new(SchemeKind::SNucaLru, "delaunay")
            .warmup(50_000)
            .measure(100_000)
            .capture_to(&path)
            .run()
            .unwrap();
        let uri = format!("trace:{}", path.display());
        match Experiment::mix(SchemeKind::SNucaLru, &[&uri, &uri]).run() {
            Err(HarnessError::AddressSpaceCollision { core_a, core_b, .. }) => {
                assert_eq!((core_a, core_b), (0, 1));
            }
            other => panic!("expected AddressSpaceCollision, got {other:?}"),
        }
        // The same trace next to a registry app in a *different* slot is
        // fine (the recording lives near page 16, far below 1 TB).
        Experiment::mix(SchemeKind::SNucaLru, &[&uri, "mcf"])
            .measure(100_000)
            .run()
            .unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn harness_errors_render_one_line() {
        for e in [
            HarnessError::UnknownApp {
                name: "delauny".into(),
                suggestion: Some("delaunay".into()),
            },
            HarnessError::UnknownScheme {
                name: "x".into(),
                suggestion: None,
            },
            HarnessError::TooManyWorkloads {
                workloads: 5,
                cores: 4,
            },
            HarnessError::AddressSpaceCollision {
                core_a: 0,
                app_a: "a".into(),
                core_b: 1,
                app_b: "b".into(),
            },
            HarnessError::Trace(TraceError::BadMagic),
            HarnessError::Scenario("tenant 'a' departs before it arrives".into()),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
