//! Experiment harness: scheme factories and runners shared by the
//! per-figure benchmarks, the examples, the `trace_tool` CLI, and the
//! integration tests.
//!
//! [`RunSpec`] is the shared entry point every consumer goes through: it
//! resolves app names (registry models *and* `trace:<path>` recordings),
//! instantiates the scheme, applies default budgets and classification,
//! and optionally captures the run to a `.wpt` file.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use whirlpool::WhirlpoolScheme;
use wp_baselines::{AwasthiParams, AwasthiScheme, IdealSpdScheme, SNucaScheme, SnucaReplacement};
use wp_jigsaw::JigsawScheme;
use wp_mem::{CallpointId, PageId};
use wp_noc::CoreId;
use wp_paws::{core_workloads, schedule, ParallelClassification, SchedPolicy, Schedule};
use wp_sim::{LlcScheme, MultiCoreSim, RunSummary, SystemConfig};
use wp_whirltool::{cluster, profile, ProfilerConfig};
use wp_workloads::parallel::{ParallelApp, ParallelSpec};
use wp_workloads::registry;
use wp_workloads::AppModel;

/// The evaluated LLC schemes (Fig. 10/21 set plus the bypass ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// S-NUCA with LRU banks.
    SNucaLru,
    /// S-NUCA with DRRIP banks.
    SNucaDrrip,
    /// Idealized shared-private D-NUCA (Appendix A).
    IdealSpd,
    /// Awasthi et al. page migration.
    Awasthi,
    /// Jigsaw (with bypassing).
    Jigsaw,
    /// Jigsaw without bypassing (ablation).
    JigsawNoBypass,
    /// Whirlpool (per-pool VCs + bypassing).
    Whirlpool,
    /// Whirlpool without bypassing (ablation).
    WhirlpoolNoBypass,
}

impl SchemeKind {
    /// The six-scheme comparison of Figs. 10/19/20/21.
    pub const FIG10: [SchemeKind; 6] = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::Whirlpool,
    ];

    /// Every evaluated scheme, including the bypass ablations.
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::JigsawNoBypass,
        SchemeKind::Whirlpool,
        SchemeKind::WhirlpoolNoBypass,
    ];

    /// Parses a scheme name: the figure labels of [`label`](Self::label)
    /// (case-insensitive, `_`/space tolerated) plus the `snuca-lru` /
    /// `snuca-drrip` long forms.
    pub fn parse(s: &str) -> Option<SchemeKind> {
        let norm = s.trim().to_ascii_lowercase().replace(['_', ' '], "-");
        match norm.as_str() {
            "snuca-lru" => return Some(SchemeKind::SNucaLru),
            "snuca-drrip" => return Some(SchemeKind::SNucaDrrip),
            _ => {}
        }
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.label().to_ascii_lowercase() == norm)
    }

    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::SNucaLru => "LRU",
            SchemeKind::SNucaDrrip => "DRRIP",
            SchemeKind::IdealSpd => "IdealSPD",
            SchemeKind::Awasthi => "Awasthi",
            SchemeKind::Jigsaw => "Jigsaw",
            SchemeKind::JigsawNoBypass => "Jigsaw-NoBypass",
            SchemeKind::Whirlpool => "Whirlpool",
            SchemeKind::WhirlpoolNoBypass => "Whirlpool-NoBypass",
        }
    }

    /// Whether this scheme consumes static classification.
    pub fn uses_pools(self) -> bool {
        matches!(self, SchemeKind::Whirlpool | SchemeKind::WhirlpoolNoBypass)
    }

    /// The classification this scheme receives by default: the manual
    /// Table-2 pools for Whirlpool variants, none for everything else
    /// (which would ignore pools anyway).
    pub fn default_classification(self) -> Classification {
        if self.uses_pools() {
            Classification::Manual
        } else {
            Classification::None
        }
    }
}

/// Instantiates a scheme for a system.
pub fn make_scheme(kind: SchemeKind, sys: &SystemConfig) -> Box<dyn LlcScheme> {
    match kind {
        SchemeKind::SNucaLru => Box::new(SNucaScheme::new(sys, SnucaReplacement::Lru)),
        SchemeKind::SNucaDrrip => Box::new(SNucaScheme::new(sys, SnucaReplacement::Drrip)),
        SchemeKind::IdealSpd => Box::new(IdealSpdScheme::new(sys)),
        SchemeKind::Awasthi => Box::new(AwasthiScheme::new(sys, AwasthiParams::default())),
        SchemeKind::Jigsaw => Box::new(JigsawScheme::new(sys.clone())),
        SchemeKind::JigsawNoBypass => Box::new(JigsawScheme::without_bypass(sys.clone())),
        SchemeKind::Whirlpool => Box::new(WhirlpoolScheme::new(sys.clone())),
        SchemeKind::WhirlpoolNoBypass => Box::new(WhirlpoolScheme::without_bypass(sys.clone())),
    }
}

/// How a workload's data is classified into pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// No pools (baselines and Jigsaw ignore them anyway).
    None,
    /// The manual Table-2-style classification built into the app model.
    Manual,
    /// WhirlTool's automatic classification with `pools` clusters,
    /// profiled on the train (`train = true`) or reference input.
    WhirlTool {
        /// Number of pools to cluster into.
        pools: usize,
        /// Profile on the training input (the paper's default).
        train: bool,
    },
}

/// The default 4-core system used for single-app and 4-core mix runs,
/// with the reconfiguration interval scaled to our run lengths.
pub fn four_core_config() -> SystemConfig {
    let mut sys = SystemConfig::four_core();
    sys.reconfig_interval_cycles = 2_500_000;
    sys
}

/// The 16-core system (Fig. 12/13/22b).
pub fn sixteen_core_config() -> SystemConfig {
    let mut sys = SystemConfig::sixteen_core();
    sys.reconfig_interval_cycles = 2_500_000;
    sys
}

/// Runs WhirlTool end to end for `app`: profile (train or ref input),
/// cluster, return the callpoint→pool assignment.
pub fn classify_with_whirltool(
    app: &str,
    pools: usize,
    train: bool,
) -> HashMap<CallpointId, usize> {
    let spec = if train {
        registry::train_spec(app)
    } else {
        registry::spec(app)
    };
    let model = AppModel::new(spec);
    let page_map: HashMap<PageId, CallpointId> = model
        .callpoints()
        .iter()
        .flat_map(|(cp, _, pages)| pages.iter().map(move |p| (*p, *cp)))
        .collect();
    let mut trace = model.trace();
    let data = profile(
        &mut trace,
        &page_map,
        ProfilerConfig {
            interval_instrs: 2_000_000,
            total_instrs: 10_000_000,
            granule_lines: 1024,
            curve_points: 201,
        },
    );
    let tree = cluster(&data, 200);
    tree.assignment(pools)
}

/// Builds the pool descriptors of `model` under a classification.
pub fn descriptors_for(
    model: &AppModel,
    app: &str,
    classification: Classification,
) -> Vec<wp_sim::PoolDescriptor> {
    match classification {
        Classification::None => Vec::new(),
        Classification::Manual => model.descriptors_manual(),
        Classification::WhirlTool { pools, train } => {
            let assignment = classify_with_whirltool(app, pools, train);
            model.descriptors_from_clusters(&assignment)
        }
    }
}

/// Per-app run budget `(warmup_instrs, measure_instrs)`, the scaled-down
/// analogue of the paper's 20 B fast-forward + 10 B measurement: warmup
/// covers ~3 walks of the (LLC-capped) working set; measurement covers at
/// least twice that, a 10 M floor, and ≥3 full phase cycles for phased
/// apps.
pub fn run_budget(app: &str) -> (u64, u64) {
    if registry::trace_path(app).is_some() {
        // Recorded traces replay raw by default: no warmup (the capture
        // already includes the original run's warmup events) and run to
        // exhaustion. Override via `RunSpec::warmup` / `RunSpec::measure`.
        return (0, u64::MAX);
    }
    let spec = registry::spec(app);
    // 4-core LLC (12.5 MB).
    let llc_lines = 200u64 * 1024;
    // Monitors need ~2 walks of each pool's footprint at that pool's access
    // rate before its curve tail converges, plus the EWMA window. Budget 3
    // walks of the slowest LLC-fitting pool (streaming pools never converge
    // to cacheable and are capped at the LLC size).
    let weight_sum: f64 = spec.phases[0].mix.iter().map(|m| m.weight).sum();
    let slowest_walk = spec
        .pools
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let weight: f64 = spec
                .phases
                .iter()
                .flat_map(|ph| ph.mix.iter())
                .filter(|m| m.pool == i)
                .map(|m| m.weight)
                .fold(0.0, f64::max);
            let share = (weight / weight_sum).max(1e-3);
            let pool_apki = spec.apki * share;
            let lines = (p.bytes / 64).min(2 * llc_lines);
            (lines * 1000) as f64 / pool_apki
        })
        .fold(0.0, f64::max) as u64;
    let warmup = (3 * slowest_walk + 3_000_000).clamp(4_000_000, 120_000_000);
    let phase_cycle: u64 = spec
        .phases
        .iter()
        .map(|p| {
            if p.duration_instrs == u64::MAX {
                0
            } else {
                p.duration_instrs
            }
        })
        .sum();
    let measure = (2 * warmup).max(10_000_000).max(3 * phase_cycle);
    (warmup, measure)
}

/// Runs one app alone on core 0 of the 4-core chip for
/// `instrs` measured instructions (after the app's warmup budget).
pub fn run_single_app(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
    instrs: u64,
) -> RunSummary {
    run_single_app_with(kind, app, classification, instrs, four_core_config())
}

/// Runs one app alone with its default budget (warmup + measurement).
pub fn run_single_app_budgeted(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
) -> RunSummary {
    let (_, measure) = run_budget(app);
    run_single_app_with(kind, app, classification, measure, four_core_config())
}

/// [`run_single_app`] with an explicit system configuration.
pub fn run_single_app_with(
    kind: SchemeKind,
    app: &str,
    classification: Classification,
    instrs: u64,
    sys: SystemConfig,
) -> RunSummary {
    RunSpec::new(kind, app)
        .classification(classification)
        .measure(instrs)
        .system(sys)
        .run()
        .unwrap_or_else(|e| panic!("running '{app}' failed: {e}"))
}

/// Builds the workload bundle for `app` under a classification — the one
/// shared app-lookup path. `app` is a registry name (`"delaunay"`) or a
/// `trace:<path>` URI naming a recorded `.wpt` file.
///
/// For traces, [`Classification::None`] strips the recorded pools and any
/// other classification replays them as recorded (a trace carries its
/// producer's classification; WhirlTool cannot re-profile a registry
/// model that is not there).
///
/// # Errors
///
/// Fails only for `trace:` apps whose file is missing or malformed.
pub fn app_bundle(
    app: &str,
    classification: Classification,
) -> Result<wp_sim::WorkloadBundle, wp_trace::TraceError> {
    if let Some(path) = registry::trace_path(app) {
        let with_pools = !matches!(classification, Classification::None);
        return wp_sim::trace_bundle(path, 0, with_pools);
    }
    let model = AppModel::new(registry::spec(app));
    let pools = descriptors_for(&model, app, classification);
    Ok(model.bundle(pools))
}

/// A fully specified single-core run: the one entry point the figure
/// binaries, examples, `trace_tool`, and tests all share.
///
/// Defaults: the scheme's [default
/// classification](SchemeKind::default_classification), the app's
/// [`run_budget`], and the [`four_core_config`] system.
///
/// ```no_run
/// use whirlpool_repro::harness::{RunSpec, SchemeKind};
///
/// // Capture a run...
/// let live = RunSpec::new(SchemeKind::Whirlpool, "delaunay")
///     .measure(1_000_000)
///     .capture_to("/tmp/dt.wpt")
///     .run()
///     .unwrap();
/// // ...and replay it through another scheme.
/// let replayed = RunSpec::new(SchemeKind::Jigsaw, "trace:/tmp/dt.wpt")
///     .run()
///     .unwrap();
/// assert!(replayed.cores[0].instructions > 0 && live.cores[0].instructions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RunSpec {
    kind: SchemeKind,
    app: String,
    classification: Classification,
    warmup: Option<u64>,
    measure: Option<u64>,
    sys: SystemConfig,
    capture_to: Option<PathBuf>,
}

impl RunSpec {
    /// A run of `app` (registry name or `trace:<path>`) under `kind`,
    /// with all defaults.
    pub fn new(kind: SchemeKind, app: &str) -> Self {
        Self {
            kind,
            app: app.to_string(),
            classification: kind.default_classification(),
            warmup: None,
            measure: None,
            sys: four_core_config(),
            capture_to: None,
        }
    }

    /// Overrides the classification.
    #[must_use]
    pub fn classification(mut self, c: Classification) -> Self {
        self.classification = c;
        self
    }

    /// Overrides the warmup budget (instructions).
    ///
    /// When replaying a `trace:` app, keep warmup + measure within the
    /// recording's budgets: a trace that runs dry during warmup reports
    /// its warmup-window statistics as the counted result (see
    /// [`MultiCoreSim::run_with_warmup`]).
    #[must_use]
    pub fn warmup(mut self, instrs: u64) -> Self {
        self.warmup = Some(instrs);
        self
    }

    /// Overrides the measurement budget (instructions).
    #[must_use]
    pub fn measure(mut self, instrs: u64) -> Self {
        self.measure = Some(instrs);
        self
    }

    /// Overrides the system configuration.
    #[must_use]
    pub fn system(mut self, sys: SystemConfig) -> Self {
        self.sys = sys;
        self
    }

    /// Captures the run's full event stream (warmup included) to a
    /// `.wpt` file.
    #[must_use]
    pub fn capture_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.capture_to = Some(path.into());
        self
    }

    /// Runs on core 0 and returns the summary.
    ///
    /// # Errors
    ///
    /// Fails on capture I/O errors and on missing/malformed `trace:`
    /// files; plain registry runs without capture cannot fail.
    pub fn run(self) -> Result<RunSummary, wp_trace::TraceError> {
        let (warmup_default, measure_default) = run_budget(&self.app);
        let warmup = self.warmup.unwrap_or(warmup_default);
        let measure = self.measure.unwrap_or(measure_default);
        let bundle = app_bundle(&self.app, self.classification)?;
        let mut cfg = wp_sim::SimConfig::new(self.sys.clone());
        if let Some(path) = self.capture_to {
            cfg = cfg.capture_to(path);
        }
        let mut sim = MultiCoreSim::with_config(cfg, make_scheme(self.kind, &self.sys))?;
        sim.attach(CoreId(0), bundle);
        let out = sim.run_with_warmup(warmup, measure);
        sim.finish_capture()?;
        Ok(out)
    }
}

/// Shared warmup budget of multi-program mixes: enough for the mix's
/// caches and monitors to settle. Replaying a mix capture with this
/// warmup (and the recording's measurement budget) reproduces the
/// original statistics bit for bit.
pub const MIX_WARMUP_INSTRS: u64 = 6_000_000;

/// Base *page* of core `core`'s address space in a multi-program mix:
/// processes are spaced 1 TB apart (far beyond any model's footprint) so
/// pages never collide across cores, as real virtual memory provides.
pub fn mix_base_page(core: usize) -> u64 {
    const TB: u64 = 1 << 40;
    (core as u64 + 1) * (TB / wp_mem::PAGE_BYTES)
}

/// Builds core `core`'s workload bundle for a multi-program mix: a
/// registry model instantiated in that core's [disjoint address
/// space](mix_base_page), or a `trace:<path>` recording (which plays back
/// in the address space it was recorded in).
///
/// # Errors
///
/// Fails only for `trace:` apps whose file is missing or malformed.
pub fn mix_bundle(
    kind: SchemeKind,
    app: &str,
    core: usize,
) -> Result<wp_sim::WorkloadBundle, wp_trace::TraceError> {
    if let Some(path) = registry::trace_path(app) {
        let mut b = wp_sim::trace_bundle(path, 0, kind.uses_pools())?;
        b.name = format!("{}.core{core}", b.name);
        return Ok(b);
    }
    let model = AppModel::new_with_base(registry::spec(app), mix_base_page(core));
    let pools = if kind.uses_pools() {
        model.descriptors_manual()
    } else {
        Vec::new()
    };
    Ok(wp_sim::WorkloadBundle {
        trace: Box::new(model.trace_seeded(0xC0FE + core as u64)),
        pools,
        name: format!("{app}.core{core}"),
    })
}

/// Runs a multi-program mix (one app per core, fixed-work, Appendix A).
/// Whirlpool cores get the manual classification; other schemes ignore
/// it. Apps may be registry names or `trace:<path>` URIs (a trace plays
/// back in the address space it was recorded in).
pub fn run_mix(kind: SchemeKind, apps: &[&str], instrs: u64, sys: SystemConfig) -> RunSummary {
    run_mix_captured(kind, apps, instrs, sys, None)
        .unwrap_or_else(|e| panic!("running mix {apps:?} failed: {e}"))
}

/// [`run_mix`] with an optional capture: with `capture_to` set, every
/// pulled event of every core is recorded to one `.wpt` file (one stream
/// per core, pool tables in the stream headers), so the whole mix can be
/// re-attached later via `trace_tool replay --mix`.
///
/// # Errors
///
/// Fails on capture I/O errors and on missing/malformed `trace:` apps.
pub fn run_mix_captured(
    kind: SchemeKind,
    apps: &[&str],
    instrs: u64,
    sys: SystemConfig,
    capture_to: Option<PathBuf>,
) -> Result<RunSummary, wp_trace::TraceError> {
    assert!(apps.len() <= sys.floorplan.num_cores());
    let mut cfg = wp_sim::SimConfig::new(sys.clone());
    if let Some(path) = capture_to {
        cfg = cfg.capture_to(path);
    }
    let mut sim = MultiCoreSim::with_config(cfg, make_scheme(kind, &sys))?;
    for (i, app) in apps.iter().enumerate() {
        sim.attach(CoreId(i as u16), mix_bundle(kind, app, i)?);
    }
    let out = sim.run_with_warmup(MIX_WARMUP_INSTRS, instrs);
    sim.finish_capture()?;
    Ok(out)
}

/// Result of a parallel-app run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// The simulation summary.
    pub summary: RunSummary,
    /// The task schedule that produced it.
    pub schedule: Schedule,
}

/// Runs a parallel app on the 16-core chip under a scheme and scheduling
/// policy — the four Fig. 13 configurations are
/// `(SNucaLru, WorkStealing)`, `(Jigsaw, WorkStealing)`,
/// `(Jigsaw, Paws)`, and `(Whirlpool, Paws)`.
pub fn run_parallel(kind: SchemeKind, spec: ParallelSpec, policy: SchedPolicy) -> ParallelRun {
    let sys = sixteen_core_config();
    let cores = sys.floorplan.num_cores();
    let app = Arc::new(ParallelApp::new(spec));
    let sched = schedule(&app, cores, policy, 0xBEEF);
    let classification = if kind.uses_pools() {
        ParallelClassification::PerPartition
    } else {
        ParallelClassification::None
    };
    let bundles = core_workloads(&app, &sched, classification);
    let mut sim = MultiCoreSim::new(sys.clone(), make_scheme(kind, &sys));
    for (c, b) in bundles.into_iter().enumerate() {
        sim.attach(CoreId(c as u16), b);
    }
    // Traces are finite; run to exhaustion.
    let summary = sim.run(u64::MAX);
    ParallelRun {
        summary,
        schedule: sched,
    }
}

/// Execution-time proxy for a single-app run: core 0's cycles.
pub fn exec_cycles(s: &RunSummary) -> f64 {
    s.cores[0].cycles
}

/// Execution-time proxy for a parallel run: the slowest core (makespan).
pub fn makespan_cycles(s: &RunSummary) -> f64 {
    s.cores.iter().map(|c| c.cycles).fold(0.0, f64::max)
}

/// Speedup of `new` over `base` in percent (positive = faster).
pub fn speedup_pct(base_cycles: f64, new_cycles: f64) -> f64 {
    (base_cycles / new_cycles - 1.0) * 100.0
}

/// Renders a bank-occupancy map as an ASCII chip diagram (Figs. 3–5):
/// each tile shows the label of its dominant owner.
pub fn render_occupancy(sys: &SystemConfig, occupancy: &[(usize, String, f64)]) -> String {
    let mesh = sys.floorplan.mesh();
    let mut owner: Vec<(String, f64)> = vec![(String::from("."), 0.0); mesh.tiles()];
    for (bank, label, frac) in occupancy {
        if *frac > owner[*bank].1 {
            owner[*bank] = (label.clone(), *frac);
        }
    }
    let width = owner
        .iter()
        .map(|(l, _)| l.len().min(9))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut s = String::new();
    for y in 0..mesh.height() {
        for x in 0..mesh.width() {
            let idx = mesh.index_of(wp_noc::Coord::new(x, y));
            let (label, frac) = &owner[idx];
            let cell = if *frac == 0.0 {
                "-".to_string()
            } else {
                label.chars().take(9).collect()
            };
            s.push_str(&format!("{cell:>w$} ", w = width));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_instantiate() {
        let sys = four_core_config();
        for kind in SchemeKind::FIG10 {
            let s = make_scheme(kind, &sys);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn single_app_run_produces_stats() {
        let out = run_single_app(
            SchemeKind::SNucaLru,
            "delaunay",
            Classification::None,
            500_000,
        );
        // Fixed-work freezes at the first event crossing the target, so a
        // single gap of overshoot is expected.
        assert!(out.cores[0].instructions >= 500_000);
        assert!(out.cores[0].instructions < 501_000);
        assert!(out.cores[0].llc_apki() > 10.0);
        assert!(out.energy.total_nj() > 0.0);
    }

    #[test]
    fn whirlpool_gets_manual_pools() {
        let out = run_single_app(
            SchemeKind::Whirlpool,
            "delaunay",
            Classification::Manual,
            500_000,
        );
        assert_eq!(out.scheme, "Whirlpool");
        assert!(out.cores[0].llc_accesses > 0);
    }

    #[test]
    fn whirltool_classification_runs() {
        let assignment = classify_with_whirltool("delaunay", 3, true);
        assert!(!assignment.is_empty());
        let clusters: std::collections::HashSet<usize> = assignment.values().copied().collect();
        assert!(clusters.len() <= 3);
    }

    #[test]
    fn occupancy_render_has_grid_shape() {
        let sys = four_core_config();
        let occ = vec![(0usize, "points".to_string(), 0.5)];
        let s = render_occupancy(&sys, &occ);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("points"));
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_pct(120.0, 100.0) - 20.0).abs() < 1e-9);
        assert!(speedup_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn scheme_parse_accepts_labels_and_aliases() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(kind.label()), Some(kind));
            assert_eq!(SchemeKind::parse(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(SchemeKind::parse("snuca-lru"), Some(SchemeKind::SNucaLru));
        assert_eq!(
            SchemeKind::parse("SNUCA_DRRIP"),
            Some(SchemeKind::SNucaDrrip)
        );
        assert_eq!(
            SchemeKind::parse("whirlpool nobypass"),
            Some(SchemeKind::WhirlpoolNoBypass)
        );
        assert_eq!(SchemeKind::parse("zcache"), None);
    }

    #[test]
    fn default_classification_matches_pool_use() {
        assert_eq!(
            SchemeKind::Whirlpool.default_classification(),
            Classification::Manual
        );
        assert_eq!(
            SchemeKind::Jigsaw.default_classification(),
            Classification::None
        );
    }

    #[test]
    fn runspec_capture_then_replay_matches() {
        let path =
            std::env::temp_dir().join(format!("wp-harness-capture-{}.wpt", std::process::id()));
        let live = RunSpec::new(SchemeKind::SNucaLru, "delaunay")
            .warmup(100_000)
            .measure(200_000)
            .capture_to(&path)
            .run()
            .unwrap();
        let uri = format!("trace:{}", path.display());
        let replayed = RunSpec::new(SchemeKind::SNucaLru, &uri)
            .warmup(100_000)
            .measure(200_000)
            .run()
            .unwrap();
        assert_eq!(live.to_json(), replayed.to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_trace_file_is_an_error_not_a_panic() {
        let out = RunSpec::new(SchemeKind::SNucaLru, "trace:/nonexistent/x.wpt").run();
        assert!(out.is_err());
    }

    #[test]
    fn mix_address_spaces_are_1tb_apart_and_disjoint() {
        // Regression test for the run_mix spacing: `mix_base_page` is a
        // *page* id, so consecutive cores' byte bases must sit exactly
        // 1 TB apart, and no two per-core bundles' pool page ranges may
        // overlap.
        const TB: u64 = 1 << 40;
        for core in 0..16 {
            let base_bytes = mix_base_page(core) * wp_mem::PAGE_BYTES;
            assert_eq!(base_bytes, (core as u64 + 1) * TB, "core {core} base");
        }
        // The largest-footprint apps in the registry, Whirlpool-classified
        // so every pool's pages are present in the bundles.
        let apps = ["MIS", "lbm", "mcf", "sort"];
        let spans: Vec<(u64, u64)> = apps
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let b = mix_bundle(SchemeKind::Whirlpool, app, i).unwrap();
                assert!(!b.pools.is_empty(), "{app} has pools");
                let pages = b.pools.iter().flat_map(|p| p.pages.iter());
                let lo = pages.clone().map(|p| p.0).min().unwrap();
                let hi = pages.map(|p| p.0).max().unwrap();
                assert!(lo >= mix_base_page(i), "{app} starts in its region");
                (lo, hi)
            })
            .collect();
        for (i, a) in spans.iter().enumerate() {
            for (j, b) in spans.iter().enumerate().skip(i + 1) {
                assert!(
                    a.1 < b.0 || b.1 < a.0,
                    "core {i} pages {a:?} overlap core {j} pages {b:?}"
                );
            }
        }
    }
}
