//! Perf-regression gate over committed `BENCH_*.json` baselines.
//!
//! Each bench smoke (`cargo bench ... -- --json`) writes a single-line
//! JSON report whose top-level `"gate"` object names the throughput
//! metrics CI guards — all oriented so that **bigger is better**
//! (speedups, events per second). [`check_pair`] compares a freshly
//! measured report against the committed baseline metric by metric and
//! flags any that fell below `baseline * (1 - max_regress)`.
//!
//! The workspace vendors no JSON crate, so this module carries a small
//! recursive-descent parser ([`parse`]) covering exactly the JSON the
//! benches emit (objects, arrays, strings with plain escapes, f64
//! numbers, booleans, null).

use std::fmt;
use std::path::Path;

/// A parsed JSON value. Object keys keep file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`, which covers the benches' ranges).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The decoded string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}",
            char::from(ch),
            pos = *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {pos}", char::from(*c))),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", char::from(other))),
                }
            }
            Some(_) => {
                // Copy a run of plain bytes (UTF-8 passes through intact).
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

/// One gate metric compared across baseline and fresh reports.
#[derive(Debug, Clone, PartialEq)]
pub struct GateComparison {
    /// Metric name inside the `gate` object.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Whether the fresh value fell below the tolerance floor.
    pub regressed: bool,
}

impl GateComparison {
    /// `fresh / baseline` — above 1.0 means the fresh run was faster.
    pub fn ratio(&self) -> f64 {
        self.fresh / self.baseline
    }
}

impl fmt::Display for GateComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} baseline {:>12.2}  fresh {:>12.2}  ({:+.1}%){}",
            self.metric,
            self.baseline,
            self.fresh,
            (self.ratio() - 1.0) * 100.0,
            if self.regressed { "  REGRESSED" } else { "" },
        )
    }
}

/// Extracts the `gate` object's numeric metrics from one report.
fn gate_metrics(doc: &Json, label: &str) -> Result<Vec<(String, f64)>, String> {
    let gate = doc
        .get("gate")
        .ok_or_else(|| format!("{label}: no top-level \"gate\" object"))?;
    let Json::Obj(fields) = gate else {
        return Err(format!("{label}: \"gate\" is not an object"));
    };
    let metrics: Vec<(String, f64)> = fields
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect();
    if metrics.is_empty() {
        return Err(format!("{label}: \"gate\" has no numeric metrics"));
    }
    Ok(metrics)
}

/// Compares every gate metric of `baseline` against `fresh`.
///
/// All gate metrics are bigger-is-better; a metric regresses when
/// `fresh < baseline * (1 - max_regress)`. Metrics present in the
/// baseline but missing from the fresh report are an error (a renamed
/// gate must update its committed baseline in the same change).
pub fn check_pair(
    baseline_text: &str,
    fresh_text: &str,
    max_regress: f64,
) -> Result<Vec<GateComparison>, String> {
    let base = parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let fresh = parse(fresh_text).map_err(|e| format!("fresh: {e}"))?;
    let base_gate = gate_metrics(&base, "baseline")?;
    let fresh_gate = gate_metrics(&fresh, "fresh")?;
    base_gate
        .into_iter()
        .map(|(metric, baseline)| {
            let fresh = fresh_gate
                .iter()
                .find(|(k, _)| *k == metric)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("fresh report lacks gate metric \"{metric}\""))?;
            Ok(GateComparison {
                regressed: fresh < baseline * (1.0 - max_regress),
                metric,
                baseline,
                fresh,
            })
        })
        .collect()
}

/// File-level wrapper around [`check_pair`]: reads both reports and tags
/// errors with the offending path.
pub fn check_files(
    baseline: &Path,
    fresh: &Path,
    max_regress: f64,
) -> Result<Vec<GateComparison>, String> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    check_pair(&read(baseline)?, &read(fresh)?, max_regress)
        .map_err(|e| format!("{} vs {}: {e}", baseline.display(), fresh.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":3.5},"e":[]}"#).unwrap();
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_f64(), Some(3.5));
        let Json::Arr(a) = doc.get("a").unwrap() else {
            panic!("a is an array");
        };
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_real_bench_report() {
        let doc = parse(
            r#"{"bench":"mrc_profile","sampled":[{"rate":0.02,"speedup":14.70}],
               "gate":{"sampled_speedup":14.70,"sampled_events_per_sec":26161247}}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("gate").unwrap().get("sampled_speedup").unwrap(),
            &Json::Num(14.70)
        );
    }

    #[test]
    fn within_tolerance_passes() {
        let base = r#"{"gate":{"speedup":5.0,"events_per_sec":1000}}"#;
        let fresh = r#"{"gate":{"speedup":4.0,"events_per_sec":990}}"#;
        let cmp = check_pair(base, fresh, 0.25).unwrap();
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|c| !c.regressed), "{cmp:?}");
    }

    #[test]
    fn regression_beyond_tolerance_flags() {
        let base = r#"{"gate":{"speedup":5.0}}"#;
        let fresh = r#"{"gate":{"speedup":3.4}}"#; // -32%
        let cmp = check_pair(base, fresh, 0.25).unwrap();
        assert!(cmp[0].regressed);
        assert!(cmp[0].ratio() < 0.75);
    }

    #[test]
    fn improvement_never_flags() {
        let base = r#"{"gate":{"speedup":5.0}}"#;
        let fresh = r#"{"gate":{"speedup":50.0}}"#;
        assert!(!check_pair(base, fresh, 0.25).unwrap()[0].regressed);
    }

    #[test]
    fn missing_gate_or_metric_errors() {
        assert!(check_pair(r#"{"bench":"x"}"#, r#"{"gate":{"a":1}}"#, 0.25).is_err());
        let base = r#"{"gate":{"renamed":1.0}}"#;
        let fresh = r#"{"gate":{"old":1.0}}"#;
        let err = check_pair(base, fresh, 0.25).unwrap_err();
        assert!(err.contains("renamed"), "{err}");
    }
}
