//! Quickstart: classify data into pools, run the same app under Jigsaw and
//! Whirlpool, and compare performance and data-movement energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whirlpool::PoolAllocator;
use whirlpool_repro::harness::{
    exec_cycles, run_single_app, speedup_pct, Classification, SchemeKind,
};

fn main() {
    // --- The Whirlpool programmer API (Sec. 3.1) -------------------------
    // Porting an app is a handful of lines: one pool per major structure.
    let mut alloc = PoolAllocator::new();
    let points = alloc.pool_create("points");
    let vertices = alloc.pool_create("vertices");
    let triangles = alloc.pool_create("triangles");
    let _p = alloc.pool_malloc(512 * 1024, points);
    let _v = alloc.pool_malloc(3 * 512 * 1024, vertices);
    let _t = alloc.pool_malloc(4 * 1024 * 1024, triangles);
    println!("created {} pools:", alloc.descriptors().len());
    for d in alloc.descriptors() {
        println!(
            "  {:>10}: {:>5} KB across {} pages",
            d.name,
            d.bytes / 1024,
            d.pages.len()
        );
    }

    // --- Running dt under Jigsaw vs Whirlpool (Sec. 2.1) -----------------
    const INSTRS: u64 = 8_000_000;
    println!("\nrunning dt (Delaunay triangulation) for {INSTRS} instructions...");
    let jig = run_single_app(SchemeKind::Jigsaw, "delaunay", Classification::None, INSTRS);
    let wp = run_single_app(
        SchemeKind::Whirlpool,
        "delaunay",
        Classification::Manual,
        INSTRS,
    );

    println!(
        "\n{:<12} {:>12} {:>10} {:>10} {:>12}",
        "scheme", "cycles", "LLC APKI", "MPKI", "energy nJ/KI"
    );
    for s in [&jig, &wp] {
        println!(
            "{:<12} {:>12.0} {:>10.1} {:>10.2} {:>12.2}",
            s.scheme,
            s.cores[0].cycles,
            s.cores[0].llc_apki(),
            s.cores[0].llc_mpki(),
            s.energy_per_ki(),
        );
    }
    println!(
        "\nWhirlpool speedup over Jigsaw: {:+.1}%  |  energy: {:+.1}%",
        speedup_pct(exec_cycles(&jig), exec_cycles(&wp)),
        (wp.energy_per_ki() / jig.energy_per_ki() - 1.0) * 100.0,
    );
}
