//! Trace capture and replay: record a live run to a `.wpt` file, inspect
//! it, and replay it bit-identically through other schemes.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use whirlpool_repro::harness::{RunSpec, SchemeKind};
use wp_trace::TraceInfo;

fn main() {
    let path = std::env::temp_dir().join(format!("wp-example-{}.wpt", std::process::id()));
    const WARMUP: u64 = 1_000_000;
    const MEASURE: u64 = 2_000_000;

    // --- Capture: any run can be recorded (Sec. "trace-driven") ---------
    println!(
        "capturing delaunay under Whirlpool to {} ...",
        path.display()
    );
    let live = RunSpec::new(SchemeKind::Whirlpool, "delaunay")
        .warmup(WARMUP)
        .measure(MEASURE)
        .capture_to(&path)
        .run()
        .expect("capture");

    let info = TraceInfo::scan(&path).expect("scan");
    println!(
        "  {} events in {} bytes ({:.2} bytes/event, {:.2}x smaller than naive)",
        info.total_events(),
        info.file_bytes,
        info.file_bytes as f64 / info.total_events() as f64,
        info.compression_ratio(),
    );
    for p in &info.streams[0].meta.pools {
        println!("  recorded pool '{}' ({} KB)", p.name, p.bytes / 1024);
    }

    // --- Replay: the same trace through the same scheme is bit-identical.
    let uri = format!("trace:{}", path.display());
    let replayed = RunSpec::new(SchemeKind::Whirlpool, &uri)
        .warmup(WARMUP)
        .measure(MEASURE)
        .run()
        .expect("replay");
    println!(
        "\nreplay determinism: live == replay is {}",
        live.to_json() == replayed.to_json()
    );

    // --- And through every other scheme, no model required. -------------
    println!("\nthe recorded trace under the Fig. 10 schemes:");
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "scheme", "mpki", "bpki", "nJ/KI"
    );
    for kind in SchemeKind::FIG10 {
        let out = RunSpec::new(kind, &uri)
            .warmup(WARMUP)
            .measure(MEASURE)
            .run()
            .expect("replay");
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>8.1}",
            out.scheme,
            out.cores[0].llc_mpki(),
            out.cores[0].llc_bpki(),
            out.energy_per_ki(),
        );
    }
    std::fs::remove_file(&path).ok();
}
