//! The mis (maximal independent set) case study of Fig. 9/10: manual
//! classification separates cache-friendly vertices from streaming edges,
//! and Whirlpool's dynamic policies give the cache to vertices while
//! bypassing edges entirely.
//!
//! ```sh
//! cargo run --release --example manual_pools
//! ```

use whirlpool_repro::harness::{
    exec_cycles, four_core_config, render_occupancy, run_single_app, run_single_app_with,
    speedup_pct, Classification, SchemeKind,
};

fn main() {
    const INSTRS: u64 = 6_000_000;
    println!("mis across all six schemes ({INSTRS} instructions each):\n");
    println!(
        "{:<12} {:>12} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "scheme", "cycles", "APKI", "hits/KI", "miss/KI", "byp/KI", "energy nJ/KI"
    );
    let mut jig_cycles = 0.0;
    let mut wp_cycles = 0.0;
    for kind in whirlpool_repro::harness::SchemeKind::FIG10 {
        let classification = if kind.uses_pools() {
            Classification::Manual
        } else {
            Classification::None
        };
        let out = run_single_app(kind, "MIS", classification, INSTRS);
        let c = &out.cores[0];
        println!(
            "{:<12} {:>12.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>12.2}",
            out.scheme,
            c.cycles,
            c.llc_apki(),
            c.llc_hpki(),
            c.llc_mpki(),
            c.llc_bpki(),
            out.energy_per_ki(),
        );
        if kind == SchemeKind::Jigsaw {
            jig_cycles = exec_cycles(&out);
        }
        if kind == SchemeKind::Whirlpool {
            wp_cycles = exec_cycles(&out);
        }
    }
    println!(
        "\nWhirlpool over Jigsaw on mis: {:+.1}% (the paper reports +38%)",
        speedup_pct(jig_cycles, wp_cycles)
    );

    // Show where Whirlpool put the data (the Fig. 5-style map).
    let sys = four_core_config();
    let out = run_single_app_with(
        SchemeKind::Whirlpool,
        "MIS",
        Classification::Manual,
        INSTRS,
        sys.clone(),
    );
    let _ = out;
    println!("\n(see fig05_dt_placement in wp-bench for the dt placement maps)");
    let occ: Vec<(usize, String, f64)> = vec![];
    let _ = render_occupancy(&sys, &occ);
}
