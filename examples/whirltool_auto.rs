//! WhirlTool end to end on an unmodified app (Sec. 4): profile on the
//! train input, cluster callpoints into pools, run on the ref input, and
//! compare with the manual classification.
//!
//! ```sh
//! cargo run --release --example whirltool_auto
//! ```

use std::collections::HashMap;

use whirlpool_repro::harness::{
    exec_cycles, run_single_app, speedup_pct, Classification, SchemeKind,
};
use wp_mem::{CallpointId, PageId};
use wp_whirltool::{cluster, profile, ProfilerConfig};
use wp_workloads::{registry, AppModel};

fn main() {
    let app = "delaunay";
    println!("WhirlTool pipeline on {app} (unmodified binary):\n");

    // 1. Profile the training input, recording per-callpoint curves.
    let model = AppModel::new(registry::train_spec(app));
    let page_map: HashMap<PageId, CallpointId> = model
        .callpoints()
        .iter()
        .flat_map(|(cp, _, pages)| pages.iter().map(move |p| (*p, *cp)))
        .collect();
    let mut trace = model.trace();
    let data = profile(
        &mut trace,
        &page_map,
        ProfilerConfig {
            interval_instrs: 2_000_000,
            total_instrs: 10_000_000,
            granule_lines: 1024,
            curve_points: 201,
            sample: None,
        },
    );
    println!(
        "profiled {} callpoints over {} intervals ({} KB of curves)",
        data.callpoints.len(),
        data.intervals.len(),
        data.size_bytes() / 1024,
    );

    // 2. Agglomeratively cluster callpoints (the Fig. 17 dendrogram).
    let tree = cluster(&data, 200);
    println!("\ndendrogram:\n{}", tree.render());

    // 3. Run with 2, 3, 4 pools vs Jigsaw and the manual port (Fig. 16).
    const INSTRS: u64 = 6_000_000;
    let jig = run_single_app(SchemeKind::Jigsaw, app, Classification::None, INSTRS);
    println!(
        "{:<22} {:>12}  {:>9}",
        "configuration", "cycles", "vs Jigsaw"
    );
    println!(
        "{:<22} {:>12.0}  {:>8.1}%",
        "Jigsaw",
        exec_cycles(&jig),
        0.0
    );
    for pools in [2usize, 3, 4] {
        let wt = run_single_app(
            SchemeKind::Whirlpool,
            app,
            Classification::WhirlTool { pools, train: true },
            INSTRS,
        );
        println!(
            "{:<22} {:>12.0}  {:>8.1}%",
            format!("WhirlTool ({pools} pools)"),
            exec_cycles(&wt),
            speedup_pct(exec_cycles(&jig), exec_cycles(&wt)),
        );
    }
    let manual = run_single_app(SchemeKind::Whirlpool, app, Classification::Manual, INSTRS);
    println!(
        "{:<22} {:>12.0}  {:>8.1}%",
        "manual (Table 2)",
        exec_cycles(&manual),
        speedup_pct(exec_cycles(&jig), exec_cycles(&manual)),
    );
}
