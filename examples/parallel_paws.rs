//! Partitioned work-stealing (PaWS) with Whirlpool on the 16-core chip
//! (Sec. 3.4, Fig. 13): data partitioned per core, tasks enqueued at their
//! data's home, nearby stealing, and one memory pool per partition.
//!
//! ```sh
//! cargo run --release --example parallel_paws
//! ```

use whirlpool_repro::harness::{makespan_cycles, speedup_pct, Experiment, SchemeKind};
use wp_paws::SchedPolicy;
use wp_workloads::parallel::parallel_apps;

fn main() {
    let specs = parallel_apps(16, 42);
    let app = specs
        .into_iter()
        .find(|s| s.name == "pagerank")
        .expect("pagerank exists");
    println!(
        "pagerank on 16 cores: {} partitions x {} KB, remote fraction {:.2}\n",
        app.partitions,
        app.bytes_per_partition / 1024,
        app.remote_frac
    );

    let configs = [
        ("S-NUCA", SchemeKind::SNucaLru, SchedPolicy::WorkStealing),
        ("Jigsaw", SchemeKind::Jigsaw, SchedPolicy::WorkStealing),
        ("Jigsaw + PaWS", SchemeKind::Jigsaw, SchedPolicy::Paws),
        ("Whirlpool + PaWS", SchemeKind::Whirlpool, SchedPolicy::Paws),
    ];
    let mut baseline = 0.0f64;
    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "config", "makespan", "vs Jigsaw", "energy nJ/KI", "home-frac", "steals"
    );
    let mut jigsaw_makespan = 0.0;
    for (label, kind, policy) in configs {
        let run = Experiment::parallel(kind, app.clone(), policy)
            .run_full()
            .unwrap_or_else(|e| panic!("{label} failed: {e}"));
        let sched = run.schedule.expect("parallel runs carry a schedule");
        let mk = makespan_cycles(&run.summary);
        if label == "Jigsaw" {
            jigsaw_makespan = mk;
        }
        if baseline == 0.0 {
            baseline = mk;
        }
        let vs = if jigsaw_makespan > 0.0 {
            speedup_pct(jigsaw_makespan, mk)
        } else {
            0.0
        };
        println!(
            "{:<18} {:>12.0} {:>9.1}% {:>12.2} {:>10.2} {:>8}",
            label,
            mk,
            vs,
            run.summary.energy_per_ki(),
            sched.home_fraction(),
            sched.steals,
        );
    }
    println!("\n(paper: J+PaWS ~+19% on pagerank; W+PaWS adds pool placement on top)");
}
