//! The page → virtual-cache tag mapping (the TLB-resident classification).

use std::collections::HashMap;

use crate::addr::{PageId, VirtAddr, PAGE_BYTES};

/// A virtual-cache identifier, as carried in page-table entries / the TLB.
///
/// Jigsaw reserves three VCs per context (thread-private, process, global);
/// Whirlpool adds user-level VCs, one per memory pool (Sec. 3.2). Id
/// allocation and semantics live in `wp-jigsaw` / `whirlpool`; this crate
/// only stores the tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VcId(pub u32);

/// A page table mapping pages to VC tags.
///
/// Pages without an explicit tag report `None`; the memory system maps such
/// pages to the accessing thread's private VC (the paper's lazy-upgrade
/// default).
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    tags: HashMap<PageId, VcId>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tags one page.
    pub fn tag_page(&mut self, page: PageId, vc: VcId) {
        self.tags.insert(page, vc);
    }

    /// Tags every page overlapping `[start, start + len)` — the
    /// `sys_vc_tag` system call. Zero-length ranges tag nothing.
    pub fn tag_range(&mut self, start: VirtAddr, len: u64, vc: VcId) {
        if len == 0 {
            return;
        }
        let first = start.page().0;
        let last = VirtAddr(start.0 + len - 1).page().0;
        for p in first..=last {
            self.tags.insert(PageId(p), vc);
        }
    }

    /// Removes the tag of every page overlapping the range, returning how
    /// many pages were untagged.
    pub fn untag_range(&mut self, start: VirtAddr, len: u64) -> usize {
        if len == 0 {
            return 0;
        }
        let first = start.page().0;
        let last = VirtAddr(start.0 + len - 1).page().0;
        let mut n = 0;
        for p in first..=last {
            if self.tags.remove(&PageId(p)).is_some() {
                n += 1;
            }
        }
        n
    }

    /// The VC tag of a page, if any.
    pub fn vc_of_page(&self, page: PageId) -> Option<VcId> {
        self.tags.get(&page).copied()
    }

    /// The VC tag of the page containing `addr`, if any.
    pub fn vc_of_addr(&self, addr: VirtAddr) -> Option<VcId> {
        self.vc_of_page(addr.page())
    }

    /// Retags every page currently tagged `from` to `to`, returning the
    /// count (used when pools are remapped to different VCs).
    pub fn retag_all(&mut self, from: VcId, to: VcId) -> usize {
        let mut n = 0;
        for tag in self.tags.values_mut() {
            if *tag == from {
                *tag = to;
                n += 1;
            }
        }
        n
    }

    /// Number of explicitly tagged pages.
    pub fn tagged_pages(&self) -> usize {
        self.tags.len()
    }

    /// Total bytes tagged with `vc`.
    pub fn bytes_tagged(&self, vc: VcId) -> u64 {
        self.tags.values().filter(|&&t| t == vc).count() as u64 * PAGE_BYTES
    }

    /// Iterates `(page, tag)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, VcId)> + '_ {
        self.tags.iter().map(|(&p, &v)| (p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_range_covers_partial_pages() {
        let mut pt = PageTable::new();
        // 100 bytes starting 50 bytes before a page boundary: 2 pages.
        pt.tag_range(VirtAddr(PAGE_BYTES - 50), 100, VcId(3));
        assert_eq!(pt.vc_of_page(PageId(0)), Some(VcId(3)));
        assert_eq!(pt.vc_of_page(PageId(1)), Some(VcId(3)));
        assert_eq!(pt.vc_of_page(PageId(2)), None);
        assert_eq!(pt.tagged_pages(), 2);
    }

    #[test]
    fn zero_length_tags_nothing() {
        let mut pt = PageTable::new();
        pt.tag_range(VirtAddr(0), 0, VcId(1));
        assert_eq!(pt.tagged_pages(), 0);
    }

    #[test]
    fn untag_and_retag() {
        let mut pt = PageTable::new();
        pt.tag_range(VirtAddr(0), 3 * PAGE_BYTES, VcId(1));
        assert_eq!(pt.retag_all(VcId(1), VcId(2)), 3);
        assert_eq!(pt.vc_of_addr(VirtAddr(5000)), Some(VcId(2)));
        assert_eq!(pt.untag_range(VirtAddr(0), PAGE_BYTES), 1);
        assert_eq!(pt.vc_of_page(PageId(0)), None);
        assert_eq!(pt.tagged_pages(), 2);
    }

    #[test]
    fn bytes_tagged_counts_pages() {
        let mut pt = PageTable::new();
        pt.tag_range(VirtAddr(0), 2 * PAGE_BYTES, VcId(9));
        pt.tag_range(VirtAddr(10 * PAGE_BYTES), PAGE_BYTES, VcId(9));
        pt.tag_range(VirtAddr(20 * PAGE_BYTES), PAGE_BYTES, VcId(4));
        assert_eq!(pt.bytes_tagged(VcId(9)), 3 * PAGE_BYTES);
    }

    #[test]
    fn later_tag_wins() {
        let mut pt = PageTable::new();
        pt.tag_page(PageId(5), VcId(1));
        pt.tag_page(PageId(5), VcId(2));
        assert_eq!(pt.vc_of_page(PageId(5)), Some(VcId(2)));
    }
}
