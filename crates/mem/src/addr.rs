//! Address-space newtypes and layout constants.

/// Bytes per cache line (Table 3).
pub const LINE_BYTES: u64 = 64;

/// Bytes per virtual-memory page.
pub const PAGE_BYTES: u64 = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// A byte-granularity virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u64);

/// A cache-line address (virtual address >> 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

/// A page number (virtual address >> 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl VirtAddr {
    /// The line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// This address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl LineAddr {
    /// First byte of the line.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    pub fn page(self) -> PageId {
        PageId(self.0 / LINES_PER_PAGE)
    }
}

impl PageId {
    /// First byte of the page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_BYTES)
    }

    /// First line of the page.
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 * LINES_PER_PAGE)
    }
}

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_extraction() {
        let a = VirtAddr(0x12345);
        assert_eq!(a.line(), LineAddr(0x12345 / 64));
        assert_eq!(a.page(), PageId(0x12));
        assert_eq!(a.page_offset(), 0x345);
    }

    #[test]
    fn lines_per_page_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        let p = PageId(7);
        assert_eq!(p.first_line().page(), p);
        assert_eq!(p.base().page(), p);
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr(1234);
        assert_eq!(l.base().line(), l);
    }
}
