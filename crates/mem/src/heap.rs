//! The pool-aware heap allocator.
//!
//! Models Whirlpool's allocator (built on Doug Lea's malloc in the paper,
//! Sec. 3.2): a region allocator in which every *pool* owns whole pages, so
//! a page belongs to exactly one pool (or none) at a time — the invariant
//! that lets the virtual-memory system classify data. Each allocation also
//! records its *callpoint* (the hash of the two innermost allocation-site
//! frames), the identity WhirlTool's profiler keys on (Sec. 4.1).

use std::collections::HashMap;

use crate::addr::{PageId, VirtAddr, PAGE_BYTES};

/// Identifies a memory pool created with [`Heap::create_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(pub u32);

/// Identifies an allocation callpoint: the paper hashes the last two return
/// PCs of the allocation call stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallpointId(pub u64);

impl CallpointId {
    /// Builds a callpoint id from the two innermost return PCs, as the
    /// WhirlTool profiler does when walking the stack.
    pub fn from_return_pcs(pc0: u64, pc1: u64) -> Self {
        // 64-bit FNV-1a over the two PCs.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in pc0.to_le_bytes().iter().chain(pc1.to_le_bytes().iter()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }
}

/// One live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First byte.
    pub addr: VirtAddr,
    /// Requested size in bytes.
    pub size: u64,
    /// Owning pool (`None` = default, untagged heap).
    pub pool: Option<PoolId>,
    /// Allocation site.
    pub callpoint: CallpointId,
}

#[derive(Debug, Default)]
struct PoolArena {
    /// Current partially-filled extent: next free byte and end.
    bump: u64,
    end: u64,
    /// Pages owned by this pool.
    pages: Vec<PageId>,
    /// Bytes handed out.
    allocated_bytes: u64,
}

/// The pool-aware heap.
///
/// Addresses are virtual and never reused across pools: extents are carved
/// from a single upward-growing address space, whole pages at a time, so
/// page exclusivity holds by construction. `free` returns space to the
/// pool's accounting but (like many region allocators) does not recycle
/// addresses across pools — exactly the property Whirlpool needs.
#[derive(Debug)]
pub struct Heap {
    next_page: u64,
    pools: HashMap<Option<PoolId>, PoolArena>,
    next_pool: u32,
    allocations: HashMap<u64, Allocation>,
    page_owner: HashMap<PageId, Option<PoolId>>,
}

/// Default extent growth: 16 pages (64 KB) at a time, amortizing page
/// acquisition like dlmalloc's top-chunk growth.
const EXTENT_PAGES: u64 = 16;

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap starting at a nonzero base (so address 0 is
    /// never valid, catching null-ish bugs in traces).
    pub fn new() -> Self {
        Self::with_base_page(16) // base = 64 KB
    }

    /// Creates a heap whose first extent starts at `base_page` — distinct
    /// processes in multi-program runs get disjoint address spaces, as real
    /// virtual memory provides.
    pub fn with_base_page(base_page: u64) -> Self {
        Self {
            next_page: base_page.max(1),
            pools: HashMap::new(),
            next_pool: 1,
            allocations: HashMap::new(),
            page_owner: HashMap::new(),
        }
    }

    /// `pool_create()`: returns a fresh pool id.
    pub fn create_pool(&mut self) -> PoolId {
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        self.pools.entry(Some(id)).or_default();
        id
    }

    /// `pool_malloc(size, pool)`: allocates `size` bytes from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the pool was never created.
    pub fn pool_malloc(&mut self, size: u64, pool: PoolId, callpoint: CallpointId) -> VirtAddr {
        assert!(
            self.pools.contains_key(&Some(pool)),
            "pool {pool:?} was never created"
        );
        self.alloc_in(size, Some(pool), callpoint)
    }

    /// `malloc(size)`: allocates from the default (untagged) heap.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn malloc(&mut self, size: u64, callpoint: CallpointId) -> VirtAddr {
        self.alloc_in(size, None, callpoint)
    }

    /// `pool_calloc`: same as [`pool_malloc`](Self::pool_malloc) (the
    /// simulation carries no data, so zeroing is a no-op).
    pub fn pool_calloc(
        &mut self,
        count: u64,
        elem_size: u64,
        pool: PoolId,
        callpoint: CallpointId,
    ) -> VirtAddr {
        self.pool_malloc(count * elem_size, pool, callpoint)
    }

    /// `pool_realloc`: allocates a new block in `pool` and frees the old
    /// one; returns the new address.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a live allocation.
    pub fn pool_realloc(
        &mut self,
        old: VirtAddr,
        new_size: u64,
        pool: PoolId,
        callpoint: CallpointId,
    ) -> VirtAddr {
        self.free(old);
        self.pool_malloc(new_size, pool, callpoint)
    }

    fn alloc_in(&mut self, size: u64, pool: Option<PoolId>, callpoint: CallpointId) -> VirtAddr {
        assert!(size > 0, "zero-byte allocation");
        let size_aligned = (size + 15) & !15;
        // Reserve new pages if the current extent cannot fit the request.
        let arena = self.pools.entry(pool).or_default();
        if arena.end - arena.bump < size_aligned {
            let pages_needed = size_aligned.div_ceil(PAGE_BYTES).max(EXTENT_PAGES);
            let first = self.next_page;
            self.next_page += pages_needed;
            let arena = self.pools.get_mut(&pool).expect("just inserted");
            arena.bump = first * PAGE_BYTES;
            arena.end = (first + pages_needed) * PAGE_BYTES;
            for p in first..first + pages_needed {
                arena.pages.push(PageId(p));
                let prev = self.page_owner.insert(PageId(p), pool);
                debug_assert!(prev.is_none(), "page handed out twice");
            }
        }
        let arena = self.pools.get_mut(&pool).expect("arena exists");
        let addr = VirtAddr(arena.bump);
        arena.bump += size_aligned;
        arena.allocated_bytes += size;
        self.allocations.insert(
            addr.0,
            Allocation {
                addr,
                size,
                pool,
                callpoint,
            },
        );
        addr
    }

    /// Frees a live allocation.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation (double free / wild free).
    pub fn free(&mut self, addr: VirtAddr) {
        let alloc = self
            .allocations
            .remove(&addr.0)
            .unwrap_or_else(|| panic!("free of non-live address {addr}"));
        if let Some(arena) = self.pools.get_mut(&alloc.pool) {
            arena.allocated_bytes = arena.allocated_bytes.saturating_sub(alloc.size);
        }
    }

    /// The pool owning the page containing `addr` (`None` for the default
    /// heap or unmapped addresses).
    pub fn pool_of_addr(&self, addr: VirtAddr) -> Option<PoolId> {
        self.page_owner.get(&addr.page()).copied().flatten()
    }

    /// The pool owning `page`, if the page was ever handed out.
    pub fn owner_of_page(&self, page: PageId) -> Option<Option<PoolId>> {
        self.page_owner.get(&page).copied()
    }

    /// Pages owned by `pool` (in allocation order).
    pub fn pages_of_pool(&self, pool: PoolId) -> &[PageId] {
        self.pools
            .get(&Some(pool))
            .map(|a| a.pages.as_slice())
            .unwrap_or(&[])
    }

    /// Live bytes allocated from `pool`.
    pub fn pool_live_bytes(&self, pool: PoolId) -> u64 {
        self.pools
            .get(&Some(pool))
            .map(|a| a.allocated_bytes)
            .unwrap_or(0)
    }

    /// The live allocation starting at `addr`, if any.
    pub fn allocation_at(&self, addr: VirtAddr) -> Option<&Allocation> {
        self.allocations.get(&addr.0)
    }

    /// Iterates all live allocations in unspecified order.
    pub fn allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.allocations.values()
    }

    /// Number of pools ever created.
    pub fn pool_count(&self) -> u32 {
        self.next_pool - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CP: CallpointId = CallpointId(1);

    #[test]
    fn pools_never_share_pages() {
        let mut h = Heap::new();
        let p1 = h.create_pool();
        let p2 = h.create_pool();
        let mut pages1 = std::collections::HashSet::new();
        let mut pages2 = std::collections::HashSet::new();
        for i in 0..200 {
            let a = h.pool_malloc(100 + i, p1, CP);
            pages1.insert(a.page());
            let b = h.pool_malloc(300, p2, CP);
            pages2.insert(b.page());
        }
        assert!(pages1.is_disjoint(&pages2), "page shared between pools");
    }

    #[test]
    fn default_heap_is_unpooled() {
        let mut h = Heap::new();
        let a = h.malloc(64, CP);
        assert_eq!(h.pool_of_addr(a), None);
    }

    #[test]
    fn pool_of_addr_resolves_interior_pointers() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let a = h.pool_malloc(10 * PAGE_BYTES, p, CP);
        assert_eq!(h.pool_of_addr(a.offset(5 * PAGE_BYTES + 17)), Some(p));
    }

    #[test]
    fn allocations_are_16_byte_aligned_and_disjoint() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let mut prev_end = 0u64;
        for sz in [1u64, 15, 16, 17, 100, 4096, 5000] {
            let a = h.pool_malloc(sz, p, CP);
            assert_eq!(a.0 % 16, 0, "misaligned");
            assert!(a.0 >= prev_end, "overlap");
            prev_end = a.0 + sz;
        }
    }

    #[test]
    fn free_and_live_bytes() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let a = h.pool_malloc(1000, p, CP);
        h.pool_malloc(500, p, CP);
        assert_eq!(h.pool_live_bytes(p), 1500);
        h.free(a);
        assert_eq!(h.pool_live_bytes(p), 500);
    }

    #[test]
    #[should_panic(expected = "free of non-live")]
    fn double_free_panics() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let a = h.pool_malloc(8, p, CP);
        h.free(a);
        h.free(a);
    }

    #[test]
    #[should_panic(expected = "never created")]
    fn malloc_from_unknown_pool_panics() {
        let mut h = Heap::new();
        h.pool_malloc(8, PoolId(99), CP);
    }

    #[test]
    fn realloc_moves_and_preserves_pool() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let a = h.pool_malloc(100, p, CP);
        let b = h.pool_realloc(a, 10_000, p, CP);
        assert_ne!(a, b);
        assert_eq!(h.pool_of_addr(b), Some(p));
        assert!(h.allocation_at(a).is_none());
    }

    #[test]
    fn callpoints_recorded() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let cp = CallpointId::from_return_pcs(0x400_123, 0x400_456);
        let a = h.pool_malloc(64, p, cp);
        assert_eq!(h.allocation_at(a).unwrap().callpoint, cp);
    }

    #[test]
    fn callpoint_hash_distinguishes_sites() {
        let a = CallpointId::from_return_pcs(0x400_123, 0x400_456);
        let b = CallpointId::from_return_pcs(0x400_123, 0x400_457);
        assert_ne!(a, b);
    }

    #[test]
    fn big_allocation_spans_whole_extent() {
        let mut h = Heap::new();
        let p = h.create_pool();
        let a = h.pool_malloc(100 * PAGE_BYTES, p, CP);
        // All 100 pages owned by the pool.
        for i in 0..100 {
            assert_eq!(h.pool_of_addr(a.offset(i * PAGE_BYTES)), Some(p));
        }
    }
}
