//! Simulated virtual memory and pool-aware allocation.
//!
//! Whirlpool classifies data at page granularity: its allocator ensures
//! every page belongs to at most one *memory pool*, and the virtual-memory
//! system (page table / TLB) tags each page with the virtual cache (VC) that
//! caches it (Sec. 3.1–3.2). This crate provides those substrates:
//!
//! * address-space newtypes and constants ([`VirtAddr`], [`PageId`],
//!   [`LineAddr`], [`PAGE_BYTES`]),
//! * [`PageTable`] — page → VC-tag mapping with range tagging (the
//!   `sys_vc_tag` / modified `sys_mmap` equivalent),
//! * [`Heap`] — a region-based, pool-aware memory allocator in the spirit
//!   of Doug Lea's malloc, guaranteeing page-exclusive pools and recording
//!   the *callpoint* of every allocation for WhirlTool's profiler.
//!
//! # Example
//!
//! ```
//! use wp_mem::{CallpointId, Heap, PoolId};
//!
//! let mut heap = Heap::new();
//! let pool = heap.create_pool();
//! let a = heap.pool_malloc(4096, pool, CallpointId(0xABC));
//! let b = heap.pool_malloc(128, pool, CallpointId(0xABC));
//! assert_ne!(a.0, b.0);
//! assert_eq!(heap.pool_of_addr(a), Some(pool));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod heap;
mod pagetable;

pub use addr::{LineAddr, PageId, VirtAddr, LINES_PER_PAGE, LINE_BYTES, PAGE_BYTES};
pub use heap::{Allocation, CallpointId, Heap, PoolId};
pub use pagetable::{PageTable, VcId};
