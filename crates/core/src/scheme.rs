//! The Whirlpool LLC scheme.

use wp_jigsaw::{NucaConfig, NucaRuntime};
use wp_noc::CoreId;
use wp_sim::{AccessContext, LlcResponse, LlcScheme, PoolDescriptor, SystemConfig, Uncore};

/// Whirlpool: the shared NUCA runtime with per-pool VCs and bypassing.
///
/// "Whirlpool extends Jigsaw to support static classification of data into
/// pools by building VCs for each pool. We make small modifications to
/// Jigsaw … but do not modify its core hardware mechanisms or software
/// reconfiguration runtime." (Sec. 2.4) — accordingly, this type is a thin
/// configuration of [`wp_jigsaw::NucaRuntime`].
#[derive(Debug)]
pub struct WhirlpoolScheme(NucaRuntime);

impl WhirlpoolScheme {
    /// Whirlpool with VC bypassing (the paper's default).
    pub fn new(sys: SystemConfig) -> Self {
        let cfg = NucaConfig::for_system(&sys, true, true);
        Self(NucaRuntime::new(sys, cfg, "Whirlpool"))
    }

    /// Whirlpool without bypassing (the Fig. 21/22 ablation).
    pub fn without_bypass(sys: SystemConfig) -> Self {
        let cfg = NucaConfig::for_system(&sys, true, false);
        Self(NucaRuntime::new(sys, cfg, "Whirlpool-NoBypass"))
    }

    /// Whirlpool with a custom runtime configuration (ablations: pool
    /// budget, monitor resolution, …).
    pub fn with_config(sys: SystemConfig, mut cfg: NucaConfig) -> Self {
        cfg.per_pool_vcs = true;
        Self(NucaRuntime::new(sys, cfg, "Whirlpool"))
    }

    /// The inner runtime, for instrumentation (allocation traces, VC
    /// states — Figs. 8, 9, 11).
    pub fn runtime(&self) -> &NucaRuntime {
        &self.0
    }
}

impl LlcScheme for WhirlpoolScheme {
    fn name(&self) -> String {
        self.0.name()
    }

    fn attach_core(&mut self, core: CoreId, pools: &[PoolDescriptor]) {
        self.0.attach_core(core, pools);
    }

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        self.0.access(ctx, uncore)
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        self.0.reconfigure(uncore);
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        self.0.bank_occupancy()
    }

    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        self.0.pool_occupancy()
    }

    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        self.0.reconfig_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::{LineAddr, PoolId};
    use wp_sim::LlcOutcome;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn pool(name: &str, id: u32, first_page: u64, pages: u64) -> PoolDescriptor {
        PoolDescriptor {
            name: name.into(),
            pool: Some(PoolId(id)),
            pages: (first_page..first_page + pages)
                .map(wp_mem::PageId)
                .collect(),
            bytes: pages * 4096,
        }
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn per_pool_vcs_are_created() {
        let mut w = WhirlpoolScheme::new(sys());
        w.attach_core(
            CoreId(0),
            &[pool("vertices", 1, 100, 16), pool("edges", 2, 200, 64)],
        );
        // process + thread0 + 2 pools
        assert_eq!(w.runtime().vcs().len(), 4);
    }

    #[test]
    fn mis_like_bypass_of_streaming_edges() {
        // The Fig. 9/10 behaviour: vertices cache well and get capacity;
        // edges stream and end up bypassed.
        let mut w = WhirlpoolScheme::new(sys());
        let mut u = Uncore::new(sys());
        // vertices: 1 MB = 256 pages at page 1000; edges: big, at 10000.
        w.attach_core(
            CoreId(0),
            &[
                pool("vertices", 1, 1000, 256),
                pool("edges", 2, 10_000, 4096),
            ],
        );
        let vline = |i: u64| 1000 * 64 + (i % 16_384); // within vertices pages
        let eline = |i: u64| 10_000 * 64 + i; // streaming through edges
        let mut e = 0u64;
        for _ in 0..2 {
            for i in 0..120_000u64 {
                w.access(ctx(0, vline(i)), &mut u);
                w.access(ctx(0, eline(e)), &mut u);
                e += 1;
            }
            u.interval_instructions[0] = 2_000_000;
            w.reconfigure(&mut u);
        }
        let allocs = w.runtime().allocations();
        let vertices = allocs.iter().find(|(n, _, _)| n == "vertices").unwrap();
        let edges = allocs.iter().find(|(n, _, _)| n == "edges").unwrap();
        assert!(vertices.1 > 0, "vertices should get capacity");
        assert!(!vertices.2, "vertices must not be bypassed");
        assert!(edges.2, "edges should be bypassed");
        // And a streaming access now bypasses.
        let r = w.access(ctx(0, eline(e)), &mut u);
        assert_eq!(r.outcome, LlcOutcome::Bypass);
    }

    #[test]
    fn no_bypass_variant_never_bypasses() {
        let mut w = WhirlpoolScheme::without_bypass(sys());
        let mut u = Uncore::new(sys());
        w.attach_core(CoreId(0), &[pool("edges", 1, 10_000, 4096)]);
        let mut e = 0u64;
        for _ in 0..2 {
            for _ in 0..100_000u64 {
                w.access(ctx(0, 10_000 * 64 + e), &mut u);
                e += 1;
            }
            u.interval_instructions[0] = 1_000_000;
            w.reconfigure(&mut u);
        }
        assert!(w.runtime().allocations().iter().all(|(_, _, b)| !b));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(WhirlpoolScheme::new(sys()).name(), "Whirlpool");
        assert_eq!(
            WhirlpoolScheme::without_bypass(sys()).name(),
            "Whirlpool-NoBypass"
        );
    }
}
