//! The manual classifications of Table 2.
//!
//! The paper hand-ports 12 applications to the pool API; this module
//! records those classifications (pools, key data structures, and the
//! lines of code changed) both as documentation and as the source of truth
//! for the manually-classified workload models and the `table2` harness.

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManualClassification {
    /// Application (reported name).
    pub app: &'static str,
    /// Short key used by the workload registry.
    pub key: &'static str,
    /// Number of pools used by the manual port.
    pub pools: usize,
    /// The data structures assigned to pools.
    pub data_structures: &'static [&'static str],
    /// Lines of code modified while porting.
    pub loc_changed: usize,
}

/// Table 2, verbatim.
pub const TABLE2: &[ManualClassification] = &[
    ManualClassification {
        app: "Breadth-first search",
        key: "BFS",
        pools: 4,
        data_structures: &["vertices", "edges", "frontier", "visited"],
        loc_changed: 16,
    },
    ManualClassification {
        app: "Delaunay triangulation",
        key: "delaunay",
        pools: 3,
        data_structures: &["points", "vertices", "triangles"],
        loc_changed: 11,
    },
    ManualClassification {
        app: "Maximal matching",
        key: "matching",
        pools: 3,
        data_structures: &["vertices", "edges", "result"],
        loc_changed: 13,
    },
    ManualClassification {
        app: "Delaunay refinement",
        key: "refine",
        pools: 3,
        data_structures: &["vertices", "triangles", "misc"],
        loc_changed: 8,
    },
    ManualClassification {
        app: "Maximal independent set",
        key: "MIS",
        pools: 3,
        data_structures: &["vertices", "edges", "flags"],
        loc_changed: 13,
    },
    ManualClassification {
        app: "Spanning forest",
        key: "ST",
        pools: 3,
        data_structures: &["union-find parents", "output tree", "input edges"],
        loc_changed: 13,
    },
    ManualClassification {
        app: "Minimal spanning forest",
        key: "MST",
        pools: 3,
        data_structures: &["union-find parents", "output tree", "input edges"],
        loc_changed: 11,
    },
    ManualClassification {
        app: "Convex hull",
        key: "hull",
        pools: 2,
        data_structures: &["points", "hull array"],
        loc_changed: 10,
    },
    ManualClassification {
        app: "401.bzip2",
        key: "bzip2",
        pools: 4,
        data_structures: &["arr1", "arr2", "ftab", "tt"],
        loc_changed: 43,
    },
    ManualClassification {
        app: "470.lbm",
        key: "lbm",
        pools: 2,
        data_structures: &["source grid", "destination grid"],
        loc_changed: 21,
    },
    ManualClassification {
        app: "429.mcf",
        key: "mcf",
        pools: 2,
        data_structures: &["nodes", "arcs"],
        loc_changed: 14,
    },
    ManualClassification {
        app: "436.cactusADM",
        key: "cactus",
        pools: 2,
        data_structures: &["pugh variables", "staggered-leapfrog grid data"],
        loc_changed: 53,
    },
];

/// Looks up a manual classification by workload key.
pub fn lookup(key: &str) -> Option<&'static ManualClassification> {
    TABLE2.iter().find(|c| c.key == key)
}

/// Mean lines of code changed across all manual ports — the paper's
/// "only a few lines of code need to be modified" claim, quantified.
pub fn mean_loc_changed() -> f64 {
    TABLE2.iter().map(|c| c.loc_changed as f64).sum::<f64>() / TABLE2.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_as_in_table2() {
        assert_eq!(TABLE2.len(), 12);
    }

    #[test]
    fn pools_match_structure_counts() {
        for c in TABLE2 {
            assert!(
                c.data_structures.len() >= c.pools.min(c.data_structures.len()),
                "{}: inconsistent row",
                c.app
            );
            assert!(c.pools >= 2 && c.pools <= 4, "{}: 2-4 pools", c.app);
        }
    }

    #[test]
    fn lookup_by_key() {
        let dt = lookup("delaunay").unwrap();
        assert_eq!(dt.pools, 3);
        assert_eq!(dt.loc_changed, 11);
        assert!(lookup("nonexistent").is_none());
    }

    #[test]
    fn porting_effort_is_small() {
        assert!(mean_loc_changed() < 60.0);
        assert!(TABLE2.iter().all(|c| c.loc_changed <= 53));
    }
}
