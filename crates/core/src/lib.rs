//! **Whirlpool**: static data classification driving dynamic NUCA cache
//! management — the primary contribution of Mukkara, Beckmann & Sanchez,
//! ASPLOS 2016.
//!
//! Whirlpool statically classifies program data into *memory pools* (e.g.
//! one per major data structure) and lets dynamic policies tune the cache
//! to each pool: every pool gets its own virtual cache (VC), monitored at
//! run time and re-sized/re-placed every reconfiguration interval by the
//! Jigsaw runtime. Pools do not encode policies — they make it easy for the
//! hardware to *find* the right policy (Sec. 1–2).
//!
//! This crate provides:
//!
//! * [`PoolAllocator`] — the Sec. 3.1 programmer API: `pool_create`,
//!   `pool_malloc` (and friends), built on the `wp-mem` heap, emitting the
//!   [`wp_sim::PoolDescriptor`]s the hardware consumes.
//! * [`VcRegistry`] — the Sec. 3.2 system-call layer: `sys_vc_alloc`,
//!   `sys_vc_free`, `sys_vc_tag`, and tagged `sys_mmap`, with the safety
//!   checks the paper requires (a process may only tag its own VCs).
//! * [`WhirlpoolScheme`] — the LLC scheme: the shared [`wp_jigsaw`] runtime
//!   with per-pool VCs and VC bypassing enabled.
//! * [`manual`] — the Table 2 manual classifications (pools, data
//!   structures, and lines-of-code changed for the 12 hand-ported apps).
//!
//! # Quickstart
//!
//! ```
//! use whirlpool::{PoolAllocator, WhirlpoolScheme};
//! use wp_sim::SystemConfig;
//!
//! // Classify data into pools with the allocator...
//! let mut alloc = PoolAllocator::new();
//! let points = alloc.pool_create("points");
//! let _buf = alloc.pool_malloc(512 * 1024, points);
//! let pools = alloc.descriptors();
//! assert_eq!(pools.len(), 1);
//!
//! // ...and hand the classification to the Whirlpool-managed LLC.
//! let scheme = WhirlpoolScheme::new(SystemConfig::four_core());
//! assert_eq!(wp_sim::LlcScheme::name(&scheme), "Whirlpool");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod manual;
mod scheme;
mod syscalls;

pub use api::PoolAllocator;
pub use scheme::WhirlpoolScheme;
pub use syscalls::{SysError, VcRegistry};
