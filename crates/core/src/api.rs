//! The Whirlpool programmer API (Sec. 3.1).
//!
//! ```text
//! pool_t pool_create();
//! void*  pool_malloc(size_t size, pool_t pool_id);
//! ```
//!
//! [`PoolAllocator`] is the Rust rendering of that interface: a pool-aware
//! allocator whose classification is exported as
//! [`wp_sim::PoolDescriptor`]s for the memory system. Porting an app is a
//! handful of lines — create a pool per major data structure and route its
//! allocations through it (Table 2 measures 8–53 LOC per app).

use std::collections::HashMap;

use wp_mem::{CallpointId, Heap, PoolId, VirtAddr};
use wp_sim::PoolDescriptor;

/// The pool-aware allocator handed to applications.
///
/// Wraps the `wp-mem` heap with named pools and descriptor export. Names
/// exist for reporting only — the hardware sees opaque pool ids.
#[derive(Debug)]
pub struct PoolAllocator {
    heap: Heap,
    names: HashMap<PoolId, String>,
    /// Synthetic return PC counter so each create-site gets a distinct
    /// callpoint when the caller does not supply one.
    next_pc: u64,
}

impl Default for PoolAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolAllocator {
    /// Creates an allocator with an empty heap.
    pub fn new() -> Self {
        Self {
            heap: Heap::new(),
            names: HashMap::new(),
            next_pc: 0x40_0000,
        }
    }

    /// `pool_create()`: creates a named pool.
    pub fn pool_create(&mut self, name: impl Into<String>) -> PoolId {
        let id = self.heap.create_pool();
        self.names.insert(id, name.into());
        id
    }

    /// `pool_malloc(size, pool)` with an auto-generated callpoint.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the pool does not exist.
    pub fn pool_malloc(&mut self, size: u64, pool: PoolId) -> VirtAddr {
        let cp = self.fresh_callpoint();
        self.heap.pool_malloc(size, pool, cp)
    }

    /// `pool_malloc` recording an explicit callpoint (used by WhirlTool's
    /// runtime, which knows the real allocation site).
    pub fn pool_malloc_at(&mut self, size: u64, pool: PoolId, callpoint: CallpointId) -> VirtAddr {
        self.heap.pool_malloc(size, pool, callpoint)
    }

    /// `pool_calloc(count, elem_size, pool)`.
    pub fn pool_calloc(&mut self, count: u64, elem_size: u64, pool: PoolId) -> VirtAddr {
        let cp = self.fresh_callpoint();
        self.heap.pool_calloc(count, elem_size, pool, cp)
    }

    /// `pool_realloc(old, new_size, pool)`.
    pub fn pool_realloc(&mut self, old: VirtAddr, new_size: u64, pool: PoolId) -> VirtAddr {
        let cp = self.fresh_callpoint();
        self.heap.pool_realloc(old, new_size, pool, cp)
    }

    /// Plain `malloc` — untagged data that stays in the thread VC.
    pub fn malloc(&mut self, size: u64) -> VirtAddr {
        let cp = self.fresh_callpoint();
        self.heap.malloc(size, cp)
    }

    /// Plain `malloc` with an explicit callpoint.
    pub fn malloc_at(&mut self, size: u64, callpoint: CallpointId) -> VirtAddr {
        self.heap.malloc(size, callpoint)
    }

    /// `free(ptr)`.
    ///
    /// # Panics
    ///
    /// Panics on double/wild frees.
    pub fn free(&mut self, addr: VirtAddr) {
        self.heap.free(addr);
    }

    /// The pool owning `addr`, if any.
    pub fn pool_of(&self, addr: VirtAddr) -> Option<PoolId> {
        self.heap.pool_of_addr(addr)
    }

    /// The name of a pool.
    pub fn pool_name(&self, pool: PoolId) -> Option<&str> {
        self.names.get(&pool).map(|s| s.as_str())
    }

    /// Read access to the underlying heap (profiling, tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Exports the classification as pool descriptors for the memory
    /// system, in pool-creation order. Pools with no pages are skipped.
    pub fn descriptors(&self) -> Vec<PoolDescriptor> {
        let mut ids: Vec<PoolId> = self.names.keys().copied().collect();
        ids.sort();
        ids.iter()
            .filter_map(|&id| {
                let pages = self.heap.pages_of_pool(id);
                if pages.is_empty() {
                    return None;
                }
                Some(PoolDescriptor {
                    name: self.names[&id].clone(),
                    pool: Some(id),
                    pages: pages.to_vec(),
                    bytes: self.heap.pool_live_bytes(id),
                })
            })
            .collect()
    }

    fn fresh_callpoint(&mut self) -> CallpointId {
        self.next_pc += 4;
        CallpointId::from_return_pcs(self.next_pc, self.next_pc ^ 0x1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_style_classification() {
        // The paper's dt port: 3 pools, ~11 LOC (Table 2).
        let mut a = PoolAllocator::new();
        let points = a.pool_create("points");
        let vertices = a.pool_create("vertices");
        let triangles = a.pool_create("triangles");
        a.pool_malloc(512 * 1024, points);
        a.pool_malloc(1536 * 1024, vertices);
        a.pool_malloc(4 * 1024 * 1024, triangles);
        let d = a.descriptors();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].name, "points");
        assert!(d[2].bytes >= 4 * 1024 * 1024);
        // Page exclusivity: descriptors' page sets are disjoint.
        let mut seen = std::collections::HashSet::new();
        for desc in &d {
            for p in &desc.pages {
                assert!(seen.insert(*p), "page in two pools");
            }
        }
    }

    #[test]
    fn empty_pools_are_not_exported() {
        let mut a = PoolAllocator::new();
        a.pool_create("unused");
        assert!(a.descriptors().is_empty());
    }

    #[test]
    fn untagged_malloc_has_no_pool() {
        let mut a = PoolAllocator::new();
        let p = a.malloc(100);
        assert_eq!(a.pool_of(p), None);
    }

    #[test]
    fn realloc_keeps_classification() {
        let mut a = PoolAllocator::new();
        let pool = a.pool_create("grid");
        let p = a.pool_malloc(1000, pool);
        let q = a.pool_realloc(p, 100_000, pool);
        assert_eq!(a.pool_of(q), Some(pool));
    }

    #[test]
    fn names_resolve() {
        let mut a = PoolAllocator::new();
        let p = a.pool_create("edges");
        assert_eq!(a.pool_name(p), Some("edges"));
    }
}
