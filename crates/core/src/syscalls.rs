//! The VC-management system calls (Sec. 3.2).
//!
//! Whirlpool exposes VCs to user programs through a small syscall surface:
//! `sys_vc_alloc` allocates a user-level VC; `sys_vc_free` deallocates it;
//! `sys_vc_tag` tags a page range; and `sys_mmap` optionally tags fresh
//! mappings. "These system calls perform the adequate checks to ensure
//! safety (e.g., allowing each process to map pages only to its own
//! user-level VCs)" — [`VcRegistry`] enforces exactly that.

use std::collections::HashMap;

use wp_mem::{PageTable, VcId, VirtAddr};

/// A process identifier for ownership checks.
pub type ProcessId = u32;

/// Errors returned by the VC syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysError {
    /// The VC id does not exist (never allocated or already freed).
    NoSuchVc,
    /// The VC belongs to a different process.
    NotOwner,
    /// The per-process user-VC budget is exhausted (VTB entries are a
    /// finite hardware resource; the paper provisions 4 per core).
    TooManyVcs,
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            SysError::NoSuchVc => "no such virtual cache",
            SysError::NotOwner => "virtual cache belongs to another process",
            SysError::TooManyVcs => "user virtual-cache budget exhausted",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SysError {}

/// The OS-side registry of user-level VCs plus the system page table.
#[derive(Debug)]
pub struct VcRegistry {
    owners: HashMap<VcId, ProcessId>,
    page_table: PageTable,
    next_vc: u32,
    per_process_limit: usize,
}

impl VcRegistry {
    /// User-level VC ids start above the reserved thread/process/global
    /// range (we reserve the low 1024 ids for the runtime's built-ins).
    const FIRST_USER_VC: u32 = 1024;

    /// Creates a registry with a per-process user-VC limit.
    pub fn new(per_process_limit: usize) -> Self {
        Self {
            owners: HashMap::new(),
            page_table: PageTable::new(),
            next_vc: Self::FIRST_USER_VC,
            per_process_limit,
        }
    }

    /// `sys_vc_alloc`: allocates a user VC for `process`.
    ///
    /// # Errors
    ///
    /// [`SysError::TooManyVcs`] if the process is at its limit.
    pub fn sys_vc_alloc(&mut self, process: ProcessId) -> Result<VcId, SysError> {
        let owned = self.owners.values().filter(|&&p| p == process).count();
        if owned >= self.per_process_limit {
            return Err(SysError::TooManyVcs);
        }
        let id = VcId(self.next_vc);
        self.next_vc += 1;
        self.owners.insert(id, process);
        Ok(id)
    }

    /// `sys_vc_free`: deallocates `vc`, untagging nothing (pages fall back
    /// to the thread VC lazily, as on upgrade).
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchVc`] / [`SysError::NotOwner`].
    pub fn sys_vc_free(&mut self, process: ProcessId, vc: VcId) -> Result<(), SysError> {
        self.check_owner(process, vc)?;
        self.owners.remove(&vc);
        Ok(())
    }

    /// `sys_vc_tag`: tags `[start, start+len)` with `vc`.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchVc`] / [`SysError::NotOwner`].
    pub fn sys_vc_tag(
        &mut self,
        process: ProcessId,
        start: VirtAddr,
        len: u64,
        vc: VcId,
    ) -> Result<(), SysError> {
        self.check_owner(process, vc)?;
        self.page_table.tag_range(start, len, vc);
        Ok(())
    }

    /// `sys_mmap` with an optional VC tag: maps (trivially, in simulation)
    /// and tags if requested.
    ///
    /// # Errors
    ///
    /// Ownership errors when `vc` is provided and not owned by `process`.
    pub fn sys_mmap(
        &mut self,
        process: ProcessId,
        start: VirtAddr,
        len: u64,
        vc: Option<VcId>,
    ) -> Result<(), SysError> {
        if let Some(vc) = vc {
            self.sys_vc_tag(process, start, len, vc)?;
        }
        Ok(())
    }

    /// The system page table (consumed by the memory system).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Number of live user VCs.
    pub fn live_vcs(&self) -> usize {
        self.owners.len()
    }

    fn check_owner(&self, process: ProcessId, vc: VcId) -> Result<(), SysError> {
        match self.owners.get(&vc) {
            None => Err(SysError::NoSuchVc),
            Some(&p) if p != process => Err(SysError::NotOwner),
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tag_and_lookup() {
        let mut r = VcRegistry::new(4);
        let vc = r.sys_vc_alloc(1).unwrap();
        r.sys_vc_tag(1, VirtAddr(0x10000), 8192, vc).unwrap();
        assert_eq!(r.page_table().vc_of_addr(VirtAddr(0x10000)), Some(vc));
        assert_eq!(r.page_table().vc_of_addr(VirtAddr(0x12000 - 1)), Some(vc));
        assert_eq!(r.page_table().vc_of_addr(VirtAddr(0x12000)), None);
    }

    #[test]
    fn cross_process_tagging_is_rejected() {
        let mut r = VcRegistry::new(4);
        let vc = r.sys_vc_alloc(1).unwrap();
        let err = r.sys_vc_tag(2, VirtAddr(0), 4096, vc).unwrap_err();
        assert_eq!(err, SysError::NotOwner);
    }

    #[test]
    fn per_process_limit() {
        let mut r = VcRegistry::new(2);
        r.sys_vc_alloc(7).unwrap();
        r.sys_vc_alloc(7).unwrap();
        assert_eq!(r.sys_vc_alloc(7).unwrap_err(), SysError::TooManyVcs);
        // Other processes unaffected.
        assert!(r.sys_vc_alloc(8).is_ok());
    }

    #[test]
    fn free_releases_budget() {
        let mut r = VcRegistry::new(1);
        let vc = r.sys_vc_alloc(1).unwrap();
        assert!(r.sys_vc_alloc(1).is_err());
        r.sys_vc_free(1, vc).unwrap();
        assert!(r.sys_vc_alloc(1).is_ok());
    }

    #[test]
    fn freeing_foreign_vc_fails() {
        let mut r = VcRegistry::new(4);
        let vc = r.sys_vc_alloc(1).unwrap();
        assert_eq!(r.sys_vc_free(2, vc).unwrap_err(), SysError::NotOwner);
        assert_eq!(
            r.sys_vc_free(1, VcId(9999)).unwrap_err(),
            SysError::NoSuchVc
        );
    }

    #[test]
    fn mmap_with_and_without_tag() {
        let mut r = VcRegistry::new(4);
        let vc = r.sys_vc_alloc(1).unwrap();
        r.sys_mmap(1, VirtAddr(0x2000), 4096, Some(vc)).unwrap();
        r.sys_mmap(1, VirtAddr(0x8000), 4096, None).unwrap();
        assert_eq!(r.page_table().vc_of_addr(VirtAddr(0x2000)), Some(vc));
        assert_eq!(r.page_table().vc_of_addr(VirtAddr(0x8000)), None);
    }

    #[test]
    fn error_display() {
        assert_eq!(SysError::NoSuchVc.to_string(), "no such virtual cache");
    }
}
