//! Task-parallel runtime models: conventional work-stealing and PaWS
//! (partitioned work-stealing, Sec. 3.4).
//!
//! Work-stealing keeps queues of ready tasks per thread and steals from a
//! *random* victim when idle — great load balance, poor locality: over
//! time every core touches data of many tasks. PaWS makes two changes
//! (Fig. 12): tasks are enqueued at the core owning their input partition,
//! and idle cores steal from *nearby* cores first. With Whirlpool, each
//! partition is additionally a memory pool, so even stolen work's data
//! stays placed near its home core.
//!
//! [`schedule`] simulates the task scheduler over logical (instruction)
//! time and returns who ran what; [`core_workloads`] turns a schedule into
//! per-core LLC traces for [`wp_sim::MultiCoreSim`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_sim::{PoolDescriptor, TraceEvent, Workload, WorkloadBundle};
use wp_workloads::parallel::{ParallelApp, Task};

/// Scheduling policy: conventional work-stealing or PaWS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Tasks enqueue wherever their parent ran; idle cores steal from
    /// random victims (Blumofe & Leiserson).
    WorkStealing,
    /// Tasks enqueue at their data's home core; idle cores steal from the
    /// nearest cores first (PaWS).
    Paws,
}

/// One task execution in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// The task.
    pub task: Task,
    /// The core that ran it.
    pub core: usize,
    /// Logical start time (instructions on that core).
    pub start: u64,
}

/// A complete schedule of an app's tasks.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Executions in global issue order.
    pub executions: Vec<Execution>,
    /// Number of cores.
    pub cores: usize,
    /// Number of steals performed.
    pub steals: u64,
    /// Per-core finish times (instructions).
    pub finish_times: Vec<u64>,
}

impl Schedule {
    /// Fraction of tasks that ran on their home core — the locality PaWS
    /// buys (1.0 = perfect affinity).
    pub fn home_fraction(&self) -> f64 {
        if self.executions.is_empty() {
            return 1.0;
        }
        let home = self
            .executions
            .iter()
            .filter(|e| e.core == e.task.home)
            .count();
        home as f64 / self.executions.len() as f64
    }

    /// Makespan in instructions (max core finish time).
    pub fn makespan(&self) -> u64 {
        self.finish_times.iter().copied().max().unwrap_or(0)
    }

    /// Executions of one core, in order.
    pub fn of_core(&self, core: usize) -> Vec<Task> {
        self.executions
            .iter()
            .filter(|e| e.core == core)
            .map(|e| e.task)
            .collect()
    }
}

/// Simulates the scheduler over the app's rounds (rounds are barriers).
///
/// Within a round: the least-loaded core repeatedly takes work from its own
/// queue, stealing per policy when empty. Task durations carry the app's
/// load-imbalance jitter, so stealing genuinely happens — the reason
/// "work-stealing still causes a large fraction of the data to be accessed
/// from multiple cores" even under PaWS.
pub fn schedule(app: &ParallelApp, cores: usize, policy: SchedPolicy, seed: u64) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut time = vec![0u64; cores];
    let mut executions = Vec::new();
    let mut steals = 0u64;
    let all_tasks = app.tasks();
    let rounds = all_tasks.iter().map(|t| t.round).max().map_or(0, |r| r + 1);
    // Where each (home, index) chain last executed (WS enqueue locality).
    let mut parent_core = vec![0usize; cores * 64];
    for round in 0..rounds {
        let mut queues: Vec<VecDeque<Task>> = vec![VecDeque::new(); cores];
        for t in all_tasks.iter().filter(|t| t.round == round) {
            let q = match policy {
                SchedPolicy::Paws => t.home % cores,
                SchedPolicy::WorkStealing => {
                    // Enqueue at the parent's last core (round 0: core 0,
                    // the spawner).
                    if round == 0 {
                        0
                    } else {
                        parent_core[(t.home * 64 + t.index) % parent_core.len()]
                    }
                }
            };
            queues[q].push_back(*t);
        }
        loop {
            let remaining: usize = queues.iter().map(|q| q.len()).sum();
            if remaining == 0 {
                break;
            }
            // The earliest-finishing core picks up work next.
            let c = (0..cores)
                .min_by_key(|&c| time[c])
                .expect("at least one core");
            let task = if let Some(t) = queues[c].pop_front() {
                t
            } else {
                // Steal.
                let victim = match policy {
                    SchedPolicy::WorkStealing => {
                        // Random victims until one has work.
                        let mut v = None;
                        for _ in 0..4 * cores {
                            let cand = rng.gen_range(0..cores);
                            if cand != c && !queues[cand].is_empty() {
                                v = Some(cand);
                                break;
                            }
                        }
                        v.or_else(|| (0..cores).find(|&v| !queues[v].is_empty()))
                    }
                    SchedPolicy::Paws => {
                        // Nearest first (ring distance over core ids
                        // approximates mesh neighbourhood).
                        (1..cores)
                            .flat_map(|d| [(c + d) % cores, (c + cores - d % cores) % cores])
                            .find(|&v| !queues[v].is_empty())
                    }
                };
                match victim {
                    Some(v) => {
                        steals += 1;
                        // Steal from the back (cold end), as work-stealing
                        // deques do.
                        queues[v].pop_back().expect("victim has work")
                    }
                    None => break,
                }
            };
            let dur = app.task_instrs(task);
            executions.push(Execution {
                task,
                core: c,
                start: time[c],
            });
            time[c] += dur;
            parent_core[(task.home * 64 + task.index) % (cores * 64)] = c;
        }
        // Round barrier.
        let bar = *time.iter().max().expect("cores > 0");
        time.fill(bar);
    }
    wp_obs::add(wp_obs::Counter::PawsTasks, executions.len() as u64);
    wp_obs::add(wp_obs::Counter::PawsSteals, steals);
    Schedule {
        executions,
        cores,
        steals,
        finish_times: time,
    }
}

/// A per-core workload that lazily replays its scheduled tasks' events.
pub struct CoreTaskTrace {
    app: Arc<ParallelApp>,
    tasks: Vec<Task>,
    core: usize,
    next_task: usize,
    buffer: VecDeque<TraceEvent>,
}

impl std::fmt::Debug for CoreTaskTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreTaskTrace")
            .field("core", &self.core)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl Workload for CoreTaskTrace {
    fn next_event(&mut self) -> Option<TraceEvent> {
        loop {
            if let Some(ev) = self.buffer.pop_front() {
                return Some(ev);
            }
            if self.next_task >= self.tasks.len() {
                return None;
            }
            let t = self.tasks[self.next_task];
            self.next_task += 1;
            self.buffer = self.app.task_events(t, self.core).into();
        }
    }
}

/// Classification handed to the LLC scheme for parallel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelClassification {
    /// No pools: S-NUCA, Jigsaw, IdealSPD, Awasthi.
    None,
    /// One pool per partition, registered at its home core (Whirlpool).
    PerPartition,
}

/// Builds per-core workload bundles from a schedule.
///
/// With [`ParallelClassification::PerPartition`], core `c`'s bundle carries
/// partition `c`'s pool descriptor — "we simply map data from each
/// partition to a separate pool" (Sec. 3.4).
pub fn core_workloads(
    app: &Arc<ParallelApp>,
    sched: &Schedule,
    classification: ParallelClassification,
) -> Vec<WorkloadBundle> {
    (0..sched.cores)
        .map(|c| {
            let pools: Vec<PoolDescriptor> = match classification {
                ParallelClassification::None => Vec::new(),
                ParallelClassification::PerPartition => vec![app.descriptor_of(c)],
            };
            WorkloadBundle {
                trace: Box::new(CoreTaskTrace {
                    app: Arc::clone(app),
                    tasks: sched.of_core(c),
                    core: c,
                    next_task: 0,
                    buffer: VecDeque::new(),
                }),
                pools,
                name: format!("{}.core{c}", app.spec().name),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::parallel::{ParallelSpec, RemoteKind};
    use wp_workloads::Pattern;

    fn app(cores: usize) -> Arc<ParallelApp> {
        Arc::new(ParallelApp::new(ParallelSpec {
            name: "toy",
            partitions: cores,
            bytes_per_partition: 256 * 1024,
            pattern: Pattern::Uniform,
            rounds: 3,
            tasks_per_partition: 4,
            instrs_per_task: 10_000,
            accesses_per_task: 200,
            remote_frac: 0.2,
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.5,
            duration_jitter: 0.4,
            seed: 5,
        }))
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let a = app(4);
        for policy in [SchedPolicy::WorkStealing, SchedPolicy::Paws] {
            let s = schedule(&a, 4, policy, 1);
            assert_eq!(s.executions.len(), a.tasks().len());
            let mut seen = std::collections::HashSet::new();
            for e in &s.executions {
                assert!(seen.insert(e.task), "task ran twice under {policy:?}");
            }
        }
    }

    #[test]
    fn paws_has_better_locality_than_ws() {
        let a = app(8);
        let ws = schedule(&a, 8, SchedPolicy::WorkStealing, 2);
        let paws = schedule(&a, 8, SchedPolicy::Paws, 2);
        assert!(
            paws.home_fraction() > ws.home_fraction() + 0.2,
            "PaWS {} vs WS {}",
            paws.home_fraction(),
            ws.home_fraction()
        );
        assert!(paws.home_fraction() > 0.6);
    }

    #[test]
    fn stealing_happens_under_imbalance() {
        let a = app(8);
        let paws = schedule(&a, 8, SchedPolicy::Paws, 3);
        assert!(paws.steals > 0, "jittered tasks must trigger steals");
        assert!(paws.home_fraction() < 1.0);
    }

    #[test]
    fn rounds_are_barriers() {
        let a = app(4);
        let s = schedule(&a, 4, SchedPolicy::Paws, 4);
        // No round-1 execution may start before every round-0 task started
        // + its duration on its core (coarse check: max start of round 0
        // <= min start of round 2).
        let max_r0_start = s
            .executions
            .iter()
            .filter(|e| e.task.round == 0)
            .map(|e| e.start)
            .max()
            .unwrap();
        let min_r2_start = s
            .executions
            .iter()
            .filter(|e| e.task.round == 2)
            .map(|e| e.start)
            .min()
            .unwrap();
        assert!(min_r2_start >= max_r0_start);
    }

    #[test]
    fn core_workloads_cover_all_cores() {
        let a = app(4);
        let s = schedule(&a, 4, SchedPolicy::Paws, 5);
        let bundles = core_workloads(&a, &s, ParallelClassification::PerPartition);
        assert_eq!(bundles.len(), 4);
        for (c, b) in bundles.iter().enumerate() {
            assert_eq!(b.pools.len(), 1);
            assert_eq!(b.pools[0].name, format!("part{c}"));
        }
    }

    #[test]
    fn traces_replay_scheduled_tasks() {
        let a = app(2);
        let s = schedule(&a, 2, SchedPolicy::Paws, 6);
        let mut bundles = core_workloads(&a, &s, ParallelClassification::None);
        let mut total = 0usize;
        for b in &mut bundles {
            while b.trace.next_event().is_some() {
                total += 1;
            }
        }
        // Total events ≈ per-task accesses × executions (± foreign
        // penalty), all > 0.
        assert!(total >= 200 * a.tasks().len());
    }

    #[test]
    fn ws_makespan_not_worse_than_serial() {
        let a = app(4);
        let s = schedule(&a, 4, SchedPolicy::WorkStealing, 7);
        let serial: u64 = a.tasks().iter().map(|&t| a.task_instrs(t)).sum();
        assert!(s.makespan() < serial, "parallelism must help");
    }
}
