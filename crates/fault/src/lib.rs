//! Seeded, deterministic fault injection for the Whirlpool stack.
//!
//! The rest of the workspace threads *probes* — cheap call sites like
//! `wp_fault::fire(FaultPoint::ReaderBitflip)` — through its failure
//! surfaces: the trace reader, the prefetch/decode thread, sweep and
//! daemon workers, and the serve socket. Each probe is a single relaxed
//! atomic load when no fault is armed, so the layer costs nothing
//! measurable in production builds (it is always compiled in; there is
//! no feature flag to forget).
//!
//! A fault *plan* arms one or more points, either from the environment:
//!
//! ```text
//! WP_FAULT=<arm>[,<arm>...]:<seed>
//! arm     = <point>[@<occurrence>][=<millis>]
//! ```
//!
//! or programmatically via [`FaultPlan::parse`] + [`install`]. Points
//! are named `reader-io`, `reader-truncate`, `reader-bitflip`,
//! `prefetch-panic`, `prefetch-stall`, `worker-panic`, `worker-slow`,
//! `sock-drop`, and `sock-slow`. `@N` fires the arm on the N-th probe
//! of that point (1-based); when omitted, the occurrence is derived
//! deterministically from the seed, so `WP_FAULT=worker-panic:7`
//! reproduces the same failure on every run. `=M` sets the injected
//! delay in milliseconds for the stall/slow points.
//!
//! Every arm is **one-shot**: after it fires it disarms. That is what
//! makes the recovery proof work — the retry, re-capture, or follow-up
//! request that the hardened path issues runs fault-free and must
//! converge to byte-identical output.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

/// An injection point threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Trace reader: surface an injected I/O error on a block read.
    ReaderIo,
    /// Trace reader: surface a truncated-file error on a block read.
    ReaderTruncate,
    /// Trace reader: surface a CRC mismatch on chunk N, as a flipped
    /// payload bit would.
    ReaderBitflip,
    /// Prefetch/decode thread: panic mid-decode.
    PrefetchPanic,
    /// Prefetch/decode thread: stall for the arm's delay.
    PrefetchStall,
    /// Sweep/serve worker: panic mid-job.
    WorkerPanic,
    /// Sweep/serve worker: sleep for the arm's delay (composes with the
    /// daemon's per-job wall-clock timeout).
    WorkerSlow,
    /// Serve socket: drop the connection mid-frame.
    SockDrop,
    /// Serve client: stall for the arm's delay before reading a frame.
    SockSlow,
}

impl FaultPoint {
    /// Every injection point, in wire-name order.
    pub const ALL: [FaultPoint; 9] = [
        FaultPoint::ReaderIo,
        FaultPoint::ReaderTruncate,
        FaultPoint::ReaderBitflip,
        FaultPoint::PrefetchPanic,
        FaultPoint::PrefetchStall,
        FaultPoint::WorkerPanic,
        FaultPoint::WorkerSlow,
        FaultPoint::SockDrop,
        FaultPoint::SockSlow,
    ];

    /// The spec-grammar name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::ReaderIo => "reader-io",
            FaultPoint::ReaderTruncate => "reader-truncate",
            FaultPoint::ReaderBitflip => "reader-bitflip",
            FaultPoint::PrefetchPanic => "prefetch-panic",
            FaultPoint::PrefetchStall => "prefetch-stall",
            FaultPoint::WorkerPanic => "worker-panic",
            FaultPoint::WorkerSlow => "worker-slow",
            FaultPoint::SockDrop => "sock-drop",
            FaultPoint::SockSlow => "sock-slow",
        }
    }

    /// Whether the `=millis` arm argument applies to this point.
    pub fn takes_delay(self) -> bool {
        matches!(
            self,
            FaultPoint::PrefetchStall | FaultPoint::WorkerSlow | FaultPoint::SockSlow
        )
    }

    fn parse_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        FaultPoint::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every point is in ALL")
    }

    fn bit(self) -> u32 {
        1 << self.index()
    }
}

/// The default injected delay for stall/slow arms, in milliseconds.
pub const DEFAULT_DELAY_MS: u64 = 75;

/// When `@N` is omitted, the occurrence is drawn from the seed in
/// `1..=DEFAULT_OCCURRENCE_SPREAD`.
pub const DEFAULT_OCCURRENCE_SPREAD: u64 = 3;

/// The classic splitmix64 mixer — the workspace's stock seeded-
/// determinism primitive (the shard and tenant engines use the same
/// construction). Public so call sites can derive jitter and offsets
/// from a [`Shot`] without adding an RNG dependency.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a fired arm hands its call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shot {
    /// The plan's seed, verbatim.
    pub seed: u64,
    /// The 1-based probe count at which this arm fired.
    pub occurrence: u64,
    /// The injected delay for stall/slow points (the arm's `=millis`,
    /// or [`DEFAULT_DELAY_MS`]).
    pub millis: u64,
}

impl Shot {
    /// A deterministic value derived from the plan seed, the firing
    /// occurrence, and a call-site salt — e.g. which byte to corrupt.
    pub fn draw(&self, salt: u64) -> u64 {
        splitmix64(self.seed ^ self.occurrence.rotate_left(17) ^ salt)
    }
}

#[derive(Debug, Clone)]
struct Arm {
    point: FaultPoint,
    occurrence: u64,
    millis: u64,
    fired: bool,
}

/// A parsed fault plan: one or more one-shot arms plus the seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// Parses a full `<arm>[,<arm>...]:<seed>` spec (the `WP_FAULT`
    /// grammar).
    ///
    /// # Errors
    ///
    /// A one-line message naming the offending arm: unknown point name,
    /// missing or non-numeric seed, zero or non-numeric occurrence, or
    /// a `=millis` argument on a point that takes none.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (arms_part, seed_part) = spec
            .rsplit_once(':')
            .ok_or_else(|| format!("fault spec '{spec}' lacks a ':<seed>' suffix"))?;
        let seed: u64 = seed_part
            .parse()
            .map_err(|_| format!("fault seed '{seed_part}' is not a u64"))?;
        let mut arms = Vec::new();
        for raw in arms_part.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                return Err(format!("fault spec '{spec}' has an empty arm"));
            }
            let (head, millis) = match raw.split_once('=') {
                Some((head, ms)) => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("fault arm '{raw}': delay '{ms}' is not a u64"))?;
                    (head, Some(ms))
                }
                None => (raw, None),
            };
            let (name, occurrence) = match head.split_once('@') {
                Some((name, occ)) => {
                    let occ: u64 = occ.parse().map_err(|_| {
                        format!("fault arm '{raw}': occurrence '{occ}' is not a u64")
                    })?;
                    if occ == 0 {
                        return Err(format!("fault arm '{raw}': occurrences are 1-based"));
                    }
                    (name, Some(occ))
                }
                None => (head, None),
            };
            let point = FaultPoint::parse_name(name).ok_or_else(|| {
                let names: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
                format!(
                    "unknown fault point '{name}' (expected one of {})",
                    names.join(", ")
                )
            })?;
            if millis.is_some() && !point.takes_delay() {
                return Err(format!(
                    "fault arm '{raw}': '{}' takes no =millis delay",
                    point.name()
                ));
            }
            let occurrence = occurrence.unwrap_or_else(|| {
                1 + splitmix64(seed ^ (point.index() as u64 + 1)) % DEFAULT_OCCURRENCE_SPREAD
            });
            arms.push(Arm {
                point,
                occurrence,
                millis: millis.unwrap_or(DEFAULT_DELAY_MS),
                fired: false,
            });
        }
        Ok(FaultPlan { seed, arms })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `(point, occurrence, millis)` per arm, for display and tests.
    pub fn arms(&self) -> Vec<(FaultPoint, u64, u64)> {
        self.arms
            .iter()
            .map(|a| (a.point, a.occurrence, a.millis))
            .collect()
    }

    fn mask(&self) -> u32 {
        self.arms
            .iter()
            .filter(|a| !a.fired)
            .fold(0, |m, a| m | a.point.bit())
    }
}

struct State {
    plan: Option<FaultPlan>,
    hits: [u64; FaultPoint::ALL.len()],
    env_error: Option<String>,
}

/// Bitmask of points with at least one live (unfired) arm. The probe
/// fast path: zero — one relaxed load — whenever injection is off.
static ARMED: AtomicU32 = AtomicU32::new(0);
/// Set by [`install`]/[`clear`] so a later first probe skips the env.
static INSTALLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static STATE: Mutex<State> = Mutex::new(State {
    plan: None,
    hits: [0; FaultPoint::ALL.len()],
    env_error: None,
});

fn lock_state() -> MutexGuard<'static, State> {
    // A poisoned lock means a *test* panicked mid-injection; the state
    // itself is plain data and stays usable.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if INSTALLED.load(Ordering::Acquire) {
            return;
        }
        let Ok(spec) = std::env::var("WP_FAULT") else {
            return;
        };
        if spec.is_empty() {
            return;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => install_locked(Some(plan)),
            Err(e) => lock_state().env_error = Some(e),
        }
    });
}

fn install_locked(plan: Option<FaultPlan>) {
    let mut state = lock_state();
    let mask = plan.as_ref().map_or(0, FaultPlan::mask);
    state.plan = plan;
    state.hits = [0; FaultPoint::ALL.len()];
    state.env_error = None;
    ARMED.store(mask, Ordering::Release);
}

/// Installs a plan process-wide, replacing any prior one (including one
/// read from `WP_FAULT`). Probe hit counts reset to zero.
pub fn install(plan: FaultPlan) {
    INSTALLED.store(true, Ordering::Release);
    ensure_env_init();
    install_locked(Some(plan));
}

/// Disarms everything; later probes cost one relaxed load again.
pub fn clear() {
    INSTALLED.store(true, Ordering::Release);
    ensure_env_init();
    install_locked(None);
}

/// The parse error from a malformed `WP_FAULT`, if any. A malformed
/// spec arms nothing (fail safe); binaries call this at startup to
/// fail fast with the one-line message instead.
pub fn env_error() -> Option<String> {
    ensure_env_init();
    lock_state().env_error.clone()
}

/// Whether `point` has a live arm. One relaxed load once initialised —
/// the disabled fast path.
#[inline]
pub fn armed(point: FaultPoint) -> bool {
    let mask = ARMED.load(Ordering::Relaxed);
    if mask != 0 {
        return mask & point.bit() != 0;
    }
    if ENV_INIT.is_completed() {
        return false;
    }
    ensure_env_init();
    ARMED.load(Ordering::Relaxed) & point.bit() != 0
}

/// Counts one probe of `point` and fires the arm whose occurrence this
/// probe reaches, if any. A fired arm disarms (one-shot). Returns
/// `None` — without counting — when the point has no live arm, so
/// probes on the disabled path stay a single atomic load.
#[inline]
pub fn fire(point: FaultPoint) -> Option<Shot> {
    if !armed(point) {
        return None;
    }
    fire_slow(point)
}

fn fire_slow(point: FaultPoint) -> Option<Shot> {
    let mut state = lock_state();
    state.hits[point.index()] += 1;
    let hits = state.hits[point.index()];
    let seed = state.plan.as_ref()?.seed;
    let plan = state.plan.as_mut()?;
    let arm = plan
        .arms
        .iter_mut()
        .find(|a| a.point == point && !a.fired && a.occurrence == hits)?;
    arm.fired = true;
    let shot = Shot {
        seed,
        occurrence: arm.occurrence,
        millis: arm.millis,
    };
    let mask = plan.mask();
    ARMED.store(mask, Ordering::Release);
    Some(shot)
}

static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Serialises tests that mutate the process-wide plan. Hold the guard
/// across `install`/`clear` and the probes under test.
pub fn test_guard() -> MutexGuard<'static, ()> {
    TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_every_point_name() {
        for p in FaultPoint::ALL {
            assert_eq!(FaultPoint::parse_name(p.name()), Some(p), "{}", p.name());
            let plan = FaultPlan::parse(&format!("{}@2:9", p.name())).expect("parse");
            assert_eq!(plan.arms(), vec![(p, 2, DEFAULT_DELAY_MS)]);
            assert_eq!(plan.seed(), 9);
        }
    }

    #[test]
    fn grammar_rejects_malformed_specs_with_one_line_errors() {
        let cases = [
            ("worker-panic", "lacks a ':<seed>'"),
            ("worker-panic:x", "is not a u64"),
            ("worker-panic@0:1", "1-based"),
            ("worker-panic@no:1", "is not a u64"),
            ("flux-capacitor:1", "unknown fault point"),
            ("worker-panic=50:1", "takes no =millis"),
            (",:1", "empty arm"),
            (":1", "empty arm"),
        ];
        for (spec, needle) in cases {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "spec '{spec}': got '{err}'");
        }
    }

    #[test]
    fn default_occurrence_is_seed_deterministic_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::parse(&format!("reader-bitflip:{seed}")).unwrap();
            let b = FaultPlan::parse(&format!("reader-bitflip:{seed}")).unwrap();
            assert_eq!(a.arms(), b.arms(), "seed {seed} not deterministic");
            let (_, occ, _) = a.arms()[0];
            assert!(
                (1..=DEFAULT_OCCURRENCE_SPREAD).contains(&occ),
                "seed {seed} drew occurrence {occ}"
            );
        }
        // Different points draw independently from the same seed.
        let plan = FaultPlan::parse("reader-io,worker-slow=10:7").unwrap();
        assert_eq!(plan.arms().len(), 2);
        assert_eq!(plan.arms()[1].2, 10);
    }

    #[test]
    fn arms_fire_once_on_their_occurrence_then_disarm() {
        let _guard = test_guard();
        install(FaultPlan::parse("worker-panic@3:5").unwrap());
        assert!(armed(FaultPoint::WorkerPanic));
        assert!(!armed(FaultPoint::WorkerSlow));
        assert_eq!(fire(FaultPoint::WorkerPanic), None);
        assert_eq!(fire(FaultPoint::WorkerPanic), None);
        let shot = fire(FaultPoint::WorkerPanic).expect("third probe fires");
        assert_eq!((shot.seed, shot.occurrence), (5, 3));
        // One-shot: the point disarms and later probes are free.
        assert!(!armed(FaultPoint::WorkerPanic));
        assert_eq!(fire(FaultPoint::WorkerPanic), None);
        clear();
    }

    #[test]
    fn shots_draw_deterministic_values() {
        let shot = Shot {
            seed: 11,
            occurrence: 2,
            millis: 75,
        };
        assert_eq!(shot.draw(3), shot.draw(3));
        assert_ne!(shot.draw(3), shot.draw(4));
    }

    #[test]
    fn clear_disarms_everything() {
        let _guard = test_guard();
        install(FaultPlan::parse("sock-drop@1,sock-slow@1:1").unwrap());
        assert!(armed(FaultPoint::SockDrop));
        clear();
        assert!(!armed(FaultPoint::SockDrop));
        assert!(!armed(FaultPoint::SockSlow));
        assert_eq!(fire(FaultPoint::SockDrop), None);
    }

    #[test]
    fn multiple_arms_on_one_point_share_the_probe_count() {
        let _guard = test_guard();
        install(FaultPlan::parse("sock-slow@1=5,sock-slow@3=9:2").unwrap());
        assert_eq!(fire(FaultPoint::SockSlow).map(|s| s.millis), Some(5));
        assert!(armed(FaultPoint::SockSlow), "second arm still live");
        assert_eq!(fire(FaultPoint::SockSlow), None);
        assert_eq!(fire(FaultPoint::SockSlow).map(|s| s.millis), Some(9));
        assert!(!armed(FaultPoint::SockSlow));
        clear();
    }
}
