//! The sweep engine's two load-bearing guarantees:
//!
//! 1. **Determinism**: a `WP_JOBS=4` parallel sweep emits `RunSummary`
//!    JSON bit-identical to the serial (`jobs = 1`) path for a
//!    3-app × 3-scheme grid — parallelism is purely a wall-clock lever.
//! 2. **Cache reuse**: the second run over a warm trace cache re-captures
//!    nothing (hit/miss counters and file mtimes agree).
//!
//! Budgets are overridden small so the test stays quick; the cache key
//! includes them, so these captures never collide with full-size runs.

use whirlpool_repro::harness::{Classification, RunSpec, SchemeKind};
use wp_bench::sweep::{CellWork, SweepSpec};

const APPS: [&str; 3] = ["delaunay", "mcf", "astar"];
const SCHEMES: [SchemeKind; 3] = [
    SchemeKind::SNucaLru,
    SchemeKind::Jigsaw,
    SchemeKind::Whirlpool,
];
const WARMUP: u64 = 200_000;
const MEASURE: u64 = 300_000;

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wp-sweep-det-{}-{tag}", std::process::id()))
}

fn grid(cache: &std::path::Path, jobs: usize) -> SweepSpec {
    let mut spec = SweepSpec::new()
        .cache_dir(cache)
        .budgets(WARMUP, MEASURE)
        .jobs(jobs);
    for app in APPS {
        for kind in SCHEMES {
            spec.push(kind, CellWork::single(app, kind.default_classification()));
        }
    }
    spec
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_and_reuses_the_cache() {
    let cache = tmp_cache("grid");
    let _ = std::fs::remove_dir_all(&cache);

    // Cold serial run: every app captured once.
    let serial = grid(&cache, 1).run().expect("serial sweep");
    assert_eq!(serial.cache_misses, APPS.len(), "cold cache captures all");
    assert_eq!(serial.cache_hits, 0);
    assert_eq!(serial.cells.len(), APPS.len() * SCHEMES.len());

    let captures: Vec<std::path::PathBuf> = std::fs::read_dir(&cache)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(captures.len(), APPS.len(), "one capture per app");
    let mtimes: Vec<_> = captures
        .iter()
        .map(|p| p.metadata().expect("meta").modified().expect("mtime"))
        .collect();

    // Warm parallel run: no re-capture, bit-identical JSON.
    let parallel = grid(&cache, 4).run().expect("parallel sweep");
    assert_eq!(parallel.cache_misses, 0, "warm cache re-captures nothing");
    assert_eq!(parallel.cache_hits, APPS.len());
    assert_eq!(
        serial.cells_json(),
        parallel.cells_json(),
        "WP_JOBS=4 must emit bit-identical summaries"
    );
    // The env block is *expected* to differ: it records what actually ran.
    assert_ne!(serial.env_json(), parallel.env_json());
    for (p, before) in captures.iter().zip(&mtimes) {
        let after = p.metadata().expect("meta").modified().expect("mtime");
        assert_eq!(&after, before, "{} was rewritten", p.display());
    }

    // Every cell did real work under the scheme it claims.
    for cell in &parallel.cells {
        assert_eq!(cell.summary.scheme, make_name(cell.scheme));
        assert!(cell.summary.cores[0].instructions >= MEASURE);
    }

    std::fs::remove_dir_all(&cache).unwrap();
}

/// A `WP_JOBS=4` *batched* sweep — single-app replay cells and a live
/// mix cell — emits JSON bit-identical to the serial per-event sweep:
/// neither the worker count nor the event delivery path is observable.
#[test]
fn batched_parallel_sweep_is_bit_identical_to_per_event_serial() {
    use wp_sim::ExecMode;
    let cache = tmp_cache("exec");
    let _ = std::fs::remove_dir_all(&cache);

    let grid_with = |jobs: usize, mode: ExecMode| {
        let mut spec = SweepSpec::new()
            .cache_dir(&cache)
            .budgets(WARMUP, MEASURE)
            .jobs(jobs)
            .exec_mode(mode);
        for app in ["delaunay", "mcf"] {
            for kind in [SchemeKind::SNucaLru, SchemeKind::Whirlpool] {
                spec.push(kind, CellWork::single(app, kind.default_classification()));
            }
        }
        spec.push(
            SchemeKind::SNucaLru,
            CellWork::mix(&["delaunay", "mcf"], 200_000, false),
        );
        spec.run().expect("sweep").cells_json()
    };
    let reference = grid_with(1, ExecMode::PerEvent);
    assert_eq!(
        grid_with(4, ExecMode::Batched),
        reference,
        "WP_JOBS=4 batched sweep diverged from serial per-event"
    );

    std::fs::remove_dir_all(&cache).unwrap();
}

/// A partial temp file from a killed capture (`<key>.wpt.tmp.<pid>-<seq>`)
/// is ignored by warm lookup and the app is re-captured into a complete
/// `.wpt` — the atomic-rename discipline means truncation can never
/// poison later replays.
#[test]
fn partial_temp_capture_is_ignored_and_recaptured() {
    use wp_bench::store::{capture_key, DirStore, TraceStore};
    let cache = tmp_cache("partial");
    let _ = std::fs::remove_dir_all(&cache);
    std::fs::create_dir_all(&cache).expect("cache dir");

    // Simulate a capture killed mid-write: a temp file with the capture's
    // key but a stale pid/seq suffix, containing garbage.
    let key = capture_key("delaunay", WARMUP, MEASURE);
    let partial = cache.join(format!("{key}.wpt.tmp.99999-0"));
    std::fs::write(&partial, b"truncated garbage, not a wpt header").expect("partial");
    let store = DirStore::new(&cache);
    assert!(!store.contains(&key), "a temp file must never read as warm");

    let mut spec = SweepSpec::new().cache_dir(&cache).budgets(WARMUP, MEASURE);
    spec.push(
        SchemeKind::SNucaLru,
        CellWork::single("delaunay", Classification::None),
    );
    let result = spec.run().expect("sweep over a poisoned cache dir");
    assert_eq!(result.cache_misses, 1, "the app was re-captured");
    assert_eq!(result.cache_hits, 0);
    assert!(store.contains(&key), "the completed capture landed");
    assert!(result.cells[0].summary.cores[0].instructions >= MEASURE);
    // The stale temp file is inert; nothing replayed it.
    assert!(partial.exists());

    std::fs::remove_dir_all(&cache).unwrap();
}

/// The replayed sweep cell must equal the live (model-driven) run it
/// stands in for — the sweep is an optimization, not an approximation.
#[test]
fn sweep_cell_matches_live_run() {
    let cache = tmp_cache("live");
    let _ = std::fs::remove_dir_all(&cache);

    let mut spec = SweepSpec::new()
        .cache_dir(&cache)
        .budgets(WARMUP, MEASURE)
        .jobs(2);
    spec.push(
        SchemeKind::Whirlpool,
        CellWork::single("delaunay", Classification::Manual),
    );
    let result = spec.run().expect("sweep");

    let live = RunSpec::new(SchemeKind::Whirlpool, "delaunay")
        .classification(Classification::Manual)
        .warmup(WARMUP)
        .measure(MEASURE)
        .run()
        .expect("live run");
    assert_eq!(
        result.cells[0].summary.to_json(),
        live.to_json(),
        "replayed cell diverged from the live run"
    );

    std::fs::remove_dir_all(&cache).unwrap();
}

fn make_name(kind: SchemeKind) -> String {
    use whirlpool_repro::harness::{four_core_config, make_scheme};
    let sys = four_core_config();
    make_scheme(kind, &sys).name()
}
