//! Criterion benchmark of a full Jigsaw/Whirlpool reconfiguration — the
//! paper reports the runtime costs <0.4% of system cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use wp_jigsaw::{place_and_trade, size_vcs, PlacementInput, SizingInput};
use wp_mrc::MissCurve;
use wp_noc::{CoreId, Floorplan};

fn bench(c: &mut Criterion) {
    let plan = Floorplan::four_core();
    let curve = |apki: f64, ratio: f64| {
        MissCurve::new((0..201).map(|i| apki * ratio.powi(i)).collect(), 1024)
    };
    let inputs: Vec<SizingInput> = (0..8)
        .map(|i| SizingInput {
            miss_curve: curve(30.0 + i as f64, 0.93),
            apki: 30.0 + i as f64,
            center: plan.core_coord(CoreId((i % 4) as u16)),
            bypassable: i % 2 == 0,
        })
        .collect();
    c.bench_function("sizing_8vcs_4core", |b| {
        b.iter(|| size_vcs(&inputs, &plan, 8, 9, 140.0, 200))
    });
    let pinputs: Vec<PlacementInput> = (0..8)
        .map(|i| PlacementInput {
            granules: 25,
            center: plan.core_coord(CoreId((i % 4) as u16)),
            intensity: 10.0 - i as f64,
        })
        .collect();
    c.bench_function("placement_trading_8vcs", |b| {
        b.iter(|| place_and_trade(&pinputs, &plan, 8))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
