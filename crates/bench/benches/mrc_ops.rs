//! Criterion microbenchmarks for the miss-rate-curve machinery: Mattson
//! stack throughput, curve combining (Appendix B), hulls, partitioning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wp_mrc::{
    combine_miss_curves, convex_hull, partition_capacity, MattsonStack, MissCurve, SampledStack,
};

fn geometric(apki: f64, ratio: f64, n: usize) -> MissCurve {
    MissCurve::new((0..n).map(|i| apki * ratio.powi(i as i32)).collect(), 1024)
}

fn bench(c: &mut Criterion) {
    c.bench_function("mattson_access_64k_lines", |b| {
        let mut s = MattsonStack::new();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 65_536;
            black_box(s.access(i));
        })
    });
    c.bench_function("sampled_stack_access", |b| {
        let mut s = SampledStack::new(2);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 65_536;
            s.access(i);
        })
    });
    let a = geometric(40.0, 0.97, 201);
    let bb = geometric(25.0, 0.95, 201);
    c.bench_function("combine_miss_curves_201pt", |b| {
        b.iter(|| black_box(combine_miss_curves(&a, &bb)))
    });
    c.bench_function("convex_hull_201pt", |b| {
        b.iter(|| black_box(convex_hull(&a)))
    });
    let curves: Vec<MissCurve> = (0..8)
        .map(|i| geometric(30.0, 0.9 + 0.01 * i as f64, 201))
        .collect();
    c.bench_function("partition_8vcs_200granules", |b| {
        b.iter(|| black_box(partition_capacity(&curves, 200)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
