//! Criterion benchmark of WhirlTool's analyzer (the paper reports "a few
//! seconds" for 10s-100s of callpoints).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use wp_mem::CallpointId;
use wp_mrc::MissCurve;
use wp_whirltool::{cluster, pool_distance, ProfileData};

fn synthetic_profile(callpoints: usize, intervals: usize) -> ProfileData {
    let curve = |seed: usize| {
        MissCurve::new(
            (0..201)
                .map(|i| 30.0 * (0.9 + 0.005 * (seed % 10) as f64).powi(i))
                .collect(),
            1024,
        )
    };
    let cps: Vec<CallpointId> = (0..callpoints as u64).map(CallpointId).collect();
    let ivs = (0..intervals)
        .map(|iv| {
            cps.iter()
                .enumerate()
                .map(|(i, cp)| (*cp, curve(i + iv)))
                .collect::<HashMap<_, _>>()
        })
        .collect();
    ProfileData {
        callpoints: cps,
        intervals: ivs,
        accesses: HashMap::new(),
    }
}

fn bench(c: &mut Criterion) {
    let a = MissCurve::new((0..201).map(|i| 30.0 * 0.95f64.powi(i)).collect(), 1024);
    let b2 = MissCurve::flat(25.0, 201, 1024);
    c.bench_function("pool_distance_201pt", |b| {
        b.iter(|| pool_distance(&a, &b2, 200))
    });
    let profile = synthetic_profile(12, 6);
    c.bench_function("cluster_12cp_6iv", |b| b.iter(|| cluster(&profile, 200)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
