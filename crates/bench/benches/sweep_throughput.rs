//! Warm-sweep throughput: batched vs per-event execution.
//!
//! Criterion mode (`cargo bench -p wp-bench --bench sweep_throughput`)
//! times a warm single-app replay under both execution modes.
//!
//! Smoke mode (`cargo bench -p wp-bench --bench sweep_throughput -- --json`)
//! runs the full warm-sweep measurement and writes the machine-readable
//! `BENCH_sweep.json` (override the path with `WP_BENCH_JSON`): one cold
//! cell (live 16-core mix capture) and seventeen warm cells over the
//! resulting trace — the all-streams mix replay plus one per-stream
//! breakdown replay per app — each timed under the per-event and the
//! batched path. Every cell's `RunSummary` is asserted bit-identical
//! across modes before its timing counts, so the speedups cannot come
//! from divergent simulation.
//!
//! The per-event path pays the seed architecture's cost on mix captures:
//! every streaming reader decodes all N streams to deliver its own. The
//! batched path decodes each chunk once (all-streams) or follows one
//! stream and frame-walks the rest (breakdown) — that asymmetry, plus
//! batched scheme loops with software prefetch, is the headline
//! `warm_sweep_speedup` (geometric mean of per-cell speedups, the same
//! aggregation the repo's figures use).

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use whirlpool_repro::harness::{sixteen_core_config, Experiment, SchemeKind};
use wp_bench::gmean;
use wp_sim::ExecMode;
use wp_trace::TraceInfo;

/// Four distinct footprints (Fig. 2 spread), repeated over 16 cores.
const MIX_APPS: [&str; 16] = [
    "delaunay", "mcf", "lbm", "milc", "delaunay", "mcf", "lbm", "milc", "delaunay", "mcf", "lbm",
    "milc", "delaunay", "mcf", "lbm", "milc",
];

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wp-sweep-bench-{}-{tag}.wpt", std::process::id()))
}

fn bench(c: &mut Criterion) {
    let path = temp("criterion");
    Experiment::single(SchemeKind::SNucaLru, "delaunay")
        .warmup(100_000)
        .measure(400_000)
        .capture_to(&path)
        .run()
        .expect("capture");
    for (label, mode) in [
        ("per_event", ExecMode::PerEvent),
        ("batched", ExecMode::Batched),
    ] {
        c.bench_function(&format!("warm_replay/{label}"), |b| {
            b.iter(|| {
                Experiment::replay(SchemeKind::SNucaLru, &path)
                    .warmup(100_000)
                    .measure(400_000)
                    .exec_mode(mode)
                    .run()
                    .expect("replay")
            })
        });
    }
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench);

struct Cell {
    name: String,
    events: u64,
    per_event_ns: u128,
    batched_ns: u128,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.per_event_ns as f64 / self.batched_ns as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"cell\":\"{}\",\"events\":{},\"per_event_ns\":{},\"batched_ns\":{},\
             \"speedup\":{:.2}}}",
            self.name,
            self.events,
            self.per_event_ns,
            self.batched_ns,
            self.speedup(),
        )
    }
}

/// Times one warm replay cell under both modes, asserting the summaries
/// are bit-identical before the timing is trusted.
fn run_cell(name: &str, events: u64, make: impl Fn(ExecMode) -> Experiment) -> Cell {
    let t0 = Instant::now();
    let per_event = make(ExecMode::PerEvent).run().expect("per-event replay");
    let per_event_ns = t0.elapsed().as_nanos();
    let t0 = Instant::now();
    let batched = make(ExecMode::Batched).run().expect("batched replay");
    let batched_ns = t0.elapsed().as_nanos();
    assert_eq!(
        per_event.to_json(),
        batched.to_json(),
        "cell {name}: batched replay diverged from per-event"
    );
    Cell {
        name: name.to_string(),
        events,
        per_event_ns,
        batched_ns,
    }
}

/// One-shot smoke measurement: the warm-sweep data point for
/// `BENCH_sweep.json`. `WP_BENCH_SWEEP_MEASURE` overrides the per-core
/// measure budget (instructions) of the recorded mix.
fn smoke() {
    let measure: u64 = std::env::var("WP_BENCH_SWEEP_MEASURE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let cap = temp("smoke");

    // Cold cell: live 16-core mix run, captured to the trace cache.
    let t0 = Instant::now();
    Experiment::mix(SchemeKind::SNucaLru, &MIX_APPS)
        .measure(measure)
        .system(sixteen_core_config())
        .capture_to(&cap)
        .run()
        .expect("record mix");
    let cold_ns = t0.elapsed().as_nanos();
    let info = TraceInfo::scan(&cap).expect("scan capture");
    let total: u64 = info.streams.iter().map(|s| s.events).sum();

    // Warm cells: the all-streams mix replay, then one per-stream
    // breakdown replay per app (per-event readers re-decode all 16
    // streams for each of these; batched readers follow one).
    let mut cells = vec![run_cell("all_streams", total, |mode| {
        Experiment::replay(SchemeKind::SNucaLru, &cap)
            .all_streams()
            .system(sixteen_core_config())
            .exec_mode(mode)
    })];
    for s in &info.streams {
        let k = s.meta.id;
        cells.push(run_cell(
            &format!("stream{k}:{}", s.meta.name),
            s.events,
            |mode| {
                Experiment::replay(SchemeKind::SNucaLru, &cap)
                    .stream(k)
                    .exec_mode(mode)
            },
        ));
    }
    let _ = std::fs::remove_file(&cap);

    let warm_events: u64 = cells.iter().map(|c| c.events).sum();
    let per_event_ns: u128 = cells.iter().map(|c| c.per_event_ns).sum();
    let batched_ns: u128 = cells.iter().map(|c| c.batched_ns).sum();
    let evps = |events: u64, ns: u128| events as f64 * 1e9 / ns as f64;
    let speedups: Vec<f64> = cells.iter().map(Cell::speedup).collect();
    let warm_sweep_speedup = gmean(&speedups);
    let cold_evps = evps(total, cold_ns);
    let per_event_evps = evps(warm_events, per_event_ns);
    let batched_evps = evps(warm_events, batched_ns);
    let aggregate_speedup = per_event_ns as f64 / batched_ns as f64;

    let cell_json: Vec<String> = cells.iter().map(Cell::to_json).collect();
    let json = format!(
        "{{\"bench\":\"sweep_throughput\",\"scheme\":\"LRU\",\"streams\":{},\
         \"capture_events\":{total},\"measure_instrs\":{measure},\
         \"cold\":{{\"ns\":{cold_ns},\"events_per_sec\":{cold_evps:.0}}},\
         \"cells\":[{}],\
         \"warm\":{{\"events\":{warm_events},\"per_event_ns\":{per_event_ns},\
         \"batched_ns\":{batched_ns},\"per_event_events_per_sec\":{per_event_evps:.0},\
         \"batched_events_per_sec\":{batched_evps:.0},\
         \"aggregate_speedup\":{aggregate_speedup:.2},\
         \"gmean_cell_speedup\":{warm_sweep_speedup:.2}}},\
         \"gate\":{{\"warm_sweep_speedup\":{warm_sweep_speedup:.2},\
         \"batched_events_per_sec\":{batched_evps:.0}}}}}",
        info.streams.len(),
        cell_json.join(","),
    );
    let out = std::env::var_os("WP_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_sweep.json"));
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_sweep.json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        smoke();
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
    c.final_summary();
}
