//! Criterion microbenchmarks for the cache structures on the access path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wp_cache::{
    LruCache, LruPolicy, MonitorConfig, PartitionedCache, SetAssocCache, UtilityMonitor,
};

fn bench(c: &mut Criterion) {
    c.bench_function("lru_cache_access", |b| {
        let mut cache = LruCache::new(8192);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 16_384;
            black_box(cache.access(i));
        })
    });
    c.bench_function("setassoc_access_512KB_16w", |b| {
        let mut cache = SetAssocCache::with_capacity_bytes(512 * 1024, 16, LruPolicy::new());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 16_384;
            black_box(cache.access(i));
        })
    });
    c.bench_function("partitioned_bank_access", |b| {
        let mut bank = PartitionedCache::new(8192);
        for vc in 0..4 {
            bank.set_quota(vc, 2048);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 16_384;
            black_box(bank.access((i % 4) as u32, i));
        })
    });
    c.bench_function("gmon_record", |b| {
        let mut mon = UtilityMonitor::new(MonitorConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 131_072;
            mon.record(i);
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
