//! Criterion benchmark of the end-to-end simulator: instructions per
//! second of wall time for a Whirlpool-managed run of dt.

use criterion::{criterion_group, criterion_main, Criterion};
use whirlpool::WhirlpoolScheme;
use whirlpool_repro::harness::four_core_config;
use wp_noc::CoreId;
use wp_sim::MultiCoreSim;
use wp_workloads::{registry, AppModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("whirlpool_dt_1M_instrs", |b| {
        b.iter(|| {
            let sys = four_core_config();
            let model = AppModel::new(registry::spec("delaunay"));
            let pools = model.descriptors_manual();
            let mut sim = MultiCoreSim::new(sys.clone(), WhirlpoolScheme::new(sys));
            sim.attach(CoreId(0), model.bundle(pools));
            sim.run(1_000_000)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
