//! Criterion benchmark of the end-to-end simulator: instructions per
//! second of wall time for a Whirlpool-managed run of dt.

use criterion::{criterion_group, criterion_main, Criterion};
use whirlpool_repro::harness::{Classification, Experiment, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("whirlpool_dt_1M_instrs", |b| {
        b.iter(|| {
            Experiment::single(SchemeKind::Whirlpool, "delaunay")
                .classification(Classification::Manual)
                .warmup(0)
                .measure(1_000_000)
                .run()
                .expect("bench run")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
