//! Shared helpers for the per-figure harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper,
//! printing the same rows/series the paper reports (normalized bars,
//! curve samples, placement maps). Run them with
//! `cargo run --release -p wp-bench --bin <name>`.
//!
//! Environment knobs:
//! * `RUN_SCALE` — multiplies every measurement budget (default 1.0;
//!   0.25 gives a quick pass for smoke-testing the harness).
//! * `N_MIXES` — number of random mixes for `fig22_mixes` (default 8;
//!   the paper uses 20).
#![forbid(unsafe_code)]

use whirlpool_repro::harness::{run_budget, Classification, SchemeKind};

/// The measurement budget for `app`, scaled by `RUN_SCALE`.
pub fn measure_budget(app: &str) -> u64 {
    let (_, measure) = run_budget(app);
    let scale: f64 = std::env::var("RUN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    ((measure as f64 * scale) as u64).max(1_000_000)
}

/// Number of mixes to run (default 8, paper uses 20).
pub fn n_mixes() -> usize {
    std::env::var("N_MIXES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// The classification a scheme should receive for single-app runs.
/// (Kept as a re-export shim: the logic lives on [`SchemeKind`] now so
/// every consumer — binaries, `trace_tool`, tests — shares it.)
pub fn classification_for(kind: SchemeKind) -> Classification {
    kind.default_classification()
}

/// Prints a normalized bar table: rows of `(label, value)` normalized to
/// the first row (the paper's "1.0 = baseline" bar charts).
pub fn print_normalized(title: &str, rows: &[(String, f64)]) {
    println!("\n{title} (normalized to {}):", rows[0].0);
    let base = rows[0].1;
    for (label, v) in rows {
        let norm = v / base;
        let bar = "#".repeat((norm * 40.0).round().min(80.0) as usize);
        println!("  {label:<22} {norm:>6.3}  {bar}");
    }
}

/// Geometric mean of positive values.
pub fn gmean(values: &[f64]) -> f64 {
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Runs the full six-scheme breakdown of Figs. 10/19/20 for one app:
/// execution time, data-movement energy split, and LLC access mix.
///
/// Passing `--json` to the binary appends one machine-readable line with
/// every scheme's full [`RunSummary`](wp_sim::RunSummary).
pub fn breakdown_figure(app: &str, paper_note: &str) {
    use whirlpool_repro::harness::{exec_cycles, run_single_app};
    let measure = measure_budget(app);
    println!("{app} across the six schemes ({measure} measured instructions).");
    println!("Paper: {paper_note}\n");
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut json_rows = Vec::new();
    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "scheme", "cycles", "hit/KI", "miss/KI", "byp/KI", "net", "bank", "mem (nJ/KI)"
    );
    for kind in SchemeKind::FIG10 {
        let out = run_single_app(kind, app, classification_for(kind), measure);
        let c = &out.cores[0];
        let ki = c.instructions as f64 / 1000.0;
        println!(
            "{:<14} {:>12.0} {:>8.1} {:>8.2} {:>8.1} | {:>8.2} {:>8.2} {:>8.2}",
            out.scheme,
            c.cycles,
            c.llc_hpki(),
            c.llc_mpki(),
            c.llc_bpki(),
            out.energy.network_nj / ki,
            out.energy.bank_nj / ki,
            out.energy.memory_nj / ki,
        );
        time_rows.push((out.scheme.clone(), exec_cycles(&out)));
        energy_rows.push((out.scheme.clone(), out.energy_per_ki()));
        json_rows.push(out.to_json());
    }
    print_normalized("Execution time", &time_rows);
    print_normalized("Data-movement energy", &energy_rows);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "\n{{\"app\":{},\"measured_instructions\":{measure},\"schemes\":[{}]}}",
            wp_sim::json_string(app),
            json_rows.join(",")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_mixed() {
        let g = gmean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn budgets_are_positive() {
        assert!(measure_budget("delaunay") >= 1_000_000);
    }
}
