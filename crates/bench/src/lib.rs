//! Shared helpers for the per-figure harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper,
//! printing the same rows/series the paper reports (normalized bars,
//! curve samples, placement maps). Run them with
//! `cargo run --release -p wp-bench --bin <name>`.
//!
//! Environment knobs:
//! * `RUN_SCALE` — multiplies every measurement budget (default 1.0;
//!   0.25 gives a quick pass for smoke-testing the harness).
//! * `N_MIXES` — number of random mixes for `fig22_mixes` (default 8;
//!   the paper uses 20).
//! * `WP_JOBS` — worker threads for the [`sweep`] engine (default: all
//!   available cores). Output is bit-identical at any job count.
//! * `WP_TRACE_CACHE` — the sweep engine's `.wpt` cache directory
//!   (default `target/wp-trace-cache`).
//! * `WP_MRC_SAMPLE` — `R` or `R:SMAX` (e.g. `0.01` or `0.01:16384`):
//!   WhirlTool classification cells profile with SHARDS-sampled MRC
//!   stacks at rate `R` (optionally `s_max`-capped) instead of exact
//!   Mattson — the Fig. 16/21 opt-in for long traces (default: exact).
#![forbid(unsafe_code)]

pub mod store;
pub mod sweep;

use whirlpool_repro::harness::{run_budget, Classification, SchemeKind};

/// The measurement budget for `app`, scaled by `RUN_SCALE`.
pub fn measure_budget(app: &str) -> u64 {
    let (_, measure) = run_budget(app);
    let scale: f64 = std::env::var("RUN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    ((measure as f64 * scale) as u64).max(1_000_000)
}

/// Number of mixes to run (default 8, paper uses 20).
pub fn n_mixes() -> usize {
    std::env::var("N_MIXES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// The classification a scheme should receive for single-app runs.
/// (Kept as a re-export shim: the logic lives on [`SchemeKind`] now so
/// every consumer — binaries, `trace_tool`, tests — shares it.)
pub fn classification_for(kind: SchemeKind) -> Classification {
    kind.default_classification()
}

/// Prints a normalized bar table: rows of `(label, value)` normalized to
/// the first row (the paper's "1.0 = baseline" bar charts). An empty
/// table prints its title and nothing else (it used to panic indexing
/// `rows[0]`).
pub fn print_normalized(title: &str, rows: &[(String, f64)]) {
    let Some((base_label, base)) = rows.first() else {
        println!("\n{title}: (no rows)");
        return;
    };
    println!("\n{title} (normalized to {base_label}):");
    for (label, v) in rows {
        let norm = v / base;
        let bar = "#".repeat((norm * 40.0).round().min(80.0) as usize);
        println!("  {label:<22} {norm:>6.3}  {bar}");
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice — the old behaviour silently returned `NaN`
/// from a 0/0 division, which then poisoned every downstream figure row.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(
        !values.is_empty(),
        "gmean of an empty slice (no runs produced values?)"
    );
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Index of `baseline` within `schemes` — the normalization row of the
/// figure tables. Looking the baseline up (instead of hard-coding its
/// index) means reordering a scheme array cannot silently normalize
/// against the wrong scheme.
///
/// # Panics
///
/// Panics if `baseline` is not in `schemes`.
pub fn baseline_position(schemes: &[SchemeKind], baseline: SchemeKind) -> usize {
    schemes
        .iter()
        .position(|&k| k == baseline)
        .unwrap_or_else(|| panic!("baseline {} is not in the scheme set", baseline.label()))
}

/// Runs the full six-scheme breakdown of Figs. 10/19/20 for one app:
/// execution time, data-movement energy split, and LLC access mix.
///
/// Passing `--json` to the binary appends one machine-readable line with
/// every scheme's full [`RunSummary`](wp_sim::RunSummary).
pub fn breakdown_figure(app: &str, paper_note: &str) {
    use whirlpool_repro::harness::{exec_cycles, run_single_app};
    let measure = measure_budget(app);
    println!("{app} across the six schemes ({measure} measured instructions).");
    println!("Paper: {paper_note}\n");
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut json_rows = Vec::new();
    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "scheme", "cycles", "hit/KI", "miss/KI", "byp/KI", "net", "bank", "mem (nJ/KI)"
    );
    for kind in SchemeKind::FIG10 {
        let out = run_single_app(kind, app, classification_for(kind), measure);
        let c = &out.cores[0];
        let ki = c.instructions as f64 / 1000.0;
        println!(
            "{:<14} {:>12.0} {:>8.1} {:>8.2} {:>8.1} | {:>8.2} {:>8.2} {:>8.2}",
            out.scheme,
            c.cycles,
            c.llc_hpki(),
            c.llc_mpki(),
            c.llc_bpki(),
            out.energy.network_nj / ki,
            out.energy.bank_nj / ki,
            out.energy.memory_nj / ki,
        );
        time_rows.push((out.scheme.clone(), exec_cycles(&out)));
        energy_rows.push((out.scheme.clone(), out.energy_per_ki()));
        json_rows.push(out.to_json());
    }
    print_normalized("Execution time", &time_rows);
    print_normalized("Data-movement energy", &energy_rows);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "\n{{\"app\":{},\"measured_instructions\":{measure},\"schemes\":[{}]}}",
            wp_sim::json_string(app),
            json_rows.join(",")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_mixed() {
        let g = gmean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gmean of an empty slice")]
    fn gmean_empty_panics_not_nan() {
        gmean(&[]);
    }

    #[test]
    fn print_normalized_handles_empty_rows() {
        // Used to panic indexing rows[0].
        print_normalized("empty table", &[]);
    }

    #[test]
    fn baseline_found_regardless_of_order() {
        let a = [SchemeKind::SNucaLru, SchemeKind::Whirlpool];
        let b = [SchemeKind::Whirlpool, SchemeKind::SNucaLru];
        assert_eq!(baseline_position(&a, SchemeKind::Whirlpool), 1);
        assert_eq!(baseline_position(&b, SchemeKind::Whirlpool), 0);
    }

    #[test]
    #[should_panic(expected = "not in the scheme set")]
    fn missing_baseline_panics() {
        baseline_position(&[SchemeKind::SNucaLru], SchemeKind::Whirlpool);
    }

    #[test]
    fn budgets_are_positive() {
        assert!(measure_budget("delaunay") >= 1_000_000);
    }
}
