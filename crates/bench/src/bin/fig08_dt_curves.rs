//! Fig. 8: dt's per-pool miss-rate curves and total-latency curves —
//! the inputs to Jigsaw/Whirlpool's sizing step.

use whirlpool_repro::harness::four_core_config;
use wp_mrc::{LatencyCurve, MattsonStack, MissCurve};
use wp_noc::{CoreId, NearestBanksLatency};
use wp_sim::Workload;
use wp_workloads::{registry, AppModel};

fn main() {
    let sys = four_core_config();
    let model = AppModel::new(registry::spec("delaunay"));
    let descs = model.descriptors_manual();
    let mut page_pool = wp_mrc::FastMap::default();
    for (i, d) in descs.iter().enumerate() {
        for p in &d.pages {
            page_pool.insert(p.0, i);
        }
    }
    // Exact per-pool profiling over a long window.
    let mut stacks: Vec<MattsonStack> = descs.iter().map(|_| MattsonStack::new()).collect();
    let mut counts = vec![0u64; descs.len()];
    let mut trace = model.trace();
    let mut instrs = 0u64;
    while instrs < 30_000_000 {
        let ev = trace.next_event().expect("infinite");
        instrs += ev.gap_instrs as u64;
        if let Some(&i) = page_pool.get(&ev.line.page().0) {
            stacks[i].access(ev.line.0);
            counts[i] += 1;
        }
    }
    let total_granules = sys.total_granules();
    let sizes_mb = [0usize, 8, 16, 32, 48, 64, 96, 128, 160, 200];
    println!("Fig 8a — dt miss-rate curves (MPKI vs LLC size):");
    print!("{:>10}", "size(MB)");
    for &g in &sizes_mb {
        print!("{:>8.1}", g as f64 * 64.0 / 1024.0);
    }
    println!();
    let mut curves = Vec::new();
    for (i, d) in descs.iter().enumerate() {
        let c = MissCurve::from_histogram(stacks[i].histogram(), instrs, 1024)
            .resized(total_granules + 1)
            .monotonized();
        print!("{:>10}", d.name);
        for &g in &sizes_mb {
            print!("{:>8.2}", c.mpki_at(g));
        }
        println!();
        curves.push(c);
    }
    println!("\nFig 8b — total latency curves (data-stall CPI vs VC size):");
    print!("{:>10}", "size(MB)");
    for &g in &sizes_mb {
        print!("{:>8.1}", g as f64 * 64.0 / 1024.0);
    }
    println!();
    let center = sys.floorplan.core_coord(CoreId(0));
    for (i, d) in descs.iter().enumerate() {
        let lat = NearestBanksLatency::new(
            &sys.floorplan,
            center,
            sys.granules_per_bank(),
            sys.bank_latency,
            total_granules,
        );
        let apki = counts[i] as f64 * 1000.0 / instrs as f64;
        let lc = LatencyCurve::build(&curves[i], apki, &lat, sys.miss_penalty(), false);
        print!("{:>10}", d.name);
        for &g in &sizes_mb {
            print!("{:>8.3}", lc.cpi_at(g));
        }
        println!();
        println!(
            "{:>10}  latency-optimal size: {:.1} MB (the paper sizes each VC at this knee)",
            "",
            lc.argmin() as f64 * 64.0 / 1024.0
        );
    }
}
