//! Fig. 10: mis performance, energy, and LLC-access breakdown across the
//! six schemes. Pass `--json` for a machine-readable summary line.

fn main() {
    wp_bench::breakdown_figure(
        "MIS",
        "Whirlpool +38% over Jigsaw, -53% data-movement energy; Awasthi gets \
         stuck at a small allocation; IdealSPD burns energy on multi-level lookups.",
    );
}
