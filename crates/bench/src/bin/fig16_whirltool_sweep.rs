//! Fig. 16: WhirlTool speedup over Jigsaw with 2/3/4 pools across all 31
//! apps, with the manual-classification result where one exists (Table 2).

use whirlpool::manual;
use whirlpool_repro::harness::*;
use wp_bench::measure_budget;
use wp_workloads::registry;

fn main() {
    println!("Fig 16 — WhirlTool speedup over Jigsaw (%), profiled on train inputs.");
    println!("Paper: several apps gain 5-15%, mis 38%; 3 pools is the sweet spot;");
    println!("WhirlTool matches manual classification on most apps.\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "app", "2 pools", "3 pools", "4 pools", "manual"
    );
    let mut means = [0.0f64; 3];
    let mut n = 0;
    for app in registry::all_apps() {
        let measure = measure_budget(app);
        let jig = run_single_app(SchemeKind::Jigsaw, app, Classification::None, measure);
        let base = exec_cycles(&jig);
        let mut row = format!("{app:<10}");
        for (i, pools) in [2usize, 3, 4].iter().enumerate() {
            let wt = run_single_app(
                SchemeKind::Whirlpool,
                app,
                Classification::WhirlTool {
                    pools: *pools,
                    train: true,
                },
                measure,
            );
            let sp = speedup_pct(base, exec_cycles(&wt));
            means[i] += sp;
            row.push_str(&format!(" {sp:>7.1}%"));
        }
        if manual::lookup(app).is_some() {
            let m = run_single_app(SchemeKind::Whirlpool, app, Classification::Manual, measure);
            row.push_str(&format!(" {:>7.1}%", speedup_pct(base, exec_cycles(&m))));
        } else {
            row.push_str(&format!(" {:>8}", "-"));
        }
        println!("{row}");
        n += 1;
    }
    println!(
        "\nmean speedup: 2 pools {:+.1}%, 3 pools {:+.1}%, 4 pools {:+.1}%",
        means[0] / n as f64,
        means[1] / n as f64,
        means[2] / n as f64
    );
    println!("(paper: 3 pools is the right tradeoff; 4 adds little)");
}
