//! Fig. 16: WhirlTool speedup over Jigsaw with 2/3/4 pools across all 31
//! apps, with the manual-classification result where one exists (Table 2).
//!
//! Runs on the parallel sweep engine: each app's event stream is captured
//! once, then the Jigsaw baseline and every classification variant replay
//! the *same* stream across `WP_JOBS` workers — the speedup columns
//! compare schemes, never trace noise.

use whirlpool::manual;
use whirlpool_repro::harness::*;
use wp_bench::sweep::{CellWork, SweepSpec};
use wp_workloads::registry;

fn main() {
    println!("Fig 16 — WhirlTool speedup over Jigsaw (%), profiled on train inputs.");
    println!("Paper: several apps gain 5-15%, mis 38%; 3 pools is the sweet spot;");
    println!("WhirlTool matches manual classification on most apps.\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "app", "2 pools", "3 pools", "4 pools", "manual"
    );
    let apps = registry::all_apps();
    let mut spec = SweepSpec::new();
    for app in &apps {
        spec.push(
            SchemeKind::Jigsaw,
            CellWork::single(app, Classification::None),
        );
        for pools in [2usize, 3, 4] {
            spec.push(
                SchemeKind::Whirlpool,
                CellWork::single(app, Classification::WhirlTool { pools, train: true }),
            );
        }
        if manual::lookup(app).is_some() {
            spec.push(
                SchemeKind::Whirlpool,
                CellWork::single(app, Classification::Manual),
            );
        }
    }
    let result = spec.run().unwrap_or_else(|e| panic!("sweep failed: {e}"));

    let mut cells = result.cells.iter();
    let mut means = [0.0f64; 3];
    let mut n = 0;
    for app in &apps {
        let jig = cells.next().expect("jigsaw cell");
        let base = exec_cycles(&jig.summary);
        let mut row = format!("{app:<10}");
        for m in means.iter_mut() {
            let wt = cells.next().expect("whirltool cell");
            let sp = speedup_pct(base, exec_cycles(&wt.summary));
            *m += sp;
            row.push_str(&format!(" {sp:>7.1}%"));
        }
        if manual::lookup(app).is_some() {
            let man = cells.next().expect("manual cell");
            row.push_str(&format!(
                " {:>7.1}%",
                speedup_pct(base, exec_cycles(&man.summary))
            ));
        } else {
            row.push_str(&format!(" {:>8}", "-"));
        }
        println!("{row}");
        n += 1;
    }
    println!(
        "\nmean speedup: 2 pools {:+.1}%, 3 pools {:+.1}%, 4 pools {:+.1}%",
        means[0] / n as f64,
        means[1] / n as f64,
        means[2] / n as f64
    );
    println!("(paper: 3 pools is the right tradeoff; 4 adds little)");
    if std::env::args().any(|a| a == "--json") {
        println!("\n{}", result.to_json());
    }
}
