//! Fig. 18: WhirlTool's sensitivity to training inputs — the four apps
//! where profiling on train vs ref inputs changes performance.

use whirlpool_repro::harness::*;
use wp_bench::measure_budget;

fn main() {
    println!("Fig 18 — WhirlTool speedup over Jigsaw (%), profiling on the train");
    println!("input vs the reference input (3 pools).");
    println!("Paper: leslie/omnet/xalanc/setCover lose a few % with train profiles;");
    println!("everything else is robust (0.4% average).\n");
    println!(
        "{:<10} {:>14} {:>14}",
        "app", "train profile", "ref profile"
    );
    for app in ["leslie", "omnet", "xalanc", "setCover", "delaunay", "mcf"] {
        let measure = measure_budget(app);
        let jig = run_single_app(SchemeKind::Jigsaw, app, Classification::None, measure);
        let base = exec_cycles(&jig);
        let train = run_single_app(
            SchemeKind::Whirlpool,
            app,
            Classification::WhirlTool {
                pools: 3,
                train: true,
            },
            measure,
        );
        let reference = run_single_app(
            SchemeKind::Whirlpool,
            app,
            Classification::WhirlTool {
                pools: 3,
                train: false,
            },
            measure,
        );
        println!(
            "{:<10} {:>13.1}% {:>13.1}%",
            app,
            speedup_pct(base, exec_cycles(&train)),
            speedup_pct(base, exec_cycles(&reference)),
        );
    }
    println!("\n(delaunay and mcf shown as robust controls)");
}
