//! Fig. 13: the six parallel apps under S-NUCA, Jigsaw, Jigsaw+PaWS, and
//! Whirlpool+PaWS on the 16-core chip.

use whirlpool_repro::harness::*;
use wp_bench::print_normalized;
use wp_paws::SchedPolicy;
use wp_workloads::parallel::parallel_apps;

fn main() {
    let configs = [
        ("SNUCA", SchemeKind::SNucaLru, SchedPolicy::WorkStealing),
        ("Jigsaw", SchemeKind::Jigsaw, SchedPolicy::WorkStealing),
        ("J + PaWS", SchemeKind::Jigsaw, SchedPolicy::Paws),
        ("W + PaWS", SchemeKind::Whirlpool, SchedPolicy::Paws),
    ];
    println!("Fig 13 — parallel apps on 16 cores.");
    println!("Paper: J+PaWS helps moderately (up to 19% on pagerank); W+PaWS adds");
    println!("per-partition pools, up to +67% / 2.6x energy on connectedComponents.\n");
    for spec in parallel_apps(16, 42) {
        let name = spec.name;
        let mut time_rows = Vec::new();
        let mut energy_rows = Vec::new();
        let mut home_fracs = Vec::new();
        for (label, kind, policy) in configs.iter() {
            let run = Experiment::parallel(*kind, spec.clone(), *policy)
                .run_full()
                .unwrap_or_else(|e| panic!("parallel {name} under {label} failed: {e}"));
            let sched = run.schedule.expect("parallel runs carry a schedule");
            time_rows.push((label.to_string(), makespan_cycles(&run.summary)));
            energy_rows.push((label.to_string(), run.summary.energy_per_ki()));
            home_fracs.push((label, sched.home_fraction()));
        }
        println!("==================== {name} ====================");
        print_normalized("Execution time", &time_rows);
        print_normalized("Data-movement energy", &energy_rows);
        print!("task-to-home affinity:");
        for (l, f) in home_fracs {
            print!("  {l}: {f:.2}");
        }
        println!("\n");
    }
}
