//! Fig. 11: refine's irregular phase changes and how Whirlpool adapts its
//! allocations over time (the Fig. 11a allocation trace).

use whirlpool::WhirlpoolScheme;
use whirlpool_repro::harness::*;
use wp_bench::measure_budget;

fn main() {
    let sys = four_core_config();
    let (run, scheme) = Experiment::single(SchemeKind::Whirlpool, "refine")
        .classification(Classification::Manual)
        .measure(measure_budget("refine"))
        .system(sys.clone())
        .run_with_scheme(WhirlpoolScheme::new(sys.clone()))
        .unwrap_or_else(|e| panic!("refine under Whirlpool failed: {e}"));
    let out = run.summary;

    println!("Fig 11a — Whirlpool's allocations over time on refine");
    println!("(granules of 64 KB per pool at each reconfiguration; B = bypassed).");
    println!("Paper: long stretches give vertices most of the cache; during irregular");
    println!("phase changes the pattern inverts.\n");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>8}",
        "cycle(M)", "vertices", "triangles", "misc", "thread"
    );
    let hist = scheme.runtime().reconfig_history();
    for (cyc, allocs) in hist {
        let find = |name: &str| {
            allocs
                .iter()
                .find(|(l, _, _)| l == name)
                .map(|(_, g, b)| format!("{g}{}", if *b { "B" } else { "" }))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>9.1} {:>10} {:>10} {:>10} {:>8}",
            *cyc as f64 / 1e6,
            find("vertices"),
            find("triangles"),
            find("misc"),
            find("thread0"),
        );
    }
    // Changes in the vertices allocation mark adaptation events.
    let vertices_series: Vec<usize> = hist
        .iter()
        .filter_map(|(_, a)| a.iter().find(|(l, _, _)| l == "vertices").map(|x| x.1))
        .collect();
    let changes = vertices_series.windows(2).filter(|w| w[0] != w[1]).count();
    println!(
        "\nallocation changed {} times over {} reconfigurations — Whirlpool keeps",
        changes,
        hist.len()
    );
    println!("adapting to refine's irregular behaviour instead of fixing a policy.");
    println!(
        "\nrun summary: {:.0} cycles, {:.2} nJ/KI",
        exec_cycles(&out),
        out.energy_per_ki()
    );
}
