//! Quick case-study sweep: the six headline apps under S-NUCA, Jigsaw,
//! and Whirlpool, with paper-vs-measured deltas (a fast sanity harness).

use whirlpool_repro::harness::*;

fn main() {
    for app in std::env::args().nth(1).map(|a| vec![a]).unwrap_or_else(|| {
        ["delaunay", "MIS", "cactus", "SA", "lbm", "refine"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }) {
        let (warm, measure) = run_budget(&app);
        let snuca = run_single_app_budgeted(SchemeKind::SNucaLru, &app, Classification::None);
        let jig = run_single_app_budgeted(SchemeKind::Jigsaw, &app, Classification::None);
        let wp = run_single_app_budgeted(SchemeKind::Whirlpool, &app, Classification::Manual);
        println!(
            "{app:10} (w{}M m{}M) SNUCA {:>9.0}kcy {:>6.1}nJ/KI m{:>5.2} | Jig {:>9.0}kcy {:>6.1} m{:>5.2} b{:>4.1} | Wp {:>9.0}kcy {:>6.1} m{:>5.2} b{:>4.1} | WvJ {:+.1}%p {:+.1}%e | WvS {:+.1}%p {:+.1}%e",
            warm/1_000_000, measure/1_000_000,
            exec_cycles(&snuca)/1e3, snuca.energy_per_ki(), snuca.cores[0].llc_mpki(),
            exec_cycles(&jig)/1e3, jig.energy_per_ki(), jig.cores[0].llc_mpki(), jig.cores[0].llc_bpki(),
            exec_cycles(&wp)/1e3, wp.energy_per_ki(), wp.cores[0].llc_mpki(), wp.cores[0].llc_bpki(),
            speedup_pct(exec_cycles(&jig), exec_cycles(&wp)),
            (wp.energy_per_ki() / jig.energy_per_ki() - 1.0) * 100.0,
            speedup_pct(exec_cycles(&snuca), exec_cycles(&wp)),
            (wp.energy_per_ki() / snuca.energy_per_ki() - 1.0) * 100.0,
        );
    }
}
