//! Fig. 17: WhirlTool's hierarchical clustering (dendrograms) for dt and
//! omnetpp.

use std::collections::HashMap;

use wp_mem::{CallpointId, PageId};
use wp_whirltool::{cluster, profile, ProfilerConfig};
use wp_workloads::{registry, AppModel};

fn dendrogram(app: &str) {
    let model = AppModel::new(registry::spec(app));
    let page_map: HashMap<PageId, CallpointId> = model
        .callpoints()
        .iter()
        .flat_map(|(cp, _, pages)| pages.iter().map(move |p| (*p, *cp)))
        .collect();
    // Name callpoints by their pool for readability.
    let name_of: HashMap<CallpointId, String> = model
        .callpoints()
        .iter()
        .enumerate()
        .map(|(k, (cp, pool, _))| (*cp, format!("{}#{k}", model.spec().pools[*pool].name)))
        .collect();
    let mut trace = model.trace();
    let data = profile(
        &mut trace,
        &page_map,
        ProfilerConfig {
            interval_instrs: 2_000_000,
            total_instrs: 14_000_000,
            granule_lines: 1024,
            curve_points: 201,
            sample: None,
        },
    );
    let tree = cluster(&data, 200);
    println!("=== {app}: {} callpoints ===", data.callpoints.len());
    for (i, m) in tree.merges.iter().enumerate() {
        let label = |c: usize| {
            if c < tree.callpoints.len() {
                name_of
                    .get(&tree.callpoints[c])
                    .cloned()
                    .unwrap_or_else(|| "unknown".into())
            } else {
                format!("cluster{}", c - tree.callpoints.len())
            }
        };
        println!(
            "  merge {i}: {:<22} + {:<22} @ distance {:>10.3}",
            label(m.left),
            label(m.right),
            m.distance
        );
    }
    // The 3-pool assignment (the colours of Fig. 17).
    let a = tree.assignment(3);
    let mut groups: HashMap<usize, Vec<String>> = HashMap::new();
    for (cp, g) in &a {
        groups
            .entry(*g)
            .or_default()
            .push(name_of.get(cp).cloned().unwrap_or_default());
    }
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort_unstable();
    println!("  3-pool cut:");
    for k in keys {
        let mut v = groups[&k].clone();
        v.sort();
        println!("    pool {k}: {}", v.join(", "));
    }
    println!();
}

fn main() {
    println!("Fig 17 — WhirlTool hierarchical clustering.");
    println!("Paper: semantically-same callpoints merge at small distances; the");
    println!("3-pool cut recovers the program's data structures.\n");
    dendrogram("delaunay");
    dendrogram("omnet");
}
