//! Fig. 20: SA breakdown — the contrast to cactus: Whirlpool spends *more*
//! banks (more network energy) to retain the working set and cut misses.

fn main() {
    wp_bench::breakdown_figure(
        "SA",
        "Whirlpool +7.3% over Jigsaw, -15% data-movement energy: more banks, \
         more network energy, but far fewer memory accesses.",
    );
}
