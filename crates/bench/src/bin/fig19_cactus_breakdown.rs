//! Fig. 19: cactus breakdown — WhirlTool/Whirlpool caches the reused pugh
//! region near the core and bypasses the near-streaming grid.

fn main() {
    wp_bench::breakdown_figure(
        "cactus",
        "Whirlpool +8.6% over Jigsaw, -42% data-movement energy, mostly from \
         cutting network traffic (fewer banks, bypassed grid).",
    );
}
