//! Fig. 9: mis's miss-rate and latency curves — vertices cache well,
//! edges stream, and with bypassing modelled (zero access latency at size
//! zero) the partitioning algorithm bypasses edges by itself.

use whirlpool_repro::harness::four_core_config;
use wp_mrc::{LatencyCurve, MissCurve, SampledStack};
use wp_noc::{CoreId, NearestBanksLatency};
use wp_sim::Workload;
use wp_workloads::{registry, AppModel};

fn main() {
    let sys = four_core_config();
    let model = AppModel::new(registry::spec("MIS"));
    let descs = model.descriptors_manual();
    let mut page_pool = wp_mrc::FastMap::default();
    for (i, d) in descs.iter().enumerate() {
        for p in &d.pages {
            page_pool.insert(p.0, i);
        }
    }
    // Sampled profiling (the edges pool is 24 MB; sampling keeps it cheap).
    let mut stacks: Vec<SampledStack> = descs.iter().map(|_| SampledStack::new(2)).collect();
    let mut counts = vec![0u64; descs.len()];
    let mut trace = model.trace();
    let mut instrs = 0u64;
    while instrs < 24_000_000 {
        let ev = trace.next_event().expect("infinite");
        instrs += ev.gap_instrs as u64;
        if let Some(&i) = page_pool.get(&ev.line.page().0) {
            stacks[i].access(ev.line.0);
            counts[i] += 1;
        }
    }
    let total_granules = sys.total_granules();
    let sizes = [0usize, 16, 32, 64, 96, 128, 160, 200];
    println!("Fig 9a — mis miss-rate curves (MPKI vs LLC size; paper: edges stay flat ~95,");
    println!("          vertices fall towards 0 near the LLC size):");
    print!("{:>10}", "size(MB)");
    for &g in &sizes {
        print!("{:>9.1}", g as f64 * 64.0 / 1024.0);
    }
    println!();
    let mut curves = Vec::new();
    for (i, d) in descs.iter().enumerate() {
        let c = MissCurve::from_histogram(stacks[i].histogram(), instrs, 1024)
            .resized(total_granules + 1)
            .monotonized();
        print!("{:>10}", d.name);
        for &g in &sizes {
            print!("{:>9.2}", c.mpki_at(g));
        }
        println!();
        curves.push(c);
    }
    println!("\nFig 9b — latency curves with bypass modelled (CPI; size-0 point of a");
    println!("          bypassable VC excludes cache access latency — Sec. 3.3):");
    let center = sys.floorplan.core_coord(CoreId(0));
    for (i, d) in descs.iter().enumerate() {
        let lat = NearestBanksLatency::new(
            &sys.floorplan,
            center,
            sys.granules_per_bank(),
            sys.bank_latency,
            total_granules,
        );
        let apki = counts[i] as f64 * 1000.0 / instrs as f64;
        let lc = LatencyCurve::build(&curves[i], apki, &lat, sys.miss_penalty(), true);
        print!("{:>10}", d.name);
        for &g in &sizes {
            print!("{:>9.3}", lc.cpi_at(g));
        }
        println!();
        let opt = lc.argmin();
        println!(
            "{:>10}  optimum: {} — {}",
            "",
            if opt == 0 {
                "size 0".to_string()
            } else {
                format!("{:.1} MB", opt as f64 * 64.0 / 1024.0)
            },
            if opt == 0 {
                "BYPASS (the paper bypasses edges)"
            } else {
                "cache it (the paper gives vertices the cache)"
            }
        );
    }
}
