//! Appendix B (Figs. 15/23): the flow model for combining miss curves, and
//! the distance metric built on it.

use wp_mrc::{combine_miss_curves, partitioned_curve, MissCurve};
use wp_whirltool::pool_distance;

fn geometric(apki: f64, ratio: f64, n: usize) -> MissCurve {
    MissCurve::new((0..n).map(|i| apki * ratio.powi(i as i32)).collect(), 1024)
}

fn show(name: &str, c: &MissCurve, upto: usize) {
    print!("{name:>12}:");
    for g in (0..=upto).step_by(upto / 8) {
        print!(" {:>6.2}", c.mpki_at(g));
    }
    println!();
}

fn main() {
    println!("Fig 15 — distance = area between combined and partitioned curves.");
    let m1 = geometric(20.0, 0.6, 33); // cache-friendly
    let m2 = geometric(18.0, 0.65, 33); // cache-friendly
    let m3 = MissCurve::flat(20.0, 33, 1024); // streaming
    for (label, a, b) in [
        ("m1+m2 (friendly pair)", &m1, &m2),
        ("m1+m3 (antagonists)", &m1, &m3),
    ] {
        let comb = combine_miss_curves(a, b);
        let part = partitioned_curve(a, b);
        println!("\n{label}  — distance {:.2}", pool_distance(a, b, 32));
        show("combined", &comb, 32);
        show("partitioned", &part, 32);
    }

    println!("\nFig 23b — recombining arbitrary subpools of one pool recovers the pool:");
    let orig = geometric(20.0, 0.7, 33);
    let half_pts: Vec<f64> = (0..17).map(|i| orig.mpki_at(i * 2) / 2.0).collect();
    let half = MissCurve::new(half_pts, 1024);
    let re = combine_miss_curves(&half, &half);
    show("original", &orig, 32);
    show("re-combined", &re, 32);
    let err: f64 = (0..33)
        .map(|g| (re.mpki_at(g) - orig.mpki_at(g)).abs())
        .fold(0.0, f64::max);
    println!("max error: {err:.3} MPKI — the model is insensitive to arbitrary subpool splits");
}
