//! Fig. 2: breakdown of dt's working set and access pattern.
//!
//! The paper shows dt's 6 MB working set split into points (0.5 MB),
//! vertices (1.5 MB), triangles (4 MB), with accesses split roughly evenly
//! — so access *intensity* varies 8× between points and triangles.

use wp_sim::Workload;
use wp_workloads::{registry, AppModel};

fn main() {
    let model = AppModel::new(registry::spec("delaunay"));
    let descs = model.descriptors_manual();
    println!("Fig 2a — dt working set (paper: 0.5 / 1.5 / 4 MB):");
    for d in &descs {
        println!(
            "  {:<10} {:>6.2} MB",
            d.name,
            d.bytes as f64 / (1024.0 * 1024.0)
        );
    }
    // Measure per-pool APKI from the trace.
    let mut page_pool = wp_mrc::FastMap::default();
    for (i, d) in descs.iter().enumerate() {
        for p in &d.pages {
            page_pool.insert(p.0, i);
        }
    }
    let mut counts = vec![0u64; descs.len()];
    let mut instrs = 0u64;
    let mut trace = model.trace();
    while instrs < 20_000_000 {
        let ev = trace.next_event().expect("infinite trace");
        instrs += ev.gap_instrs as u64;
        if let Some(&i) = page_pool.get(&ev.line.page().0) {
            counts[i] += 1;
        }
    }
    println!("\nFig 2b — accesses per kilo-instruction (paper: ~even split of ~25 APKI):");
    let mut total = 0.0;
    for (i, d) in descs.iter().enumerate() {
        let apki = counts[i] as f64 * 1000.0 / instrs as f64;
        total += apki;
        println!("  {:<10} {:>6.2} APKI", d.name, apki);
    }
    println!("  {:<10} {total:>6.2} APKI", "total");
    println!("\nAccess intensity (APKI per MB — why points go nearest):");
    for (i, d) in descs.iter().enumerate() {
        let apki = counts[i] as f64 * 1000.0 / instrs as f64;
        let mb = d.bytes as f64 / (1024.0 * 1024.0);
        println!("  {:<10} {:>6.2} APKI/MB", d.name, apki / mb);
    }
}
