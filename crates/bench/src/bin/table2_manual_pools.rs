//! Table 2: pools found manually in various applications, plus lines of
//! code modified while porting to Whirlpool.

use whirlpool::manual;

fn main() {
    println!(
        "{:<26} {:>5}  {:<52} {:>4}",
        "Application", "Pools", "Data structures", "LOC"
    );
    for c in manual::TABLE2 {
        println!(
            "{:<26} {:>5}  {:<52} {:>4}",
            c.app,
            c.pools,
            c.data_structures.join(", "),
            c.loc_changed
        );
    }
    println!(
        "\nmean LOC changed: {:.1} (the paper's point: porting is a handful of lines)",
        manual::mean_loc_changed()
    );
}
