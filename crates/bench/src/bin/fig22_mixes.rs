//! Fig. 22: weighted speedup over Jigsaw for random multi-program SPEC
//! mixes at 4 and 16 cores, with the bypass ablations.
//!
//! Runs on the parallel sweep engine: every (scheme, mix) run is an
//! independent live simulation, so the whole grid fans out across
//! `WP_JOBS` workers; results aggregate in deterministic mix order.

use whirlpool_repro::harness::*;
use wp_bench::n_mixes;
use wp_bench::sweep::{CellWork, SweepSpec};
use wp_workloads::mix::{random_mixes, weighted_speedup};

fn ipcs(summary: &wp_sim::RunSummary, cores: usize) -> Vec<f64> {
    summary.cores.iter().take(cores).map(|c| c.ipc()).collect()
}

fn main() {
    let schemes = [
        SchemeKind::Whirlpool,
        SchemeKind::WhirlpoolNoBypass,
        SchemeKind::JigsawNoBypass,
    ];
    for (cores16, label, instrs) in [
        (false, "4-core", 8_000_000u64),
        (true, "16-core", 6_000_000u64),
    ] {
        let n = n_mixes();
        let mixes = random_mixes(n, if cores16 { 16 } else { 4 }, 0xF1622);
        println!("=== {label}: {n} random SPEC mixes (paper: 20) ===");
        println!("Paper: Whirlpool beats Jigsaw by up to 13%/6.4% (5.1%/3.0% gmean).\n");
        let mut spec = SweepSpec::new();
        for mix in &mixes {
            spec.push(SchemeKind::Jigsaw, CellWork::mix(mix, instrs, cores16));
            for &k in &schemes {
                spec.push(k, CellWork::mix(mix, instrs, cores16));
            }
        }
        let result = spec.run().unwrap_or_else(|e| panic!("sweep failed: {e}"));

        let mut cells = result.cells.iter();
        let mut all: Vec<(SchemeKind, Vec<f64>)> =
            schemes.iter().map(|&k| (k, Vec::new())).collect();
        for mix in &mixes {
            let jig = ipcs(&cells.next().expect("jigsaw cell").summary, mix.len());
            for (_, ws_acc) in all.iter_mut() {
                let ipc = ipcs(&cells.next().expect("scheme cell").summary, mix.len());
                ws_acc.push(weighted_speedup(&ipc, &jig));
            }
        }
        for (k, mut ws) in all {
            ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let g = ws.iter().map(|w| w.ln()).sum::<f64>() / ws.len() as f64;
            let series: Vec<String> = ws.iter().map(|w| format!("{w:.3}")).collect();
            println!(
                "{:<20} gmean {:.3}  best {:.3}  sorted: {}",
                k.label(),
                g.exp(),
                ws[0],
                series.join(" ")
            );
        }
        println!();
    }
}
