//! Fig. 22: weighted speedup over Jigsaw for random multi-program SPEC
//! mixes at 4 and 16 cores, with the bypass ablations.

use whirlpool_repro::harness::*;
use wp_bench::n_mixes;
use wp_workloads::mix::{random_mixes, weighted_speedup};

fn run_mix_ipc(kind: SchemeKind, apps: &[&str], instrs: u64, cores16: bool) -> Vec<f64> {
    let sys = if cores16 {
        sixteen_core_config()
    } else {
        four_core_config()
    };
    let out = run_mix(kind, apps, instrs, sys);
    out.cores.iter().take(apps.len()).map(|c| c.ipc()).collect()
}

fn main() {
    let schemes = [
        SchemeKind::Whirlpool,
        SchemeKind::WhirlpoolNoBypass,
        SchemeKind::JigsawNoBypass,
    ];
    for (cores16, label, instrs) in [
        (false, "4-core", 8_000_000u64),
        (true, "16-core", 6_000_000u64),
    ] {
        let n = n_mixes();
        let mixes = random_mixes(n, if cores16 { 16 } else { 4 }, 0xF1622);
        println!("=== {label}: {n} random SPEC mixes (paper: 20) ===");
        println!("Paper: Whirlpool beats Jigsaw by up to 13%/6.4% (5.1%/3.0% gmean).\n");
        let mut all: Vec<(SchemeKind, Vec<f64>)> =
            schemes.iter().map(|&k| (k, Vec::new())).collect();
        for (mi, mix) in mixes.iter().enumerate() {
            let jig = run_mix_ipc(SchemeKind::Jigsaw, mix, instrs, cores16);
            for (k, ws_acc) in all.iter_mut() {
                let ipc = run_mix_ipc(*k, mix, instrs, cores16);
                let ws = weighted_speedup(&ipc, &jig);
                ws_acc.push(ws);
            }
            eprintln!("  mix {mi} done: {:?}", &mix[..mix.len().min(4)]);
        }
        for (k, mut ws) in all {
            ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let g = ws.iter().map(|w| w.ln()).sum::<f64>() / ws.len() as f64;
            let series: Vec<String> = ws.iter().map(|w| format!("{w:.3}")).collect();
            println!(
                "{:<20} gmean {:.3}  best {:.3}  sorted: {}",
                k.label(),
                g.exp(),
                ws[0],
                series.join(" ")
            );
        }
        println!();
    }
}
