//! Figs. 3–5: where S-NUCA, Jigsaw, and Whirlpool place dt's data, plus
//! the headline dt numbers (paper: Whirlpool +19% vs S-NUCA, +15% vs
//! Jigsaw; data-movement energy −42% vs S-NUCA, −27% vs Jigsaw).

use whirlpool_repro::harness::*;
use wp_bench::{classification_for, measure_budget};
use wp_sim::LlcScheme;

fn run_and_map(kind: SchemeKind) -> (f64, f64, Vec<(usize, String, f64)>) {
    let sys = four_core_config();
    let (run, scheme) = Experiment::single(kind, "delaunay")
        .classification(classification_for(kind))
        .measure(measure_budget("delaunay"))
        .system(sys.clone())
        .run_with_scheme(make_scheme(kind, &sys))
        .unwrap_or_else(|e| panic!("dt under {} failed: {e}", kind.label()));
    (
        exec_cycles(&run.summary),
        run.summary.energy_per_ki(),
        scheme.bank_occupancy(),
    )
}

fn main() {
    let sys = four_core_config();
    let mut results = Vec::new();
    for kind in [
        SchemeKind::SNucaLru,
        SchemeKind::Jigsaw,
        SchemeKind::Whirlpool,
    ] {
        let (cycles, energy, occ) = run_and_map(kind);
        println!("=== {} ===", kind.label());
        println!("{}", render_occupancy(&sys, &occ));
        results.push((kind.label(), cycles, energy));
    }
    println!("dt headline numbers (paper: W +19%/+15% perf, -42%/-27% energy):");
    let (_, s_cyc, s_e) = results[0];
    let (_, j_cyc, j_e) = results[1];
    let (_, w_cyc, w_e) = results[2];
    println!(
        "  Whirlpool vs S-NUCA: {:+.1}% perf, {:+.1}% energy",
        speedup_pct(s_cyc, w_cyc),
        (w_e / s_e - 1.0) * 100.0
    );
    println!(
        "  Whirlpool vs Jigsaw: {:+.1}% perf, {:+.1}% energy",
        speedup_pct(j_cyc, w_cyc),
        (w_e / j_e - 1.0) * 100.0
    );
}
