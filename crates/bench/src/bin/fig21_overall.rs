//! Fig. 21: overall performance, energy, and access breakdown across all
//! 31 single-threaded benchmarks and six schemes, plus the bypass ablation.
//!
//! Runs on the parallel sweep engine: each app is captured once into the
//! trace cache, then all (scheme × app) cells replay across `WP_JOBS`
//! workers. Output is bit-identical at any job count. Pass `--json` for a
//! machine-readable line with every cell's full summary.

use whirlpool_repro::harness::*;
use wp_bench::sweep::SweepSpec;
use wp_bench::{baseline_position, gmean, print_normalized};
use wp_workloads::registry;

fn main() {
    let schemes = [
        SchemeKind::SNucaLru,
        SchemeKind::SNucaDrrip,
        SchemeKind::IdealSpd,
        SchemeKind::Awasthi,
        SchemeKind::Jigsaw,
        SchemeKind::Whirlpool,
        SchemeKind::JigsawNoBypass,
        SchemeKind::WhirlpoolNoBypass,
    ];
    let apps = registry::all_apps();
    println!(
        "Fig 21 — {} apps x {} schemes. Paper: S-NUCA(LRU) 15% slower / +51% energy vs",
        apps.len(),
        schemes.len()
    );
    println!("Whirlpool; DRRIP 14%/+50%; IdealSPD 18%/+54%; Awasthi 15%/+40%; Jigsaw 3.9%/+8%.");
    println!("Bypassing: Jigsaw loses 0.2% without it, Whirlpool 1.2%.\n");

    let result = SweepSpec::grid(&schemes, &apps)
        .run()
        .unwrap_or_else(|e| panic!("sweep failed: {e}"));

    let mut cycles: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut energy: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut hits: Vec<f64> = vec![0.0; schemes.len()];
    let mut misses: Vec<f64> = vec![0.0; schemes.len()];
    let mut bypasses: Vec<f64> = vec![0.0; schemes.len()];
    // Grid cells are app-outermost, schemes innermost.
    for (c, cell) in result.cells.iter().enumerate() {
        let i = c % schemes.len();
        let out = &cell.summary;
        cycles[i].push(exec_cycles(out));
        energy[i].push(out.energy_per_ki());
        hits[i] += out.cores[0].llc_hpki();
        misses[i] += out.cores[0].llc_mpki();
        bypasses[i] += out.cores[0].llc_bpki();
    }
    // Gmean slowdown vs Whirlpool, looked up by kind (never by index).
    let wp = baseline_position(&schemes, SchemeKind::Whirlpool);
    println!("\nGmean slowdown vs Whirlpool (%):");
    for (i, &kind) in schemes.iter().enumerate() {
        let ratios: Vec<f64> = cycles[i]
            .iter()
            .zip(&cycles[wp])
            .map(|(&c, &w)| c / w)
            .collect();
        println!(
            "  {:<20} {:>6.1}%",
            kind.label(),
            (gmean(&ratios) - 1.0) * 100.0
        );
    }
    // Energy normalized to Whirlpool.
    let rows: Vec<(String, f64)> = {
        let w = gmean(&energy[wp]);
        let mut r = vec![("Whirlpool".to_string(), w)];
        for (i, &kind) in schemes.iter().enumerate() {
            if i != wp {
                r.push((kind.label().to_string(), gmean(&energy[i])));
            }
        }
        r
    };
    print_normalized("Gmean data-movement energy", &rows);
    // Access mix.
    println!("\nMean LLC access mix (per kilo-instruction, averaged over apps):");
    println!(
        "{:<20} {:>8} {:>8} {:>9}",
        "scheme", "hits", "misses", "bypasses"
    );
    let n = apps.len() as f64;
    for (i, &kind) in schemes.iter().enumerate() {
        println!(
            "{:<20} {:>8.1} {:>8.2} {:>9.2}",
            kind.label(),
            hits[i] / n,
            misses[i] / n,
            bypasses[i] / n
        );
    }
    if std::env::args().any(|a| a == "--json") {
        println!("\n{}", result.to_json());
    }
}
