//! Table 3: configuration of the simulated CMPs.

use whirlpool_repro::harness::{four_core_config, sixteen_core_config};

fn main() {
    for (name, sys) in [
        ("4-core", four_core_config()),
        ("16-core", sixteen_core_config()),
    ] {
        println!("=== {name} system ===");
        println!("cores            {}", sys.floorplan.num_cores());
        println!(
            "L1D              {} KB, {}-way, {}-cycle",
            sys.l1_bytes / 1024,
            sys.l1_ways,
            sys.l1_latency
        );
        println!(
            "L2               {} KB, {}-way, {}-cycle, private/inclusive",
            sys.l2_bytes / 1024,
            sys.l2_ways,
            sys.l2_latency
        );
        println!(
            "L3 (NUCA)        {} banks x {} KB = {:.1} MB, {}-cycle banks",
            sys.floorplan.num_banks(),
            sys.bank_bytes / 1024,
            sys.llc_bytes() as f64 / (1024.0 * 1024.0),
            sys.bank_latency
        );
        println!(
            "NoC              {}x{} mesh, {}-cycle routers, {}-cycle links, 128-bit flits, X-Y routing",
            sys.floorplan.mesh().width(),
            sys.floorplan.mesh().height(),
            sys.floorplan.params().router_cycles,
            sys.floorplan.params().link_cycles
        );
        println!(
            "memory           {} MCU(s), {}-cycle zero-load, {:.1} GB/s per channel",
            sys.floorplan.num_mcus(),
            sys.mem_zero_load_latency,
            sys.mem_bytes_per_cycle * sys.freq_ghz
        );
        println!(
            "reconfiguration  every {} Mcycles (paper: 25 ms = 50 Mcycles on 10 B-instruction runs)",
            sys.reconfig_interval_cycles / 1_000_000
        );
        println!();
    }
}
