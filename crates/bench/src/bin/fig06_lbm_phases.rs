//! Fig. 6: lbm's two grids, indistinguishable on average but with
//! markedly different access rates in alternating program phases.

use wp_sim::Workload;
use wp_workloads::{registry, AppModel};

fn main() {
    let model = AppModel::new(registry::spec("lbm"));
    let descs = model.descriptors_manual();
    let mut page_pool = wp_mrc::FastMap::default();
    for (i, d) in descs.iter().enumerate() {
        for p in &d.pages {
            page_pool.insert(p.0, i);
        }
    }
    let mut trace = model.trace();
    println!("Fig 6 — lbm per-grid APKI over time (window = 2 M instructions):");
    println!("{:>10} {:>10} {:>10}", "instrs(M)", "grid1", "grid2");
    let window = 2_000_000u64;
    let mut sums = vec![0u64; 2];
    let mut w_instrs = 0u64;
    let mut total = 0u64;
    let mut g1_mean = 0.0;
    let mut g2_mean = 0.0;
    let mut windows = 0;
    while total < 72_000_000 {
        let ev = trace.next_event().expect("infinite");
        w_instrs += ev.gap_instrs as u64;
        total += ev.gap_instrs as u64;
        if let Some(&i) = page_pool.get(&ev.line.page().0) {
            sums[i] += 1;
        }
        if w_instrs >= window {
            let a1 = sums[0] as f64 * 1000.0 / w_instrs as f64;
            let a2 = sums[1] as f64 * 1000.0 / w_instrs as f64;
            println!("{:>10.0} {:>10.1} {:>10.1}", total as f64 / 1e6, a1, a2);
            g1_mean += a1;
            g2_mean += a2;
            windows += 1;
            sums = vec![0, 0];
            w_instrs = 0;
        }
    }
    println!(
        "\naverages: grid1 {:.1} APKI, grid2 {:.1} APKI — near-identical on average,\n\
         so only dynamic (per-phase) policies can tell them apart (Sec. 2.2).",
        g1_mean / windows as f64,
        g2_mean / windows as f64
    );
}
