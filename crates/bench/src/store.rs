//! Trace-capture stores: where sweep captures live and how warm lookups
//! happen.
//!
//! The sweep engine captures each registry app once into a key-addressed
//! `.wpt` file and replays it for every cell. Batch runs and the resident
//! `wp-serve` daemon want different lookup behaviour — a batch sweep
//! stats the cache directory, a daemon keeps an in-memory warm index it
//! updates as captures land — so the lookup policy lives behind
//! [`TraceStore`] and the engine is agnostic to which one it runs over.
//!
//! Both modes share the atomic-write discipline: a capture is written to
//! `<key>.wpt.tmp.<pid>-<seq>` and renamed into place only once complete,
//! so a killed process (or a cancelled daemon job) can never leave a
//! truncated `.wpt` that poisons later warm replays. Lookups match the
//! exact `<key>.wpt` name, so in-flight temp files are invisible to them
//! by construction.

use std::path::{Path, PathBuf};

/// Where sweep captures live and what counts as warm.
///
/// A *key* is the capture's identity — app name plus the budgets that
/// shaped its stream (`<app>-w<warmup>-m<measure>`, see
/// [`capture_key`]) — and maps to exactly one `.wpt` file under
/// [`dir`](Self::dir). Implementations decide how existence is checked;
/// the engine guarantees it only ever declares a key warm after the
/// completed file has been atomically renamed into place.
pub trait TraceStore: Send + Sync + std::fmt::Debug {
    /// The directory completed captures live in.
    fn dir(&self) -> &Path;

    /// The path `key`'s completed capture lives at (`<dir>/<key>.wpt`),
    /// whether or not it exists yet.
    fn path(&self, key: &str) -> PathBuf {
        self.dir().join(format!("{key}.wpt"))
    }

    /// Whether `key` has a *completed* capture. In-flight temp files
    /// (`<key>.wpt.tmp.<pid>-<seq>`) never count: only the atomic rename
    /// that finishes a capture makes a key warm.
    fn contains(&self, key: &str) -> bool;

    /// Notes that `key`'s capture just completed (fully written and
    /// renamed to [`path`](Self::path)). Stateless stores ignore this;
    /// resident stores update their warm index.
    fn note_captured(&self, key: &str);

    /// Drops `key`'s capture: removes the `.wpt` from disk and (for
    /// resident stores) the warm-index entry, so the next
    /// [`contains`](Self::contains) is a miss and the engine re-captures.
    /// The sweep's self-healing path calls this when a cached capture
    /// turns out corrupt (CRC/length mismatch) mid-replay.
    fn evict(&self, key: &str) {
        let _ = std::fs::remove_file(self.path(key));
    }
}

/// The capture key for `(app, warmup, measure)`: the budgets are the
/// invalidation key — changing `RUN_SCALE` changes the measurement
/// budget and therefore the file name, so stale captures are never
/// replayed.
pub fn capture_key(app: &str, warmup: u64, measure: u64) -> String {
    format!("{app}-w{warmup}-m{measure}")
}

/// The stateless directory-backed store batch sweeps use: a key is warm
/// iff its `.wpt` exists on disk right now. Every lookup is a `stat`,
/// which is exactly right for a short-lived process that shares the
/// cache directory with concurrent sweeps.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// A store over `dir` (created lazily by the first capture).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }
}

impl TraceStore for DirStore {
    fn dir(&self) -> &Path {
        &self.dir
    }

    fn contains(&self, key: &str) -> bool {
        self.path(key).exists()
    }

    fn note_captured(&self, _key: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_key_folds_budgets() {
        assert_eq!(capture_key("mcf", 100, 200), "mcf-w100-m200");
        assert_ne!(capture_key("mcf", 100, 200), capture_key("mcf", 100, 300));
    }

    #[test]
    fn dir_store_ignores_temp_files() {
        let dir = std::env::temp_dir().join(format!("wp-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = DirStore::new(&dir);
        let key = "app-w1-m2";
        // A partial in-flight capture must not read as warm.
        std::fs::write(dir.join(format!("{key}.wpt.tmp.999-0")), b"partial").unwrap();
        assert!(!store.contains(key));
        // The completed (renamed) file does.
        std::fs::write(store.path(key), b"done").unwrap();
        assert!(store.contains(key));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
