//! The parallel sweep engine: (scheme × app) grids over cached traces.
//!
//! The Fig. 16/21/22 sweeps used to re-generate every app's event stream
//! live for every scheme, making a full 31-app × 8-scheme pass strictly
//! serial and repeating identical work per cell. This module amortizes
//! that work the way the trace subsystem was built for:
//!
//! 1. **Capture once.** Each registry app is captured exactly once into a
//!    key-addressed `.wpt` cache (directory `WP_TRACE_CACHE`, default
//!    `target/wp-trace-cache`; key = app name + warmup + measure budgets,
//!    which fold in `RUN_SCALE`). The pulled event stream is independent
//!    of the scheme and classification, so one capture serves every cell.
//! 2. **Replay everywhere, in parallel.** Replay is read-only and the
//!    whole sim/scheme/workload stack is `Send`, so (scheme × app) cells
//!    fan out across a `WP_JOBS`-sized pool of `std::thread::scope`
//!    workers. Results are collected in spec order, so the output is
//!    bit-identical to a `WP_JOBS=1` run — parallelism is purely a
//!    wall-clock lever.
//!
//! Every cell runs through the shared [`Experiment`] builder: cached
//! single-app replays attach a pre-built bundle (cache stream + registry
//! pools), mixes use the mix placement. Multi-program mixes
//! ([`CellWork::Mix`]) have no scheme-independent per-core stream length,
//! so they run live — but still one mix per worker, which is where
//! Fig. 22's wall-clock goes.
//!
//! ```no_run
//! use wp_bench::sweep::{CellWork, SweepSpec};
//! use whirlpool_repro::harness::SchemeKind;
//!
//! let result = SweepSpec::grid(
//!     &[SchemeKind::SNucaLru, SchemeKind::Whirlpool],
//!     &["delaunay", "mcf"],
//! )
//! .run()
//! .unwrap();
//! println!("{}", result.to_json());
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use whirlpool_repro::harness::{
    descriptors_for, run_budget, CancelToken, Classification, Experiment, HarnessError, SchemeKind,
};
use wp_sim::{ExecMode, RunSummary, TraceWorkload, WorkloadBundle};
use wp_workloads::{registry, AppModel};

use crate::measure_budget;
use crate::store::{capture_key, DirStore, TraceStore};

/// Whether the opt-in `WP_PROGRESS=1` stderr heartbeat is on. Off by
/// default: a sweep then writes nothing per cell, and stdout (the JSON
/// emission) is bit-identical either way.
fn progress_enabled() -> bool {
    matches!(std::env::var("WP_PROGRESS").as_deref(), Ok("1") | Ok("on"))
}

/// Worker-thread count: `WP_JOBS`, defaulting to every available core.
pub fn default_jobs() -> usize {
    std::env::var("WP_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Trace-cache directory: `WP_TRACE_CACHE`, default `target/wp-trace-cache`.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("WP_TRACE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/wp-trace-cache"))
}

/// What one sweep cell runs.
#[derive(Debug, Clone)]
pub enum CellWork {
    /// One app alone on core 0 of the 4-core chip, replayed from the
    /// trace cache (registry apps) or directly from a `trace:<path>` URI.
    Single {
        /// Registry name or `trace:<path>` URI.
        app: String,
        /// Classification handed to the scheme.
        classification: Classification,
    },
    /// A live multi-program mix (one app per core, fixed-work).
    Mix {
        /// One app per core (registry names or `trace:` URIs).
        apps: Vec<String>,
        /// Fixed-work measurement budget per core.
        instrs: u64,
        /// Run on the 16-core chip instead of the 4-core one.
        cores16: bool,
    },
}

impl CellWork {
    /// A [`CellWork::Single`] cell.
    pub fn single(app: &str, classification: Classification) -> Self {
        CellWork::Single {
            app: app.to_string(),
            classification,
        }
    }

    /// A [`CellWork::Mix`] cell.
    pub fn mix(apps: &[&str], instrs: u64, cores16: bool) -> Self {
        CellWork::Mix {
            apps: apps.iter().map(|a| a.to_string()).collect(),
            instrs,
            cores16,
        }
    }

    /// Short display label ("delaunay", "mcf+lbm+…").
    fn label(&self) -> String {
        match self {
            CellWork::Single { app, .. } => app.clone(),
            CellWork::Mix { apps, .. } => apps.join("+"),
        }
    }
}

/// One (scheme, workload) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The scheme under evaluation.
    pub scheme: SchemeKind,
    /// The workload it runs.
    pub work: CellWork,
}

/// A sweep: an ordered list of cells plus engine knobs.
#[derive(Debug)]
pub struct SweepSpec {
    cells: Vec<SweepCell>,
    jobs: usize,
    cache_dir: PathBuf,
    warmup_override: Option<u64>,
    measure_override: Option<u64>,
    exec: Option<ExecMode>,
    store: Option<Arc<dyn TraceStore>>,
    cancel: Option<CancelToken>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty sweep with environment-default jobs and cache directory.
    pub fn new() -> Self {
        Self {
            cells: Vec::new(),
            jobs: default_jobs(),
            cache_dir: default_cache_dir(),
            warmup_override: None,
            measure_override: None,
            exec: None,
            store: None,
            cancel: None,
        }
    }

    /// The full (scheme × app) grid, apps outermost, with each scheme's
    /// [default classification](SchemeKind::default_classification) — the
    /// Fig. 21 shape.
    pub fn grid(schemes: &[SchemeKind], apps: &[&str]) -> Self {
        let mut spec = Self::new();
        for app in apps {
            for &scheme in schemes {
                spec.push(
                    scheme,
                    CellWork::single(app, scheme.default_classification()),
                );
            }
        }
        spec
    }

    /// The (scheme × app) *alone-run* grid for multi-tenant scenarios:
    /// each cell runs one app by itself on the scenario's chip (a
    /// single-entry mix, so the system config and warmup match the
    /// shared runs it normalizes). `wp-tenant` divides each tenant's
    /// shared-run IPC by its alone-run IPC from this grid.
    pub fn alone_grid(schemes: &[SchemeKind], apps: &[&str], instrs: u64, cores16: bool) -> Self {
        let mut spec = Self::new();
        for &app in apps {
            for &scheme in schemes {
                spec.push(scheme, CellWork::mix(&[app], instrs, cores16));
            }
        }
        spec
    }

    /// Appends one cell. Cells run in insertion order as far as results
    /// are concerned, whatever the worker interleaving.
    pub fn push(&mut self, scheme: SchemeKind, work: CellWork) {
        self.cells.push(SweepCell { scheme, work });
    }

    /// Overrides the worker-thread count (`WP_JOBS` otherwise).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the trace-cache directory (`WP_TRACE_CACHE` otherwise).
    /// Ignored when a full [`store`](Self::store) is attached.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = dir.into();
        self
    }

    /// Attaches a [`TraceStore`] that owns warm-capture lookups (the
    /// default is a fresh [`DirStore`] over
    /// [`cache_dir`](Self::cache_dir)). The resident `wp-serve` daemon
    /// hands every sweep its long-lived store so lookups hit the warm
    /// in-memory index instead of the filesystem.
    #[must_use]
    pub fn store(mut self, store: Arc<dyn TraceStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a cooperative [`CancelToken`], checked before each
    /// capture and each cell (and inside each cell's [`Experiment`]).
    /// A fired token aborts the sweep with [`HarnessError::Cancelled`];
    /// in-flight cells finish normally first, so shared state (the trace
    /// cache, the obs registry) is never left mid-write.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Overrides every cell's event delivery path (the `WP_EXEC` /
    /// [`ExecMode::default`] resolution otherwise). Both modes produce
    /// bit-identical summaries; the knob exists for the throughput
    /// benchmarks and the determinism tests that prove that.
    #[must_use]
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Overrides every single-app cell's warmup/measure budgets (the
    /// per-app [`run_budget`]/[`measure_budget`] otherwise). The trace
    /// cache is keyed on the budgets actually used.
    #[must_use]
    pub fn budgets(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_override = Some(warmup);
        self.measure_override = Some(measure);
        self
    }

    /// The number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Warmup/measure budgets of a registry app under this sweep.
    fn budgets_for(&self, app: &str) -> (u64, u64) {
        let warmup = self.warmup_override.unwrap_or_else(|| run_budget(app).0);
        let measure = self.measure_override.unwrap_or_else(|| measure_budget(app));
        (warmup, measure)
    }

    /// The [`TraceStore`] this sweep will run over: the attached one, or
    /// a fresh [`DirStore`] over the cache directory.
    fn resolve_store(&self) -> Arc<dyn TraceStore> {
        match &self.store {
            Some(s) => Arc::clone(s),
            None => Arc::new(DirStore::new(self.cache_dir.clone())),
        }
    }

    /// Runs the sweep: captures missing traces (in parallel), then fans
    /// the cells across the worker pool. Results come back in cell
    /// insertion order regardless of `jobs`, so output built from them is
    /// bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// Any [`HarnessError`] — unknown apps, capture I/O, or
    /// missing/malformed `trace:` files; the first error wins.
    pub fn run(self) -> Result<SweepResult, HarnessError> {
        // Validate every app name up front: the budget planning below
        // consults the registry, which panics on unknown names.
        for cell in &self.cells {
            match &cell.work {
                CellWork::Single { app, .. } => whirlpool_repro::harness::resolve_app(app)?,
                CellWork::Mix { apps, .. } => {
                    for app in apps {
                        whirlpool_repro::harness::resolve_app(app)?;
                    }
                }
            }
        }
        // Plan the captures: each registry app once per distinct budget,
        // with the store deciding which keys are already warm.
        let store = self.resolve_store();
        let mut captures: Vec<(String, u64, u64, String)> = Vec::new();
        for cell in &self.cells {
            if let CellWork::Single { app, .. } = &cell.work {
                if registry::trace_path(app).is_none() {
                    let (w, m) = self.budgets_for(app);
                    let key = capture_key(app, w, m);
                    if !captures.iter().any(|(_, _, _, k)| *k == key) {
                        captures.push((app.clone(), w, m, key));
                    }
                }
            }
        }
        let (missing, warm): (Vec<_>, Vec<_>) = captures
            .into_iter()
            .partition(|(_, _, _, k)| !store.contains(k));
        let cache_hits = warm.len();
        let cache_misses = missing.len();
        wp_obs::add(wp_obs::Counter::TraceCacheHits, cache_hits as u64);
        wp_obs::add(wp_obs::Counter::TraceCacheMisses, cache_misses as u64);
        if !missing.is_empty() {
            std::fs::create_dir_all(store.dir()).map_err(wp_trace::TraceError::from)?;
            eprintln!(
                "[sweep] capturing {} app(s) into {} ({} warm)",
                missing.len(),
                store.dir().display(),
                cache_hits,
            );
            parallel_map(self.jobs, missing.len(), |i| {
                if let Some(tok) = &self.cancel {
                    tok.check()?;
                }
                let (app, warmup, measure, key) = &missing[i];
                capture_app(
                    app,
                    *warmup,
                    *measure,
                    &store.path(key),
                    self.cancel.as_ref(),
                )?;
                store.note_captured(key);
                Ok(())
            })?;
        }
        // Fan the cells out.
        let total = self.cells.len();
        let done = AtomicUsize::new(0);
        let progress = progress_enabled();
        let sweep_start = Instant::now();
        let summaries = parallel_map(self.jobs, total, |i| {
            // Worker fault probes, before the cancel check so an
            // injected stall composes with a wall-clock deadline the
            // way a genuinely slow cell would.
            if wp_fault::fire(wp_fault::FaultPoint::WorkerPanic).is_some() {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                panic!("injected worker fault");
            }
            if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::WorkerSlow) {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                std::thread::sleep(std::time::Duration::from_millis(shot.millis));
            }
            if let Some(tok) = &self.cancel {
                tok.check()?;
            }
            let cell = &self.cells[i];
            // A worker runs one cell at a time, so the thread-local phase
            // delta across the cell is the cell's breakdown; drain any
            // residue a previous cell (or capture) left on this thread.
            let _ = wp_obs::take_thread_phases();
            let cell_start = Instant::now();
            let summary = self.run_cell(cell, &store)?;
            let phases = wp_obs::take_thread_phases();
            wp_obs::add(wp_obs::Counter::SweepCellsCompleted, 1);
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if progress {
                let events: u64 = summary
                    .cores
                    .iter()
                    .map(|c| c.llc_accesses + c.llc_bypasses)
                    .sum();
                let rate = events as f64 / cell_start.elapsed().as_secs_f64().max(1e-9);
                let elapsed = sweep_start.elapsed().as_secs_f64();
                let eta = elapsed / n as f64 * (total - n) as f64;
                eprintln!(
                    "[sweep] {n}/{total} {}/{} {:.2} Mev/s eta {:.0}s",
                    cell.scheme.label(),
                    cell.work.label(),
                    rate / 1e6,
                    eta,
                );
            }
            Ok((summary, phases))
        })?;
        let exec = self.effective_exec();
        let jobs = self.jobs;
        let cells = self
            .cells
            .into_iter()
            .zip(summaries)
            .map(|(cell, (summary, phases))| CellResult {
                scheme: cell.scheme,
                work: cell.work,
                summary,
                phases,
            })
            .collect();
        Ok(SweepResult {
            cells,
            cache_hits,
            cache_misses,
            jobs,
            exec,
        })
    }

    /// The event delivery path every cell will actually use: the sweep's
    /// override, else `WP_EXEC`, else the default.
    fn effective_exec(&self) -> ExecMode {
        self.exec
            .or_else(|| std::env::var("WP_EXEC").ok()?.parse().ok())
            .unwrap_or_default()
    }

    /// Applies the sweep-wide engine overrides (exec mode, cancel token).
    fn apply_exec(&self, mut exp: Experiment) -> Experiment {
        if let Some(mode) = self.exec {
            exp = exp.exec_mode(mode);
        }
        if let Some(tok) = &self.cancel {
            exp = exp.cancel_token(tok.clone());
        }
        exp
    }

    fn run_cell(
        &self,
        cell: &SweepCell,
        store: &Arc<dyn TraceStore>,
    ) -> Result<RunSummary, HarnessError> {
        match &cell.work {
            CellWork::Single {
                app,
                classification,
            } => {
                if registry::trace_path(app).is_some() {
                    // A user-supplied recording: replay raw (its own
                    // warmup is baked in) unless budgets are overridden.
                    let mut exp =
                        Experiment::single(cell.scheme, app).classification(*classification);
                    if let Some(w) = self.warmup_override {
                        exp = exp.warmup(w);
                    }
                    if let Some(m) = self.measure_override {
                        exp = exp.measure(m);
                    }
                    return self.apply_exec(exp).run();
                }
                // A cached capture: the event stream comes from the
                // cache; the pools are rebuilt from the registry model
                // so per-cell classifications (Fig. 16's WhirlTool
                // 2/3/4-pool variants) replay against the same stream.
                let (w, m) = self.budgets_for(app);
                let key = capture_key(app, w, m);
                let path_str = store.path(&key).display().to_string();
                let attempt = || -> Result<RunSummary, HarnessError> {
                    // Corruption past the header panics mid-replay (the
                    // `Workload` trait has no error channel), so the
                    // attempt catches unwinds and types them — the heal
                    // check below recognizes the ones naming this
                    // capture's path.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> Result<RunSummary, HarnessError> {
                            let model = AppModel::new(registry::spec(app));
                            let pools = descriptors_for(&model, app, *classification);
                            let bundle = WorkloadBundle {
                                trace: Box::new(TraceWorkload::open(&store.path(&key))?),
                                pools,
                                name: app.clone(),
                            };
                            self.apply_exec(
                                Experiment::bundles(cell.scheme, vec![bundle])
                                    .warmup(w)
                                    .measure(m),
                            )
                            .run()
                        },
                    ))
                    .unwrap_or_else(|payload| {
                        Err(HarnessError::Panic(
                            whirlpool_repro::harness::panic_message(payload),
                        ))
                    })
                };
                // Healable: a typed trace error (failed open/validate),
                // or a replay panic that names this capture's file —
                // any other panic (e.g. an injected worker fault) is
                // not the cache's doing and must surface as-is.
                let healable = |err: &HarnessError| match err {
                    HarnessError::Trace(_) => true,
                    HarnessError::Panic(msg) => msg.contains(&path_str),
                    _ => false,
                };
                match attempt() {
                    // Self-healing: a cached capture that fails to open
                    // or validate (truncated, bit-flipped, vanished) is
                    // evicted and re-captured once, then the cell
                    // retries — the stream is deterministic, so the
                    // healed output is byte-identical to a clean-cache
                    // run. A second failure surfaces as usual.
                    Err(e) if healable(&e) => {
                        eprintln!(
                            "[sweep] cached capture '{key}' failed ({e}); \
                             evicting and re-capturing"
                        );
                        store.evict(&key);
                        wp_obs::add(wp_obs::Counter::TraceCacheEvictions, 1);
                        capture_app(app, w, m, &store.path(&key), self.cancel.as_ref())?;
                        store.note_captured(&key);
                        attempt()
                    }
                    r => r,
                }
            }
            CellWork::Mix {
                apps,
                instrs,
                cores16,
            } => {
                let refs: Vec<&str> = apps.iter().map(String::as_str).collect();
                let mut exp = Experiment::mix(cell.scheme, &refs).measure(*instrs);
                // Mixes default to the fixed shared warmup; scenario
                // alone-run grids override it so the baseline cells warm
                // exactly like the shared epochs they normalize.
                if let Some(w) = self.warmup_override {
                    exp = exp.warmup(w);
                }
                if *cores16 {
                    exp = exp.system(whirlpool_repro::harness::sixteen_core_config());
                }
                self.apply_exec(exp).run()
            }
        }
    }
}

/// Captures `app` once under the cheapest scheme. The driver pulls
/// events purely by instruction count, so the recorded stream is
/// identical whichever scheme (or classification) the capture ran under —
/// one capture serves every cell. The write goes to
/// `<key>.wpt.tmp.<pid>-<seq>` and is renamed into place only when
/// complete, so a killed process (or a cancelled job) never leaves a
/// truncated `.wpt`: warm lookups match the exact `.wpt` name and are
/// blind to temp files by construction.
fn capture_app(
    app: &str,
    warmup: u64,
    measure: u64,
    path: &Path,
    cancel: Option<&CancelToken>,
) -> Result<(), HarnessError> {
    // Unique per process *and* per capture: concurrent sweeps in one
    // process (tests sharing a cache dir) must never write the same
    // temp file.
    static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    let file = path
        .file_name()
        .and_then(|n| n.to_str())
        .expect("capture paths are <key>.wpt");
    let tmp = path.with_file_name(format!(
        "{file}.tmp.{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut exp = Experiment::single(SchemeKind::SNucaLru, app)
        .classification(Classification::None)
        .warmup(warmup)
        .measure(measure)
        .capture_to(&tmp);
    if let Some(tok) = cancel {
        exp = exp.cancel_token(tok.clone());
    }
    let result = exp.run().and_then(|_| {
        std::fs::rename(&tmp, path).map_err(|e| wp_trace::TraceError::from(e).into())
    });
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map(|_| ())
}

/// Runs `f(0..n)` on a pool of `jobs` scoped worker threads, returning
/// results in index order. The whole simulation stack is `Send`, so each
/// worker owns its cells end to end; the first error (lowest index) wins,
/// whatever the worker interleaving — which is what keeps callers'
/// output independent of `WP_JOBS`. Also used by `wp-tenant` to fan a
/// scenario's schemes out without inventing a second thread pool.
pub fn parallel_map<T, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, HarnessError>
where
    T: Send,
    F: Fn(usize) -> Result<T, HarnessError> + Sync,
{
    let next = AtomicUsize::new(0);
    // Early abort: once any cell errors, workers stop claiming new cells
    // instead of simulating the rest of the grid before failing.
    let failed = std::sync::atomic::AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, HarnessError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..jobs.clamp(1, n.max(1)) {
            let worker = || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Worker isolation: a panicking cell fails with a typed
                // error instead of abandoning its slot and poisoning the
                // whole map (and, one level up, the serving daemon).
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                    .unwrap_or_else(|payload| {
                        Err(HarnessError::Panic(
                            whirlpool_repro::harness::panic_message(payload),
                        ))
                    });
                if r.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("result slot") = Some(r);
            };
            std::thread::Builder::new()
                .name(format!("wp-sweep-{w}"))
                .spawn_scoped(s, worker)
                .expect("spawn sweep worker");
            wp_obs::add(wp_obs::Counter::ThreadsSpawned, 1);
        }
    });
    let mut collected: Vec<Option<Result<T, HarnessError>>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot"))
        .collect();
    // The lowest-index error wins; slots left unclaimed by the abort
    // (always at higher indices than the error) are simply dropped.
    if let Some(i) = collected.iter().position(|r| matches!(r, Some(Err(_)))) {
        match collected.swap_remove(i) {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("position() found an Err here"),
        }
    }
    collected
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => Ok(v),
            _ => panic!("a worker abandoned a slot without reporting an error"),
        })
        .collect()
}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The scheme that ran.
    pub scheme: SchemeKind,
    /// What it ran.
    pub work: CellWork,
    /// The run's summary.
    pub summary: RunSummary,
    /// Wall-clock phase breakdown of the cell (decode/warmup/measure/…),
    /// attributed via the worker thread's span accumulator. Empty unless
    /// the observability registry is on (`WP_OBS=1`).
    pub phases: wp_obs::PhaseTotals,
}

/// A completed sweep: cell results in spec order plus the engine
/// environment that produced them (exec mode, jobs, cache statistics).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-cell results, in the order the cells were pushed.
    pub cells: Vec<CellResult>,
    /// Captures found warm in the cache.
    pub cache_hits: usize,
    /// Captures that had to run.
    pub cache_misses: usize,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// The event delivery path every cell used.
    pub exec: ExecMode,
}

impl SweepResult {
    /// One machine-readable JSON line for the whole sweep:
    /// `{"env":{…},"cells":[…]}`. The `env` block records the effective
    /// exec mode, `WP_JOBS`, and trace-cache hit/miss counts so a
    /// committed `BENCH_*.json` is self-describing; each cell additionally
    /// carries its wall-clock `phases` breakdown when observability was
    /// on. Those fields vary run to run by construction — comparisons
    /// that assert determinism use [`cells_json`](Self::cells_json), the
    /// projection that is bit-identical whatever `WP_JOBS`, cache
    /// temperature, or `WP_OBS` were.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"env\":{},\"cells\":[{}]}}",
            self.env_json(),
            self.cell_rows(true).join(","),
        )
    }

    /// The engine-environment block of [`to_json`](Self::to_json).
    pub fn env_json(&self) -> String {
        format!(
            "{{\"exec\":{},\"jobs\":{},\"trace_cache_hits\":{},\"trace_cache_misses\":{}}}",
            wp_sim::json_string(&self.exec.to_string()),
            self.jobs,
            self.cache_hits,
            self.cache_misses,
        )
    }

    /// The deterministic projection of the sweep: the cell results alone
    /// (no env block, no phase timings), bit-identical for a given cell
    /// list whatever `WP_JOBS`, the cache temperature, exec mode, or
    /// `WP_OBS` were.
    pub fn cells_json(&self) -> String {
        format!("{{\"cells\":[{}]}}", self.cell_rows(false).join(","))
    }

    fn cell_rows(&self, with_phases: bool) -> Vec<String> {
        self.cells
            .iter()
            .map(|c| {
                let mut row = format!(
                    "{{\"scheme\":{},\"work\":{},\"summary\":{}",
                    wp_sim::json_string(c.scheme.label()),
                    work_json(&c.work),
                    c.summary.to_json(),
                );
                if with_phases && !c.phases.is_empty() {
                    row.push_str(&format!(",\"phases\":{}", c.phases.to_json()));
                }
                row.push('}');
                row
            })
            .collect()
    }
}

fn work_json(work: &CellWork) -> String {
    match work {
        CellWork::Single {
            app,
            classification,
        } => format!(
            "{{\"app\":{},\"classification\":{}}}",
            wp_sim::json_string(app),
            wp_sim::json_string(&classification_label(*classification)),
        ),
        CellWork::Mix {
            apps,
            instrs,
            cores16,
        } => {
            let list: Vec<String> = apps.iter().map(|a| wp_sim::json_string(a)).collect();
            format!(
                "{{\"apps\":[{}],\"instrs\":{instrs},\"cores\":{}}}",
                list.join(","),
                if *cores16 { 16 } else { 4 },
            )
        }
    }
}

fn classification_label(c: Classification) -> String {
    match c {
        Classification::None => "none".into(),
        Classification::Manual => "manual".into(),
        Classification::WhirlTool { pools, train } => {
            format!("whirltool-{pools}-{}", if train { "train" } else { "ref" })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_orders_apps_outermost() {
        let spec = SweepSpec::grid(
            &[SchemeKind::SNucaLru, SchemeKind::Whirlpool],
            &["delaunay", "mcf"],
        );
        assert_eq!(spec.len(), 4);
        let labels: Vec<String> = spec
            .cells
            .iter()
            .map(|c| format!("{}/{}", c.scheme.label(), c.work.label()))
            .collect();
        assert_eq!(
            labels,
            [
                "LRU/delaunay",
                "Whirlpool/delaunay",
                "LRU/mcf",
                "Whirlpool/mcf"
            ]
        );
    }

    #[test]
    fn cache_path_keys_on_app_and_budgets() {
        let store = SweepSpec::new().cache_dir("/tmp/c").resolve_store();
        let a = store.path(&capture_key("delaunay", 100, 200));
        let b = store.path(&capture_key("delaunay", 100, 300));
        let c = store.path(&capture_key("mcf", 100, 200));
        assert_ne!(a, b, "measure budget is part of the key");
        assert_ne!(a, c, "app name is part of the key");
        assert_eq!(
            a,
            store.path(&capture_key("delaunay", 100, 200)),
            "key is stable"
        );
    }

    #[test]
    fn cancelled_token_aborts_before_any_cell() {
        let tok = CancelToken::new();
        tok.cancel();
        let mut spec = SweepSpec::new()
            .cache_dir(std::env::temp_dir().join("wp-sweep-cancel"))
            .cancel_token(tok);
        spec.push(
            SchemeKind::SNucaLru,
            CellWork::single("delaunay", Classification::None),
        );
        assert!(matches!(spec.run(), Err(HarnessError::Cancelled)));
    }

    #[test]
    fn classification_labels_are_distinct() {
        let all = [
            classification_label(Classification::None),
            classification_label(Classification::Manual),
            classification_label(Classification::WhirlTool {
                pools: 3,
                train: true,
            }),
            classification_label(Classification::WhirlTool {
                pools: 3,
                train: false,
            }),
        ];
        let set: std::collections::HashSet<&String> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn parallel_map_preserves_order_and_errors() {
        let out = parallel_map(4, 16, |i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        let err = parallel_map(4, 8, |i| {
            if i == 3 {
                Err(wp_trace::TraceError::Corrupt("boom".into()).into())
            } else {
                Ok(i)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn unknown_app_surfaces_before_any_capture() {
        // A typo'd registry name: typed error with a suggestion, not the
        // registry's panic (and no capture attempted).
        let mut spec = SweepSpec::new().cache_dir(std::env::temp_dir().join("wp-sweep-unknown"));
        spec.push(
            SchemeKind::SNucaLru,
            CellWork::single("delauny", Classification::None),
        );
        assert!(matches!(spec.run(), Err(HarnessError::UnknownApp { .. })));
        // A dangling trace URI: the harness's trace error.
        let mut spec = SweepSpec::new().cache_dir(std::env::temp_dir().join("wp-sweep-unknown"));
        spec.push(
            SchemeKind::SNucaLru,
            CellWork::single("trace:/nonexistent/x.wpt", Classification::None),
        );
        assert!(matches!(spec.run(), Err(HarnessError::Trace(_))));
    }
}
