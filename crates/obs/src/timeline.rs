//! Whirlpool-specific time series: pool-occupancy samples and the
//! reconfiguration log, serialized as JSONL.
//!
//! Both types are *data* — the simulation driver and the NUCA runtime
//! fill them by reading scheme state, never by mutating it, so enabling
//! these probes cannot perturb results. One JSON object per line; every
//! line carries a `"type"` discriminant (`pool_sample` / `reconfig`) so
//! mixed streams stay self-describing and tools can filter with grep.

use crate::json::{fmt_f64, quote};

/// Configuration of a run's observability probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sample every pool's occupancy and demand once per this many
    /// processed events (across all cores).
    pub sample_every: u64,
    /// Where to write the JSONL report; `None` keeps it in memory only
    /// (read it from the run's report object).
    pub out: Option<std::path::PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            sample_every: 100_000,
            out: None,
        }
    }
}

impl ObsConfig {
    /// Probes sampling every `sample_every` events, report kept in memory.
    pub fn every(sample_every: u64) -> Self {
        Self {
            sample_every: sample_every.max(1),
            out: None,
        }
    }

    /// Writes the JSONL report to `path` when the run finishes.
    #[must_use]
    pub fn out(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.out = Some(path.into());
        self
    }
}

/// One pool's occupancy and cumulative demand, as read from the scheme
/// at a sampling point (cycle stamped by the driver).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOcc {
    /// Pool / VC label (e.g. `pool:vertices@core0`, `thread0`).
    pub pool: String,
    /// Granules currently allocated to the pool.
    pub granules: usize,
    /// Whether the pool is in bypass mode (zero LLC capacity).
    pub bypassed: bool,
    /// LLC-bound accesses the pool has served so far (hits + misses +
    /// bypasses).
    pub accesses: u64,
    /// Misses so far (bypasses count as misses — they go to memory).
    pub misses: u64,
}

/// One timeline entry: a [`PoolOcc`] stamped with simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSample {
    /// Global cycle (laggard clock) at the sampling point.
    pub cycle: u64,
    /// Total events processed when the sample was taken.
    pub event: u64,
    /// The pool observation.
    pub occ: PoolOcc,
}

impl PoolSample {
    /// Cumulative miss rate (misses / accesses; 0 for an idle pool).
    pub fn miss_rate(&self) -> f64 {
        if self.occ.accesses == 0 {
            0.0
        } else {
            self.occ.misses as f64 / self.occ.accesses as f64
        }
    }

    /// One JSONL line: `{"type":"pool_sample","cycle":…,"event":…,
    /// "pool":…,"granules":…,"bypassed":…,"accesses":…,"misses":…,
    /// "miss_rate":…}`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"pool_sample\",\"cycle\":{},\"event\":{},\"pool\":{},\"granules\":{},\"bypassed\":{},\"accesses\":{},\"misses\":{},\"miss_rate\":{}}}",
            self.cycle,
            self.event,
            quote(&self.occ.pool),
            self.occ.granules,
            self.occ.bypassed,
            self.occ.accesses,
            self.occ.misses,
            fmt_f64(self.miss_rate()),
        )
    }
}

/// One pool's row in a reconfiguration decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolChange {
    /// Pool / VC label.
    pub pool: String,
    /// Granules allocated before the decision (`None` for a pool that
    /// did not exist yet).
    pub old_granules: Option<usize>,
    /// Granules allocated after.
    pub new_granules: usize,
    /// Bypass state after.
    pub bypassed: bool,
    /// The curve signal that drove the decision: the pool's interval
    /// miss curve's accesses-per-kilo-instruction at zero capacity.
    pub apki: f64,
}

/// One runtime reallocation: every pool's old→new allocation plus the
/// triggering curve signals.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigEvent {
    /// Global cycle at which the reconfiguration fired.
    pub cycle: u64,
    /// 1-based reconfiguration index.
    pub index: u64,
    /// Per-pool allocation rows.
    pub pools: Vec<PoolChange>,
}

impl ReconfigEvent {
    /// True when no pool's allocation or bypass state moved (the
    /// hysteresis kept the configuration).
    pub fn is_stable(&self) -> bool {
        self.pools
            .iter()
            .all(|p| p.old_granules == Some(p.new_granules))
    }

    /// One JSONL line per pool:
    /// `{"type":"reconfig","cycle":…,"index":…,"pool":…,
    /// "old_granules":…,"new_granules":…,"bypassed":…,"apki":…}`.
    /// `old_granules` is `null` for a pool new this interval.
    pub fn to_json_lines(&self) -> Vec<String> {
        self.pools
            .iter()
            .map(|p| {
                let old = match p.old_granules {
                    Some(g) => g.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"type\":\"reconfig\",\"cycle\":{},\"index\":{},\"pool\":{},\"old_granules\":{old},\"new_granules\":{},\"bypassed\":{},\"apki\":{}}}",
                    self.cycle,
                    self.index,
                    quote(&p.pool),
                    p.new_granules,
                    p.bypassed,
                    fmt_f64(p.apki),
                )
            })
            .collect()
    }
}

/// What happened to a tenant at a scenario epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEventKind {
    /// The tenant entered the system this epoch.
    Arrive,
    /// The tenant left the system this epoch.
    Depart,
    /// The tenant held a core and executed this epoch.
    Admit,
    /// The tenant was resident but no core was free.
    Wait,
    /// The tenant's SLO was violated this epoch.
    Violate,
}

impl TenantEventKind {
    /// The snake_case label used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            TenantEventKind::Arrive => "arrive",
            TenantEventKind::Depart => "depart",
            TenantEventKind::Admit => "admit",
            TenantEventKind::Wait => "wait",
            TenantEventKind::Violate => "violate",
        }
    }
}

/// One multi-tenant scenario event, as emitted by the `wp-tenant`
/// engine's per-scheme timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEvent {
    /// Scheme label the event occurred under.
    pub scheme: String,
    /// Scenario epoch (0-based).
    pub epoch: u64,
    /// Tenant name from the `.wps` file.
    pub tenant: String,
    /// What happened.
    pub kind: TenantEventKind,
}

impl TenantEvent {
    /// One JSONL line: `{"type":"tenant","scheme":…,"epoch":…,
    /// "tenant":…,"event":…}`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"tenant\",\"scheme\":{},\"epoch\":{},\"tenant\":{},\"event\":{}}}",
            quote(&self.scheme),
            self.epoch,
            quote(&self.tenant),
            quote(self.kind.name()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sample_line_shape() {
        let s = PoolSample {
            cycle: 123,
            event: 512,
            occ: PoolOcc {
                pool: "pool:pts@core0".into(),
                granules: 12,
                bypassed: false,
                accesses: 1000,
                misses: 250,
            },
        };
        let line = s.to_json_line();
        assert!(line.starts_with("{\"type\":\"pool_sample\""));
        assert!(line.contains("\"miss_rate\":0.25"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn reconfig_lines_flatten_per_pool() {
        let e = ReconfigEvent {
            cycle: 99,
            index: 2,
            pools: vec![
                PoolChange {
                    pool: "a".into(),
                    old_granules: Some(4),
                    new_granules: 8,
                    bypassed: false,
                    apki: 12.5,
                },
                PoolChange {
                    pool: "b".into(),
                    old_granules: None,
                    new_granules: 2,
                    bypassed: true,
                    apki: 0.0,
                },
            ],
        };
        assert!(!e.is_stable());
        let lines = e.to_json_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"old_granules\":4"));
        assert!(lines[1].contains("\"old_granules\":null"));
        assert!(lines[1].contains("\"bypassed\":true"));
    }

    #[test]
    fn tenant_event_line_shape() {
        let e = TenantEvent {
            scheme: "Memshare".into(),
            epoch: 3,
            tenant: "t\"7\"".into(),
            kind: TenantEventKind::Wait,
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"type\":\"tenant\""));
        assert!(line.contains("\"epoch\":3"));
        assert!(line.contains("\"event\":\"wait\""));
        assert!(line.contains("\\\"7\\\""), "tenant names escape: {line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn stable_event_detection() {
        let e = ReconfigEvent {
            cycle: 1,
            index: 1,
            pools: vec![PoolChange {
                pool: "a".into(),
                old_granules: Some(4),
                new_granules: 4,
                bypassed: false,
                apki: 1.0,
            }],
        };
        assert!(e.is_stable());
    }

    #[test]
    fn obs_config_builder() {
        let c = ObsConfig::every(0);
        assert_eq!(c.sample_every, 1, "zero clamps to 1");
        let c = ObsConfig::default().out("/tmp/x.jsonl");
        assert_eq!(c.out.as_deref(), Some(std::path::Path::new("/tmp/x.jsonl")));
    }
}
