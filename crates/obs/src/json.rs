//! Minimal JSON emission helpers, matching the hand-rolled conventions
//! used across the workspace (no serde offline): shortest-round-trip
//! float formatting, `null` for non-finite values, minimal string
//! escaping.

/// Formats an `f64` as a JSON value. Rust's `{}` for floats is the
/// shortest representation that round-trips, so string equality of two
/// emissions implies bit-identical values. Non-finite values have no
/// JSON spelling and become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a string for JSON (the labels emitted here are
/// scheme/pool names: quotes, backslashes, and control characters are
/// the only escapes they can need).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
