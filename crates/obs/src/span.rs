//! Wall-clock phase timing.
//!
//! A [`Span`] measures one phase of work: create it with [`span`], drop
//! it when the phase ends. Elapsed time accumulates in two places:
//!
//! * a process-wide atomic total per phase (exported by the registry's
//!   snapshot as `phases`), and
//! * a thread-local total per phase, drained by [`take_thread_phases`] —
//!   the sweep engine's per-cell attribution: each worker runs one cell
//!   at a time, so the thread-local delta across a cell *is* that cell's
//!   phase breakdown.
//!
//! Spans are cheap and disabled-by-default like the counters: while the
//! registry is off, [`span`] returns an inert guard without reading the
//! clock. Phases are independent accumulators, not a nesting stack — a
//! decode span inside a warmup span counts toward both, which is the
//! useful reading (decode is where warmup's wall-time went).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The phases of a run the stack instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Recording a `.wpt` capture (including the producing run).
    Capture,
    /// Decoding trace chunks on the simulating thread.
    Decode,
    /// The uncounted warmup window of a run.
    Warmup,
    /// The measured window of a run.
    Measure,
    /// MRC profiling (Mattson / SHARDS scans).
    Profile,
    /// WhirlTool pool classification.
    Classify,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::Capture,
        Phase::Decode,
        Phase::Warmup,
        Phase::Measure,
        Phase::Profile,
        Phase::Classify,
    ];

    /// The snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Capture => "capture",
            Phase::Decode => "decode",
            Phase::Warmup => "warmup",
            Phase::Measure => "measure",
            Phase::Profile => "profile",
            Phase::Classify => "classify",
        }
    }
}

const N_PHASES: usize = Phase::ALL.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static GLOBAL_NANOS: [AtomicU64; N_PHASES] = [ZERO; N_PHASES];

thread_local! {
    static THREAD_NANOS: Cell<[u64; N_PHASES]> = const { Cell::new([0; N_PHASES]) };
}

/// Per-phase elapsed seconds, as drained from a thread's accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTotals {
    nanos: [u64; N_PHASES],
}

impl PhaseTotals {
    /// Seconds accumulated in `phase`.
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.nanos[phase as usize] as f64 / 1e9
    }

    /// True when no phase recorded any time (e.g. observability was off).
    pub fn is_empty(&self) -> bool {
        self.nanos.iter().all(|&n| n == 0)
    }

    /// `(name, seconds)` rows for phases with nonzero time.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        Phase::ALL
            .iter()
            .filter(|&&p| self.nanos[p as usize] > 0)
            .map(|&p| (p.name(), self.seconds(p)))
            .collect()
    }

    /// Serializes nonzero phases as one JSON object, e.g.
    /// `{"warmup":0.12,"measure":0.48}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows()
            .iter()
            .map(|(n, s)| format!("\"{n}\":{}", crate::json::fmt_f64(*s)))
            .collect();
        format!("{{{}}}", rows.join(","))
    }
}

/// A live phase measurement; records on drop.
#[derive(Debug)]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        GLOBAL_NANOS[self.phase as usize].fetch_add(nanos, Ordering::Relaxed);
        THREAD_NANOS.with(|t| {
            let mut v = t.get();
            v[self.phase as usize] = v[self.phase as usize].saturating_add(nanos);
            t.set(v);
        });
    }
}

/// Starts timing `phase`. Inert (no clock read) while the registry is
/// disabled.
pub fn span(phase: Phase) -> Span {
    Span {
        phase,
        start: crate::registry::enabled().then(Instant::now),
    }
}

/// Drains the calling thread's phase accumulator, returning what was
/// recorded on this thread since the previous drain.
pub fn take_thread_phases() -> PhaseTotals {
    THREAD_NANOS.with(|t| PhaseTotals {
        nanos: t.replace([0; N_PHASES]),
    })
}

/// `(name, seconds)` for every phase, process-wide (the registry
/// snapshot's `phases` object; zero rows included for a stable schema).
pub(crate) fn global_phase_totals() -> Vec<(&'static str, f64)> {
    Phase::ALL
        .iter()
        .map(|&p| {
            (
                p.name(),
                GLOBAL_NANOS[p as usize].load(Ordering::Relaxed) as f64 / 1e9,
            )
        })
        .collect()
}

/// Zeroes the process-wide phase totals (thread-locals drain themselves).
pub(crate) fn reset_global_phases() {
    for p in &GLOBAL_NANOS {
        p.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_thread_totals() {
        crate::registry::set_enabled(true);
        let _ = take_thread_phases(); // drain anything earlier tests left
        {
            let _s = span(Phase::Warmup);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _s = span(Phase::Measure);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let totals = take_thread_phases();
        crate::registry::set_enabled(false);
        assert!(totals.seconds(Phase::Warmup) > 0.0);
        assert!(totals.seconds(Phase::Measure) > 0.0);
        assert_eq!(totals.seconds(Phase::Classify), 0.0);
        let json = totals.to_json();
        assert!(json.contains("\"warmup\":"));
        assert!(!json.contains("classify"));
        // Drained: a second take is empty.
        assert!(take_thread_phases().is_empty());
    }

    #[test]
    fn disabled_spans_record_nothing() {
        crate::registry::set_enabled(false);
        let _ = take_thread_phases();
        {
            let _s = span(Phase::Profile);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(take_thread_phases().is_empty());
        assert_eq!(take_thread_phases().to_json(), "{}");
    }
}
