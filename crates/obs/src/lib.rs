//! `wp-obs`: zero-dependency observability for the Whirlpool stack.
//!
//! Three layers, all std-only:
//!
//! 1. **The metrics registry** — a process-wide set of atomic counters
//!    ([`Counter`]), one log₂-bucketed histogram family ([`HistKind`]),
//!    and per-scheme access/miss tallies. Disabled (the default) every
//!    recording call is one relaxed atomic load and an early return;
//!    enabled it is a relaxed fetch-add. Enable with [`enable`] or
//!    `WP_OBS=1`. [`snapshot`] exports everything as one JSON object.
//! 2. **Phase spans** — wall-clock phase timing ([`Phase`]: capture, decode,
//!    warmup, measure, profile, classify). [`span()`] returns a guard
//!    that, on drop, adds the elapsed time to a process-wide *and* a
//!    thread-local accumulator; [`take_thread_phases`] drains the latter,
//!    which is how the sweep engine attributes phases to the cell that
//!    just ran on the worker thread.
//! 3. **Timelines** — Whirlpool-specific time series: [`PoolSample`]
//!    (per-pool occupancy and demand, sampled every N events by the
//!    simulation driver) and [`ReconfigEvent`] (one entry per runtime
//!    reallocation: cycle, per-pool old→new granules, and the curve
//!    signal that drove the decision). Both serialize one JSON object
//!    per line (JSONL), parseable by the repo's `bench_check` parser.
//!
//! Nothing in this crate perturbs simulation state: every probe is
//! read-only with respect to the modelled system, so results are
//! bit-identical with observability on or off — the invariant
//! `tests/obs_determinism.rs` locks down.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod registry;
mod span;
mod timeline;

pub use registry::{
    add, enable, enabled, observe, record_max, record_scheme, reset, set_enabled, snapshot,
    Counter, HistKind, Snapshot,
};
pub use span::{span, take_thread_phases, Phase, PhaseTotals, Span};
pub use timeline::{
    ObsConfig, PoolChange, PoolOcc, PoolSample, ReconfigEvent, TenantEvent, TenantEventKind,
};

pub use json::{fmt_f64, quote};
