//! The process-wide metrics registry.
//!
//! All storage is static: a fixed array of relaxed atomic counters, one
//! log₂-bucketed histogram family, and a mutex-guarded per-scheme tally.
//! The registry starts disabled (unless `WP_OBS=1` is set at first use)
//! and every recording call checks one relaxed atomic bool first, so the
//! disabled cost is an inlined load + branch.
//!
//! Hot-path discipline: nothing in the simulator records per *event*;
//! producers record per chunk, per batch, per quantum, or per run, which
//! keeps the enabled overhead on the batched warm sweep well under the
//! 2% budget.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::quote;

/// Every counter the registry tracks. The enum is the schema: adding a
/// variant adds a field to [`snapshot`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[non_exhaustive]
pub enum Counter {
    /// Compressed trace bytes decoded by the chunk decoder.
    TraceBytesDecoded,
    /// Chunks decoded (either read path).
    TraceChunksDecoded,
    /// Foreign-stream chunks frame-walked (not decoded) by `follow`.
    FollowChunksSkipped,
    /// Times the simulating thread blocked waiting on the prefetch
    /// decode thread (the lookahead failed to stay ahead).
    PrefetchStalls,
    /// Prefetch decode threads that died by panic.
    PrefetchPanics,
    /// Named worker threads spawned (`wp-prefetch`, `wp-sweep-<i>`).
    ThreadsSpawned,
    /// Lines evicted by SHARDS `s_max` threshold adaptation.
    ShardsEvictions,
    /// Utility-monitor interval rollovers (one per VC per reconfig).
    MonitorRollovers,
    /// Scheme reconfigurations observed by timeline probes.
    Reconfigurations,
    /// Pool-occupancy samples taken by timeline probes.
    PoolSamplesTaken,
    /// Sweep cells completed.
    SweepCellsCompleted,
    /// Sweep trace-cache hits (capture reused).
    TraceCacheHits,
    /// Sweep trace-cache misses (capture recorded).
    TraceCacheMisses,
    /// Steals performed by the task-parallel scheduler.
    PawsSteals,
    /// Tasks executed by the task-parallel scheduler.
    PawsTasks,
    /// Requests the experiment service accepted onto its job queue.
    ServeRequestsAccepted,
    /// Service jobs that ran to completion.
    ServeRequestsCompleted,
    /// Service jobs cancelled (by verb, disconnect, or shutdown drain).
    ServeRequestsCancelled,
    /// High-water mark of the service job queue depth (a gauge recorded
    /// via [`record_max`]).
    ServeQueueHighWater,
    /// Memoized MRC curve-store hits in the service store.
    CurveStoreHits,
    /// MRC curves the service store had to compute.
    CurveStoreMisses,
    /// WhirlTool classification runs answered from the harness memo.
    ClassifyMemoHits,
    /// WhirlTool classification runs that had to profile + cluster.
    ClassifyMemoMisses,
    /// Tenant arrivals admitted by the scenario engine.
    TenantArrivals,
    /// Tenant departures retired by the scenario engine.
    TenantDepartures,
    /// Scenario epochs simulated (one per non-empty epoch per scheme).
    TenantEpochsRun,
    /// Tenant-epochs that violated their SLO (waiting epochs included).
    TenantSloViolations,
    /// Faults fired by the `wp-fault` injection layer (one per shot).
    FaultsInjected,
    /// Service jobs whose worker panicked (isolated by `catch_unwind`).
    ServeWorkerPanics,
    /// Service jobs cancelled by the per-job wall-clock timeout.
    ServeJobTimeouts,
    /// Partial trailing `results.jsonl` records truncated at startup.
    ServeLogTornTails,
    /// Corrupt trace-cache entries evicted (and re-captured) by sweeps.
    TraceCacheEvictions,
    /// Client connect attempts retried against a slow-to-bind daemon.
    ClientConnectRetries,
}

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; 33] = [
        Counter::TraceBytesDecoded,
        Counter::TraceChunksDecoded,
        Counter::FollowChunksSkipped,
        Counter::PrefetchStalls,
        Counter::PrefetchPanics,
        Counter::ThreadsSpawned,
        Counter::ShardsEvictions,
        Counter::MonitorRollovers,
        Counter::Reconfigurations,
        Counter::PoolSamplesTaken,
        Counter::SweepCellsCompleted,
        Counter::TraceCacheHits,
        Counter::TraceCacheMisses,
        Counter::PawsSteals,
        Counter::PawsTasks,
        Counter::ServeRequestsAccepted,
        Counter::ServeRequestsCompleted,
        Counter::ServeRequestsCancelled,
        Counter::ServeQueueHighWater,
        Counter::CurveStoreHits,
        Counter::CurveStoreMisses,
        Counter::ClassifyMemoHits,
        Counter::ClassifyMemoMisses,
        Counter::TenantArrivals,
        Counter::TenantDepartures,
        Counter::TenantEpochsRun,
        Counter::TenantSloViolations,
        Counter::FaultsInjected,
        Counter::ServeWorkerPanics,
        Counter::ServeJobTimeouts,
        Counter::ServeLogTornTails,
        Counter::TraceCacheEvictions,
        Counter::ClientConnectRetries,
    ];

    /// The snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TraceBytesDecoded => "trace_bytes_decoded",
            Counter::TraceChunksDecoded => "trace_chunks_decoded",
            Counter::FollowChunksSkipped => "follow_chunks_skipped",
            Counter::PrefetchStalls => "prefetch_stalls",
            Counter::PrefetchPanics => "prefetch_panics",
            Counter::ThreadsSpawned => "threads_spawned",
            Counter::ShardsEvictions => "shards_evictions",
            Counter::MonitorRollovers => "monitor_rollovers",
            Counter::Reconfigurations => "reconfigurations",
            Counter::PoolSamplesTaken => "pool_samples_taken",
            Counter::SweepCellsCompleted => "sweep_cells_completed",
            Counter::TraceCacheHits => "trace_cache_hits",
            Counter::TraceCacheMisses => "trace_cache_misses",
            Counter::PawsSteals => "paws_steals",
            Counter::PawsTasks => "paws_tasks",
            Counter::ServeRequestsAccepted => "serve_requests_accepted",
            Counter::ServeRequestsCompleted => "serve_requests_completed",
            Counter::ServeRequestsCancelled => "serve_requests_cancelled",
            Counter::ServeQueueHighWater => "serve_queue_high_water",
            Counter::CurveStoreHits => "curve_store_hits",
            Counter::CurveStoreMisses => "curve_store_misses",
            Counter::ClassifyMemoHits => "classify_memo_hits",
            Counter::ClassifyMemoMisses => "classify_memo_misses",
            Counter::TenantArrivals => "tenant_arrivals",
            Counter::TenantDepartures => "tenant_departures",
            Counter::TenantEpochsRun => "tenant_epochs_run",
            Counter::TenantSloViolations => "tenant_slo_violations",
            Counter::FaultsInjected => "faults_injected",
            Counter::ServeWorkerPanics => "serve_worker_panics",
            Counter::ServeJobTimeouts => "serve_job_timeouts",
            Counter::ServeLogTornTails => "serve_log_torn_tails",
            Counter::TraceCacheEvictions => "trace_cache_evictions",
            Counter::ClientConnectRetries => "client_connect_retries",
        }
    }
}

/// Histogram families. Each is 17 log₂ buckets: bucket `b` counts values
/// `v` with `ceil(log2(v+1)) == b`, i.e. bucket 0 holds zeros and bucket
/// 16 holds everything ≥ 2¹⁵+1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[non_exhaustive]
pub enum HistKind {
    /// Events produced per `fill_batch` call on the replay path.
    BatchFill,
}

impl HistKind {
    /// All histogram families, in snapshot order.
    pub const ALL: [HistKind; 1] = [HistKind::BatchFill];

    /// The snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::BatchFill => "batch_fill",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_HISTS: usize = HistKind::ALL.len();
const HIST_BUCKETS: usize = 17;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static COUNTERS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];
static HISTS: [[AtomicU64; HIST_BUCKETS]; N_HISTS] = [[ZERO; HIST_BUCKETS]; N_HISTS];
/// Per-scheme `(accesses, misses)` tallies, recorded once per run.
static SCHEMES: Mutex<Vec<(String, u64, u64)>> = Mutex::new(Vec::new());

/// Whether the registry records. `INITED` guards the one-time `WP_OBS`
/// read; explicit [`set_enabled`] calls override the environment.
static STATE: AtomicBool = AtomicBool::new(false);
static INITED: AtomicBool = AtomicBool::new(false);

fn init_from_env() {
    if !INITED.swap(true, Ordering::Relaxed) {
        let on = matches!(std::env::var("WP_OBS").as_deref(), Ok("1") | Ok("on"));
        if on {
            STATE.store(true, Ordering::Relaxed);
        }
    }
}

/// Whether the registry is recording. The first call reads `WP_OBS`.
#[inline]
pub fn enabled() -> bool {
    if !INITED.load(Ordering::Relaxed) {
        init_from_env();
    }
    STATE.load(Ordering::Relaxed)
}

/// Turns recording on.
pub fn enable() {
    set_enabled(true);
}

/// Turns recording on or off explicitly (overrides `WP_OBS`).
pub fn set_enabled(on: bool) {
    INITED.store(true, Ordering::Relaxed);
    STATE.store(on, Ordering::Relaxed);
}

/// Adds `n` to a counter. A no-op while the registry is disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a gauge-style counter to at least `value` (relaxed
/// `fetch_max`) — used for high-water marks like the service queue
/// depth. A no-op while the registry is disabled.
#[inline]
pub fn record_max(counter: Counter, value: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_max(value, Ordering::Relaxed);
    }
}

/// Records `value` into a histogram family. A no-op while disabled.
#[inline]
pub fn observe(hist: HistKind, value: u64) {
    if enabled() {
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        HISTS[hist as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// Records a finished run's per-scheme access/miss totals. A no-op while
/// disabled.
pub fn record_scheme(name: &str, accesses: u64, misses: u64) {
    if !enabled() {
        return;
    }
    let mut schemes = SCHEMES.lock().expect("scheme tally poisoned");
    match schemes.iter_mut().find(|(n, _, _)| n == name) {
        Some(row) => {
            row.1 += accesses;
            row.2 += misses;
        }
        None => schemes.push((name.to_string(), accesses, misses)),
    }
}

/// Zeroes every counter, histogram, scheme tally, and phase accumulator.
/// (Recording state is untouched.)
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for h in &HISTS {
        for b in h {
            b.store(0, Ordering::Relaxed);
        }
    }
    SCHEMES.lock().expect("scheme tally poisoned").clear();
    crate::span::reset_global_phases();
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every [`Counter`].
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, per-bucket counts)` for every [`HistKind`].
    pub histograms: Vec<(&'static str, Vec<u64>)>,
    /// `(scheme, accesses, misses)` per recorded scheme.
    pub schemes: Vec<(String, u64, u64)>,
    /// `(phase, seconds)` process-wide phase totals.
    pub phases: Vec<(&'static str, f64)>,
}

impl Snapshot {
    /// Serializes the snapshot as one JSON object (single line).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{}:{v}", quote(n)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, buckets)| {
                let vals: Vec<String> = buckets.iter().map(|b| b.to_string()).collect();
                format!("{}:[{}]", quote(n), vals.join(","))
            })
            .collect();
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|(n, a, m)| format!("{}:{{\"accesses\":{a},\"misses\":{m}}}", quote(n)))
            .collect();
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(n, s)| format!("{}:{}", quote(n), crate::json::fmt_f64(*s)))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}},\"schemes\":{{{}}},\"phases\":{{{}}}}}",
            counters.join(","),
            hists.join(","),
            schemes.join(","),
            phases.join(",")
        )
    }
}

/// Copies the registry's current contents.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.name(), COUNTERS[c as usize].load(Ordering::Relaxed)))
            .collect(),
        histograms: HistKind::ALL
            .iter()
            .map(|&h| {
                (
                    h.name(),
                    HISTS[h as usize]
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                )
            })
            .collect(),
        schemes: SCHEMES.lock().expect("scheme tally poisoned").clone(),
        phases: crate::span::global_phase_totals(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests share state with
    // each other and with any concurrently running test that enables
    // recording. Each asserts on *deltas* of counters it owns.

    #[test]
    fn disabled_adds_are_dropped() {
        set_enabled(false);
        let before = snapshot()
            .counters
            .iter()
            .find(|(n, _)| *n == "paws_steals")
            .map(|&(_, v)| v)
            .unwrap();
        add(Counter::PawsSteals, 7);
        let after = snapshot()
            .counters
            .iter()
            .find(|(n, _)| *n == "paws_steals")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn record_max_is_a_high_water_mark() {
        set_enabled(true);
        record_max(Counter::ServeQueueHighWater, 5);
        record_max(Counter::ServeQueueHighWater, 3);
        let v = snapshot()
            .counters
            .iter()
            .find(|(n, _)| *n == "serve_queue_high_water")
            .map(|&(_, v)| v)
            .unwrap();
        set_enabled(false);
        assert!(v >= 5, "high-water keeps the max, got {v}");
    }

    #[test]
    fn enabled_adds_accumulate_and_snapshot_is_json() {
        set_enabled(true);
        add(Counter::PawsTasks, 3);
        add(Counter::PawsTasks, 4);
        observe(HistKind::BatchFill, 0);
        observe(HistKind::BatchFill, 256);
        record_scheme("TestScheme", 100, 10);
        let snap = snapshot();
        set_enabled(false);
        let tasks = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "paws_tasks")
            .map(|&(_, v)| v)
            .unwrap();
        assert!(tasks >= 7);
        let (_, buckets) = &snap.histograms[0];
        assert_eq!(buckets.len(), 17);
        assert!(buckets[0] >= 1, "zero lands in bucket 0");
        assert!(buckets[9] >= 1, "256 lands in bucket 9");
        let json = snap.to_json();
        assert!(json.contains("\"paws_tasks\""));
        assert!(json.contains("\"TestScheme\":{\"accesses\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
