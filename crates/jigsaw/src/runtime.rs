//! The NUCA management runtime: VC bookkeeping, page classification, the
//! access path, and the periodic reconfiguration loop.
//!
//! [`NucaRuntime`] is the engine shared by Jigsaw and Whirlpool. With
//! [`NucaConfig::per_pool_vcs`] off it is Jigsaw: one thread-private VC per
//! core plus a process VC, with lazy page upgrades. With it on, pools from
//! the workload's static classification get their own VCs — which is all
//! Whirlpool changes (Sec. 3.2): sizing, placement, and reconfiguration are
//! byte-for-byte the same code.

use std::collections::HashMap;
use wp_mrc::FastMap;

use wp_cache::{MonitorConfig, PartitionedCache};
use wp_mem::{PageId, VcId};
use wp_noc::CoreId;
use wp_sim::{
    AccessContext, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor, SystemConfig, Uncore,
};

use crate::placement::{place_and_trade, PlacementInput};
use crate::sizing::{size_vcs, SizingInput};
use crate::vc::{VcKind, VcState};
use crate::vtb::Vtb;

/// Configuration of the NUCA runtime.
#[derive(Debug, Clone)]
pub struct NucaConfig {
    /// Create a VC per workload pool (Whirlpool) instead of mapping all of
    /// a thread's data to its thread VC (Jigsaw).
    pub per_pool_vcs: bool,
    /// Allow single-accessor VCs to be bypassed (the Sec. 3.2 extension;
    /// both Jigsaw and Whirlpool are evaluated with it in the paper).
    pub bypass_enabled: bool,
    /// Per-VC monitor configuration.
    pub monitor: MonitorConfig,
    /// Extra VTB entries per core for user pools (the paper provisions 4;
    /// pools beyond this fall back to the thread VC).
    pub max_pools_per_core: usize,
}

impl NucaConfig {
    /// Builds a config matched to `sys` (curve resolution = total granules).
    pub fn for_system(sys: &SystemConfig, per_pool_vcs: bool, bypass_enabled: bool) -> Self {
        Self {
            per_pool_vcs,
            bypass_enabled,
            monitor: MonitorConfig {
                sample_rate_log2: 2,
                granule_lines: sys.granule_lines,
                curve_points: sys.total_granules() + 1,
                ewma_alpha: 0.65,
            },
            max_pools_per_core: 4,
        }
    }
}

/// One reconfiguration's per-VC allocation rows:
/// `(label, granules, bypassed)` for every live VC (Fig. 11a).
pub type VcAllocations = Vec<(String, usize, bool)>;

/// The shared Jigsaw/Whirlpool runtime. Implements [`LlcScheme`].
pub struct NucaRuntime {
    sys: SystemConfig,
    config: NucaConfig,
    label: String,
    vcs: Vec<VcState>,
    /// Page → VC index (the TLB tag store).
    page_map: FastMap<PageId, u32>,
    /// First-toucher of each page, for the lazy upgrade rule.
    page_owner: FastMap<PageId, CoreId>,
    /// One partitioned store per bank; partition key = VC index.
    banks: Vec<PartitionedCache>,
    /// Thread VC index per core (created at attach).
    thread_vc: Vec<Option<u32>>,
    /// The process VC index.
    process_vc: u32,
    /// Pool VCs created per core (bounded by `max_pools_per_core`).
    pools_per_core: Vec<usize>,
    bootstrapped: bool,
    reconfigurations: u64,
    /// `(cycle, per-VC (label, granules, bypassed))` at each
    /// reconfiguration — the allocation trace of Fig. 11a.
    history: Vec<(u64, VcAllocations)>,
    /// The richer observability log: one event per reconfiguration with
    /// old→new allocations and the curve signal that drove each sizing
    /// decision (exported through [`LlcScheme::reconfig_log`]).
    obs_log: Vec<wp_obs::ReconfigEvent>,
}

impl std::fmt::Debug for NucaRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NucaRuntime")
            .field("label", &self.label)
            .field("vcs", &self.vcs.len())
            .field("reconfigurations", &self.reconfigurations)
            .finish()
    }
}

impl NucaRuntime {
    /// Creates the runtime for a system. `label` is the scheme name used in
    /// reports ("Jigsaw", "Whirlpool", …).
    pub fn new(sys: SystemConfig, config: NucaConfig, label: impl Into<String>) -> Self {
        let num_banks = sys.floorplan.num_banks();
        let lines_per_bank = sys.lines_per_bank() as usize;
        let num_cores = sys.floorplan.num_cores();
        let mut rt = Self {
            label: label.into(),
            banks: (0..num_banks)
                .map(|_| PartitionedCache::new(lines_per_bank))
                .collect(),
            vcs: Vec::new(),
            page_map: FastMap::default(),
            page_owner: FastMap::default(),
            thread_vc: vec![None; num_cores],
            process_vc: 0,
            pools_per_core: vec![0; num_cores],
            bootstrapped: false,
            reconfigurations: 0,
            history: Vec::new(),
            obs_log: Vec::new(),
            config,
            sys,
        };
        // The process VC exists from the start, centered mid-chip.
        let mesh = rt.sys.floorplan.mesh();
        let center = wp_noc::Coord::new(mesh.width() / 2, mesh.height() / 2);
        rt.process_vc = rt.create_vc(VcKind::Process, center);
        rt
    }

    /// Number of reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// The VC states (for instrumentation and figures).
    pub fn vcs(&self) -> &[VcState] {
        &self.vcs
    }

    /// The allocation trace hook: granules currently allocated per VC,
    /// labelled (drives Fig. 11a).
    pub fn allocations(&self) -> VcAllocations {
        self.vcs
            .iter()
            .map(|v| (v.label(), v.allocated_granules, v.bypassed))
            .collect()
    }

    /// The allocation decisions of every reconfiguration so far:
    /// `(cycle, per-VC (label, granules, bypassed))` — Fig. 11a's trace.
    pub fn reconfig_history(&self) -> &[(u64, VcAllocations)] {
        &self.history
    }

    /// Appends one [`wp_obs::ReconfigEvent`] for the reconfiguration that
    /// just completed: `old` is the allocation table on entry, `apki` the
    /// per-VC curve signal handed to the sizer.
    fn log_reconfig(&mut self, now: u64, old: &VcAllocations, apki: &[f64]) {
        let pools = self
            .vcs
            .iter()
            .enumerate()
            .map(|(i, vc)| wp_obs::PoolChange {
                pool: vc.label(),
                old_granules: old.get(i).map(|&(_, g, _)| g),
                new_granules: vc.allocated_granules,
                bypassed: vc.bypassed,
                apki: apki.get(i).copied().unwrap_or(0.0),
            })
            .collect();
        self.obs_log.push(wp_obs::ReconfigEvent {
            cycle: now,
            index: self.reconfigurations,
            pools,
        });
    }

    fn create_vc(&mut self, kind: VcKind, center: wp_noc::Coord) -> u32 {
        let idx = self.vcs.len() as u32;
        let home_bank = self.sys.floorplan.banks_by_distance_from(center)[0];
        self.vcs.push(VcState::new(
            VcId(idx),
            kind,
            center,
            self.sys.floorplan.num_cores(),
            self.config.monitor,
            home_bank,
        ));
        idx
    }

    fn thread_vc_of(&mut self, core: CoreId) -> u32 {
        if let Some(idx) = self.thread_vc[core.0 as usize] {
            return idx;
        }
        let center = self.sys.floorplan.core_coord(core);
        let idx = self.create_vc(VcKind::ThreadPrivate(core), center);
        self.thread_vc[core.0 as usize] = Some(idx);
        idx
    }

    /// Resolves the VC of an access, applying the lazy-upgrade rule: pages
    /// start thread-private to their first toucher; an access from another
    /// core upgrades the page to the process VC (Sec. 2.4). Pool-tagged
    /// pages never upgrade — the pool VC's center adapts instead.
    fn resolve_vc(&mut self, core: CoreId, page: PageId) -> u32 {
        if let Some(&idx) = self.page_map.get(&page) {
            let is_pool = matches!(self.vcs[idx as usize].kind, VcKind::UserPool { .. });
            if !is_pool {
                if let Some(&owner) = self.page_owner.get(&page) {
                    if owner != core && idx != self.process_vc {
                        // Upgrade to the process VC; resident lines in the
                        // old VC become unreachable and age out.
                        self.page_map.insert(page, self.process_vc);
                        return self.process_vc;
                    }
                }
            }
            return idx;
        }
        let idx = self.thread_vc_of(core);
        self.page_map.insert(page, idx);
        self.page_owner.insert(page, core);
        idx
    }

    /// Initial configuration before the first reconfiguration: capacity is
    /// split evenly across live VCs and placed greedily — a reasonable
    /// stand-in for Jigsaw's warm-up interval.
    fn bootstrap(&mut self, uncore: &mut Uncore) {
        self.bootstrapped = true;
        let live: Vec<usize> = (0..self.vcs.len()).collect();
        if live.is_empty() {
            return;
        }
        let total = self.sys.total_granules();
        let share = total / live.len();
        let inputs: Vec<PlacementInput> = live
            .iter()
            .map(|&i| PlacementInput {
                granules: share,
                center: self.vcs[i].center,
                intensity: 1.0,
            })
            .collect();
        let placement = place_and_trade(
            &inputs,
            &self.sys.floorplan,
            self.sys.granules_per_bank() as u32,
        );
        for (slot, &i) in live.iter().enumerate() {
            self.vcs[i].allocated_granules = share;
            self.apply_shares(i, placement.shares_of(slot), uncore);
        }
    }

    /// Applies a placement to VC `i`: updates bank quotas (charging
    /// invalidation traffic for shrunk partitions) and rebuilds its VTB.
    fn apply_shares(&mut self, i: usize, shares: Vec<(wp_noc::BankId, u32)>, uncore: &mut Uncore) {
        let gl = self.sys.granule_lines;
        let new_quota: HashMap<u16, u64> =
            shares.iter().map(|&(b, g)| (b.0, g as u64 * gl)).collect();
        // Shrink/remove pass. Banks dropped from the VC are invalidated
        // (their lines are unreachable through the new VTB); banks merely
        // shrunk converge lazily, as Vantage's fine-grain partitioning
        // does, avoiding invalidation storms on small quota jitter.
        let old_banks: Vec<wp_noc::BankId> = self.vcs[i].shares.iter().map(|&(b, _)| b).collect();
        for b in old_banks {
            let new = new_quota.get(&b.0).copied().unwrap_or(0);
            let old = self.banks[b.0 as usize].quota(i as u32);
            if new == 0 && old > 0 {
                let evicted = self.banks[b.0 as usize].remove_partition(i as u32);
                uncore.reconfiguration_invalidations(b, evicted.len() as u64);
            } else if new < old as u64 {
                self.banks[b.0 as usize].set_quota_lazy(i as u32, new as usize);
            }
        }
        // Grow pass.
        for (&bank, &lines) in &new_quota {
            if lines > 0 {
                self.banks[bank as usize].set_quota_lazy(i as u32, lines as usize);
            }
        }
        // VTB update: minimal bucket reassignment keeps resident lines
        // reachable across reconfigurations (only moved capacity remaps).
        let vc = &mut self.vcs[i];
        vc.shares = shares
            .iter()
            .map(|&(b, g)| (b, g as u64 * gl))
            .filter(|&(_, l)| l > 0)
            .collect();
        if vc.shares.is_empty() {
            let home = self.sys.floorplan.banks_by_distance_from(vc.center)[0];
            vc.vtb = Vtb::degenerate(home);
        } else {
            vc.vtb.rebalance(&vc.shares);
        }
        vc.vtb.set_bypass(vc.bypassed);
    }
}

impl LlcScheme for NucaRuntime {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn attach_core(&mut self, core: CoreId, pools: &[PoolDescriptor]) {
        self.thread_vc_of(core);
        if !self.config.per_pool_vcs {
            return;
        }
        for pool in pools {
            if pool.pool.is_none() {
                continue; // untagged data stays in the thread VC
            }
            if self.pools_per_core[core.0 as usize] >= self.config.max_pools_per_core {
                break; // out of VTB entries: remaining pools use the thread VC
            }
            self.pools_per_core[core.0 as usize] += 1;
            let center = self.sys.floorplan.core_coord(core);
            let idx = self.create_vc(
                VcKind::UserPool {
                    home: core,
                    name: pool.name.clone(),
                },
                center,
            );
            for &page in &pool.pages {
                self.page_map.insert(page, idx);
                self.page_owner.insert(page, core);
            }
        }
    }

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        if !self.bootstrapped {
            self.bootstrap(uncore);
        }
        let idx = self.resolve_vc(ctx.core, ctx.line.page());
        let vc = &mut self.vcs[idx as usize];
        vc.note_access(ctx.core);
        vc.monitor.record(ctx.line.0);
        if vc.bypassed {
            vc.bypasses += 1;
            let latency = uncore.bypass_to_memory(ctx.core, ctx.line);
            return LlcResponse {
                latency,
                outcome: LlcOutcome::Bypass,
            };
        }
        let bank = vc.vtb.lookup(ctx.line);
        match self.banks[bank.0 as usize].access(idx, ctx.line.0) {
            wp_cache::AccessOutcome::Hit => {
                self.vcs[idx as usize].hits += 1;
                LlcResponse {
                    latency: uncore.bank_hit(ctx.core, bank),
                    outcome: LlcOutcome::Hit,
                }
            }
            wp_cache::AccessOutcome::Miss { .. } => {
                self.vcs[idx as usize].misses += 1;
                LlcResponse {
                    latency: uncore.bank_miss_to_memory(ctx.core, bank, ctx.line),
                    outcome: LlcOutcome::Miss,
                }
            }
        }
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        self.reconfigurations += 1;
        let old_alloc = self.allocations();
        let plan = self.sys.floorplan.clone();
        let core_coords: Vec<wp_noc::Coord> = (0..plan.num_cores())
            .map(|c| plan.core_coord(CoreId(c as u16)))
            .collect();
        // 1. Per-VC: normalize curves by their accessors' instructions,
        //    update centers, roll monitors over.
        let mut inputs = Vec::with_capacity(self.vcs.len());
        for vc in &mut self.vcs {
            let norm: u64 = vc
                .core_accesses
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(c, _)| uncore.interval_instructions[c])
                .sum();
            let norm = if norm == 0 {
                uncore.interval_instructions.iter().sum::<u64>().max(1)
            } else {
                norm
            };
            vc.update_center(&core_coords);
            let single = vc.single_accessor().is_some();
            let bypassable = self.config.bypass_enabled && single;
            let curve = vc.monitor.rollover(norm);
            vc.end_interval();
            inputs.push(SizingInput {
                apki: curve.at_zero(),
                miss_curve: curve,
                center: vc.center,
                bypassable,
            });
        }
        // 2. Size on latency curves.
        let sizing = size_vcs(
            &inputs,
            &plan,
            self.sys.granules_per_bank(),
            self.sys.bank_latency,
            self.sys.miss_penalty(),
            self.sys.total_granules(),
        );
        // Hysteresis: a VC whose allocation moved by <5% (monitor noise)
        // keeps its current size — re-sizing for jitter costs remapping
        // misses for no benefit. If every VC is stable, keep the whole
        // configuration (no re-placement at all).
        let mut sizing = sizing;
        let mut any_changed = false;
        if self.bootstrapped && self.reconfigurations > 1 {
            for (i, vc) in self.vcs.iter().enumerate() {
                let old = vc.allocated_granules as f64;
                let new = sizing.granules[i] as f64;
                let stable =
                    sizing.bypassed[i] == vc.bypassed && (new - old).abs() <= (0.05 * old).max(1.0);
                if stable {
                    sizing.granules[i] = vc.allocated_granules;
                    sizing.bypassed[i] = vc.bypassed;
                } else {
                    any_changed = true;
                }
            }
            if !any_changed {
                self.history.push((uncore.now, self.allocations()));
                let apki: Vec<f64> = inputs.iter().map(|i| i.apki).collect();
                self.log_reconfig(uncore.now, &old_alloc, &apki);
                return;
            }
            // Frozen sizes may momentarily exceed capacity together with
            // grown ones; scale grown VCs back if needed.
            let total: usize = sizing.granules.iter().sum();
            let budget = self.sys.total_granules();
            if total > budget {
                let mut excess = total - budget;
                for (i, g) in sizing.granules.iter_mut().enumerate() {
                    if excess == 0 {
                        break;
                    }
                    let old = self.vcs[i].allocated_granules;
                    if *g > old {
                        let cut = (*g - old).min(excess);
                        *g -= cut;
                        excess -= cut;
                    }
                }
            }
        }
        // 3. Place with trading.
        for (i, vc) in self.vcs.iter_mut().enumerate() {
            vc.allocated_granules = sizing.granules[i];
        }
        let placement_inputs: Vec<PlacementInput> = self
            .vcs
            .iter()
            .enumerate()
            .map(|(i, vc)| PlacementInput {
                granules: sizing.granules[i],
                center: vc.center,
                intensity: vc.intensity(),
            })
            .collect();
        let placement = place_and_trade(
            &placement_inputs,
            &plan,
            self.sys.granules_per_bank() as u32,
        );
        // 4. Apply, handling bypass-mode switches.
        for i in 0..self.vcs.len() {
            let entering_bypass = sizing.bypassed[i] && !self.vcs[i].bypassed;
            let exiting_bypass = !sizing.bypassed[i] && self.vcs[i].bypassed;
            self.vcs[i].bypassed = sizing.bypassed[i];
            if entering_bypass {
                // Invalidate the VC in the LLC (coherence, Sec. 3.2).
                for b in 0..self.banks.len() {
                    let lines = self.banks[b].remove_partition(i as u32);
                    uncore.reconfiguration_invalidations(
                        wp_noc::BankId(b as u16),
                        lines.len() as u64,
                    );
                }
            }
            let _ = exiting_bypass; // L2 invalidation traffic is negligible
            self.apply_shares(i, placement.shares_of(i), uncore);
        }
        self.bootstrapped = true;
        self.history.push((uncore.now, self.allocations()));
        let apki: Vec<f64> = inputs.iter().map(|i| i.apki).collect();
        self.log_reconfig(uncore.now, &old_alloc, &apki);
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        let lines_per_bank = self.sys.lines_per_bank() as f64;
        let mut out = Vec::new();
        for vc in &self.vcs {
            for &(bank, lines) in &vc.shares {
                out.push((bank.0 as usize, vc.label(), lines as f64 / lines_per_bank));
            }
        }
        out
    }

    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        self.vcs
            .iter()
            .map(|vc| wp_obs::PoolOcc {
                pool: vc.label(),
                granules: vc.allocated_granules,
                bypassed: vc.bypassed,
                accesses: vc.hits + vc.misses + vc.bypasses,
                // Bypasses go to memory, so the timeline counts them as
                // misses — same convention as the figures' MPKI.
                misses: vc.misses + vc.bypasses,
            })
            .collect()
    }

    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        self.obs_log.clone()
    }
}

/// The baseline Jigsaw scheme: [`NucaRuntime`] without per-pool VCs.
#[derive(Debug)]
pub struct JigsawScheme(NucaRuntime);

impl JigsawScheme {
    /// Jigsaw with the bypass extension (the paper's default comparison).
    pub fn new(sys: SystemConfig) -> Self {
        let cfg = NucaConfig::for_system(&sys, false, true);
        Self(NucaRuntime::new(sys, cfg, "Jigsaw"))
    }

    /// Jigsaw without bypassing (the Fig. 21/22 ablation).
    pub fn without_bypass(sys: SystemConfig) -> Self {
        let cfg = NucaConfig::for_system(&sys, false, false);
        Self(NucaRuntime::new(sys, cfg, "Jigsaw-NoBypass"))
    }

    /// The inner runtime (instrumentation).
    pub fn runtime(&self) -> &NucaRuntime {
        &self.0
    }
}

impl LlcScheme for JigsawScheme {
    fn name(&self) -> String {
        self.0.name()
    }

    fn attach_core(&mut self, core: CoreId, pools: &[PoolDescriptor]) {
        self.0.attach_core(core, pools);
    }

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        self.0.access(ctx, uncore)
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        self.0.reconfigure(uncore);
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        self.0.bank_occupancy()
    }

    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        self.0.pool_occupancy()
    }

    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        self.0.reconfig_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::LineAddr;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn pages_start_thread_private() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        rt.access(ctx(0, 100), &mut u);
        let page = LineAddr(100).page();
        let idx = rt.page_map[&page];
        assert!(matches!(
            rt.vcs[idx as usize].kind,
            VcKind::ThreadPrivate(CoreId(0))
        ));
    }

    #[test]
    fn foreign_access_upgrades_to_process_vc() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        rt.attach_core(CoreId(1), &[]);
        rt.access(ctx(0, 100), &mut u);
        rt.access(ctx(1, 100), &mut u); // same page, different core
        let page = LineAddr(100).page();
        assert_eq!(rt.page_map[&page], rt.process_vc);
    }

    #[test]
    fn pool_pages_go_to_pool_vc_and_never_upgrade() {
        let cfg = NucaConfig::for_system(&sys(), true, true);
        let mut rt = NucaRuntime::new(sys(), cfg, "W");
        let mut u = Uncore::new(sys());
        let pool = PoolDescriptor {
            name: "vertices".into(),
            pool: Some(wp_mem::PoolId(1)),
            pages: vec![LineAddr(100).page()],
            bytes: 4096,
        };
        rt.attach_core(CoreId(0), std::slice::from_ref(&pool));
        rt.access(ctx(0, 100), &mut u);
        rt.access(ctx(2, 100), &mut u);
        let page = LineAddr(100).page();
        let idx = rt.page_map[&page];
        assert!(matches!(rt.vcs[idx as usize].kind, VcKind::UserPool { .. }));
    }

    #[test]
    fn jigsaw_ignores_pools() {
        let mut j = JigsawScheme::new(sys());
        let pool = PoolDescriptor {
            name: "p".into(),
            pool: Some(wp_mem::PoolId(1)),
            pages: vec![PageId(5)],
            bytes: 4096,
        };
        j.attach_core(CoreId(0), &[pool]);
        // Only process VC + thread VC exist.
        assert_eq!(j.runtime().vcs().len(), 2);
    }

    #[test]
    fn max_pools_per_core_enforced() {
        let cfg = NucaConfig::for_system(&sys(), true, true);
        let mut rt = NucaRuntime::new(sys(), cfg, "W");
        let pools: Vec<PoolDescriptor> = (0..6)
            .map(|i| PoolDescriptor {
                name: format!("p{i}"),
                pool: Some(wp_mem::PoolId(i + 1)),
                pages: vec![PageId(100 + i as u64)],
                bytes: 4096,
            })
            .collect();
        rt.attach_core(CoreId(0), &pools);
        let user_vcs = rt
            .vcs()
            .iter()
            .filter(|v| matches!(v.kind, VcKind::UserPool { .. }))
            .count();
        assert_eq!(user_vcs, 4, "provisioned VTB entries cap pools at 4");
    }

    #[test]
    fn repeated_access_hits_after_fill() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        let first = rt.access(ctx(0, 7), &mut u);
        assert_eq!(first.outcome, LlcOutcome::Miss);
        let second = rt.access(ctx(0, 7), &mut u);
        assert_eq!(second.outcome, LlcOutcome::Hit);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn reconfigure_allocates_to_hot_vc() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        // Loop over a 1 MB working set (16 granules) from core 0.
        for rep in 0..4 {
            for l in 0..16_384u64 {
                rt.access(ctx(0, l), &mut u);
            }
            let _ = rep;
        }
        u.interval_instructions[0] = 1_000_000;
        rt.reconfigure(&mut u);
        let thread_vc = rt.thread_vc[0].unwrap() as usize;
        let alloc = rt.vcs[thread_vc].allocated_granules;
        assert!(
            (12..=40).contains(&alloc),
            "thread VC should get ~its 16-granule working set, got {alloc}"
        );
        // Warm the new placement (the reconfiguration moved lines to
        // different banks), then the working set should mostly hit.
        for l in 0..16_384u64 {
            rt.access(ctx(0, l), &mut u);
        }
        let mut hits = 0;
        for l in 0..16_384u64 {
            if rt.access(ctx(0, l), &mut u).outcome == LlcOutcome::Hit {
                hits += 1;
            }
        }
        assert!(hits > 12_000, "only {hits}/16384 hits after reconfigure");
    }

    #[test]
    fn streaming_thread_vc_bypasses_under_jigsaw_with_bypass() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        // Pure streaming: never re-touch a line. Needs two reconfigs: one
        // to learn the flat curve, one to act on it.
        let mut next = 0u64;
        for _ in 0..2 {
            for _ in 0..100_000 {
                rt.access(ctx(0, next), &mut u);
                next += 1;
            }
            u.interval_instructions[0] = 1_000_000;
            rt.reconfigure(&mut u);
        }
        let thread_vc = rt.thread_vc[0].unwrap() as usize;
        assert!(
            rt.vcs[thread_vc].bypassed,
            "streaming VC should be bypassed"
        );
        let r = rt.access(ctx(0, next), &mut u);
        assert_eq!(r.outcome, LlcOutcome::Bypass);
    }

    #[test]
    fn no_bypass_config_never_bypasses() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, false), "JNB");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        let mut next = 0u64;
        for _ in 0..2 {
            for _ in 0..50_000 {
                rt.access(ctx(0, next), &mut u);
                next += 1;
            }
            u.interval_instructions[0] = 500_000;
            rt.reconfigure(&mut u);
        }
        assert!(rt.vcs.iter().all(|v| !v.bypassed));
    }

    #[test]
    fn occupancy_reports_shares() {
        let mut rt = NucaRuntime::new(sys(), NucaConfig::for_system(&sys(), false, true), "J");
        let mut u = Uncore::new(sys());
        rt.attach_core(CoreId(0), &[]);
        // Re-walk a working set so the VC has reuse and earns capacity
        // (a single cold pass would correctly be bypassed instead).
        for _ in 0..3 {
            for l in 0..8192u64 {
                rt.access(ctx(0, l), &mut u);
            }
        }
        u.interval_instructions[0] = 100_000;
        rt.reconfigure(&mut u);
        let occ = rt.bank_occupancy();
        assert!(!occ.is_empty());
        for (bank, _, frac) in occ {
            assert!(bank < 25);
            assert!(frac > 0.0 && frac <= 1.0 + 1e-9);
        }
    }
}
