//! Virtual-cache state.

use wp_cache::{MonitorConfig, UtilityMonitor};
use wp_mem::VcId;
use wp_noc::{BankId, Coord, CoreId};

use crate::vtb::Vtb;

/// What a VC holds (Sec. 2.4: thread-private, process, and global VCs;
/// Sec. 3.2 adds user-level pool VCs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcKind {
    /// Data private to one thread (pages start here and upgrade lazily).
    ThreadPrivate(CoreId),
    /// Data shared by threads of one process.
    Process,
    /// Data shared across processes.
    Global,
    /// A user-level pool VC (Whirlpool): created via `sys_vc_alloc` and
    /// tagged onto pages by the pool allocator.
    UserPool {
        /// The core whose thread created the pool (its initial center).
        home: CoreId,
        /// Pool name for reports.
        name: String,
    },
}

/// Runtime state of one virtual cache.
#[derive(Debug)]
pub struct VcState {
    /// The VC's id as carried in page tags.
    pub id: VcId,
    /// What it holds.
    pub kind: VcKind,
    /// The VTB entry mapping its addresses to banks.
    pub vtb: Vtb,
    /// Per-bank line quotas `(bank, lines)` from the last reconfiguration.
    pub shares: Vec<(BankId, u64)>,
    /// Utility monitor (GMON) observing this VC's access stream.
    pub monitor: UtilityMonitor,
    /// Accesses per core in the current interval (drives the center of
    /// mass and the single-accessor bypass rule).
    pub core_accesses: Vec<u64>,
    /// Whether the VC is currently bypassed.
    pub bypassed: bool,
    /// Whether the runtime may bypass this VC (requires single-thread
    /// access; Whirlpool enables this, baseline Jigsaw can too when its
    /// bypass extension is on).
    pub bypass_allowed: bool,
    /// Center of mass used for placement (tile coordinate).
    pub center: Coord,
    /// Granules allocated at the last reconfiguration.
    pub allocated_granules: usize,
    /// Smoothed accesses-per-interval (EWMA), for placement intensity.
    pub smoothed_accesses: f64,
    /// Lifetime LLC hits served from this VC.
    pub hits: u64,
    /// Lifetime LLC misses through this VC.
    pub misses: u64,
    /// Lifetime bypassed accesses.
    pub bypasses: u64,
}

impl VcState {
    /// Creates a VC centered at `center` with a monitor configured for the
    /// system's curve resolution.
    pub fn new(
        id: VcId,
        kind: VcKind,
        center: Coord,
        num_cores: usize,
        monitor_config: MonitorConfig,
        home_bank: BankId,
    ) -> Self {
        Self {
            id,
            kind,
            vtb: Vtb::degenerate(home_bank),
            shares: Vec::new(),
            monitor: UtilityMonitor::new(monitor_config),
            core_accesses: vec![0; num_cores],
            bypassed: false,
            bypass_allowed: false,
            center,
            allocated_granules: 0,
            smoothed_accesses: 0.0,
            hits: 0,
            misses: 0,
            bypasses: 0,
        }
    }

    /// Records an access for interval bookkeeping (the monitor is fed
    /// separately with the line address).
    pub fn note_access(&mut self, core: CoreId) {
        self.core_accesses[core.0 as usize] += 1;
    }

    /// Total accesses this interval.
    pub fn interval_accesses(&self) -> u64 {
        self.core_accesses.iter().sum()
    }

    /// Whether a single core produced all of this interval's accesses
    /// (the safety condition for bypassing, Sec. 3.2).
    pub fn single_accessor(&self) -> Option<CoreId> {
        let mut owner = None;
        for (i, &n) in self.core_accesses.iter().enumerate() {
            if n > 0 {
                if owner.is_some() {
                    return None;
                }
                owner = Some(CoreId(i as u16));
            }
        }
        owner
    }

    /// Updates the center of mass from this interval's per-core accesses
    /// (weighted centroid of requesting cores, snapped to the grid).
    /// Quiet intervals keep the previous center.
    pub fn update_center(&mut self, core_coords: &[Coord]) {
        let total: u64 = self.core_accesses.iter().sum();
        if total == 0 {
            return;
        }
        let (mut x, mut y) = (0.0f64, 0.0f64);
        for (i, &n) in self.core_accesses.iter().enumerate() {
            let w = n as f64 / total as f64;
            x += core_coords[i].x as f64 * w;
            y += core_coords[i].y as f64 * w;
        }
        self.center = Coord::new(x.round() as u16, y.round() as u16);
    }

    /// Ends the interval: updates smoothed access rate and clears per-core
    /// counters. Returns this interval's raw access count.
    pub fn end_interval(&mut self) -> u64 {
        let n = self.interval_accesses();
        const ALPHA: f64 = 0.6;
        self.smoothed_accesses = ALPHA * n as f64 + (1.0 - ALPHA) * self.smoothed_accesses;
        self.core_accesses.iter_mut().for_each(|c| *c = 0);
        n
    }

    /// Placement intensity: accesses per granule of allocation — "lines
    /// that are accessed more frequently pay a larger penalty for poor
    /// placement" (Sec. 2.4).
    pub fn intensity(&self) -> f64 {
        self.smoothed_accesses / self.allocated_granules.max(1) as f64
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match &self.kind {
            VcKind::ThreadPrivate(c) => format!("thread{}", c.0),
            VcKind::Process => "process".into(),
            VcKind::Global => "global".into(),
            VcKind::UserPool { name, .. } => name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcState {
        VcState::new(
            VcId(1),
            VcKind::ThreadPrivate(CoreId(0)),
            Coord::new(0, 2),
            4,
            MonitorConfig::default(),
            BankId(0),
        )
    }

    #[test]
    fn single_accessor_detection() {
        let mut v = vc();
        assert_eq!(v.single_accessor(), None); // no accesses at all
        v.note_access(CoreId(2));
        v.note_access(CoreId(2));
        assert_eq!(v.single_accessor(), Some(CoreId(2)));
        v.note_access(CoreId(0));
        assert_eq!(v.single_accessor(), None);
    }

    #[test]
    fn center_follows_accessors() {
        let mut v = vc();
        let coords = [
            Coord::new(0, 2),
            Coord::new(2, 0),
            Coord::new(4, 2),
            Coord::new(2, 4),
        ];
        // All accesses from core 2 (right edge): center moves there.
        for _ in 0..10 {
            v.note_access(CoreId(2));
        }
        v.update_center(&coords);
        assert_eq!(v.center, Coord::new(4, 2));
        // Mixed 50/50 between left and right: center in the middle.
        v.end_interval();
        for _ in 0..5 {
            v.note_access(CoreId(0));
            v.note_access(CoreId(2));
        }
        v.update_center(&coords);
        assert_eq!(v.center, Coord::new(2, 2));
    }

    #[test]
    fn quiet_interval_keeps_center() {
        let mut v = vc();
        let coords = [Coord::new(0, 2); 4];
        let before = v.center;
        v.update_center(&coords);
        assert_eq!(v.center, before);
    }

    #[test]
    fn interval_rollover_smooths() {
        let mut v = vc();
        for _ in 0..100 {
            v.note_access(CoreId(0));
        }
        assert_eq!(v.end_interval(), 100);
        assert!(v.smoothed_accesses > 0.0);
        let s1 = v.smoothed_accesses;
        assert_eq!(v.end_interval(), 0);
        assert!(v.smoothed_accesses < s1, "idle interval decays the rate");
    }

    #[test]
    fn intensity_divides_by_allocation() {
        let mut v = vc();
        for _ in 0..60 {
            v.note_access(CoreId(0));
        }
        v.end_interval();
        v.allocated_granules = 6;
        let i6 = v.intensity();
        v.allocated_granules = 12;
        assert!(v.intensity() < i6);
    }
}
