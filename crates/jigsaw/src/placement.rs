//! The trading placement algorithm (Sec. 2.4; Beckmann et al., HPCA'15).
//!
//! After sizing, VC allocations are placed in banks. Placement first runs a
//! greedy pass — VCs claim capacity from the banks nearest their center, in
//! descending *intensity* (accesses per granule) so the hottest data lands
//! closest — then a trading pass exchanges granules between VCs whenever
//! the swap reduces total data movement (Σ accesses × distance).

use wp_noc::{BankId, Coord, Floorplan};

/// Placement input for one VC.
#[derive(Debug, Clone)]
pub struct PlacementInput {
    /// Granules to place.
    pub granules: usize,
    /// Consumer center of mass.
    pub center: Coord,
    /// Accesses per granule (placement priority and trading weight).
    pub intensity: f64,
}

/// Placement result: per-VC granule counts per bank.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResult {
    /// `assignments[vc][bank] = granules` (dense `num_banks` vectors).
    pub assignments: Vec<Vec<u32>>,
}

impl PlacementResult {
    /// Per-bank `(BankId, granules)` pairs for one VC, skipping zeros.
    pub fn shares_of(&self, vc: usize) -> Vec<(BankId, u32)> {
        self.assignments[vc]
            .iter()
            .enumerate()
            .filter(|(_, &g)| g > 0)
            .map(|(b, &g)| (BankId(b as u16), g))
            .collect()
    }

    /// Total data-movement cost under this placement (Σ intensity ×
    /// granules × hops) — the objective trading minimizes.
    pub fn cost(&self, inputs: &[PlacementInput], plan: &Floorplan) -> f64 {
        let mut total = 0.0;
        for (vc, input) in inputs.iter().enumerate() {
            for (bank, &g) in self.assignments[vc].iter().enumerate() {
                if g > 0 {
                    let hops = plan
                        .mesh()
                        .hops(input.center, plan.bank_coord(BankId(bank as u16)));
                    total += input.intensity * g as f64 * hops as f64;
                }
            }
        }
        total
    }
}

/// Greedy placement followed by pairwise trading.
///
/// `granules_per_bank` bounds each bank's capacity. Trading runs passes of
/// first-improvement swaps until a pass makes no progress (or the pass cap
/// is hit); each swap moves one granule of VC `a` from bank `x` to bank `y`
/// and one granule of VC `b` the other way, accepted when it lowers the
/// combined intensity-weighted distance.
pub fn place_and_trade(
    inputs: &[PlacementInput],
    plan: &Floorplan,
    granules_per_bank: u32,
) -> PlacementResult {
    let num_banks = plan.num_banks();
    let mut free: Vec<u32> = vec![granules_per_bank; num_banks];
    let mut assignments = vec![vec![0u32; num_banks]; inputs.len()];

    // Greedy pass: hottest VCs claim the nearest banks first.
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| {
        inputs[b]
            .intensity
            .partial_cmp(&inputs[a].intensity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &vc in &order {
        let mut remaining = inputs[vc].granules as u32;
        if remaining == 0 {
            continue;
        }
        for bank in plan.banks_by_distance_from(inputs[vc].center) {
            if remaining == 0 {
                break;
            }
            let b = bank.0 as usize;
            let take = remaining.min(free[b]);
            if take > 0 {
                assignments[vc][b] += take;
                free[b] -= take;
                remaining -= take;
            }
        }
        debug_assert_eq!(remaining, 0, "sizing never exceeds total capacity");
    }

    // Trading pass: swap granules pairwise while it reduces movement.
    let hops = |vc: usize, bank: usize| -> f64 {
        plan.mesh()
            .hops(inputs[vc].center, plan.bank_coord(BankId(bank as u16))) as f64
    };
    const MAX_PASSES: usize = 8;
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        for a in 0..inputs.len() {
            for b in (a + 1)..inputs.len() {
                for x in 0..num_banks {
                    if assignments[a][x] == 0 {
                        continue;
                    }
                    for y in 0..num_banks {
                        if x == y || assignments[b][y] == 0 {
                            continue;
                        }
                        // Move a: x→y, b: y→x.
                        let delta = inputs[a].intensity * (hops(a, y) - hops(a, x))
                            + inputs[b].intensity * (hops(b, x) - hops(b, y));
                        if delta < -1e-9 {
                            assignments[a][x] -= 1;
                            assignments[a][y] += 1;
                            assignments[b][y] -= 1;
                            assignments[b][x] += 1;
                            improved = true;
                            if assignments[a][x] == 0 {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    PlacementResult { assignments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_noc::CoreId;

    fn plan() -> Floorplan {
        Floorplan::four_core()
    }

    #[test]
    fn hot_vc_gets_nearest_banks() {
        let p = plan();
        let c0 = p.core_coord(CoreId(0));
        let inputs = vec![
            PlacementInput {
                granules: 8, // exactly one bank
                center: c0,
                intensity: 100.0,
            },
            PlacementInput {
                granules: 8,
                center: c0,
                intensity: 1.0,
            },
        ];
        let r = place_and_trade(&inputs, &p, 8);
        // The hot VC owns the bank at core 0's own tile.
        let own_tile = p.banks_by_distance(CoreId(0))[0];
        assert_eq!(r.assignments[0][own_tile.0 as usize], 8);
        assert_eq!(r.assignments[1][own_tile.0 as usize], 0);
    }

    #[test]
    fn respects_bank_capacity() {
        let p = plan();
        let inputs = vec![PlacementInput {
            granules: 30,
            center: p.core_coord(CoreId(1)),
            intensity: 5.0,
        }];
        let r = place_and_trade(&inputs, &p, 8);
        for bank in 0..p.num_banks() {
            assert!(r.assignments[0][bank] <= 8);
        }
        let total: u32 = r.assignments[0].iter().sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn trading_never_increases_cost() {
        let p = plan();
        // Two VCs from opposite cores competing for center banks.
        let inputs = vec![
            PlacementInput {
                granules: 40,
                center: p.core_coord(CoreId(0)),
                intensity: 10.0,
            },
            PlacementInput {
                granules: 40,
                center: p.core_coord(CoreId(2)),
                intensity: 9.0,
            },
        ];
        // Greedy-only baseline: intensity order with no trades.
        let greedy_only = {
            let mut free = vec![8u32; p.num_banks()];
            let mut asg = vec![vec![0u32; p.num_banks()]; 2];
            for vc in [0usize, 1] {
                let mut rem = inputs[vc].granules as u32;
                for bank in p.banks_by_distance_from(inputs[vc].center) {
                    if rem == 0 {
                        break;
                    }
                    let b = bank.0 as usize;
                    let take = rem.min(free[b]);
                    asg[vc][b] += take;
                    free[b] -= take;
                    rem -= take;
                }
            }
            PlacementResult { assignments: asg }
        };
        let traded = place_and_trade(&inputs, &p, 8);
        assert!(traded.cost(&inputs, &p) <= greedy_only.cost(&inputs, &p) + 1e-9);
    }

    #[test]
    fn disjoint_centers_get_disjoint_near_banks() {
        let p = plan();
        let inputs = vec![
            PlacementInput {
                granules: 16,
                center: p.core_coord(CoreId(0)),
                intensity: 10.0,
            },
            PlacementInput {
                granules: 16,
                center: p.core_coord(CoreId(2)),
                intensity: 10.0,
            },
        ];
        let r = place_and_trade(&inputs, &p, 8);
        // Each VC's nearest bank belongs to it.
        let near0 = p.banks_by_distance(CoreId(0))[0].0 as usize;
        let near2 = p.banks_by_distance(CoreId(2))[0].0 as usize;
        assert!(r.assignments[0][near0] > 0);
        assert!(r.assignments[1][near2] > 0);
        assert_eq!(r.assignments[0][near2], 0);
        assert_eq!(r.assignments[1][near0], 0);
    }

    #[test]
    fn zero_granules_places_nothing() {
        let p = plan();
        let inputs = vec![PlacementInput {
            granules: 0,
            center: p.core_coord(CoreId(0)),
            intensity: 10.0,
        }];
        let r = place_and_trade(&inputs, &p, 8);
        assert!(r.shares_of(0).is_empty());
    }

    #[test]
    fn dt_like_layout_orders_pools_by_intensity() {
        // Fig. 5: points (hottest) nearest, then vertices, then triangles.
        let p = plan();
        let c0 = p.core_coord(CoreId(0));
        let inputs = vec![
            PlacementInput {
                granules: 8, // 0.5 MB points
                center: c0,
                intensity: 8.0,
            },
            PlacementInput {
                granules: 24, // 1.5 MB vertices
                center: c0,
                intensity: 2.7,
            },
            PlacementInput {
                granules: 64, // 4 MB triangles
                center: c0,
                intensity: 1.0,
            },
        ];
        let r = place_and_trade(&inputs, &p, 8);
        // Mean distance must be ordered points < vertices < triangles.
        let mean_dist = |vc: usize| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (b, &g) in r.assignments[vc].iter().enumerate() {
                if g > 0 {
                    num += g as f64 * p.mesh().hops(c0, p.bank_coord(BankId(b as u16))) as f64;
                    den += g as f64;
                }
            }
            num / den
        };
        assert!(mean_dist(0) < mean_dist(1));
        assert!(mean_dist(1) < mean_dist(2));
    }
}
