//! Jigsaw: the software-defined, shared-baseline D-NUCA that Whirlpool
//! builds on (Sec. 2.4; Beckmann & Sanchez, PACT'13 / HPCA'15).
//!
//! Jigsaw groups bank partitions into *virtual caches* (VCs). Pages map to a
//! VC through the TLB; a per-core *virtual-cache translation buffer* (VTB)
//! maps each address to its unique bank — data never migrates in response
//! to accesses, so every access is a single lookup. A lightweight OS runtime
//! periodically (every 25 ms) re-sizes VCs using end-to-end *latency curves*
//! and re-places them with the *trading* placement algorithm driven by
//! access intensity (APKI per MB).
//!
//! The same machinery, parameterized, *is* Whirlpool: the `whirlpool` crate
//! enables per-pool VCs and bypassing on top of this [`NucaRuntime`]. That
//! mirrors the paper: "Whirlpool chooses VC sizes identically to Jigsaw,
//! with the only difference being that each memory pool gets its own VC."
//!
//! Entry points:
//! * [`JigsawScheme`] — the baseline scheme (thread/process VCs only) that
//!   plugs into [`wp_sim::MultiCoreSim`].
//! * [`NucaRuntime`] / [`NucaConfig`] — the parameterized runtime reused by
//!   Whirlpool.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod placement;
mod runtime;
mod sizing;
mod vc;
mod vtb;

pub use placement::{place_and_trade, PlacementInput, PlacementResult};
pub use runtime::{JigsawScheme, NucaConfig, NucaRuntime};
pub use sizing::{size_vcs, SizingInput, SizingOutcome};
pub use vc::{VcKind, VcState};
pub use vtb::Vtb;
