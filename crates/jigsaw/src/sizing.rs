//! VC sizing: latency curves + convex partitioning (Sec. 2.4).
//!
//! Jigsaw sizes VCs on *total latency* curves, not miss curves: a VC only
//! grows while the miss-rate reduction pays for the added network latency
//! of reaching farther banks. Whirlpool's bypass support is one line here:
//! bypassable VCs model zero access latency at size zero, after which the
//! unmodified partitioning algorithm chooses bypassing whenever it wins
//! (Sec. 3.3, Fig. 9).

use wp_mrc::{
    convex_hull_points, hull_to_points, partition_capacity_hulled, LatencyCurve, MissCurve,
};
use wp_noc::{Coord, Floorplan, NearestBanksLatency};

/// Everything sizing needs to know about one VC.
#[derive(Debug, Clone)]
pub struct SizingInput {
    /// The VC's (EWMA-blended) miss curve from its monitor.
    pub miss_curve: MissCurve,
    /// The VC's LLC access rate, APKI.
    pub apki: f64,
    /// Where the VC's consumers sit (center of mass).
    pub center: Coord,
    /// Whether this VC may be bypassed (single accessor + bypass enabled).
    pub bypassable: bool,
}

/// The sizing decision for all VCs.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingOutcome {
    /// Granules allocated per VC (same order as the input).
    pub granules: Vec<usize>,
    /// VCs chosen for bypassing (allocation 0 *and* bypassable).
    pub bypassed: Vec<bool>,
    /// Expected total data-stall CPI under the chosen allocation.
    pub expected_cpi: f64,
}

/// Sizes all VCs over `total_granules` of LLC capacity.
///
/// Builds each VC's latency curve with the floorplan's nearest-banks
/// latency model, hulls it, and partitions capacity by convex hill
/// climbing — the Peekahead-equivalent step of Jigsaw's runtime.
pub fn size_vcs(
    inputs: &[SizingInput],
    plan: &Floorplan,
    granules_per_bank: usize,
    bank_latency: u64,
    miss_penalty: f64,
    total_granules: usize,
) -> SizingOutcome {
    let mut cost_curves = Vec::with_capacity(inputs.len());
    for input in inputs {
        let lat_model = NearestBanksLatency::new(
            plan,
            input.center,
            granules_per_bank,
            bank_latency,
            total_granules,
        );
        let lc = LatencyCurve::build(
            &input.miss_curve.resized(total_granules + 1),
            input.apki,
            &lat_model,
            miss_penalty,
            input.bypassable,
        );
        let cost = lc.to_cost_curve();
        // Hull for optimal greedy partitioning.
        let hull = convex_hull_points(&cost);
        cost_curves.push(hull_to_points(&hull, cost.len()));
    }
    let outcome = partition_capacity_hulled(&cost_curves, total_granules);
    let mut granules = outcome.allocations;
    // Slack: exact-knee allocations leave a partition one hash-imbalanced
    // bank away from thrashing. When capacity is left over (it usually is —
    // dt fills half the chip), grant each live VC up to +12.5% headroom.
    let used: usize = granules.iter().sum();
    let mut spare = total_granules.saturating_sub(used);
    for g in granules.iter_mut() {
        if *g == 0 || spare == 0 {
            continue;
        }
        let extra = (*g / 8).max(1).min(spare);
        *g += extra;
        spare -= extra;
    }
    let bypassed = inputs
        .iter()
        .zip(&granules)
        .map(|(input, &g)| input.bypassable && g == 0)
        .collect();
    SizingOutcome {
        granules,
        bypassed,
        expected_cpi: outcome.total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friendly_curve(apki: f64, knee: usize, n: usize) -> MissCurve {
        let pts = (0..n)
            .map(|i| {
                if i >= knee {
                    apki * 0.02
                } else {
                    apki * (1.0 - 0.9 * i as f64 / knee as f64)
                }
            })
            .collect();
        MissCurve::new(pts, 1024)
    }

    fn plan() -> Floorplan {
        Floorplan::four_core()
    }

    #[test]
    fn cache_friendly_vc_gets_its_working_set() {
        let p = plan();
        let input = SizingInput {
            miss_curve: friendly_curve(50.0, 40, 201),
            apki: 50.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: false,
        };
        let out = size_vcs(&[input], &p, 8, 9, 140.0, 200);
        // Knee at 40 granules: allocation should be near it, not 0, and it
        // should not balloon to the whole chip (latency-aware sizing).
        assert!(out.granules[0] >= 30, "got {}", out.granules[0]);
        assert!(out.granules[0] <= 80, "got {}", out.granules[0]);
        assert!(!out.bypassed[0]);
    }

    #[test]
    fn streaming_vc_bypasses_when_allowed() {
        let p = plan();
        let streaming = SizingInput {
            miss_curve: MissCurve::flat(80.0, 201, 1024),
            apki: 80.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: true,
        };
        let friendly = SizingInput {
            miss_curve: friendly_curve(40.0, 30, 201),
            apki: 40.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: false,
        };
        let out = size_vcs(&[streaming, friendly], &p, 8, 9, 140.0, 200);
        assert_eq!(out.granules[0], 0, "streaming data gets no capacity");
        assert!(out.bypassed[0], "and is bypassed (mis's edges, Fig. 9)");
        assert!(out.granules[1] > 0);
        assert!(!out.bypassed[1]);
    }

    #[test]
    fn streaming_vc_without_bypass_still_gets_nothing() {
        let p = plan();
        let streaming = SizingInput {
            miss_curve: MissCurve::flat(80.0, 201, 1024),
            apki: 80.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: false,
        };
        let out = size_vcs(&[streaming], &p, 8, 9, 140.0, 200);
        assert!(!out.bypassed[0], "bypass not allowed");
    }

    #[test]
    fn capacity_shared_sensibly_between_competitors() {
        let p = plan();
        let a = SizingInput {
            miss_curve: friendly_curve(60.0, 60, 201),
            apki: 60.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: false,
        };
        let b = SizingInput {
            miss_curve: friendly_curve(30.0, 60, 201),
            apki: 30.0,
            center: p.core_coord(wp_noc::CoreId(2)),
            bypassable: false,
        };
        let out = size_vcs(&[a, b], &p, 8, 9, 140.0, 100);
        let total: usize = out.granules.iter().sum();
        assert!(total <= 100);
        // The hotter VC gets at least as much.
        assert!(out.granules[0] >= out.granules[1]);
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let p = plan();
        let a = SizingInput {
            miss_curve: friendly_curve(60.0, 60, 201),
            apki: 60.0,
            center: p.core_coord(wp_noc::CoreId(0)),
            bypassable: false,
        };
        let out = size_vcs(&[a], &p, 8, 9, 140.0, 0);
        assert_eq!(out.granules, vec![0]);
    }
}
