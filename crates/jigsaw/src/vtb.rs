//! The virtual-cache translation buffer (VTB).
//!
//! Each VTB entry is "essentially a configurable hash function that maps an
//! address to its unique location" (Sec. 2.4, Fig. 7b): data does not
//! migrate in response to accesses, so one lookup suffices. We model the
//! entry as a bucket array whose entries point at banks in proportion to
//! the VC's per-bank capacity shares.

use wp_mem::LineAddr;
use wp_noc::BankId;

/// Bucket count per VTB entry. 128 buckets give sub-1% share rounding on
/// the 25-bank chip and match the small-hardware spirit of the real VTB.
const BUCKETS: usize = 128;

/// One VC's address→bank mapping.
#[derive(Debug, Clone)]
pub struct Vtb {
    buckets: Vec<BankId>,
    /// Bypassed VCs skip the LLC entirely (Whirlpool, Sec. 3.2).
    bypass: bool,
}

impl Vtb {
    /// Builds the mapping from `(bank, share)` pairs; shares are relative
    /// weights (line quotas). Banks with zero share receive no buckets.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty or all shares are zero.
    pub fn from_shares(shares: &[(BankId, u64)]) -> Self {
        let total: u64 = shares.iter().map(|&(_, s)| s).sum();
        assert!(
            !shares.is_empty() && total > 0,
            "VTB needs at least one non-zero share"
        );
        let mut buckets = Vec::with_capacity(BUCKETS);
        // Largest-remainder apportionment keeps bucket counts proportional
        // and deterministic.
        let mut acc = 0u64;
        let mut assigned = 0usize;
        for &(bank, share) in shares {
            acc += share;
            let upto = ((acc as u128 * BUCKETS as u128) / total as u128) as usize;
            for _ in assigned..upto {
                buckets.push(bank);
            }
            assigned = upto;
        }
        while buckets.len() < BUCKETS {
            buckets.push(shares.last().expect("non-empty").0);
        }
        Self {
            buckets,
            bypass: false,
        }
    }

    /// A degenerate mapping for a zero-capacity VC: all addresses fall in
    /// `home` (where coherence checks land when the VC is not bypassed).
    pub fn degenerate(home: BankId) -> Self {
        Self {
            buckets: vec![home; BUCKETS],
            bypass: false,
        }
    }

    /// Updates the mapping to new shares while **minimally** reassigning
    /// buckets: banks keep their existing buckets up to their new target
    /// count, and only the surplus moves. This is what keeps Jigsaw's
    /// reconfigurations cheap — unchanged regions of the address space stay
    /// in place, so resident lines stay reachable instead of becoming dead
    /// copies after every reconfiguration.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty or all-zero.
    pub fn rebalance(&mut self, shares: &[(BankId, u64)]) {
        let total: u64 = shares.iter().map(|&(_, s)| s).sum();
        assert!(
            !shares.is_empty() && total > 0,
            "VTB needs at least one non-zero share"
        );
        // Largest-remainder target bucket counts.
        let mut targets: Vec<(BankId, usize)> = Vec::with_capacity(shares.len());
        let mut acc = 0u64;
        let mut assigned = 0usize;
        for &(bank, share) in shares {
            acc += share;
            let upto = ((acc as u128 * BUCKETS as u128) / total as u128) as usize;
            targets.push((bank, upto - assigned));
            assigned = upto;
        }
        if assigned < BUCKETS {
            if let Some(last) = targets.last_mut() {
                last.1 += BUCKETS - assigned;
            }
        }
        let target_of: std::collections::HashMap<u16, usize> =
            targets.iter().map(|&(b, n)| (b.0, n)).collect();
        // Count current buckets per bank; find surplus bucket positions.
        let mut have: std::collections::HashMap<u16, usize> = std::collections::HashMap::new();
        let mut surplus_slots = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let cnt = have.entry(b.0).or_insert(0);
            *cnt += 1;
            if *cnt > target_of.get(&b.0).copied().unwrap_or(0) {
                surplus_slots.push(i);
            }
        }
        // Hand surplus slots to under-provisioned banks.
        let mut slot_iter = surplus_slots.into_iter();
        for &(bank, want) in &targets {
            let got = have.get(&bank.0).copied().unwrap_or(0).min(want);
            for _ in got..want {
                let Some(slot) = slot_iter.next() else { return };
                self.buckets[slot] = bank;
            }
        }
    }

    /// Marks/unmarks the VC as bypassed.
    pub fn set_bypass(&mut self, bypass: bool) {
        self.bypass = bypass;
    }

    /// Whether the VC is bypassed.
    pub fn is_bypassed(&self) -> bool {
        self.bypass
    }

    /// The bank holding `line`.
    pub fn lookup(&self, line: LineAddr) -> BankId {
        // Mix the line address so strided streams spread across buckets.
        let mut h = line.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    /// The set of banks this VTB can return.
    pub fn banks(&self) -> Vec<BankId> {
        let mut banks = self.buckets.clone();
        banks.sort();
        banks.dedup();
        banks
    }

    /// Fraction of buckets pointing at `bank`.
    pub fn share_of(&self, bank: BankId) -> f64 {
        self.buckets.iter().filter(|&&b| b == bank).count() as f64 / self.buckets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_proportional() {
        let vtb = Vtb::from_shares(&[(BankId(0), 3000), (BankId(1), 1000)]);
        assert!((vtb.share_of(BankId(0)) - 0.75).abs() < 0.02);
        assert!((vtb.share_of(BankId(1)) - 0.25).abs() < 0.02);
    }

    #[test]
    fn zero_share_banks_excluded() {
        let vtb = Vtb::from_shares(&[(BankId(0), 100), (BankId(1), 0), (BankId(2), 100)]);
        assert!(!vtb.banks().contains(&BankId(1)));
    }

    #[test]
    fn lookup_is_deterministic_and_covers_banks() {
        let vtb = Vtb::from_shares(&[(BankId(3), 1), (BankId(7), 1)]);
        let a = vtb.lookup(LineAddr(12345));
        assert_eq!(a, vtb.lookup(LineAddr(12345)));
        let mut seen = std::collections::HashSet::new();
        for l in 0..1000u64 {
            seen.insert(vtb.lookup(LineAddr(l)));
        }
        assert_eq!(seen.len(), 2, "both banks should receive traffic");
    }

    #[test]
    fn empirical_split_tracks_shares() {
        let vtb = Vtb::from_shares(&[(BankId(0), 7), (BankId(1), 1)]);
        let mut count0 = 0;
        let n = 20_000u64;
        for l in 0..n {
            if vtb.lookup(LineAddr(l)) == BankId(0) {
                count0 += 1;
            }
        }
        let frac = count0 as f64 / n as f64;
        assert!((frac - 0.875).abs() < 0.03, "split {frac} too far from 7/8");
    }

    #[test]
    fn degenerate_maps_everything_home() {
        let vtb = Vtb::degenerate(BankId(9));
        for l in [0u64, 1, 99, 12_345_678] {
            assert_eq!(vtb.lookup(LineAddr(l)), BankId(9));
        }
    }

    #[test]
    fn bypass_flag() {
        let mut vtb = Vtb::degenerate(BankId(0));
        assert!(!vtb.is_bypassed());
        vtb.set_bypass(true);
        assert!(vtb.is_bypassed());
    }

    #[test]
    #[should_panic(expected = "non-zero share")]
    fn all_zero_shares_panic() {
        Vtb::from_shares(&[(BankId(0), 0)]);
    }

    #[test]
    fn rebalance_is_minimal() {
        let mut vtb = Vtb::from_shares(&[(BankId(0), 100), (BankId(1), 100)]);
        let before = vtb.buckets.clone();
        // Small shift: 50/50 -> 55/45 should move ~6/128 buckets.
        vtb.rebalance(&[(BankId(0), 110), (BankId(1), 90)]);
        let moved = before
            .iter()
            .zip(&vtb.buckets)
            .filter(|(a, b)| a != b)
            .count();
        assert!(moved <= 10, "moved {moved} buckets for a 5% shift");
        assert!((vtb.share_of(BankId(0)) - 0.55).abs() < 0.03);
    }

    #[test]
    fn rebalance_reaches_target_proportions() {
        let mut vtb = Vtb::degenerate(BankId(9));
        vtb.rebalance(&[(BankId(2), 1), (BankId(3), 3)]);
        assert!((vtb.share_of(BankId(2)) - 0.25).abs() < 0.03);
        assert!((vtb.share_of(BankId(3)) - 0.75).abs() < 0.03);
        assert_eq!(vtb.share_of(BankId(9)), 0.0);
    }

    #[test]
    fn rebalance_identity_moves_nothing() {
        let mut vtb = Vtb::from_shares(&[(BankId(0), 5), (BankId(4), 3)]);
        let before = vtb.buckets.clone();
        vtb.rebalance(&[(BankId(0), 5), (BankId(4), 3)]);
        assert_eq!(before, vtb.buckets);
    }

    #[test]
    fn rebalance_dropping_a_bank_moves_only_its_buckets() {
        let mut vtb = Vtb::from_shares(&[(BankId(0), 1), (BankId(1), 1), (BankId(2), 2)]);
        let before = vtb.buckets.clone();
        vtb.rebalance(&[(BankId(0), 1), (BankId(2), 2)]);
        // Only former bank-1 buckets may have changed.
        for (a, b) in before.iter().zip(&vtb.buckets) {
            if a != b {
                assert_eq!(*a, BankId(1));
            }
        }
        assert_eq!(vtb.share_of(BankId(1)), 0.0);
    }
}
