//! Task-parallel application models (Sec. 3.4, Fig. 13).
//!
//! Each app's input data is split into per-core partitions (for graph apps,
//! by the [`crate::graph`] partitioner). Work is a sequence of *rounds*
//! (sort/merge stages, FFT stages, PageRank iterations); each round spawns
//! one task per partition. A task mostly touches its home partition, plus a
//! per-app fraction of remote accesses (the stage partner for butterfly
//! apps, cut-proportional neighbours for graph apps). Running a task away
//! from its home core loses private-cache locality, which shows up as a
//! higher LLC access rate — the effect PaWS reduces (Fig. 13's J+PaWS bar)
//! and Whirlpool's per-partition pools then exploit (W+PaWS).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_mem::{CallpointId, Heap, LineAddr, PoolId, LINE_BYTES};
use wp_sim::{PoolDescriptor, TraceEvent};

use crate::graph::{partition, rmat};
use crate::pattern::{Pattern, PatternState};

/// How a task picks its remote partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteKind {
    /// Butterfly partner: `home XOR 2^(round mod log2 k)` (fft, mergesort).
    Butterfly,
    /// Uniform random other partition (graph apps; the cut fraction comes
    /// from the real partitioner).
    RandomCut,
}

/// A parallel application specification.
#[derive(Debug, Clone)]
pub struct ParallelSpec {
    /// App name.
    pub name: &'static str,
    /// Partitions (= cores, 16 in Fig. 13).
    pub partitions: usize,
    /// Bytes per partition.
    pub bytes_per_partition: u64,
    /// Access pattern within a partition.
    pub pattern: Pattern,
    /// Rounds of tasks.
    pub rounds: usize,
    /// Tasks per partition per round.
    pub tasks_per_partition: usize,
    /// Instructions per task.
    pub instrs_per_task: u64,
    /// LLC accesses per task when run on its home core.
    pub accesses_per_task: u64,
    /// Fraction of accesses to remote partitions.
    pub remote_frac: f64,
    /// Remote target selection.
    pub remote_kind: RemoteKind,
    /// LLC access multiplier when the task runs off-home (cold private
    /// caches).
    pub foreign_penalty: f64,
    /// Relative task duration jitter (load imbalance → stealing).
    pub duration_jitter: f64,
    /// Trace seed.
    pub seed: u64,
}

/// One task: a unit of schedulable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Task {
    /// Round index.
    pub round: usize,
    /// Home partition (and preferred core under PaWS).
    pub home: usize,
    /// Sequence number within (round, home).
    pub index: usize,
}

/// An instantiated parallel app: allocated partitions + task list.
#[derive(Debug)]
pub struct ParallelApp {
    spec: ParallelSpec,
    /// Per-partition line ranges `(first_line, lines)` (single extent).
    regions: Vec<(u64, u64)>,
    pools: Vec<PoolDescriptor>,
}

impl ParallelApp {
    /// Instantiates the app: allocates one pool per partition.
    pub fn new(spec: ParallelSpec) -> Self {
        let mut heap = Heap::new();
        let mut regions = Vec::with_capacity(spec.partitions);
        let mut pools = Vec::with_capacity(spec.partitions);
        for p in 0..spec.partitions {
            let pid = heap.create_pool();
            let cp = CallpointId::from_return_pcs(0x7000 + p as u64, spec.seed);
            let addr = heap.pool_malloc(spec.bytes_per_partition, pid, cp);
            let lines = spec.bytes_per_partition / LINE_BYTES;
            regions.push((addr.line().0, lines));
            pools.push(PoolDescriptor {
                name: format!("part{p}"),
                pool: Some(PoolId(p as u32 + 1)),
                pages: heap.pages_of_pool(pid).to_vec(),
                bytes: spec.bytes_per_partition,
            });
        }
        Self {
            spec,
            regions,
            pools,
        }
    }

    /// The spec.
    pub fn spec(&self) -> &ParallelSpec {
        &self.spec
    }

    /// One pool descriptor per partition — the Whirlpool classification
    /// ("we simply map data from each partition to a separate pool").
    pub fn descriptors(&self) -> Vec<PoolDescriptor> {
        self.pools.clone()
    }

    /// The descriptor for one partition (registered with its home core).
    pub fn descriptor_of(&self, partition: usize) -> PoolDescriptor {
        self.pools[partition].clone()
    }

    /// All tasks, in round order (rounds are barriers: round `r+1` only
    /// starts when `r` is drained — enforced by the scheduler).
    pub fn tasks(&self) -> Vec<Task> {
        let mut out = Vec::new();
        for round in 0..self.spec.rounds {
            for home in 0..self.spec.partitions {
                for index in 0..self.spec.tasks_per_partition {
                    out.push(Task { round, home, index });
                }
            }
        }
        out
    }

    /// Nominal duration of a task in instructions, with deterministic
    /// per-task jitter (load imbalance).
    pub fn task_instrs(&self, task: Task) -> u64 {
        let mut rng = StdRng::seed_from_u64(
            self.spec
                .seed
                .wrapping_add((task.round as u64) << 32)
                .wrapping_add((task.home as u64) << 16)
                .wrapping_add(task.index as u64),
        );
        let j = self.spec.duration_jitter;
        let scale = if j > 0.0 {
            1.0 + rng.gen_range(-j..j)
        } else {
            1.0
        };
        (self.spec.instrs_per_task as f64 * scale) as u64
    }

    /// Generates the LLC-bound events of `task` executed on `core`.
    /// Off-home execution inflates the access count by the foreign
    /// penalty (cold private caches).
    pub fn task_events(&self, task: Task, core: usize) -> Vec<TraceEvent> {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(
            spec.seed
                ^ (task.round as u64) << 40
                ^ (task.home as u64) << 24
                ^ (task.index as u64) << 8
                ^ core as u64,
        );
        let foreign = core != task.home;
        let accesses = if foreign {
            (spec.accesses_per_task as f64 * spec.foreign_penalty) as u64
        } else {
            spec.accesses_per_task
        };
        let instrs = self.task_instrs(task);
        let gap = (instrs / accesses.max(1)).max(1) as u32;
        let mut pattern = PatternState::new(spec.pattern, self.regions[task.home].1, rng.gen());
        let log2k = (spec.partitions as f64).log2().round() as usize;
        let mut out = Vec::with_capacity(accesses as usize);
        for _ in 0..accesses {
            let remote = rng.gen_bool(spec.remote_frac.clamp(0.0, 1.0));
            let part = if !remote {
                task.home
            } else {
                match spec.remote_kind {
                    RemoteKind::Butterfly => {
                        let bit = 1usize << (task.round % log2k.max(1));
                        (task.home ^ bit) % spec.partitions
                    }
                    RemoteKind::RandomCut => {
                        let mut p = rng.gen_range(0..spec.partitions);
                        if p == task.home {
                            p = (p + 1) % spec.partitions;
                        }
                        p
                    }
                }
            };
            let (start, lines) = self.regions[part];
            let idx = if part == task.home {
                pattern.next_index()
            } else {
                rng.gen_range(0..lines)
            };
            out.push(TraceEvent {
                gap_instrs: gap,
                line: LineAddr(start + idx),
                is_write: false,
            });
        }
        out
    }
}

/// The six Fig.-13 apps, on `cores` partitions.
pub fn parallel_apps(cores: usize, seed: u64) -> Vec<ParallelSpec> {
    // Graph apps derive their remote fraction from a real partitioning of
    // an R-MAT graph, like the paper's METIS step.
    let g = rmat(14, 8, seed);
    let p = partition(&g, cores, seed ^ 1);
    let cut = p.cut_ratio(&g);
    // A vertex's neighbours split cut/uncut; remote accesses follow.
    let graph_remote = (cut * 0.9).clamp(0.05, 0.9);
    vec![
        ParallelSpec {
            name: "mergesort",
            partitions: cores,
            bytes_per_partition: 2 * 1024 * 1024,
            pattern: Pattern::Sweep,
            rounds: 5,
            tasks_per_partition: 4,
            instrs_per_task: 400_000,
            accesses_per_task: 16_000,
            remote_frac: 0.35,
            remote_kind: RemoteKind::Butterfly,
            foreign_penalty: 1.35,
            duration_jitter: 0.25,
            seed,
        },
        ParallelSpec {
            name: "fft",
            partitions: cores,
            bytes_per_partition: 2 * 1024 * 1024,
            pattern: Pattern::Uniform,
            rounds: 5,
            tasks_per_partition: 4,
            instrs_per_task: 350_000,
            accesses_per_task: 17_000,
            remote_frac: 0.4,
            remote_kind: RemoteKind::Butterfly,
            foreign_penalty: 1.3,
            duration_jitter: 0.15,
            seed: seed ^ 2,
        },
        ParallelSpec {
            name: "delaunay",
            partitions: cores,
            bytes_per_partition: 2 * 1024 * 1024,
            pattern: Pattern::Uniform,
            rounds: 6,
            tasks_per_partition: 4,
            instrs_per_task: 300_000,
            accesses_per_task: 9_000,
            remote_frac: 0.08,
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.4,
            duration_jitter: 0.35,
            seed: seed ^ 3,
        },
        ParallelSpec {
            name: "pagerank",
            partitions: cores,
            bytes_per_partition: 5 * 1024 * 1024 / 2,
            pattern: Pattern::Uniform,
            rounds: 8,
            tasks_per_partition: 4,
            instrs_per_task: 350_000,
            accesses_per_task: 21_000,
            remote_frac: graph_remote,
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.45,
            duration_jitter: 0.4,
            seed: seed ^ 4,
        },
        ParallelSpec {
            name: "connectedComponents",
            partitions: cores,
            bytes_per_partition: 2 * 1024 * 1024,
            pattern: Pattern::Uniform,
            rounds: 8,
            tasks_per_partition: 4,
            instrs_per_task: 300_000,
            accesses_per_task: 24_000,
            remote_frac: (graph_remote * 1.2).min(0.9),
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.5,
            duration_jitter: 0.5,
            seed: seed ^ 5,
        },
        ParallelSpec {
            name: "triangleCounting",
            partitions: cores,
            bytes_per_partition: 3 * 1024 * 1024 / 2,
            pattern: Pattern::Uniform,
            rounds: 4,
            tasks_per_partition: 4,
            instrs_per_task: 450_000,
            accesses_per_task: 20_000,
            remote_frac: (graph_remote * 1.4).min(0.9),
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.35,
            duration_jitter: 0.3,
            seed: seed ^ 6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ParallelSpec {
        ParallelSpec {
            name: "toy",
            partitions: 4,
            bytes_per_partition: 256 * 1024,
            pattern: Pattern::Uniform,
            rounds: 2,
            tasks_per_partition: 2,
            instrs_per_task: 10_000,
            accesses_per_task: 500,
            remote_frac: 0.25,
            remote_kind: RemoteKind::RandomCut,
            foreign_penalty: 1.5,
            duration_jitter: 0.2,
            seed: 11,
        }
    }

    #[test]
    fn partitions_allocate_disjoint_pools() {
        let app = ParallelApp::new(small_spec());
        let d = app.descriptors();
        assert_eq!(d.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for desc in &d {
            for p in &desc.pages {
                assert!(seen.insert(*p));
            }
        }
    }

    #[test]
    fn task_list_covers_rounds_and_partitions() {
        let app = ParallelApp::new(small_spec());
        let tasks = app.tasks();
        assert_eq!(tasks.len(), 2 * 4 * 2);
        assert!(tasks.iter().any(|t| t.round == 1 && t.home == 3));
    }

    #[test]
    fn home_execution_touches_mostly_home_partition() {
        let app = ParallelApp::new(small_spec());
        let t = Task {
            round: 0,
            home: 2,
            index: 0,
        };
        let events = app.task_events(t, 2);
        let (start, lines) = app.regions[2];
        let local = events
            .iter()
            .filter(|e| e.line.0 >= start && e.line.0 < start + lines)
            .count();
        let frac = local as f64 / events.len() as f64;
        assert!((frac - 0.75).abs() < 0.07, "local frac {frac}");
    }

    #[test]
    fn foreign_execution_costs_more_accesses() {
        let app = ParallelApp::new(small_spec());
        let t = Task {
            round: 0,
            home: 0,
            index: 0,
        };
        let home = app.task_events(t, 0).len();
        let away = app.task_events(t, 3).len();
        assert!(away > home, "foreign penalty must inflate accesses");
    }

    #[test]
    fn butterfly_partner_is_round_dependent() {
        let mut spec = small_spec();
        spec.remote_kind = RemoteKind::Butterfly;
        spec.remote_frac = 1.0; // all remote
        let app = ParallelApp::new(spec);
        let r0 = app.task_events(
            Task {
                round: 0,
                home: 0,
                index: 0,
            },
            0,
        );
        // Round 0: partner = 0 ^ 1 = 1. All remote accesses in partition 1.
        let (start, lines) = app.regions[1];
        assert!(r0
            .iter()
            .all(|e| e.line.0 >= start && e.line.0 < start + lines));
    }

    #[test]
    fn fig13_apps_instantiate() {
        for spec in parallel_apps(16, 42) {
            let name = spec.name;
            let app = ParallelApp::new(spec);
            assert_eq!(app.descriptors().len(), 16, "{name}");
            assert!(!app.tasks().is_empty(), "{name}");
        }
    }

    #[test]
    fn graph_apps_have_meaningful_remote_fraction() {
        let specs = parallel_apps(16, 7);
        let pr = specs.iter().find(|s| s.name == "pagerank").unwrap();
        assert!(pr.remote_frac > 0.05 && pr.remote_frac < 0.9);
    }

    #[test]
    fn task_durations_jitter_deterministically() {
        let app = ParallelApp::new(small_spec());
        let t = Task {
            round: 1,
            home: 1,
            index: 1,
        };
        assert_eq!(app.task_instrs(t), app.task_instrs(t));
        let t2 = Task {
            round: 1,
            home: 1,
            index: 0,
        };
        assert_ne!(app.task_instrs(t), app.task_instrs(t2));
    }
}
