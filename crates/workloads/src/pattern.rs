//! Line-level access patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a pool's lines are accessed.
///
/// Patterns are defined over a pool's line count `n` and produce line
/// *indices* in `[0, n)`; the model maps indices to real addresses through
/// the pool's allocated extents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform random over the region: the miss curve falls roughly
    /// linearly until the region fits (dt's structures, mis's vertices).
    Uniform,
    /// A hot subset absorbs most accesses: `hot_frac` of the region gets
    /// `hot_weight` of the accesses (skewed structures: hash tables, roots
    /// of trees, ftab-style histograms).
    HotCold {
        /// Fraction of the region that is hot, in `(0, 1]`.
        hot_frac: f64,
        /// Fraction of accesses that go to the hot region, in `[0, 1]`.
        hot_weight: f64,
    },
    /// Cyclic sequential sweep: streaming when the region exceeds the
    /// cache (mis's edges), stencil-like reuse when it fits (lbm's grids).
    Sweep,
    /// Pointer chase through a fixed random permutation: like Uniform for
    /// capacity purposes but serialized (mcf's node walks).
    Chase,
    /// A streaming sweep with stencil-style reuse: the head advances
    /// cyclically, but a `revisit` fraction of accesses land uniformly in
    /// the trailing window of `window_frac × lines`. The LLC-visible miss
    /// curve has its knee at the window size — lbm's source grid, whose
    /// 19-point stencil re-reads recent rows while the full grid streams
    /// far beyond the cache.
    WindowedSweep {
        /// Trailing-window size as a fraction of the region, in `(0, 1]`.
        window_frac: f64,
        /// Fraction of accesses that revisit the window, in `[0, 1]`.
        revisit: f64,
    },
}

/// Instantiated pattern state for one pool.
#[derive(Debug, Clone)]
pub struct PatternState {
    pattern: Pattern,
    lines: u64,
    pos: u64,
    perm: Vec<u32>,
    rng: StdRng,
}

impl PatternState {
    /// Creates pattern state over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(pattern: Pattern, lines: u64, seed: u64) -> Self {
        assert!(lines > 0, "pool must have at least one line");
        let mut rng = StdRng::seed_from_u64(seed);
        let perm = if matches!(pattern, Pattern::Chase) {
            // Sattolo's algorithm: a single cycle through all lines.
            let n = lines as usize;
            let mut p: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i);
                p.swap(i, j);
            }
            p
        } else {
            Vec::new()
        };
        Self {
            pattern,
            lines,
            pos: 0,
            perm,
            rng,
        }
    }

    /// The next line index.
    pub fn next_index(&mut self) -> u64 {
        match self.pattern {
            Pattern::Uniform => self.rng.gen_range(0..self.lines),
            Pattern::HotCold {
                hot_frac,
                hot_weight,
            } => {
                let hot_lines = ((self.lines as f64 * hot_frac) as u64).max(1);
                if self.rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                    self.rng.gen_range(0..hot_lines)
                } else if hot_lines < self.lines {
                    self.rng.gen_range(hot_lines..self.lines)
                } else {
                    self.rng.gen_range(0..self.lines)
                }
            }
            Pattern::Sweep => {
                let idx = self.pos;
                self.pos = (self.pos + 1) % self.lines;
                idx
            }
            Pattern::Chase => {
                let idx = self.pos;
                self.pos = self.perm[self.pos as usize] as u64;
                idx
            }
            Pattern::WindowedSweep {
                window_frac,
                revisit,
            } => {
                let window = ((self.lines as f64 * window_frac) as u64).max(1);
                if self.rng.gen_bool(revisit.clamp(0.0, 1.0)) {
                    let back = self.rng.gen_range(0..window);
                    (self.pos + self.lines - back) % self.lines
                } else {
                    let idx = self.pos;
                    self.pos = (self.pos + 1) % self.lines;
                    idx
                }
            }
        }
    }

    /// Swaps the pattern (phase changes), preserving position where it
    /// makes sense.
    pub fn set_pattern(&mut self, pattern: Pattern) {
        if pattern == self.pattern {
            return;
        }
        if matches!(pattern, Pattern::Chase) && self.perm.is_empty() {
            let n = self.lines as usize;
            let mut p: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = self.rng.gen_range(0..i);
                p.swap(i, j);
            }
            self.perm = p;
        }
        self.pos %= self.lines;
        self.pattern = pattern;
    }

    /// The current pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_region() {
        let mut p = PatternState::new(Pattern::Uniform, 64, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let i = p.next_index();
            assert!(i < 64);
            seen.insert(i);
        }
        assert!(seen.len() > 60, "uniform should cover nearly all lines");
    }

    #[test]
    fn hot_cold_is_skewed() {
        let mut p = PatternState::new(
            Pattern::HotCold {
                hot_frac: 0.1,
                hot_weight: 0.9,
            },
            1000,
            2,
        );
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            if p.next_index() < 100 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn sweep_is_cyclic() {
        let mut p = PatternState::new(Pattern::Sweep, 4, 3);
        let idxs: Vec<u64> = (0..8).map(|_| p.next_index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn chase_visits_every_line_once_per_cycle() {
        let mut p = PatternState::new(Pattern::Chase, 97, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..97 {
            seen.insert(p.next_index());
        }
        assert_eq!(seen.len(), 97, "Sattolo cycle must visit all lines");
    }

    #[test]
    fn pattern_switch_mid_stream() {
        let mut p = PatternState::new(Pattern::Sweep, 16, 5);
        p.next_index();
        p.set_pattern(Pattern::Chase);
        for _ in 0..32 {
            assert!(p.next_index() < 16);
        }
        p.set_pattern(Pattern::Uniform);
        assert!(p.next_index() < 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PatternState::new(Pattern::Uniform, 100, 7);
        let mut b = PatternState::new(Pattern::Uniform, 100, 7);
        for _ in 0..100 {
            assert_eq!(a.next_index(), b.next_index());
        }
    }
}
