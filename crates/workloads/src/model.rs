//! Application models: pools + phases → an allocated address space and an
//! LLC-bound access trace.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_mem::{CallpointId, Heap, LineAddr, PageId, PoolId, LINE_BYTES};
use wp_sim::{PoolDescriptor, TraceEvent, Workload, WorkloadBundle};

use crate::pattern::{Pattern, PatternState};

/// One pool (data structure) of an application model.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Data-structure name ("points", "edges", …).
    pub name: &'static str,
    /// Footprint in bytes.
    pub bytes: u64,
    /// Default access pattern.
    pub pattern: Pattern,
    /// Number of distinct allocation callpoints producing this pool
    /// (WhirlTool clusters these; semantically-same data usually comes
    /// from 1–3 sites).
    pub callpoints: usize,
    /// Whether the manual port tags this pool (untagged data stays in the
    /// thread VC under Whirlpool's manual classification).
    pub tagged: bool,
}

impl PoolSpec {
    /// A tagged single-callpoint pool.
    pub fn new(name: &'static str, bytes: u64, pattern: Pattern) -> Self {
        Self {
            name,
            bytes,
            pattern,
            callpoints: 1,
            tagged: true,
        }
    }

    /// Same, allocated from `n` callpoints.
    pub fn with_callpoints(mut self, n: usize) -> Self {
        self.callpoints = n.max(1);
        self
    }

    /// Marks the pool untagged (not part of the manual classification).
    pub fn untagged(mut self) -> Self {
        self.tagged = false;
        self
    }
}

/// One pool's share of a phase's accesses.
#[derive(Debug, Clone, Copy)]
pub struct PoolMix {
    /// Pool index into [`AppSpec::pools`].
    pub pool: usize,
    /// Relative access weight within the phase.
    pub weight: f64,
    /// Pattern override for this phase (`None` keeps the pool's default).
    pub pattern: Option<Pattern>,
}

impl PoolMix {
    /// A weight-only mix entry.
    pub fn new(pool: usize, weight: f64) -> Self {
        Self {
            pool,
            weight,
            pattern: None,
        }
    }

    /// Adds a per-phase pattern override (refine's inversions, Fig. 11).
    pub fn with_pattern(mut self, p: Pattern) -> Self {
        self.pattern = Some(p);
        self
    }
}

/// A program phase: an access mix active for a stretch of instructions.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase length in instructions.
    pub duration_instrs: u64,
    /// Access mix (weights need not sum to anything particular).
    pub mix: Vec<PoolMix>,
}

/// A complete application model.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Benchmark name ("delaunay", "lbm", …).
    pub name: &'static str,
    /// The pools.
    pub pools: Vec<PoolSpec>,
    /// Phases, cycled forever. A single phase = steady-state behaviour.
    pub phases: Vec<Phase>,
    /// Target LLC accesses per kilo-instruction (the paper's APKI scale).
    pub apki: f64,
    /// Relative jitter on phase durations (refine's "irregular intervals"):
    /// each phase instance lasts `duration × U[1-j, 1+j]`.
    pub phase_jitter: f64,
    /// Trace seed.
    pub seed: u64,
}

impl AppSpec {
    /// A steady-state app: one phase with the given weights.
    pub fn steady(
        name: &'static str,
        pools: Vec<PoolSpec>,
        weights: &[f64],
        apki: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(pools.len(), weights.len());
        let mix = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| PoolMix::new(i, w))
            .collect();
        Self {
            name,
            pools,
            phases: vec![Phase {
                duration_instrs: u64::MAX,
                mix,
            }],
            apki,
            phase_jitter: 0.0,
            seed,
        }
    }

    /// Scales every pool's footprint by `factor` (input-set scaling; the
    /// train/ref sensitivity study of Fig. 18).
    pub fn scaled(mut self, factor: f64) -> Self {
        for p in &mut self.pools {
            p.bytes = ((p.bytes as f64 * factor) as u64).max(wp_mem::PAGE_BYTES);
        }
        self
    }

    /// Total footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.pools.iter().map(|p| p.bytes).sum()
    }
}

/// Address-space layout of one pool: its extents in line space.
#[derive(Debug, Clone)]
struct PoolLayout {
    /// `(first_line, lines)` per extent, with cumulative index offsets.
    extents: Vec<(u64, u64)>,
    cumulative: Vec<u64>,
    total_lines: u64,
    pool_id: PoolId,
    pages: Vec<PageId>,
}

impl PoolLayout {
    fn line_at(&self, index: u64) -> LineAddr {
        debug_assert!(index < self.total_lines);
        // Binary search the cumulative offsets.
        let ext = match self.cumulative.binary_search(&index) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (start, _) = self.extents[ext];
        LineAddr(start + (index - self.cumulative[ext]))
    }
}

/// An instantiated application model: allocated memory + trace factory.
#[derive(Debug)]
pub struct AppModel {
    spec: AppSpec,
    layouts: Arc<Vec<PoolLayout>>,
    /// Callpoint → (pool index, pages).
    callpoints: Vec<(CallpointId, usize, Vec<PageId>)>,
}

impl AppModel {
    /// Instantiates the model: allocates every pool through a pool-aware
    /// heap (so page-exclusivity and callpoint recording are the real
    /// allocator's, not faked).
    pub fn new(spec: AppSpec) -> Self {
        Self::new_with_base(spec, 16)
    }

    /// Instantiates the model in an address space starting at `base_page`.
    /// Multi-program mixes give each process a disjoint region (as real
    /// virtual memory does) so pages never collide across cores.
    pub fn new_with_base(spec: AppSpec, base_page: u64) -> Self {
        let mut heap = Heap::with_base_page(base_page);
        let mut layouts = Vec::with_capacity(spec.pools.len());
        let mut callpoints = Vec::new();
        let app_hash = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in spec.name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        for (pi, pool) in spec.pools.iter().enumerate() {
            let pool_id = heap.create_pool();
            let chunks = pool.callpoints.max(1) as u64;
            let chunk_bytes = (pool.bytes / chunks).max(LINE_BYTES);
            let mut extents = Vec::new();
            let mut cumulative = Vec::new();
            let mut total = 0u64;
            for c in 0..chunks {
                let cp = CallpointId::from_return_pcs(
                    app_hash ^ (pi as u64) << 20,
                    0x40_0000 + (pi as u64) * 0x100 + c,
                );
                let bytes = if c == chunks - 1 {
                    pool.bytes - chunk_bytes * (chunks - 1)
                } else {
                    chunk_bytes
                };
                let addr = heap.pool_malloc(bytes.max(LINE_BYTES), pool_id, cp);
                let first_line = addr.line().0;
                let lines = bytes.max(LINE_BYTES) / LINE_BYTES;
                cumulative.push(total);
                extents.push((first_line, lines));
                total += lines;
                // Pages of this chunk (for WhirlTool's callpoint→pages map).
                let first_page = addr.page().0;
                let last_page = addr.offset(bytes.saturating_sub(1)).page().0;
                let pages: Vec<PageId> = (first_page..=last_page).map(PageId).collect();
                callpoints.push((cp, pi, pages));
            }
            let pages = heap.pages_of_pool(pool_id).to_vec();
            layouts.push(PoolLayout {
                extents,
                cumulative,
                total_lines: total,
                pool_id,
                pages,
            });
        }
        Self {
            spec,
            layouts: Arc::new(layouts),
            callpoints,
        }
    }

    /// The spec this model instantiates.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Manual classification: one descriptor per tagged pool (Table 2).
    pub fn descriptors_manual(&self) -> Vec<PoolDescriptor> {
        self.spec
            .pools
            .iter()
            .zip(self.layouts.iter())
            .filter(|(p, _)| p.tagged)
            .map(|(p, l)| PoolDescriptor {
                name: p.name.to_string(),
                pool: Some(l.pool_id),
                pages: l.pages.clone(),
                bytes: p.bytes,
            })
            .collect()
    }

    /// Callpoint map: `(callpoint, pool index, pages)` per allocation site.
    pub fn callpoints(&self) -> &[(CallpointId, usize, Vec<PageId>)] {
        &self.callpoints
    }

    /// Classification from a callpoint→cluster map (WhirlTool's output):
    /// descriptors group the pages of all callpoints in each cluster.
    pub fn descriptors_from_clusters(
        &self,
        assignment: &HashMap<CallpointId, usize>,
    ) -> Vec<PoolDescriptor> {
        let mut groups: HashMap<usize, Vec<PageId>> = HashMap::new();
        for (cp, _, pages) in &self.callpoints {
            if let Some(&g) = assignment.get(cp) {
                groups.entry(g).or_default().extend(pages.iter().copied());
            }
        }
        let mut keys: Vec<usize> = groups.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|g| {
                let pages = groups.remove(&g).expect("key exists");
                PoolDescriptor {
                    name: format!("cluster{g}"),
                    pool: Some(PoolId(1000 + g as u32)),
                    bytes: pages.len() as u64 * wp_mem::PAGE_BYTES,
                    pages,
                }
            })
            .collect()
    }

    /// Builds a workload bundle with the given classification descriptors
    /// (empty = unclassified, for Jigsaw and the other baselines).
    pub fn bundle(&self, pools: Vec<PoolDescriptor>) -> WorkloadBundle {
        WorkloadBundle {
            trace: Box::new(self.trace()),
            pools,
            name: self.spec.name.to_string(),
        }
    }

    /// An infinite, deterministic LLC-bound trace of this app.
    pub fn trace(&self) -> AppTrace {
        AppTrace::new(self.spec.clone(), Arc::clone(&self.layouts), self.spec.seed)
    }

    /// A trace with a different seed (per-core variation in mixes).
    pub fn trace_seeded(&self, seed: u64) -> AppTrace {
        AppTrace::new(self.spec.clone(), Arc::clone(&self.layouts), seed)
    }

    /// Lines in pool `i`.
    pub fn pool_lines(&self, i: usize) -> u64 {
        self.layouts[i].total_lines
    }
}

/// The trace generator for one run of an [`AppModel`].
pub struct AppTrace {
    spec: AppSpec,
    layouts: Arc<Vec<PoolLayout>>,
    patterns: Vec<PatternState>,
    rng: StdRng,
    phase_idx: usize,
    phase_left: u64,
    /// Cumulative weights of the current mix.
    cum_weights: Vec<f64>,
    gap_base: f64,
    carry: f64,
}

impl std::fmt::Debug for AppTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppTrace")
            .field("app", &self.spec.name)
            .field("phase", &self.phase_idx)
            .finish()
    }
}

impl AppTrace {
    fn new(spec: AppSpec, layouts: Arc<Vec<PoolLayout>>, seed: u64) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let patterns = spec
            .pools
            .iter()
            .zip(layouts.iter())
            .enumerate()
            .map(|(i, (p, l))| {
                PatternState::new(p.pattern, l.total_lines, seed.wrapping_add(i as u64 * 77))
            })
            .collect();
        let gap_base = 1000.0 / spec.apki;
        let mut t = Self {
            spec,
            layouts,
            patterns,
            rng,
            phase_idx: 0,
            phase_left: 0,
            cum_weights: Vec::new(),
            gap_base,
            carry: 0.0,
        };
        t.enter_phase(0);
        t
    }

    fn enter_phase(&mut self, idx: usize) {
        self.phase_idx = idx % self.spec.phases.len();
        let jitter = self.spec.phase_jitter;
        let phase = self.spec.phases[self.phase_idx].clone();
        let scale = if jitter > 0.0 {
            1.0 + self.rng.gen_range(-jitter..jitter)
        } else {
            1.0
        };
        self.phase_left = (phase.duration_instrs as f64 * scale) as u64;
        self.cum_weights.clear();
        let mut acc = 0.0;
        for m in &phase.mix {
            acc += m.weight.max(0.0);
            self.cum_weights.push(acc);
            let pat = m.pattern.unwrap_or(self.spec.pools[m.pool].pattern);
            self.patterns[m.pool].set_pattern(pat);
        }
    }

    fn pick_pool(&mut self) -> usize {
        let total = *self.cum_weights.last().expect("non-empty mix");
        let x = self.rng.gen_range(0.0..total);
        let slot = self
            .cum_weights
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cum_weights.len() - 1);
        self.spec.phases[self.phase_idx].mix[slot].pool
    }

    /// The phase currently active (for figure instrumentation).
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }
}

impl Workload for AppTrace {
    fn next_event(&mut self) -> Option<TraceEvent> {
        // Gap: deterministic accumulator hitting the APKI target exactly
        // in expectation, with ±30% jitter for realism.
        let jitter = self.rng.gen_range(0.7..1.3);
        let gap_f = self.gap_base * jitter + self.carry;
        let gap = gap_f.floor().max(1.0);
        self.carry = gap_f - gap;
        let gap = gap as u64;
        if self.phase_left <= gap {
            let next = self.phase_idx + 1;
            self.enter_phase(next);
        } else {
            self.phase_left -= gap;
        }
        let pool = self.pick_pool();
        let idx = self.patterns[pool].next_index();
        let line = self.layouts[pool].line_at(idx);
        Some(TraceEvent {
            gap_instrs: gap as u32,
            line,
            is_write: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pool_spec() -> AppSpec {
        AppSpec::steady(
            "test2",
            vec![
                PoolSpec::new("small", 64 * 1024, Pattern::Uniform),
                PoolSpec::new("big", 1024 * 1024, Pattern::Sweep).with_callpoints(3),
            ],
            &[1.0, 2.0],
            50.0,
            42,
        )
    }

    #[test]
    fn model_allocates_disjoint_pools() {
        let m = AppModel::new(two_pool_spec());
        let d = m.descriptors_manual();
        assert_eq!(d.len(), 2);
        let pages0: std::collections::HashSet<_> = d[0].pages.iter().collect();
        assert!(d[1].pages.iter().all(|p| !pages0.contains(p)));
        // Pool footprints: 64 KB = 16 pages minimum.
        assert!(d[0].pages.len() >= 16);
    }

    #[test]
    fn trace_stays_within_pools() {
        let m = AppModel::new(two_pool_spec());
        let valid: std::collections::HashSet<u64> = m
            .descriptors_manual()
            .iter()
            .flat_map(|d| d.pages.iter().map(|p| p.0))
            .collect();
        let mut t = m.trace();
        for _ in 0..5000 {
            let ev = t.next_event().unwrap();
            assert!(
                valid.contains(&ev.line.page().0),
                "trace escaped the allocated pools"
            );
        }
    }

    #[test]
    fn apki_close_to_target() {
        let m = AppModel::new(two_pool_spec());
        let mut t = m.trace();
        let mut instrs = 0u64;
        let n = 20_000;
        for _ in 0..n {
            instrs += t.next_event().unwrap().gap_instrs as u64;
        }
        let apki = n as f64 * 1000.0 / instrs as f64;
        assert!((apki - 50.0).abs() < 5.0, "APKI {apki} vs target 50");
    }

    #[test]
    fn weights_respected() {
        let m = AppModel::new(two_pool_spec());
        let d = m.descriptors_manual();
        let small_pages: std::collections::HashSet<u64> = d[0].pages.iter().map(|p| p.0).collect();
        let mut t = m.trace();
        let mut small = 0;
        let n = 30_000;
        for _ in 0..n {
            if small_pages.contains(&t.next_event().unwrap().line.page().0) {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.05, "small pool frac {frac}");
    }

    #[test]
    fn phased_spec_alternates() {
        // lbm-style: two pools with inverted weights per phase.
        let spec = AppSpec {
            name: "phased",
            pools: vec![
                PoolSpec::new("g1", 256 * 1024, Pattern::Uniform),
                PoolSpec::new("g2", 256 * 1024, Pattern::Sweep),
            ],
            phases: vec![
                Phase {
                    duration_instrs: 100_000,
                    mix: vec![PoolMix::new(0, 0.8), PoolMix::new(1, 0.2)],
                },
                Phase {
                    duration_instrs: 100_000,
                    mix: vec![PoolMix::new(0, 0.2), PoolMix::new(1, 0.8)],
                },
            ],
            apki: 100.0,
            phase_jitter: 0.0,
            seed: 7,
        };
        let m = AppModel::new(spec);
        let d = m.descriptors_manual();
        let g1: std::collections::HashSet<u64> = d[0].pages.iter().map(|p| p.0).collect();
        let mut t = m.trace();
        // Phase 0: ~10k events (100k instrs at 100 APKI); count g1 share in
        // first 8k vs events 12k..18k (phase 1).
        let mut first = 0;
        for _ in 0..8000 {
            if g1.contains(&t.next_event().unwrap().line.page().0) {
                first += 1;
            }
        }
        for _ in 0..4000 {
            t.next_event();
        }
        let mut second = 0;
        for _ in 0..6000 {
            if g1.contains(&t.next_event().unwrap().line.page().0) {
                second += 1;
            }
        }
        let f1 = first as f64 / 8000.0;
        let f2 = second as f64 / 6000.0;
        assert!(f1 > 0.7, "phase 0 should favour g1: {f1}");
        assert!(f2 < 0.35, "phase 1 should favour g2: {f2}");
    }

    #[test]
    fn cluster_descriptors_group_callpoints() {
        let m = AppModel::new(two_pool_spec());
        // Assign all callpoints of pool 1 (3 sites) to cluster 0, pool 0's
        // site to cluster 1.
        let mut map = HashMap::new();
        for (cp, pool, _) in m.callpoints() {
            map.insert(*cp, if *pool == 1 { 0 } else { 1 });
        }
        let d = m.descriptors_from_clusters(&map);
        assert_eq!(d.len(), 2);
        let big = d.iter().find(|x| x.name == "cluster0").unwrap();
        assert!(big.pages.len() >= 256, "1 MB pool = 256 pages");
    }

    #[test]
    fn scaled_spec_shrinks_footprint() {
        let spec = two_pool_spec();
        let full = spec.footprint();
        let half = spec.scaled(0.5).footprint();
        assert!(half < full);
    }

    #[test]
    fn traces_are_deterministic() {
        let m = AppModel::new(two_pool_spec());
        let mut a = m.trace();
        let mut b = m.trace();
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }
}
