//! Multi-program mix generation (Appendix A).
//!
//! "We run random mixes with 1 B instructions per app after fast-forwarding
//! … All apps are kept running until all finish" — the fixed-work
//! methodology implemented by [`wp_sim::MultiCoreSim::run`]. This module
//! supplies the random app selections: 20 mixes of memory-intensive SPEC
//! apps at 4 and 16 cores (Fig. 22).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::registry::SPEC_APPS;

/// Generates `count` random mixes of `cores` SPEC apps each (with
/// repetition across mixes, without repetition within a mix when
/// possible — matching random multiprogrammed-mix methodology).
pub fn random_mixes(count: usize, cores: usize, seed: u64) -> Vec<Vec<&'static str>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut mix = Vec::with_capacity(cores);
            let mut available: Vec<&'static str> = SPEC_APPS.to_vec();
            for _ in 0..cores {
                if available.is_empty() {
                    // More cores than apps (16-core mixes): repetition OK.
                    available = SPEC_APPS.to_vec();
                }
                let i = rng.gen_range(0..available.len());
                mix.push(available.swap_remove(i));
            }
            mix
        })
        .collect()
}

/// Weighted speedup of a mix versus a baseline: `Σ_i IPC_i / IPC_base_i`,
/// normalized by core count — the Fig. 22 metric.
pub fn weighted_speedup(ipc: &[f64], baseline_ipc: &[f64]) -> f64 {
    assert_eq!(ipc.len(), baseline_ipc.len());
    assert!(!ipc.is_empty());
    let sum: f64 = ipc
        .iter()
        .zip(baseline_ipc)
        .map(|(&a, &b)| if b > 0.0 { a / b } else { 0.0 })
        .sum();
    sum / ipc.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_right_shape() {
        let m = random_mixes(20, 4, 1);
        assert_eq!(m.len(), 20);
        for mix in &m {
            assert_eq!(mix.len(), 4);
            // No repetition within a 4-app mix.
            let set: std::collections::HashSet<_> = mix.iter().collect();
            assert_eq!(set.len(), 4);
        }
    }

    #[test]
    fn sixteen_core_mixes_allow_repetition() {
        let m = random_mixes(5, 16, 2);
        for mix in &m {
            assert_eq!(mix.len(), 16);
        }
    }

    #[test]
    fn mixes_are_deterministic() {
        assert_eq!(random_mixes(3, 4, 7), random_mixes(3, 4, 7));
        assert_ne!(random_mixes(3, 4, 7), random_mixes(3, 4, 8));
    }

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipc, &ipc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_improvement() {
        let base = [1.0, 1.0];
        let better = [1.2, 1.1];
        let ws = weighted_speedup(&better, &base);
        assert!((ws - 1.15).abs() < 1e-12);
    }
}
