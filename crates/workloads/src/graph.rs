//! Synthetic graphs and the METIS-substitute partitioner.
//!
//! The paper partitions the irregular parallel apps' input graphs with
//! METIS "to evenly partition … while minimizing the number of edges
//! across partitions" (Sec. 3.4). We implement the same contract: R-MAT
//! generation for power-law inputs, and a BFS-seeded greedy partitioner
//! with Kernighan–Lin-style boundary refinement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph as an edge list + CSR adjacency.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Undirected edges (u, v), u != v, deduplicated.
    pub edges: Vec<(u32, u32)>,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list (self-loops dropped, duplicates
    /// merged).
    pub fn from_edges(num_vertices: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.retain(|&(u, v)| u != v);
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut degree = vec![0u32; num_vertices];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0u32; *offsets.last().unwrap() as usize];
        let mut cursor: Vec<u32> = offsets[..num_vertices].to_vec();
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        Self {
            num_vertices,
            edges,
            offsets,
            neighbors,
        }
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.neighbors[a..b]
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// R-MAT generator (Chakrabarti et al.): `2^scale` vertices,
/// `edge_factor × 2^scale` edges, with the canonical (0.57, 0.19, 0.19)
/// partition probabilities giving a power-law degree distribution.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut edges = Vec::with_capacity(n * edge_factor);
    for _ in 0..n * edge_factor {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        edges.push((u as u32, v as u32));
    }
    Graph::from_edges(n, edges)
}

/// A k-way partitioning of a graph.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `assignment[v]` = partition of vertex `v`.
    pub assignment: Vec<u32>,
    /// Number of partitions.
    pub parts: usize,
}

impl Partitioning {
    /// Edges crossing partitions.
    pub fn cut_edges(&self, g: &Graph) -> usize {
        g.edges
            .iter()
            .filter(|&&(u, v)| self.assignment[u as usize] != self.assignment[v as usize])
            .count()
    }

    /// Cut ratio: crossing edges / total edges.
    pub fn cut_ratio(&self, g: &Graph) -> f64 {
        if g.num_edges() == 0 {
            0.0
        } else {
            self.cut_edges(g) as f64 / g.num_edges() as f64
        }
    }

    /// Vertices per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.parts];
        for &p in &self.assignment {
            s[p as usize] += 1;
        }
        s
    }

    /// Max partition size / ideal size.
    pub fn imbalance(&self, g: &Graph) -> f64 {
        let ideal = g.num_vertices as f64 / self.parts as f64;
        self.sizes().iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

/// Partitions `g` into `parts` balanced pieces, minimizing the edge cut:
/// BFS region growing from spread-out seeds, then boundary refinement.
pub fn partition(g: &Graph, parts: usize, seed: u64) -> Partitioning {
    assert!(parts >= 1);
    let n = g.num_vertices;
    let mut assignment = vec![u32::MAX; n];
    let target = n.div_ceil(parts);
    let mut rng = StdRng::seed_from_u64(seed);

    // BFS-grow each partition from a random unassigned seed.
    let mut sizes = vec![0usize; parts];
    let mut queue = std::collections::VecDeque::new();
    for (p, size) in sizes.iter_mut().enumerate() {
        // Find a seed.
        let seed_v = (0..n)
            .map(|_| rng.gen_range(0..n))
            .find(|&v| assignment[v] == u32::MAX)
            .or_else(|| (0..n).find(|&v| assignment[v] == u32::MAX));
        let Some(sv) = seed_v else { break };
        queue.clear();
        queue.push_back(sv as u32);
        while let Some(v) = queue.pop_front() {
            if *size >= target {
                break;
            }
            if assignment[v as usize] != u32::MAX {
                continue;
            }
            assignment[v as usize] = p as u32;
            *size += 1;
            for &w in g.neighbors(v) {
                if assignment[w as usize] == u32::MAX {
                    queue.push_back(w);
                }
            }
        }
    }
    // Unreached vertices (isolated or leftovers): least-loaded partition.
    for a in assignment.iter_mut() {
        if *a == u32::MAX {
            let p = (0..parts).min_by_key(|&p| sizes[p]).expect(">=1 part");
            *a = p as u32;
            sizes[p] += 1;
        }
    }

    // KL-style refinement: move boundary vertices to the neighbouring
    // partition with the largest gain while balance allows.
    let max_size = (target as f64 * 1.1).ceil() as usize;
    for _pass in 0..4 {
        let mut moved = 0;
        for v in 0..n {
            let cur = assignment[v] as usize;
            let mut counts = std::collections::HashMap::new();
            for &w in g.neighbors(v as u32) {
                *counts.entry(assignment[w as usize]).or_insert(0usize) += 1;
            }
            let internal = counts.get(&(cur as u32)).copied().unwrap_or(0);
            if let Some((&best_p, &best_c)) = counts
                .iter()
                .filter(|&(&p, _)| p as usize != cur)
                .max_by_key(|&(_, &c)| c)
            {
                if best_c > internal && sizes[best_p as usize] < max_size && sizes[cur] > target / 2
                {
                    assignment[v] = best_p;
                    sizes[cur] -= 1;
                    sizes[best_p as usize] += 1;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
    Partitioning { assignment, parts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 8, 1);
        assert_eq!(g.num_vertices, 1024);
        assert!(g.num_edges() > 4000, "dedup leaves most edges");
        // Power law: max degree far above mean.
        let max_deg = (0..1024u32).map(|v| g.neighbors(v).len()).max().unwrap();
        let mean = 2.0 * g.num_edges() as f64 / 1024.0;
        assert!(max_deg as f64 > 4.0 * mean, "max {max_deg} vs mean {mean}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.neighbors(0).contains(&1));
        assert!(g.neighbors(1).contains(&0));
    }

    #[test]
    fn partition_is_balanced() {
        let g = rmat(12, 8, 2);
        let p = partition(&g, 16, 3);
        assert!(p.imbalance(&g) <= 1.2, "imbalance {}", p.imbalance(&g));
        assert!(p.sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn partition_beats_random_cut() {
        let g = rmat(12, 8, 4);
        let p = partition(&g, 16, 5);
        // Random 16-way assignment cuts ~15/16 of edges.
        let mut rng = StdRng::seed_from_u64(9);
        let random = Partitioning {
            assignment: (0..g.num_vertices)
                .map(|_| rng.gen_range(0..16u32))
                .collect(),
            parts: 16,
        };
        assert!(
            p.cut_ratio(&g) < 0.8 * random.cut_ratio(&g),
            "partitioner cut {} vs random {}",
            p.cut_ratio(&g),
            random.cut_ratio(&g)
        );
    }

    #[test]
    fn single_partition_has_no_cut() {
        let g = rmat(8, 4, 6);
        let p = partition(&g, 1, 7);
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.imbalance(&g), 1.0);
    }

    #[test]
    fn grid_graph_partitions_cleanly() {
        // A 2D grid: a good partitioner should cut far fewer than half.
        let w = 32;
        let mut edges = Vec::new();
        for y in 0..w {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    edges.push((v, v + 1));
                }
                if y + 1 < w {
                    edges.push((v, v + w as u32));
                }
            }
        }
        let g = Graph::from_edges(w * w, edges);
        let p = partition(&g, 4, 8);
        assert!(p.cut_ratio(&g) < 0.2, "grid cut {}", p.cut_ratio(&g));
    }
}
