//! Synthetic application models for the Whirlpool reproduction.
//!
//! The paper evaluates on SPEC CPU2006 and PBBS binaries; this crate
//! substitutes *application models* — parameterized generators that
//! reproduce the published memory behaviour of each benchmark: the pool
//! structure (sizes, access patterns, per-phase access mixes) that
//! Whirlpool exploits. See DESIGN.md §2 for the substitution argument and
//! [`registry`] for the per-app calibrations (dt's 0.5/1.5/4 MB pools with
//! an even access split, lbm's alternating grids, mis's streaming edges,
//! refine's irregular phase inversions, and so on).
//!
//! Contents:
//! * [`Pattern`] — line-level access patterns (uniform, hot/cold, sweep,
//!   pointer chase).
//! * [`AppSpec`] / [`AppModel`] — an app as pools + phases; instantiated,
//!   it allocates real (simulated) memory through the pool-aware heap and
//!   emits an LLC-bound [`wp_sim::Workload`] trace.
//! * [`registry`] — all 31 single-threaded apps (15 SPEC + 16 PBBS).
//! * [`graph`] — synthetic R-MAT graphs and the METIS-substitute
//!   partitioner used by the parallel apps.
//! * [`parallel`] — the six task-parallel apps of Fig. 13.
//! * [`mix`] — random multi-program mixes (Appendix A methodology).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod mix;
mod model;
pub mod parallel;
mod pattern;
pub mod registry;

pub use model::{AppModel, AppSpec, AppTrace, Phase, PoolMix, PoolSpec};
pub use pattern::{Pattern, PatternState};
