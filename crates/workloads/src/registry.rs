//! The benchmark registry: models of the 31 memory-intensive apps the
//! paper evaluates (Appendix A: the 15 SPEC CPU2006 and 16 PBBS apps with
//! >5 L2 MPKI).
//!
//! Each model is calibrated to the behaviour the paper documents:
//!
//! * `delaunay` (dt) — 0.5/1.5/4 MB pools with a roughly even access split
//!   (Fig. 2), so intensity differs 8× between points and triangles.
//! * `MIS` — cache-friendly vertices + streaming edges (Fig. 9): the
//!   bypass showcase.
//! * `lbm` — two grids with alternating per-phase behaviour (Fig. 6).
//! * `refine` — irregular phase inversions (Fig. 11).
//! * `cactus` — one reused region + one near-streaming region (Fig. 19).
//! * `SA` — two large pools that both cache well (Fig. 20).
//!
//! The remaining apps get plausible pool structures of the same flavour
//! (sizes, patterns, skews); their *absolute* numbers are synthetic, but
//! the heterogeneity Whirlpool exploits — or its absence, e.g.
//! `libqntm`'s single pool — mirrors each benchmark's published character.

use crate::model::{AppSpec, Phase, PoolMix, PoolSpec};
use crate::pattern::Pattern;

const MB: u64 = 1024 * 1024;
const KB: u64 = 1024;

/// SPEC CPU2006 apps (Fig. 16 left group).
pub const SPEC_APPS: &[&str] = &[
    "bzip2", "gcc", "mcf", "milc", "zeus", "cactus", "leslie", "soplex", "gems", "libqntm", "lbm",
    "omnet", "astar", "sphinx3", "xalanc",
];

/// PBBS apps (Fig. 16 right group; all but nbody).
pub const PBBS_APPS: &[&str] = &[
    "BFS",
    "MIS",
    "MST",
    "SA",
    "ST",
    "delaunay",
    "dict",
    "hull",
    "isort",
    "matching",
    "neighbors",
    "ray",
    "refine",
    "remDups",
    "setCover",
    "sort",
];

/// All 31 single-threaded benchmarks.
pub fn all_apps() -> Vec<&'static str> {
    SPEC_APPS.iter().chain(PBBS_APPS.iter()).copied().collect()
}

/// The file path of a `trace:<path>` app name, or `None` for registry
/// names. Anywhere an app name is accepted, `trace:/path/to/run.wpt`
/// names a recorded `.wpt` trace instead of a synthetic model; resolution
/// happens in the harness (`whirlpool_repro::harness::app_bundle`), since
/// traces carry their own pool tables rather than an [`AppSpec`].
pub fn trace_path(name: &str) -> Option<&std::path::Path> {
    name.strip_prefix("trace:").map(std::path::Path::new)
}

fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn hot(frac: f64, weight: f64) -> Pattern {
    Pattern::HotCold {
        hot_frac: frac,
        hot_weight: weight,
    }
}

/// The reference-input (ref/large) model of a benchmark.
///
/// # Panics
///
/// Panics on an unknown name; use [`all_apps`] for the valid set.
pub fn spec(name: &str) -> AppSpec {
    let s = seed_of(name);
    match name {
        // ---------------- SPEC CPU2006 ----------------
        "bzip2" => AppSpec::steady(
            "bzip2",
            vec![
                PoolSpec::new("arr1", 3 * MB + MB / 2, Pattern::Uniform).with_callpoints(2),
                PoolSpec::new("arr2", 3 * MB + MB / 2, Pattern::Uniform),
                PoolSpec::new("ftab", 256 * KB, hot(0.15, 0.85)),
                PoolSpec::new("tt", 3 * MB / 2, Pattern::Sweep),
            ],
            &[10.0, 8.0, 6.0, 6.0],
            30.0,
            s,
        ),
        "gcc" => {
            // Heavy phase variability: two phases with shifted weights;
            // finer pools make the phase changes slightly worse (Fig. 16).
            let pools = vec![
                PoolSpec::new("ir", 2 * MB, hot(0.2, 0.8)).with_callpoints(4),
                PoolSpec::new("misc", 3 * MB, Pattern::Uniform).with_callpoints(3),
            ];
            AppSpec {
                name: "gcc",
                pools,
                phases: vec![
                    Phase {
                        duration_instrs: 3_000_000,
                        mix: vec![PoolMix::new(0, 11.0), PoolMix::new(1, 4.0)],
                    },
                    Phase {
                        duration_instrs: 3_000_000,
                        mix: vec![
                            PoolMix::new(0, 5.0).with_pattern(Pattern::Uniform),
                            PoolMix::new(1, 10.0),
                        ],
                    },
                ],
                apki: 15.0,
                phase_jitter: 0.4,
                seed: s,
            }
        }
        "mcf" => AppSpec::steady(
            "mcf",
            vec![
                PoolSpec::new("nodes", 2 * MB, Pattern::Chase),
                PoolSpec::new("arcs", 7 * MB, Pattern::Uniform),
            ],
            &[30.0, 50.0],
            80.0,
            s,
        ),
        "milc" => AppSpec::steady(
            "milc",
            vec![
                PoolSpec::new("lattice", 10 * MB, Pattern::Sweep).with_callpoints(2),
                PoolSpec::new("tmp", 512 * KB, Pattern::Uniform),
            ],
            &[30.0, 10.0],
            40.0,
            s,
        ),
        "zeus" => AppSpec::steady(
            "zeus",
            vec![
                PoolSpec::new("grids", 7 * MB, Pattern::Sweep).with_callpoints(3),
                PoolSpec::new("work", MB, Pattern::Uniform),
            ],
            &[18.0, 7.0],
            25.0,
            s,
        ),
        "cactus" => AppSpec::steady(
            // Fig. 19: one region with good reuse (cache near the core) +
            // one with almost none (bypass).
            "cactus",
            vec![
                PoolSpec::new("pugh", MB + MB / 4, Pattern::Uniform),
                PoolSpec::new("grid", 10 * MB, Pattern::Sweep),
            ],
            &[6.0, 6.0],
            12.0,
            s,
        ),
        "leslie" => AppSpec::steady(
            "leslie",
            vec![
                PoolSpec::new("fields", 6 * MB, Pattern::Sweep).with_callpoints(3),
                PoolSpec::new("bounds", 768 * KB, Pattern::Uniform),
            ],
            &[22.0, 8.0],
            30.0,
            s,
        ),
        "soplex" => AppSpec::steady(
            "soplex",
            vec![
                PoolSpec::new("matrix", 5 * MB, Pattern::Uniform).with_callpoints(2),
                PoolSpec::new("vectors", 512 * KB, hot(0.2, 0.85)),
            ],
            &[25.0, 10.0],
            35.0,
            s,
        ),
        "gems" => AppSpec::steady(
            "gems",
            vec![
                PoolSpec::new("fields", 9 * MB, Pattern::Sweep).with_callpoints(3),
                PoolSpec::new("consts", 512 * KB, hot(0.2, 0.9)),
            ],
            &[35.0, 10.0],
            45.0,
            s,
        ),
        "libqntm" => AppSpec::steady(
            // A single homogeneous structure: classification cannot help.
            "libqntm",
            vec![PoolSpec::new("qreg", 4 * MB, Pattern::Sweep)],
            &[60.0],
            60.0,
            s,
        ),
        "lbm" => {
            // Fig. 6: both grids are far larger than the LLC; the *source*
            // grid enjoys stencil reuse within a trailing window (the
            // 19-point neighbourhood re-reads recent rows), while the
            // *destination* is write-streamed with no reuse. The roles swap
            // every timestep, so on average the grids are identical — only
            // per-phase (dynamic) policies can tell them apart (Sec. 2.2).
            let src = Pattern::WindowedSweep {
                window_frac: 0.08, // ~1.6 MB window of a 20 MB grid
                revisit: 0.65,
            };
            let pools = vec![
                PoolSpec::new("grid1", 20 * MB, src),
                PoolSpec::new("grid2", 20 * MB, Pattern::Sweep),
            ];
            AppSpec {
                name: "lbm",
                pools,
                phases: vec![
                    Phase {
                        duration_instrs: 12_000_000,
                        mix: vec![
                            PoolMix::new(0, 55.0).with_pattern(src),
                            PoolMix::new(1, 35.0).with_pattern(Pattern::Sweep),
                        ],
                    },
                    Phase {
                        duration_instrs: 12_000_000,
                        mix: vec![
                            PoolMix::new(0, 35.0).with_pattern(Pattern::Sweep),
                            PoolMix::new(1, 55.0).with_pattern(src),
                        ],
                    },
                ],
                apki: 90.0,
                phase_jitter: 0.0,
                seed: s,
            }
        }
        "omnet" => AppSpec::steady(
            "omnet",
            vec![
                PoolSpec::new("evheap", 768 * KB, hot(0.15, 0.85)).with_callpoints(2),
                PoolSpec::new("modules", 2 * MB + MB / 2, Pattern::Chase).with_callpoints(3),
                PoolSpec::new("msgs", MB + MB / 2, Pattern::Uniform).with_callpoints(2),
            ],
            &[12.0, 12.0, 6.0],
            30.0,
            s,
        ),
        "astar" => AppSpec::steady(
            "astar",
            vec![
                PoolSpec::new("graph", 3 * MB, Pattern::Chase),
                PoolSpec::new("open", 512 * KB, hot(0.2, 0.9)),
            ],
            &[18.0, 7.0],
            25.0,
            s,
        ),
        "sphinx3" => AppSpec::steady(
            "sphinx3",
            vec![
                PoolSpec::new("model", 4 * MB + MB / 2, Pattern::Uniform).with_callpoints(2),
                PoolSpec::new("dict", 320 * KB, hot(0.25, 0.85)),
            ],
            &[14.0, 6.0],
            20.0,
            s,
        ),
        "xalanc" => AppSpec::steady(
            "xalanc",
            vec![
                PoolSpec::new("dom", 2 * MB + MB / 2, Pattern::Chase).with_callpoints(3),
                PoolSpec::new("strings", MB, hot(0.2, 0.8)).with_callpoints(2),
                PoolSpec::new("temp", MB, Pattern::Sweep),
            ],
            &[18.0, 9.0, 5.0],
            32.0,
            s,
        ),
        // ---------------- PBBS ----------------
        "BFS" => AppSpec::steady(
            "BFS",
            vec![
                PoolSpec::new("vertices", MB + MB / 2, Pattern::Uniform),
                PoolSpec::new("edges", 6 * MB, Pattern::Sweep),
                PoolSpec::new("frontier", 320 * KB, hot(0.3, 0.85)),
                PoolSpec::new("visited", 768 * KB, Pattern::Uniform),
            ],
            &[15.0, 30.0, 8.0, 7.0],
            60.0,
            s,
        ),
        "MIS" => AppSpec::steady(
            // Fig. 9: vertices' miss curve falls to ~0 by ~11 MB; edges
            // stream far beyond the LLC. The bypass showcase (38% speedup).
            "MIS",
            vec![
                PoolSpec::new("vertices", 10 * MB, Pattern::Uniform),
                PoolSpec::new("edges", 24 * MB, Pattern::Sweep),
            ],
            &[45.0, 90.0],
            135.0,
            s,
        ),
        "MST" => AppSpec::steady(
            "MST",
            vec![
                PoolSpec::new("parents", MB, Pattern::Chase),
                PoolSpec::new("tree", 512 * KB, Pattern::Uniform),
                PoolSpec::new("edges", 6 * MB, Pattern::Sweep),
            ],
            &[20.0, 10.0, 40.0],
            70.0,
            s,
        ),
        "SA" => AppSpec::steady(
            // Fig. 20: both pools cache well; Whirlpool spends *more*
            // banks to keep the working set on chip.
            "SA",
            vec![
                PoolSpec::new("text", 3 * MB, Pattern::Uniform),
                PoolSpec::new("sa", 9 * MB, Pattern::Uniform),
            ],
            &[25.0, 45.0],
            70.0,
            s,
        ),
        "ST" => AppSpec::steady(
            "ST",
            vec![
                PoolSpec::new("parents", MB, Pattern::Chase),
                PoolSpec::new("tree", 512 * KB, Pattern::Uniform),
                PoolSpec::new("edges", 5 * MB, Pattern::Sweep),
            ],
            &[15.0, 8.0, 27.0],
            50.0,
            s,
        ),
        "delaunay" => AppSpec::steady(
            // Fig. 2: 6 MB working set, even access split, 8x intensity
            // spread between points and triangles.
            "delaunay",
            vec![
                PoolSpec::new("points", MB / 2, Pattern::Uniform),
                PoolSpec::new("vertices", 3 * MB / 2, Pattern::Uniform),
                PoolSpec::new("triangles", 4 * MB, Pattern::Uniform),
            ],
            &[8.0, 8.0, 9.0],
            25.0,
            s,
        ),
        "dict" => AppSpec::steady(
            "dict",
            vec![
                PoolSpec::new("table", 3 * MB, hot(0.25, 0.85)),
                PoolSpec::new("keys", 2 * MB, Pattern::Sweep),
            ],
            &[30.0, 15.0],
            45.0,
            s,
        ),
        "hull" => AppSpec::steady(
            "hull",
            vec![
                PoolSpec::new("points", 2 * MB + MB / 2, Pattern::Uniform),
                PoolSpec::new("hullarr", 128 * KB, hot(0.3, 0.9)),
            ],
            &[24.0, 6.0],
            30.0,
            s,
        ),
        "isort" => AppSpec::steady(
            "isort",
            vec![
                PoolSpec::new("keys", 5 * MB, Pattern::Sweep),
                PoolSpec::new("buckets", 512 * KB, hot(0.2, 0.85)),
            ],
            &[35.0, 15.0],
            50.0,
            s,
        ),
        "matching" => AppSpec::steady(
            "matching",
            vec![
                PoolSpec::new("vertices", MB + MB / 4, Pattern::Uniform),
                PoolSpec::new("edges", 5 * MB, Pattern::Sweep),
                PoolSpec::new("result", 512 * KB, Pattern::Uniform),
            ],
            &[15.0, 35.0, 10.0],
            60.0,
            s,
        ),
        "neighbors" => AppSpec::steady(
            "neighbors",
            vec![
                PoolSpec::new("points", 3 * MB, Pattern::Uniform),
                PoolSpec::new("kdtree", MB + MB / 2, Pattern::Chase),
            ],
            &[30.0, 25.0],
            55.0,
            s,
        ),
        "ray" => AppSpec::steady(
            "ray",
            vec![
                PoolSpec::new("triangles", 3 * MB, Pattern::Uniform),
                PoolSpec::new("bvh", MB, Pattern::Chase),
                PoolSpec::new("rays", MB, Pattern::Sweep),
            ],
            &[20.0, 15.0, 5.0],
            40.0,
            s,
        ),
        "refine" => {
            // Fig. 11: long quiet stretches, then ~irregular inversions
            // where vertices stream, triangles fit, and misc blows up.
            let pools = vec![
                PoolSpec::new("vertices", 6 * MB, Pattern::Uniform),
                PoolSpec::new("triangles", 2 * MB + MB / 2, Pattern::Sweep),
                PoolSpec::new("misc", 3 * MB, hot(0.3, 0.9)),
            ];
            AppSpec {
                name: "refine",
                pools,
                phases: vec![
                    Phase {
                        duration_instrs: 9_000_000,
                        mix: vec![
                            PoolMix::new(0, 14.0).with_pattern(Pattern::Uniform),
                            PoolMix::new(1, 12.0).with_pattern(Pattern::Sweep),
                            PoolMix::new(2, 9.0).with_pattern(hot(0.3, 0.9)),
                        ],
                    },
                    Phase {
                        duration_instrs: 1_500_000,
                        mix: vec![
                            PoolMix::new(0, 14.0).with_pattern(Pattern::Sweep),
                            PoolMix::new(1, 12.0).with_pattern(Pattern::Uniform),
                            PoolMix::new(2, 9.0).with_pattern(Pattern::Uniform),
                        ],
                    },
                ],
                apki: 35.0,
                phase_jitter: 0.5,
                seed: s,
            }
        }
        "remDups" => AppSpec::steady(
            "remDups",
            vec![
                PoolSpec::new("hash", 2 * MB + MB / 2, hot(0.3, 0.8)),
                PoolSpec::new("input", 5 * MB, Pattern::Sweep),
            ],
            &[30.0, 25.0],
            55.0,
            s,
        ),
        "setCover" => AppSpec::steady(
            "setCover",
            vec![
                PoolSpec::new("sets", 5 * MB, Pattern::Sweep).with_callpoints(2),
                PoolSpec::new("flags", MB, Pattern::Uniform),
            ],
            &[30.0, 15.0],
            45.0,
            s,
        ),
        "sort" => AppSpec::steady(
            "sort",
            vec![
                PoolSpec::new("keys", 6 * MB, Pattern::Sweep),
                PoolSpec::new("temp", 6 * MB, Pattern::Sweep),
            ],
            &[30.0, 25.0],
            55.0,
            s,
        ),
        other => {
            assert!(
                trace_path(other).is_none(),
                "'{other}' is a recorded trace, not a registry model; \
                 resolve it through the harness entry points"
            );
            panic!("unknown benchmark '{other}'")
        }
    }
}

/// The training-input (train/small) model, for WhirlTool's profiling runs
/// (Sec. 4.1/4.4). Most apps simply shrink; the four Fig.-18-sensitive
/// apps also shift behaviour, which is what costs WhirlTool performance
/// when profiling on them.
pub fn train_spec(name: &str) -> AppSpec {
    let base = spec(name).scaled(0.4);
    match name {
        "leslie" => {
            // Training input fits caches: the fields look reusable.
            let mut s = base;
            s.pools[0].pattern = Pattern::Uniform;
            s
        }
        "omnet" => {
            // Small network: module state looks hot instead of chased.
            let mut s = base;
            s.pools[1].pattern = hot(0.3, 0.8);
            s
        }
        "xalanc" => {
            // Small document: temp buffers dominate differently.
            let mut s = base;
            s.phases[0].mix[2].weight = 12.0;
            s
        }
        "setCover" => {
            // Small instance: sets get reuse.
            let mut s = base;
            s.pools[0].pattern = Pattern::Uniform;
            s
        }
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AppModel;
    use wp_sim::Workload;

    #[test]
    fn registry_has_31_apps() {
        assert_eq!(SPEC_APPS.len(), 15);
        assert_eq!(PBBS_APPS.len(), 16);
        assert_eq!(all_apps().len(), 31);
    }

    #[test]
    fn all_specs_instantiate() {
        for name in all_apps() {
            let s = spec(name);
            assert_eq!(s.name, name);
            assert!(s.apki > 5.0, "{name}: the paper selects >5 L2 MPKI apps");
            assert!(!s.pools.is_empty());
            assert!(!s.phases.is_empty());
            let m = AppModel::new(s);
            let mut t = m.trace();
            for _ in 0..100 {
                assert!(t.next_event().is_some());
            }
        }
    }

    #[test]
    fn dt_matches_fig2() {
        let s = spec("delaunay");
        assert_eq!(s.pools.len(), 3);
        assert_eq!(s.footprint(), 6 * MB);
        assert_eq!(s.pools[0].bytes, MB / 2);
        assert_eq!(s.pools[2].bytes, 4 * MB);
    }

    #[test]
    fn mis_has_streaming_edges() {
        let s = spec("MIS");
        assert!(matches!(s.pools[1].pattern, Pattern::Sweep));
        assert!(s.pools[1].bytes > 12 * MB, "edges exceed the LLC");
        assert!(s.pools[0].bytes < 13 * MB, "vertices fit the LLC");
    }

    #[test]
    fn lbm_phases_invert() {
        let s = spec("lbm");
        assert_eq!(s.phases.len(), 2);
        let w0 = s.phases[0].mix[0].weight;
        let w1 = s.phases[1].mix[0].weight;
        assert!(w0 > w1, "grid1 hot in phase 0, cold in phase 1");
    }

    #[test]
    fn refine_has_irregular_phases() {
        let s = spec("refine");
        assert!(s.phase_jitter > 0.0);
        assert!(s.phases[0].duration_instrs > s.phases[1].duration_instrs);
    }

    #[test]
    fn train_specs_differ_for_sensitive_apps() {
        for name in ["leslie", "omnet", "xalanc", "setCover"] {
            let r = spec(name);
            let t = train_spec(name);
            assert!(t.footprint() < r.footprint(), "{name}: train is smaller");
        }
        // Robust app: train is a pure scale-down.
        let r = spec("delaunay");
        let t = train_spec("delaunay");
        assert_eq!(r.pools[0].pattern, t.pools[0].pattern);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_app_panics() {
        spec("doom");
    }

    #[test]
    fn trace_uris_are_recognized() {
        assert_eq!(
            trace_path("trace:/tmp/run.wpt"),
            Some(std::path::Path::new("/tmp/run.wpt"))
        );
        assert_eq!(trace_path("delaunay"), None);
    }

    #[test]
    #[should_panic(expected = "recorded trace")]
    fn trace_uri_in_spec_panics_helpfully() {
        spec("trace:/tmp/run.wpt");
    }

    #[test]
    fn manual_table2_apps_exist_in_registry() {
        // Every Table 2 app key that is a single-threaded benchmark
        // resolves (BFS..cactus).
        for key in [
            "BFS", "delaunay", "matching", "refine", "MIS", "ST", "MST", "hull", "bzip2", "lbm",
            "mcf", "cactus",
        ] {
            let _ = spec(key);
        }
    }
}
