//! The comparison schemes of the paper's evaluation (Appendix A):
//!
//! * [`SNucaScheme`] — static NUCA: addresses hashed evenly across banks,
//!   with LRU or DRRIP replacement inside each bank. The commercial
//!   baseline (Fig. 3).
//! * [`IdealSpdScheme`] — *IdealSPD*, an idealized private-baseline D-NUCA
//!   granted extra capacity: each core owns a private 1.5 MB L3 that
//!   replicates its 3 closest banks, backed by a fully-provisioned
//!   directory and an exclusive S-NUCA L4 victim cache accessed in
//!   parallel. Upper-bounds DCC/ASR/ECC-style shared-private schemes.
//! * [`AwasthiScheme`] — Awasthi et al. (HPCA'09): shared-baseline
//!   page-granularity D-NUCA using page coloring, a 4-closest-banks initial
//!   allocation, and epoch-based hot-page migration controlled by the
//!   `alpha_a` / `alpha_b` parameters the paper sweeps.
//! * [`MemshareScheme`] — Memshare-style contention-aware apportioning:
//!   one logical partition per core, capacity slabs greedily reassigned
//!   between them at every interval by marginal miss reduction from the
//!   cores' sampled utility curves. The multi-tenant baseline the
//!   `wp-tenant` scenarios evaluate Whirlpool against.
//!
//! All three run on the same [`wp_sim`] substrate and energy accounting as
//! Jigsaw and Whirlpool, so the cross-scheme comparisons are apples to
//! apples.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod awasthi;
mod idealspd;
mod memshare;
mod snuca;

pub use awasthi::{AwasthiParams, AwasthiScheme};
pub use idealspd::IdealSpdScheme;
pub use memshare::MemshareScheme;
pub use snuca::{SNucaScheme, SnucaReplacement};
