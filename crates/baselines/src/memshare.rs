//! Memshare-style contention-aware capacity apportioning.
//!
//! Models the core idea of Memshare (Cidon et al.): the LLC is one
//! logically partitioned pool, and capacity *slabs* (our allocation
//! granules) are continually reassigned between tenants — here, one
//! tenant per core — by greedy marginal benefit. Each core carries a
//! sampled utility monitor (the same GMON substrate Whirlpool uses);
//! at every reconfiguration interval the allocator rebuilds the quota
//! vector from scratch, granting granules one at a time to whichever
//! tenant's miss curve promises the largest absolute miss reduction
//! for its next granule, weighted by the tenant's interval
//! instructions.
//!
//! Unlike Whirlpool it knows nothing about static pools or NUCA
//! placement — every access pays the distance to a hashed home bank,
//! like S-NUCA — so the comparison isolates the value of *capacity*
//! apportioning alone.

use wp_cache::{AccessOutcome, MonitorConfig, PartitionedCache, UtilityMonitor};
use wp_mem::LineAddr;
use wp_mrc::MissCurve;
use wp_noc::{BankId, CoreId};
use wp_sim::{
    AccessContext, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor, SystemConfig, Uncore,
};

/// Per-core bookkeeping: cumulative demand plus the last blended curve.
#[derive(Debug, Default)]
struct TenantState {
    accesses: u64,
    misses: u64,
    curve: Option<MissCurve>,
    /// Interval instructions at the last rollover (the curve's weight).
    weight_instrs: u64,
}

/// The Memshare capacity-apportioning scheme: one partition per core,
/// greedy marginal-benefit slab reassignment at every interval.
pub struct MemshareScheme {
    parts: PartitionedCache,
    monitors: Vec<UtilityMonitor>,
    tenants: Vec<TenantState>,
    /// Current per-core allocation, in granules.
    quotas: Vec<usize>,
    granule_lines: u64,
    total_granules: usize,
    num_banks: u64,
    reconfigs: u64,
    log: Vec<wp_obs::ReconfigEvent>,
}

impl std::fmt::Debug for MemshareScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemshareScheme")
            .field("cores", &self.quotas.len())
            .field("total_granules", &self.total_granules)
            .finish()
    }
}

impl MemshareScheme {
    /// Builds the scheme for a system: the whole LLC as one partitioned
    /// cache, an equal-split initial allocation, and one sampled
    /// utility monitor per core sized to cover the full LLC.
    pub fn new(sys: &SystemConfig) -> Self {
        let cores = sys.floorplan.num_cores();
        let num_banks = sys.floorplan.num_banks() as u64;
        let total_lines = (num_banks * sys.lines_per_bank()) as usize;
        let total_granules = sys.total_granules();
        let mut parts = PartitionedCache::new(total_lines);
        let mut quotas = vec![0usize; cores];
        // Equal split until the first interval's curves arrive; the
        // remainder granules go to the lowest-numbered cores so the sum
        // always covers the whole LLC.
        for (i, q) in quotas.iter_mut().enumerate() {
            *q = total_granules / cores + usize::from(i < total_granules % cores);
            let _ = parts.set_quota(i as u32, *q * sys.granule_lines as usize);
        }
        let monitor_cfg = MonitorConfig {
            granule_lines: sys.granule_lines,
            curve_points: total_granules + 1,
            ..MonitorConfig::default()
        };
        Self {
            parts,
            monitors: (0..cores)
                .map(|_| UtilityMonitor::new(monitor_cfg))
                .collect(),
            tenants: (0..cores).map(|_| TenantState::default()).collect(),
            quotas,
            granule_lines: sys.granule_lines,
            total_granules,
            num_banks,
            reconfigs: 0,
            log: Vec::new(),
        }
    }

    /// S-NUCA-style home bank: capacity is logically global, so every
    /// access pays the distance to a hashed bank (same multiply-xor hash
    /// as IdealSPD's L4).
    fn bank_of(&self, line: LineAddr) -> BankId {
        let mut h = line.0;
        h ^= h >> 31;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        BankId((h % self.num_banks) as u16)
    }

    /// Greedy from-zero reallocation with lookahead: repeatedly grant
    /// the slab run promising the best miss-reduction *rate* (absolute
    /// misses saved per granule, i.e. MPKI delta × interval
    /// kilo-instructions ÷ run length). Scanning every run length — the
    /// UCP "Lookahead" trick — is what sees past the flat plateau in
    /// front of a working-set cliff, where a one-granule greedy reads
    /// zero gain and stalls. Capacity beyond every curve's last cliff
    /// goes proportionally to the benefit each tenant demonstrated in
    /// the greedy pass — the reuse-heavy tenants keep the slack, while
    /// streamers and idle cores (zero demonstrated benefit) release it.
    fn apportion(&self) -> Vec<usize> {
        let cores = self.quotas.len();
        let mut next = vec![0usize; cores];
        let mut saved = vec![0.0f64; cores];
        // Best (gain rate, run length) for a tenant holding `have`
        // granules, looking ahead at most `cap` more.
        let best_run = |core: usize, have: usize, cap: usize| -> (f64, usize) {
            let Some(c) = &self.tenants[core].curve else {
                return (0.0, 0);
            };
            let kilo = self.tenants[core].weight_instrs as f64 / 1000.0;
            let base = c.mpki_at(have);
            let mut best = (0.0f64, 0usize);
            for d in 1..=cap {
                let rate = (base - c.mpki_at(have + d)).max(0.0) * kilo / d as f64;
                if rate > best.0 {
                    best = (rate, d);
                }
            }
            best
        };
        let mut remaining = self.total_granules;
        while remaining > 0 {
            let mut winner: Option<(f64, usize, usize)> = None;
            for (i, &have) in next.iter().enumerate() {
                let (rate, run) = best_run(i, have, remaining);
                if rate > winner.map_or(0.0, |w| w.0) {
                    winner = Some((rate, i, run));
                }
            }
            let Some((rate, i, run)) = winner else { break };
            next[i] += run;
            remaining -= run;
            saved[i] += rate * run as f64;
        }
        // Leftover capacity sits past every curve's last cliff: park it
        // with the tenants that demonstrated reuse, proportionally to
        // the misses the greedy pass saved them (largest-remainder
        // rounding, ties to the lowest core). With no demonstrated
        // benefit anywhere (cold start), spread evenly instead.
        if remaining > 0 {
            let total_saved: f64 = saved.iter().sum();
            if total_saved > 0.0 {
                let mut shares: Vec<(usize, f64)> = (0..cores)
                    .map(|i| {
                        let exact = remaining as f64 * saved[i] / total_saved;
                        let floor = exact.floor() as usize;
                        next[i] += floor;
                        remaining -= floor;
                        (i, exact - floor as f64)
                    })
                    .collect();
                shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                for (i, _) in shares.into_iter().cycle().take(remaining) {
                    next[i] += 1;
                }
            } else {
                for k in 0..remaining {
                    next[k % cores] += 1;
                }
            }
        }
        next
    }
}

impl LlcScheme for MemshareScheme {
    fn name(&self) -> String {
        "Memshare".into()
    }

    fn attach_core(&mut self, _core: CoreId, _pools: &[PoolDescriptor]) {}

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        let core_idx = ctx.core.0 as usize;
        let bank = self.bank_of(ctx.line);
        self.monitors[core_idx].record(ctx.line.0);
        self.tenants[core_idx].accesses += 1;
        match self.parts.access(core_idx as u32, ctx.line.0) {
            AccessOutcome::Hit => LlcResponse {
                latency: uncore.bank_hit(ctx.core, bank),
                outcome: LlcOutcome::Hit,
            },
            AccessOutcome::Miss { .. } => {
                self.tenants[core_idx].misses += 1;
                uncore.charge_bank_insert();
                LlcResponse {
                    latency: uncore.bank_miss_to_memory(ctx.core, bank, ctx.line),
                    outcome: LlcOutcome::Miss,
                }
            }
        }
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        // Roll every monitor over first so each tenant's curve reflects
        // the whole interval, then reapportion from the fresh curves.
        for (i, mon) in self.monitors.iter_mut().enumerate() {
            let instrs = uncore.interval_instructions[i];
            let curve = mon.rollover(instrs);
            self.tenants[i].weight_instrs = instrs;
            self.tenants[i].curve = Some(curve);
        }
        let next = self.apportion();
        self.reconfigs += 1;
        let pools = next
            .iter()
            .enumerate()
            .map(|(i, &g)| wp_obs::PoolChange {
                pool: format!("tenant:core{i}"),
                old_granules: Some(self.quotas[i]),
                new_granules: g,
                bypassed: g == 0,
                apki: self.tenants[i]
                    .curve
                    .as_ref()
                    .map_or(0.0, MissCurve::at_zero),
            })
            .collect();
        self.log.push(wp_obs::ReconfigEvent {
            cycle: uncore.now,
            index: self.reconfigs,
            pools,
        });
        // Shrink before growing so the partitioned cache's capacity
        // invariant (assigned <= total) holds at every step.
        for (i, (&new, old)) in next.iter().zip(self.quotas.clone()).enumerate() {
            if new < old {
                let _ = self
                    .parts
                    .set_quota(i as u32, new * self.granule_lines as usize);
            }
        }
        for (i, &new) in next.iter().enumerate() {
            if new >= self.quotas[i] {
                let _ = self
                    .parts
                    .set_quota(i as u32, new * self.granule_lines as usize);
            }
        }
        self.quotas = next;
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        Vec::new()
    }

    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        self.quotas
            .iter()
            .enumerate()
            .map(|(i, &g)| wp_obs::PoolOcc {
                pool: format!("tenant:core{i}"),
                granules: g,
                bypassed: g == 0,
                accesses: self.tenants[i].accesses,
                misses: self.tenants[i].misses,
            })
            .collect()
    }

    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        self.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    /// Drives `n` accesses per core: core 0 loops a reusable working
    /// set, core 1 streams (no reuse).
    fn drive(s: &mut MemshareScheme, u: &mut Uncore, n: u64, stream_base: &mut u64) {
        for k in 0..n {
            s.access(ctx(0, k % 4096), u);
            u.interval_instructions[0] += 10;
            s.access(ctx(1, *stream_base), u);
            *stream_base += 1;
            u.interval_instructions[1] += 10;
        }
    }

    #[test]
    fn quotas_cover_the_whole_llc() {
        let config = sys();
        let s = MemshareScheme::new(&config);
        assert_eq!(s.quotas.iter().sum::<usize>(), config.total_granules());
    }

    #[test]
    fn hungry_core_takes_capacity_from_a_streaming_one() {
        let config = sys();
        let mut s = MemshareScheme::new(&config);
        let mut u = Uncore::new(config);
        let mut stream = 1 << 40;
        for _ in 0..3 {
            drive(&mut s, &mut u, 60_000, &mut stream);
            s.reconfigure(&mut u);
            for n in &mut u.interval_instructions {
                *n = 0;
            }
        }
        assert!(
            s.quotas[0] > 2 * s.quotas[1].max(1),
            "reuse-heavy core 0 should out-earn streaming core 1: {:?}",
            s.quotas
        );
        let sum: usize = s.quotas.iter().sum();
        assert_eq!(sum, s.total_granules, "reallocation must conserve capacity");
    }

    #[test]
    fn reallocation_is_deterministic_and_logged() {
        let config = sys();
        let run = || {
            let mut s = MemshareScheme::new(&config);
            let mut u = Uncore::new(config.clone());
            let mut stream = 1 << 40;
            drive(&mut s, &mut u, 30_000, &mut stream);
            s.reconfigure(&mut u);
            (s.quotas.clone(), s.reconfig_log())
        };
        let (q1, log1) = run();
        let (q2, log2) = run();
        assert_eq!(q1, q2);
        assert_eq!(log1, log2);
        assert_eq!(log1.len(), 1);
        assert_eq!(log1[0].pools.len(), 4);
    }

    #[test]
    fn idle_cores_eventually_release_capacity() {
        let config = sys();
        let mut s = MemshareScheme::new(&config);
        let mut u = Uncore::new(config);
        // Core 0 active with reuse; cores 1-3 idle throughout.
        for _ in 0..4 {
            for k in 0..40_000u64 {
                s.access(ctx(0, k % 4096), &mut u);
                u.interval_instructions[0] += 10;
            }
            s.reconfigure(&mut u);
            for n in &mut u.interval_instructions {
                *n = 0;
            }
        }
        assert!(
            s.quotas[0] >= s.total_granules / 2,
            "active core should hold most of the LLC: {:?}",
            s.quotas
        );
    }
}
