//! IdealSPD: an idealized private-baseline D-NUCA (Appendix A).
//!
//! Each core has a private 1.5 MB L3 that replicates the 3 closest NUCA
//! banks, followed by a fully-provisioned directory and an exclusive
//! S-NUCA L4 whose banks act as a victim cache accessed in parallel with
//! the directory. Private (L3) capacity does not reduce the shared (L4)
//! region — the idealization that upper-bounds DCC, ASR, and ECC (Herrero
//! et al. show it always outperforms them, often by up to 30%).
//!
//! Its weakness, faithfully modelled: benchmarks that do not fit the
//! private region pay *multi-level lookups* — an L3 check, then an L4
//! bank check — on every miss, adding latency and data-movement energy
//! (the Fig. 10/21 pathology).

use wp_cache::{AccessOutcome, LruPolicy, SetAssocCache};
use wp_mem::LineAddr;
use wp_noc::{BankId, CoreId};
use wp_sim::{
    AccessContext, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor, SystemConfig, Uncore,
};

/// Private L3 capacity: 3 × 512 KB = 1.5 MB per core.
const L3_BANKS_REPLICATED: u64 = 3;

/// The IdealSPD scheme.
pub struct IdealSpdScheme {
    /// Per-core private L3.
    l3: Vec<SetAssocCache<LruPolicy>>,
    /// Exclusive shared L4, one cache per bank.
    l4: Vec<SetAssocCache<LruPolicy>>,
    num_banks: u64,
}

impl std::fmt::Debug for IdealSpdScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdealSpdScheme")
            .field("cores", &self.l3.len())
            .finish()
    }
}

impl IdealSpdScheme {
    /// Builds IdealSPD for the system.
    pub fn new(sys: &SystemConfig) -> Self {
        let l3_bytes = L3_BANKS_REPLICATED * sys.bank_bytes;
        let cores = sys.floorplan.num_cores();
        let num_banks = sys.floorplan.num_banks();
        Self {
            l3: (0..cores)
                .map(|_| SetAssocCache::with_capacity_bytes(l3_bytes, 12, LruPolicy::new()))
                .collect(),
            l4: (0..num_banks)
                .map(|_| SetAssocCache::with_capacity_bytes(sys.bank_bytes, 16, LruPolicy::new()))
                .collect(),
            num_banks: num_banks as u64,
        }
    }

    fn l4_bank_of(&self, line: LineAddr) -> BankId {
        let mut h = line.0;
        h ^= h >> 31;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        BankId((h % self.num_banks) as u16)
    }
}

impl LlcScheme for IdealSpdScheme {
    fn name(&self) -> String {
        "IdealSPD".into()
    }

    fn attach_core(&mut self, _core: CoreId, _pools: &[PoolDescriptor]) {}

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        let core_idx = ctx.core.0 as usize;
        let near_bank = uncore.plan().banks_by_distance(ctx.core)[0];
        // 1. Private L3 (the 3 replicated nearby banks).
        match self.l3[core_idx].access(ctx.line.0) {
            AccessOutcome::Hit => LlcResponse {
                latency: uncore.bank_hit(ctx.core, near_bank),
                outcome: LlcOutcome::Hit,
            },
            AccessOutcome::Miss { evicted } => {
                // The L3 check happened and missed: pay the lookup.
                let l3_lookup = uncore.bank_lookup_miss(ctx.core, near_bank);
                // Exclusive hierarchy: the L3 victim spills into its L4 bank.
                if let Some(victim) = evicted {
                    let vbank = self.l4_bank_of(LineAddr(victim));
                    uncore.charge_core_bank_data(ctx.core, vbank);
                    uncore.charge_bank_insert();
                    if let AccessOutcome::Miss {
                        evicted: Some(_l4_victim),
                    } = self.l4[vbank.0 as usize].access(victim)
                    {
                        // L4 victim dropped (clean-drop model).
                    }
                }
                // 2. L4 victim bank, in parallel with the directory.
                //    (Tag probe only: an exclusive L4 never fills on the
                //    demand path — lines enter it solely via L3 victims.)
                let l4_bank = self.l4_bank_of(ctx.line);
                if self.l4[l4_bank.0 as usize].contains(ctx.line.0) {
                    // Exclusive: promote to L3 (already filled above by the
                    // `access` that brought the line in), remove from L4.
                    self.l4[l4_bank.0 as usize].invalidate(ctx.line.0);
                    let lat = uncore.bank_hit(ctx.core, l4_bank);
                    LlcResponse {
                        latency: l3_lookup + lat,
                        outcome: LlcOutcome::Hit,
                    }
                } else {
                    let lat = uncore.bank_miss_to_memory(ctx.core, l4_bank, ctx.line);
                    LlcResponse {
                        latency: l3_lookup + lat,
                        outcome: LlcOutcome::Miss,
                    }
                }
            }
        }
    }

    fn reconfigure(&mut self, _uncore: &mut Uncore) {}

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn small_working_set_hits_private_fast() {
        let mut s = IdealSpdScheme::new(&sys());
        let mut u = Uncore::new(sys());
        // 1 MB fits the 1.5 MB L3.
        let lines = 16_384u64;
        for l in 0..lines {
            s.access(ctx(0, l), &mut u);
        }
        let mut hits = 0;
        let mut total_lat = 0.0;
        for l in 0..lines {
            let r = s.access(ctx(0, l), &mut u);
            if r.outcome == LlcOutcome::Hit {
                hits += 1;
                total_lat += r.latency;
            }
        }
        assert!(hits as f64 > 0.9 * lines as f64);
        // Private hits are near-bank fast (~15 cycles); a small tail of
        // set-conflict victims is served from the L4 at higher latency.
        assert!(total_lat / hits as f64 <= 25.0);
    }

    #[test]
    fn spilled_data_found_in_l4() {
        let mut s = IdealSpdScheme::new(&sys());
        let mut u = Uncore::new(sys());
        // 4 MB working set: exceeds L3 (1.5 MB), fits L3+L4 comfortably.
        let lines = 65_536u64;
        for l in 0..lines {
            s.access(ctx(0, l), &mut u);
        }
        let mut hits = 0;
        for l in 0..lines {
            if s.access(ctx(0, l), &mut u).outcome == LlcOutcome::Hit {
                hits += 1;
            }
        }
        assert!(
            hits as f64 > 0.8 * lines as f64,
            "{hits}/{lines}: victims should hit in the L4"
        );
    }

    #[test]
    fn multi_level_lookup_energy_penalty() {
        // The same L4-resident working set costs IdealSPD more bank
        // accesses than a single-lookup scheme would: every access pays an
        // L3 check first.
        let mut s = IdealSpdScheme::new(&sys());
        let mut u = Uncore::new(sys());
        let lines = 65_536u64; // 4 MB
        for rep in 0..3 {
            for l in 0..lines {
                s.access(ctx(0, l), &mut u);
            }
            let _ = rep;
        }
        let (_, bank_accesses, _) = u.energy_events();
        let total_accesses = 3 * lines;
        assert!(
            bank_accesses as f64 > 1.3 * total_accesses as f64,
            "expected >1.3 bank accesses per access, got {}",
            bank_accesses as f64 / total_accesses as f64
        );
    }

    #[test]
    fn cores_have_independent_private_regions() {
        let mut s = IdealSpdScheme::new(&sys());
        let mut u = Uncore::new(sys());
        for l in 0..1000u64 {
            s.access(ctx(0, l), &mut u);
        }
        // Core 1 never touched those lines: its L3 misses.
        let r = s.access(ctx(1, 5), &mut u);
        // Could hit in L4? No: line 5 is in core 0's L3 (exclusive, not in
        // L4) -> core 1 misses to memory under this no-directory-forward
        // idealization? The directory would forward; we model the common
        // single-threaded case where cross-core sharing is negligible.
        assert_eq!(r.outcome, LlcOutcome::Miss);
    }
}
