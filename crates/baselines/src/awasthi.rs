//! Awasthi et al., "Dynamic hardware-assisted software-controlled page
//! placement to manage capacity allocation and sharing within large
//! caches" (HPCA'09) — the representative shared-baseline D-NUCA.
//!
//! Pages are placed in banks by page coloring: a new page lands in one of
//! the **four banks closest** to its first toucher (the paper's "initial
//! allocation"). Each epoch, the hottest pages migrate toward their
//! dominant requester if a closer bank has room. Because per-page counters
//! carry little information and placement is incremental, the scheme "can
//! get stuck in local optima" (Sec. 5) — faithfully reproduced here: pages
//! never spread beyond the near-bank colors even when the working set
//! overflows them, which is exactly its Fig. 10 pathology on `mis`.

use wp_mrc::FastMap;

use wp_cache::{AccessOutcome, LruPolicy, SetAssocCache};
#[cfg(test)]
use wp_mem::LineAddr;
use wp_mem::PageId;
use wp_noc::{BankId, CoreId};
use wp_sim::{
    AccessContext, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor, SystemConfig, Uncore,
};

/// Tunables the paper sweeps ("we have implemented Awasthi as proposed,
/// sweeping implementation parameters αA, αB to find the values that
/// perform best", Appendix A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwasthiParams {
    /// Hottest pages considered for migration each epoch (αA).
    pub migrations_per_epoch: usize,
    /// Occupancy cap: a destination bank accepts a migrated/new page only
    /// while it holds fewer than `alpha_b × pages_per_bank` pages (αB).
    pub alpha_b: f64,
}

impl Default for AwasthiParams {
    fn default() -> Self {
        Self {
            migrations_per_epoch: 64,
            alpha_b: 2.0,
        }
    }
}

/// The Awasthi page-migration scheme.
pub struct AwasthiScheme {
    params: AwasthiParams,
    banks: Vec<SetAssocCache<LruPolicy>>,
    page_bank: FastMap<PageId, BankId>,
    /// Pages mapped per bank (for the occupancy cap).
    bank_pages: Vec<usize>,
    /// Per-epoch page heat and dominant requester.
    page_heat: FastMap<PageId, (u64, CoreId)>,
    pages_per_bank: usize,
    migrations: u64,
}

impl std::fmt::Debug for AwasthiScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AwasthiScheme")
            .field("params", &self.params)
            .field("migrations", &self.migrations)
            .finish()
    }
}

impl AwasthiScheme {
    /// Builds the scheme.
    pub fn new(sys: &SystemConfig, params: AwasthiParams) -> Self {
        let num_banks = sys.floorplan.num_banks();
        Self {
            params,
            banks: (0..num_banks)
                .map(|_| SetAssocCache::with_capacity_bytes(sys.bank_bytes, 16, LruPolicy::new()))
                .collect(),
            page_bank: FastMap::default(),
            bank_pages: vec![0; num_banks],
            page_heat: FastMap::default(),
            pages_per_bank: (sys.bank_bytes / wp_mem::PAGE_BYTES) as usize,
            migrations: 0,
        }
    }

    /// Total page migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    fn cap(&self) -> usize {
        (self.params.alpha_b * self.pages_per_bank as f64) as usize
    }

    /// Initial placement: the least-loaded of the 4 banks nearest the first
    /// toucher; over-subscription is allowed (round robin by load) when all
    /// four are at the cap — the "stuck at small capacity" behaviour.
    fn place_new_page(&mut self, page: PageId, core: CoreId, uncore: &Uncore) -> BankId {
        let near: Vec<BankId> = uncore.plan().banks_by_distance(core)[..4].to_vec();
        let bank = *near
            .iter()
            .min_by_key(|b| self.bank_pages[b.0 as usize])
            .expect("four candidates");
        self.page_bank.insert(page, bank);
        self.bank_pages[bank.0 as usize] += 1;
        bank
    }
}

impl LlcScheme for AwasthiScheme {
    fn name(&self) -> String {
        "Awasthi".into()
    }

    fn attach_core(&mut self, _core: CoreId, _pools: &[PoolDescriptor]) {}

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        let page = ctx.line.page();
        let bank = match self.page_bank.get(&page) {
            Some(&b) => b,
            None => self.place_new_page(page, ctx.core, uncore),
        };
        let heat = self.page_heat.entry(page).or_insert((0, ctx.core));
        heat.0 += 1;
        heat.1 = ctx.core; // last requester approximates the dominant one
        match self.banks[bank.0 as usize].access(ctx.line.0) {
            AccessOutcome::Hit => LlcResponse {
                latency: uncore.bank_hit(ctx.core, bank),
                outcome: LlcOutcome::Hit,
            },
            AccessOutcome::Miss { .. } => LlcResponse {
                latency: uncore.bank_miss_to_memory(ctx.core, bank, ctx.line),
                outcome: LlcOutcome::Miss,
            },
        }
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        // Pick the hottest pages of the epoch.
        let mut hot: Vec<(PageId, u64, CoreId)> = self
            .page_heat
            .iter()
            .map(|(&p, &(n, c))| (p, n, c))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        hot.truncate(self.params.migrations_per_epoch);
        let cap = self.cap();
        for (page, _, requester) in hot {
            let Some(&cur) = self.page_bank.get(&page) else {
                continue;
            };
            let cur_hops = uncore.plan().hops_core_bank(requester, cur);
            // Walk banks nearest the requester; migrate to the first closer
            // bank with room.
            let target = uncore
                .plan()
                .banks_by_distance(requester)
                .iter()
                .copied()
                .find(|&b| {
                    uncore.plan().hops_core_bank(requester, b) < cur_hops
                        && self.bank_pages[b.0 as usize] < cap
                });
            if let Some(dest) = target {
                // Invalidate the page's lines at the old bank (migration
                // cost: the lines reload at the new bank on demand).
                let first = page.first_line().0;
                let mut invalidated = 0u64;
                for l in first..first + wp_mem::LINES_PER_PAGE {
                    if self.banks[cur.0 as usize].invalidate(l) {
                        invalidated += 1;
                    }
                }
                uncore.reconfiguration_invalidations(cur, invalidated);
                self.bank_pages[cur.0 as usize] -= 1;
                self.bank_pages[dest.0 as usize] += 1;
                self.page_bank.insert(page, dest);
                self.migrations += 1;
            }
        }
        self.page_heat.clear();
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        self.bank_pages
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                (
                    b,
                    "pages".to_string(),
                    (n as f64 / self.pages_per_bank as f64).min(1.0),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn new_pages_land_in_four_nearest_banks() {
        let mut s = AwasthiScheme::new(&sys(), AwasthiParams::default());
        let mut u = Uncore::new(sys());
        for l in (0..64_000u64).step_by(64) {
            s.access(ctx(0, l), &mut u);
        }
        let near: std::collections::HashSet<BankId> = u.plan().banks_by_distance(CoreId(0))[..4]
            .iter()
            .copied()
            .collect();
        for (_, &b) in s.page_bank.iter() {
            assert!(near.contains(&b), "page outside the 4-bank allocation");
        }
    }

    #[test]
    fn small_working_set_is_near_and_hits() {
        let mut s = AwasthiScheme::new(&sys(), AwasthiParams::default());
        let mut u = Uncore::new(sys());
        let lines = 8192u64; // 512 KB
        for _ in 0..2 {
            for l in 0..lines {
                s.access(ctx(0, l), &mut u);
            }
        }
        let mut hits = 0;
        let mut lat = 0.0;
        for l in 0..lines {
            let r = s.access(ctx(0, l), &mut u);
            if r.outcome == LlcOutcome::Hit {
                hits += 1;
                lat += r.latency;
            }
        }
        assert!(hits as f64 > 0.9 * lines as f64);
        // Hits are in nearby banks: latency well below chip-average.
        assert!(lat / hits as f64 <= 25.0, "avg {}", lat / hits as f64);
    }

    #[test]
    fn big_working_set_thrashes_four_banks() {
        // mis-like: a working set that needs >4 banks gets stuck (Fig. 10).
        let mut s = AwasthiScheme::new(&sys(), AwasthiParams::default());
        let mut u = Uncore::new(sys());
        let lines = 80_000u64; // ~5 MB >> 4 banks (2 MB)
        for _ in 0..2 {
            for l in 0..lines {
                s.access(ctx(0, l), &mut u);
            }
        }
        let mut hits = 0;
        for l in 0..lines {
            if s.access(ctx(0, l), &mut u).outcome == LlcOutcome::Hit {
                hits += 1;
            }
        }
        assert!(
            (hits as f64) < 0.5 * lines as f64,
            "Awasthi should thrash: {hits}/{lines}"
        );
    }

    #[test]
    fn migration_moves_hot_pages_closer() {
        let mut s = AwasthiScheme::new(&sys(), AwasthiParams::default());
        let mut u = Uncore::new(sys());
        // Touch pages from core 0 but spread initial placement by touching
        // from core 2 first (far from core 0).
        for l in (0..32_000u64).step_by(64) {
            s.access(ctx(2, l), &mut u);
        }
        // Now core 0 hammers them.
        for _ in 0..3 {
            for l in (0..32_000u64).step_by(8) {
                s.access(ctx(0, l), &mut u);
            }
        }
        s.reconfigure(&mut u);
        assert!(s.migrations() > 0, "hot pages should migrate");
    }

    #[test]
    fn occupancy_capped_at_one() {
        let mut s = AwasthiScheme::new(&sys(), AwasthiParams::default());
        let mut u = Uncore::new(sys());
        for l in (0..4_000_000u64).step_by(64) {
            s.access(ctx(0, l), &mut u);
        }
        for (_, _, frac) in s.bank_occupancy() {
            assert!(frac <= 1.0);
        }
    }
}
