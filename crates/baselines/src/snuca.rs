//! Static NUCA (S-NUCA): line-interleaved banks, no placement intelligence.
//!
//! "Many commercial processors adopt a static NUCA design that hashes
//! addresses evenly across banks" (Sec. 2.1, Fig. 3). Data lands wherever
//! the hash sends it, so a core's working set is smeared across the whole
//! chip — the data-movement baseline every other scheme improves on.

use wp_cache::{AccessOutcome, DrripPolicy, LruPolicy, ReplacementPolicy, SetAssocCache};
use wp_mem::LineAddr;
use wp_noc::{BankId, CoreId};
use wp_sim::{
    AccessContext, BatchClock, EventBatch, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor,
    SystemConfig, Uncore,
};

/// Replacement policy choice for the S-NUCA banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnucaReplacement {
    /// Per-bank LRU.
    Lru,
    /// Per-bank DRRIP (the paper's high-performance replacement baseline).
    Drrip,
}

enum BankCache {
    Lru(SetAssocCache<LruPolicy>),
    Drrip(SetAssocCache<DrripPolicy>),
}

impl BankCache {
    fn access(&mut self, line: u64) -> AccessOutcome {
        match self {
            BankCache::Lru(c) => c.access(line),
            BankCache::Drrip(c) => c.access(line),
        }
    }

    fn prefetch(&self, line: u64) {
        match self {
            BankCache::Lru(c) => c.prefetch(line),
            BankCache::Drrip(c) => c.prefetch(line),
        }
    }
}

/// The S-NUCA scheme.
pub struct SNucaScheme {
    banks: Vec<BankCache>,
    num_banks: u64,
    label: String,
    /// Per-batch bank-id scratch for [`LlcScheme::access_batch`]; reused
    /// so batched runs allocate nothing in steady state.
    bank_scratch: Vec<u16>,
}

impl std::fmt::Debug for SNucaScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SNucaScheme")
            .field("label", &self.label)
            .finish()
    }
}

impl SNucaScheme {
    /// Builds S-NUCA over the system's banks. Banks are modelled as 16-way
    /// set-associative (standing in for the paper's 4-way 52-candidate
    /// zcache; see DESIGN.md).
    pub fn new(sys: &SystemConfig, replacement: SnucaReplacement) -> Self {
        let ways = 16;
        let num_banks = sys.floorplan.num_banks();
        let banks = (0..num_banks)
            .map(|_| match replacement {
                SnucaReplacement::Lru => BankCache::Lru(SetAssocCache::with_capacity_bytes(
                    sys.bank_bytes,
                    ways,
                    LruPolicy::new(),
                )),
                SnucaReplacement::Drrip => {
                    BankCache::Drrip(SetAssocCache::with_capacity_bytes(sys.bank_bytes, ways, {
                        let mut p = DrripPolicy::new(2);
                        p.configure(1, 1); // re-configured by the cache ctor
                        p
                    }))
                }
            })
            .collect();
        let label = match replacement {
            SnucaReplacement::Lru => "S-NUCA (LRU)",
            SnucaReplacement::Drrip => "S-NUCA (DRRIP)",
        };
        Self {
            banks,
            num_banks: num_banks as u64,
            label: label.into(),
            bank_scratch: Vec::new(),
        }
    }

    /// The bank a line hashes to (even interleave over a mixed hash).
    pub fn bank_of(&self, line: LineAddr) -> BankId {
        let mut h = line.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 33;
        BankId((h % self.num_banks) as u16)
    }
}

impl LlcScheme for SNucaScheme {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn attach_core(&mut self, _core: CoreId, _pools: &[PoolDescriptor]) {}

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        let bank = self.bank_of(ctx.line);
        match self.banks[bank.0 as usize].access(ctx.line.0) {
            AccessOutcome::Hit => LlcResponse {
                latency: uncore.bank_hit(ctx.core, bank),
                outcome: LlcOutcome::Hit,
            },
            AccessOutcome::Miss { .. } => LlcResponse {
                latency: uncore.bank_miss_to_memory(ctx.core, bank, ctx.line),
                outcome: LlcOutcome::Miss,
            },
        }
    }

    fn access_batch(
        &mut self,
        core: CoreId,
        batch: &EventBatch,
        clock: &mut BatchClock,
        uncore: &mut Uncore,
        out: &mut Vec<LlcResponse>,
    ) {
        // Identical to the default per-event loop, plus a pure software
        // prefetch of the bank set that event `i + LOOKAHEAD` will probe
        // — the tag arrays are tens of MB, hash-scattered, and the whole
        // reason simulated accesses are host-latency-bound. Bank ids are
        // hashed once for the whole batch (a tight monomorphic loop)
        // instead of once per prefetch plus once per access.
        const LOOKAHEAD: usize = 32;
        let mut banks_of = std::mem::take(&mut self.bank_scratch);
        banks_of.clear();
        banks_of.extend(batch.lines.iter().map(|&l| self.bank_of(l).0));
        for (&b, &line) in banks_of.iter().zip(&batch.lines).take(LOOKAHEAD) {
            self.banks[usize::from(b)].prefetch(line.0);
        }
        for i in 0..batch.len() {
            if let Some(&b) = banks_of.get(i + LOOKAHEAD) {
                self.banks[usize::from(b)].prefetch(batch.lines[i + LOOKAHEAD].0);
            }
            clock.pre_access(batch.gaps[i], uncore);
            let bank = BankId(banks_of[i]);
            let line = batch.lines[i];
            // The body of `access`, with the bank hash already done.
            let resp = match self.banks[usize::from(bank.0)].access(line.0) {
                AccessOutcome::Hit => LlcResponse {
                    latency: uncore.bank_hit(core, bank),
                    outcome: LlcOutcome::Hit,
                },
                AccessOutcome::Miss { .. } => LlcResponse {
                    latency: uncore.bank_miss_to_memory(core, bank, line),
                    outcome: LlcOutcome::Miss,
                },
            };
            clock.post_access(resp.latency);
            out.push(resp);
        }
        self.bank_scratch = banks_of;
    }

    fn reconfigure(&mut self, _uncore: &mut Uncore) {}

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        // Data is smeared evenly: report uniform occupancy.
        (0..self.num_banks as usize)
            .map(|b| (b, "interleaved".to_string(), 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::four_core()
    }

    fn ctx(core: u16, line: u64) -> AccessContext {
        AccessContext {
            core: CoreId(core),
            line: LineAddr(line),
            is_write: false,
        }
    }

    #[test]
    fn lines_spread_across_banks() {
        let s = SNucaScheme::new(&sys(), SnucaReplacement::Lru);
        let mut seen = std::collections::HashSet::new();
        for l in 0..2000u64 {
            seen.insert(s.bank_of(LineAddr(l)));
        }
        assert_eq!(seen.len(), 25, "all banks should receive lines");
    }

    #[test]
    fn second_access_hits() {
        let mut s = SNucaScheme::new(&sys(), SnucaReplacement::Lru);
        let mut u = Uncore::new(sys());
        assert_eq!(s.access(ctx(0, 5), &mut u).outcome, LlcOutcome::Miss);
        assert_eq!(s.access(ctx(0, 5), &mut u).outcome, LlcOutcome::Hit);
    }

    #[test]
    fn working_set_within_llc_fits() {
        let mut s = SNucaScheme::new(&sys(), SnucaReplacement::Lru);
        let mut u = Uncore::new(sys());
        // 6 MB working set in a 12.5 MB LLC (dt-sized, Fig. 2).
        let lines = 6 * 1024 * 1024 / 64u64;
        for l in 0..lines {
            s.access(ctx(0, l), &mut u);
        }
        let mut hits = 0;
        for l in 0..lines {
            if s.access(ctx(0, l), &mut u).outcome == LlcOutcome::Hit {
                hits += 1;
            }
        }
        assert!(
            hits as f64 > 0.95 * lines as f64,
            "{hits}/{lines} hits — S-NUCA should fit dt"
        );
    }

    #[test]
    fn drrip_variant_runs() {
        let mut s = SNucaScheme::new(&sys(), SnucaReplacement::Drrip);
        let mut u = Uncore::new(sys());
        for l in 0..10_000u64 {
            s.access(ctx(0, l % 512), &mut u);
        }
        assert_eq!(s.name(), "S-NUCA (DRRIP)");
    }

    #[test]
    fn average_hit_distance_is_chip_wide() {
        // The Fig. 3 pathology: even with a tiny working set, S-NUCA pays
        // chip-average distance. Compare energy vs an ideal near placement.
        let mut s = SNucaScheme::new(&sys(), SnucaReplacement::Lru);
        let mut u = Uncore::new(sys());
        for _ in 0..3 {
            for l in 0..512u64 {
                s.access(ctx(0, l), &mut u);
            }
        }
        let e = u.energy();
        // Mean hops from core 0 to all banks is ~3.? — network energy must
        // dominate a near-bank placement's. Just sanity-check it is nonzero
        // and larger than bank energy per access would suggest for 0 hops.
        assert!(e.network_nj > 0.0);
    }
}
