//! WhirlTool: profile-guided automatic data classification (Sec. 4).
//!
//! WhirlTool brings Whirlpool to unmodified binaries. Three components
//! (Fig. 14):
//!
//! * the **profiler** ([`profile`]) tracks a program's memory allocations
//!   by *callpoint* (hash of the two innermost return PCs) and samples
//!   each callpoint's miss-rate curve per interval (50 M instructions in
//!   the paper, scaled in this reproduction);
//! * the **analyzer** ([`cluster`]) agglomeratively merges callpoints into
//!   pools using a distance metric — the area between the *combined*
//!   (Appendix B flow model) and *partitioned* miss curves, summed over
//!   intervals (Fig. 15) — producing the hierarchical clustering of
//!   Fig. 17;
//! * the **runtime** ([`WhirlToolRuntime`]) replaces the system allocator
//!   and transparently routes each allocation to its assigned pool
//!   (unprofiled callpoints fall back to the thread-private pool).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod profiler;
mod runtime;

pub use analyzer::{cluster, pool_distance, ClusterTree, Merge};
pub use profiler::{profile, profile_trace_file, ProfileData, ProfilerConfig};
pub use runtime::WhirlToolRuntime;
