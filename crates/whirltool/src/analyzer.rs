//! The WhirlTool analyzer (Sec. 4.2): distance metric + agglomerative
//! clustering of callpoints into pools.

use std::collections::HashMap;

use wp_mem::CallpointId;
use wp_mrc::{combine_miss_curves, partitioned_curve, MissCurve};

use crate::profiler::ProfileData;

/// Distance between two pools on one interval: the area between their
/// *combined* miss curve (Appendix-B flow model) and their *partitioned*
/// miss curve — "the additional misses incurred by combining the pools vs
/// partitioning them separately" (Fig. 15).
pub fn pool_distance(a: &MissCurve, b: &MissCurve, upto_granules: usize) -> f64 {
    let combined = combine_miss_curves(a, b);
    let part = partitioned_curve(a, b);
    let n = upto_granules.min(combined.len() - 1).min(part.len() - 1);
    let mut area = 0.0;
    for s in 0..n {
        let gap0 = (combined.mpki_at(s) - part.mpki_at(s)).max(0.0);
        let gap1 = (combined.mpki_at(s + 1) - part.mpki_at(s + 1)).max(0.0);
        area += 0.5 * (gap0 + gap1);
    }
    area
}

/// One merge step of the hierarchical clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// Cluster ids merged (clusters `0..n` are the leaf callpoints;
    /// merge `k` creates cluster `n + k`).
    pub left: usize,
    /// Second cluster id.
    pub right: usize,
    /// Distance at which they merged.
    pub distance: f64,
}

/// The full clustering result: the dendrogram of Fig. 17.
#[derive(Debug, Clone)]
pub struct ClusterTree {
    /// Leaf callpoints, in profiler order.
    pub callpoints: Vec<CallpointId>,
    /// Merges, in increasing-distance order.
    pub merges: Vec<Merge>,
}

impl ClusterTree {
    /// The callpoint→cluster assignment with `k` pools: undo the last
    /// `k − 1` merges. Cluster labels are `0..k'` (k' ≤ k when there are
    /// fewer callpoints than requested pools).
    pub fn assignment(&self, k: usize) -> HashMap<CallpointId, usize> {
        let n = self.callpoints.len();
        let k = k.max(1);
        // Union-find over the first `n_merges - (k-1)` merges.
        let keep = self.merges.len().saturating_sub(k - 1);
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (m, merge) in self.merges.iter().take(keep).enumerate() {
            let new = n + m;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = new;
            parent[r] = new;
        }
        // Relabel roots densely.
        let mut labels: HashMap<usize, usize> = HashMap::new();
        let mut out = HashMap::new();
        for (i, &cp) in self.callpoints.iter().enumerate() {
            let root = find(&mut parent, i);
            let next = labels.len();
            let label = *labels.entry(root).or_insert(next);
            out.insert(cp, label);
        }
        out
    }

    /// Number of distinct clusters at `k` pools.
    pub fn num_clusters(&self, k: usize) -> usize {
        let a = self.assignment(k);
        let set: std::collections::HashSet<usize> = a.values().copied().collect();
        set.len()
    }

    /// A text rendering of the dendrogram (Fig. 17): each merge with its
    /// distance, indented by merge order.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, m) in self.merges.iter().enumerate() {
            let name = |c: usize| {
                if c < self.callpoints.len() {
                    format!("cp{:x}", self.callpoints[c].0 & 0xffff)
                } else {
                    format!("cluster{}", c - self.callpoints.len())
                }
            };
            s.push_str(&format!(
                "merge {i}: {} + {} @ distance {:.4}\n",
                name(m.left),
                name(m.right),
                m.distance
            ));
        }
        s
    }
}

/// Agglomerative clustering of profiled callpoints (Sec. 4.2).
///
/// Starts with one pool per callpoint; each iteration merges the two
/// closest pools (summed per-interval distance) and recomputes distances
/// from the merged pool's per-interval *combined* curves. `O(n²)` pair
/// maintenance, "acceptable (a few seconds) for 10s–100s of callpoints".
pub fn cluster(data: &ProfileData, upto_granules: usize) -> ClusterTree {
    let _span = wp_obs::span(wp_obs::Phase::Classify);
    let n = data.callpoints.len();
    // Per-cluster, per-interval curves (None = inactive interval).
    let mut curves: Vec<Option<Vec<Option<MissCurve>>>> = data
        .callpoints
        .iter()
        .map(|cp| {
            Some(
                data.intervals
                    .iter()
                    .map(|iv| iv.get(cp).cloned())
                    .collect(),
            )
        })
        .collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut merges = Vec::new();
    let dist = |a: &[Option<MissCurve>], b: &[Option<MissCurve>]| -> f64 {
        let mut total = 0.0;
        for (ca, cb) in a.iter().zip(b) {
            if let (Some(ca), Some(cb)) = (ca, cb) {
                total += pool_distance(ca, cb, upto_granules);
            }
            // Pools active in disjoint intervals add no distance — they
            // can share a pool without interference (Sec. 4.2).
        }
        total
    };
    while active.len() > 1 {
        // Find the closest active pair.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let (a, b) = (active[i], active[j]);
                let d = dist(
                    curves[a].as_ref().expect("active"),
                    curves[b].as_ref().expect("active"),
                );
                if d < best.2 {
                    best = (a, b, d);
                }
            }
        }
        let (a, b, d) = best;
        // Merge b into a new cluster: per-interval combined curves.
        let ca = curves[a].take().expect("active");
        let cb = curves[b].take().expect("active");
        let merged: Vec<Option<MissCurve>> = ca
            .into_iter()
            .zip(cb)
            .map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => Some(combine_miss_curves(&x, &y)),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
            })
            .collect();
        let new_id = curves.len();
        curves.push(Some(merged));
        active.retain(|&x| x != a && x != b);
        active.push(new_id);
        merges.push(Merge {
            left: a,
            right: b,
            distance: d,
        });
    }
    ClusterTree {
        callpoints: data.callpoints.clone(),
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric(apki: f64, ratio: f64, n: usize) -> MissCurve {
        MissCurve::new((0..n).map(|i| apki * ratio.powi(i as i32)).collect(), 1024)
    }

    fn flat(apki: f64, n: usize) -> MissCurve {
        MissCurve::flat(apki, n, 1024)
    }

    fn profile_of(curves: Vec<(u64, Vec<Option<MissCurve>>)>) -> ProfileData {
        let callpoints: Vec<CallpointId> = curves.iter().map(|&(id, _)| CallpointId(id)).collect();
        let n_iv = curves[0].1.len();
        let intervals = (0..n_iv)
            .map(|i| {
                curves
                    .iter()
                    .filter_map(|(id, per_iv)| per_iv[i].clone().map(|c| (CallpointId(*id), c)))
                    .collect()
            })
            .collect();
        ProfileData {
            callpoints,
            intervals,
            accesses: HashMap::new(),
        }
    }

    #[test]
    fn distance_orders_friend_vs_antagonist() {
        // Fig. 15: combining two cache-friendly pools is cheap; combining
        // a friendly pool with a streaming one is expensive.
        let friendly = geometric(20.0, 0.5, 32);
        let friendly2 = geometric(18.0, 0.55, 32);
        let streaming = flat(20.0, 32);
        let d_ff = pool_distance(&friendly, &friendly2, 32);
        let d_fs = pool_distance(&friendly, &streaming, 32);
        assert!(d_fs > 2.0 * d_ff, "friend {d_ff} vs antagonist {d_fs}");
    }

    #[test]
    fn clustering_groups_similar_callpoints() {
        // Four callpoints: two friendly (should merge first), two
        // streaming (merge next); the last merge joins the two groups.
        let f1 = geometric(20.0, 0.5, 32);
        let f2 = geometric(19.0, 0.52, 32);
        let s1 = flat(30.0, 32);
        let s2 = flat(28.0, 32);
        let data = profile_of(vec![
            (1, vec![Some(f1)]),
            (2, vec![Some(f2)]),
            (3, vec![Some(s1)]),
            (4, vec![Some(s2)]),
        ]);
        let tree = cluster(&data, 32);
        assert_eq!(tree.merges.len(), 3);
        let two = tree.assignment(2);
        assert_eq!(two[&CallpointId(1)], two[&CallpointId(2)]);
        assert_eq!(two[&CallpointId(3)], two[&CallpointId(4)]);
        assert_ne!(two[&CallpointId(1)], two[&CallpointId(3)]);
    }

    #[test]
    fn assignment_counts_match_k() {
        let data = profile_of(vec![
            (1, vec![Some(geometric(10.0, 0.5, 16))]),
            (2, vec![Some(flat(10.0, 16))]),
            (3, vec![Some(geometric(5.0, 0.9, 16))]),
        ]);
        let tree = cluster(&data, 16);
        assert_eq!(tree.num_clusters(1), 1);
        assert_eq!(tree.num_clusters(2), 2);
        assert_eq!(tree.num_clusters(3), 3);
        assert_eq!(tree.num_clusters(10), 3, "capped at callpoint count");
    }

    #[test]
    fn disjoint_interval_pools_are_near() {
        // Sec. 4.2: pools accessed in non-overlapping intervals have small
        // distance even with very different patterns when active.
        let friendly = geometric(20.0, 0.5, 32);
        let streaming = flat(25.0, 32);
        // cp1 active in interval 0 only; cp2 in interval 1 only; cp3 is a
        // streaming pool active in both.
        let data = profile_of(vec![
            (1, vec![Some(friendly.clone()), None]),
            (2, vec![None, Some(streaming.clone())]),
            (3, vec![Some(streaming.clone()), Some(streaming.clone())]),
        ]);
        let tree = cluster(&data, 32);
        // First merge must be 1+2 (distance 0 — disjoint activity).
        assert_eq!(tree.merges[0].distance, 0.0);
        let first = &tree.merges[0];
        assert!((first.left == 0 && first.right == 1) || (first.left == 1 && first.right == 0));
    }

    #[test]
    fn lbm_style_phases_keep_grids_apart() {
        // Two grids that look identical on average but differ per phase
        // (Fig. 6) — summing per-interval distances must separate them
        // from a pool that is genuinely identical in every interval.
        let reuse = geometric(50.0, 0.4, 32);
        let stream = flat(50.0, 32);
        // grid1: phase A reuse, phase B stream. grid2: opposite. twin1 and
        // twin2: reuse in both phases.
        let data = profile_of(vec![
            (1, vec![Some(reuse.clone()), Some(stream.clone())]),
            (2, vec![Some(stream.clone()), Some(reuse.clone())]),
            (3, vec![Some(reuse.clone()), Some(reuse.clone())]),
            (4, vec![Some(reuse.clone()), Some(reuse.clone())]),
        ]);
        let tree = cluster(&data, 32);
        let two = tree.assignment(3);
        // The twins merge together; the two grids do NOT merge with them
        // first (each grid has a streaming phase that interferes).
        assert_eq!(two[&CallpointId(3)], two[&CallpointId(4)]);
        assert_ne!(two[&CallpointId(1)], two[&CallpointId(3)]);
    }

    #[test]
    fn render_mentions_all_merges() {
        let data = profile_of(vec![
            (1, vec![Some(geometric(10.0, 0.5, 8))]),
            (2, vec![Some(flat(5.0, 8))]),
        ]);
        let tree = cluster(&data, 8);
        let s = tree.render();
        assert!(s.contains("merge 0"));
        assert!(s.contains("distance"));
    }
}
