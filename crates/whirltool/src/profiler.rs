//! The WhirlTool profiler (Sec. 4.1).
//!
//! Identifies allocations by callpoint and records each callpoint's
//! stack-distance distribution per interval. "The profiler periodically
//! records miss rate curves for all callpoints, which is important to
//! distinguish allocations that are similar on average but whose behavior
//! varies over time (e.g., lbm)."

use std::collections::HashMap;

use wp_mem::{CallpointId, PageId};
use wp_mrc::{MissCurve, ShardsConfig, ShardsStack};
use wp_sim::Workload;

/// Profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Instructions per profiling interval (the paper samples every 50 M;
    /// scaled-down runs use proportionally shorter intervals).
    pub interval_instrs: u64,
    /// Total instructions to profile.
    pub total_instrs: u64,
    /// Curve granule in lines.
    pub granule_lines: u64,
    /// Points per emitted curve.
    pub curve_points: usize,
    /// SHARDS sampling of the per-callpoint stacks: `None` profiles
    /// exactly (and bit-identically to the historical profiler); `Some`
    /// samples every callpoint's stack at the configured rate/`s_max`,
    /// which is how WhirlTool classification stays tractable on
    /// full-length traces.
    pub sample: Option<ShardsConfig>,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            interval_instrs: 2_000_000,
            total_instrs: 16_000_000,
            granule_lines: 1024,
            curve_points: 201,
            sample: None,
        }
    }
}

impl ProfilerConfig {
    /// This configuration with SHARDS sampling enabled.
    #[must_use]
    pub fn sampled(mut self, config: ShardsConfig) -> Self {
        self.sample = Some(config);
        self
    }

    /// The per-callpoint stack this configuration calls for.
    fn stack(&self) -> ShardsStack {
        ShardsStack::new(self.sample.unwrap_or_else(ShardsConfig::exact))
    }
}

/// Profiling output: per-interval, per-callpoint miss curves.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// Callpoints observed, in first-seen order.
    pub callpoints: Vec<CallpointId>,
    /// `intervals[i][cp]` = callpoint `cp`'s miss curve in interval `i`
    /// (absent = no accesses that interval).
    pub intervals: Vec<HashMap<CallpointId, MissCurve>>,
    /// Total accesses per callpoint over the whole profile.
    pub accesses: HashMap<CallpointId, u64>,
}

impl ProfileData {
    /// Approximate profile size in bytes (the paper reports 200 KB–1.25 MB
    /// per app): curves × points × 8 bytes.
    pub fn size_bytes(&self) -> usize {
        self.intervals
            .iter()
            .map(|m| m.values().map(|c| c.len() * 8).sum::<usize>())
            .sum()
    }
}

/// Profiles `trace` for `cfg.total_instrs`, attributing each access to a
/// callpoint via `page_to_callpoint` (built from the allocator's records —
/// the Pintool's role in the paper). Accesses to unmapped pages are
/// attributed to a synthetic "unknown" callpoint, as the real tool's
/// thread-private fallback does.
pub fn profile(
    trace: &mut dyn Workload,
    page_to_callpoint: &HashMap<PageId, CallpointId>,
    cfg: ProfilerConfig,
) -> ProfileData {
    let _span = wp_obs::span(wp_obs::Phase::Profile);
    const UNKNOWN: CallpointId = CallpointId(0);
    let mut stacks: HashMap<CallpointId, ShardsStack> = HashMap::new();
    let mut order: Vec<CallpointId> = Vec::new();
    let mut accesses: HashMap<CallpointId, u64> = HashMap::new();
    let mut intervals = Vec::new();
    let mut instrs = 0u64;
    let mut interval_instrs = 0u64;
    while instrs < cfg.total_instrs {
        let Some(ev) = trace.next_event() else { break };
        instrs += ev.gap_instrs as u64;
        interval_instrs += ev.gap_instrs as u64;
        let cp = page_to_callpoint
            .get(&ev.line.page())
            .copied()
            .unwrap_or(UNKNOWN);
        let stack = stacks.entry(cp).or_insert_with(|| {
            order.push(cp);
            cfg.stack()
        });
        stack.access(ev.line.0);
        *accesses.entry(cp).or_insert(0) += 1;
        if interval_instrs >= cfg.interval_instrs {
            intervals.push(flush_interval(&mut stacks, interval_instrs, cfg));
            interval_instrs = 0;
        }
    }
    if interval_instrs > 0 {
        intervals.push(flush_interval(&mut stacks, interval_instrs, cfg));
    }
    ProfileData {
        callpoints: order,
        intervals,
        accesses,
    }
}

/// Profiles stream 0 of a recorded `.wpt` trace — the offline entry
/// point, for traces captured elsewhere (or authored externally) where no
/// live model exists to re-run.
///
/// The page→callpoint map is derived from the trace's pool table, so
/// attribution is pool-granular: pool `i` of the recording becomes
/// callpoint `i + 1` (callpoint 0 stays the unknown/thread-private
/// fallback). Returns the profile plus the `(callpoint, pool name)`
/// legend for labelling clusters.
///
/// # Errors
///
/// Fails if the trace is missing, truncated before its stream
/// definition, or structurally corrupt.
pub fn profile_trace_file(
    path: &std::path::Path,
    cfg: ProfilerConfig,
) -> Result<(ProfileData, Vec<(CallpointId, String)>), wp_trace::TraceError> {
    let pools = wp_sim::trace_pools(path, 0)?;
    let mut page_map: HashMap<PageId, CallpointId> = HashMap::new();
    let mut legend = Vec::with_capacity(pools.len());
    for (i, p) in pools.iter().enumerate() {
        let cp = CallpointId(i as u64 + 1);
        legend.push((cp, p.name.clone()));
        for pg in &p.pages {
            page_map.insert(*pg, cp);
        }
    }
    let mut trace = wp_sim::TraceWorkload::open(path)?;
    Ok((profile(&mut trace, &page_map, cfg), legend))
}

fn flush_interval(
    stacks: &mut HashMap<CallpointId, ShardsStack>,
    instrs: u64,
    cfg: ProfilerConfig,
) -> HashMap<CallpointId, MissCurve> {
    let mut out = HashMap::new();
    for (&cp, stack) in stacks.iter_mut() {
        let hist = stack.take_histogram();
        if hist.total() == 0 {
            continue;
        }
        let curve = MissCurve::from_histogram(&hist, instrs.max(1), cfg.granule_lines)
            .resized(cfg.curve_points)
            .monotonized();
        out.insert(cp, curve);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::LineAddr;
    use wp_sim::TraceEvent;

    /// A toy trace: two "structures", one small/hot, one streaming.
    fn toy_trace() -> impl Workload {
        let mut i = 0u64;
        move || {
            i += 1;
            let (line, _cp) = if i % 2 == 0 {
                (i / 2 % 256, 1)
            } else {
                (100_000 + i, 2) // never repeats
            };
            Some(TraceEvent {
                gap_instrs: 20,
                line: LineAddr(line),
                is_write: false,
            })
        }
    }

    fn page_map() -> HashMap<PageId, CallpointId> {
        let mut m = HashMap::new();
        // Hot structure: lines 0..256 → pages 0..4.
        for p in 0..4 {
            m.insert(PageId(p), CallpointId(1));
        }
        // Streaming structure: everything above line 100k.
        for p in 1500..40_000 {
            m.insert(PageId(p), CallpointId(2));
        }
        m
    }

    #[test]
    fn profiler_separates_callpoints() {
        let mut t = toy_trace();
        let cfg = ProfilerConfig {
            interval_instrs: 50_000,
            total_instrs: 200_000,
            granule_lines: 64,
            curve_points: 32,
            sample: None,
        };
        let data = profile(&mut t, &page_map(), cfg);
        assert!(data.callpoints.contains(&CallpointId(1)));
        assert!(data.callpoints.contains(&CallpointId(2)));
        assert_eq!(data.intervals.len(), 4);
        // Hot structure: curve drops to ~0 within a few granules.
        let hot = &data.intervals[1][&CallpointId(1)];
        assert!(hot.mpki_at(31) < 0.2 * hot.at_zero());
        // Streaming structure: flat-ish (all cold).
        let cold = &data.intervals[1][&CallpointId(2)];
        assert!(cold.mpki_at(31) > 0.8 * cold.at_zero());
    }

    #[test]
    fn sampled_profiler_sees_the_same_structure() {
        // SHARDS-sampled profiling must classify the same way the exact
        // profiler does: the hot callpoint's curve still collapses, the
        // streaming one stays flat, and tracked state stays under the cap.
        let mut t = toy_trace();
        let cfg = ProfilerConfig {
            interval_instrs: 50_000,
            total_instrs: 400_000,
            granule_lines: 64,
            curve_points: 32,
            sample: None,
        }
        .sampled(ShardsConfig::adaptive(0.5, 1024));
        let data = profile(&mut t, &page_map(), cfg);
        assert!(data.callpoints.contains(&CallpointId(1)));
        assert!(data.callpoints.contains(&CallpointId(2)));
        let hot = &data.intervals[1][&CallpointId(1)];
        assert!(hot.mpki_at(31) < 0.3 * hot.at_zero());
        let cold = &data.intervals[1][&CallpointId(2)];
        assert!(cold.mpki_at(31) > 0.7 * cold.at_zero());
    }

    #[test]
    fn access_counts_tracked() {
        let mut t = toy_trace();
        let data = profile(
            &mut t,
            &page_map(),
            ProfilerConfig {
                interval_instrs: 10_000,
                total_instrs: 40_000,
                granule_lines: 64,
                curve_points: 16,
                sample: None,
            },
        );
        let a1 = data.accesses[&CallpointId(1)];
        let a2 = data.accesses[&CallpointId(2)];
        assert!(a1 > 0 && a2 > 0);
        assert!((a1 as i64 - a2 as i64).abs() <= 2, "even split expected");
    }

    #[test]
    fn unknown_pages_fall_back() {
        let mut t = || {
            Some(TraceEvent {
                gap_instrs: 10,
                line: LineAddr(999_999_999),
                is_write: false,
            })
        };
        let data = profile(&mut t, &HashMap::new(), ProfilerConfig::default());
        assert!(data.callpoints.contains(&CallpointId(0)));
    }

    #[test]
    fn profile_size_is_modest() {
        let mut t = toy_trace();
        let data = profile(
            &mut t,
            &page_map(),
            ProfilerConfig {
                interval_instrs: 20_000,
                total_instrs: 200_000,
                granule_lines: 64,
                curve_points: 201,
                sample: None,
            },
        );
        // The paper reports 200 KB–1.25 MB; the toy profile is far smaller
        // but nonzero.
        assert!(data.size_bytes() > 0);
        assert!(data.size_bytes() < 2 * 1024 * 1024);
    }

    #[test]
    fn profiles_a_recorded_trace_by_pool() {
        use wp_trace::{PoolMeta, TraceWriter};
        let path =
            std::env::temp_dir().join(format!("wp-whirltool-profile-{}.wpt", std::process::id()));
        let pools = [
            PoolMeta {
                name: "hot".into(),
                pool: Some(0),
                bytes: 4 * 4096,
                pages: (0..4).map(PageId).collect(),
            },
            PoolMeta {
                name: "stream".into(),
                pool: Some(1),
                bytes: 4096 * 2048,
                pages: (1500..3548).map(PageId).collect(),
            },
        ];
        let mut w = TraceWriter::create(&path).unwrap();
        let s = w.add_stream("toy", &pools).unwrap();
        for i in 1..=10_000u64 {
            let line = if i % 2 == 0 { i / 2 % 256 } else { 96_000 + i };
            w.record(s, 20, LineAddr(line), false).unwrap();
        }
        w.finish().unwrap();

        let cfg = ProfilerConfig {
            interval_instrs: 50_000,
            total_instrs: 200_000,
            granule_lines: 64,
            curve_points: 32,
            sample: None,
        };
        let (data, legend) = profile_trace_file(&path, cfg).unwrap();
        assert_eq!(legend.len(), 2);
        assert_eq!(legend[0].1, "hot");
        // Pool 0 → callpoint 1 (hot), pool 1 → callpoint 2 (streaming).
        let hot = &data.intervals[1][&CallpointId(1)];
        assert!(hot.mpki_at(31) < 0.2 * hot.at_zero());
        let cold = &data.intervals[1][&CallpointId(2)];
        assert!(cold.mpki_at(31) > 0.8 * cold.at_zero());
        std::fs::remove_file(&path).unwrap();
    }
}
