//! The WhirlTool runtime (Sec. 4.3): a drop-in allocator shim.
//!
//! "On each allocation call, the tool finds the callpoint id and calls the
//! Whirlpool allocator with the corresponding pool. Allocations from an
//! unprofiled callpoint use the thread-private pool." Overheads are tiny
//! (≤0.01%): one hash lookup per allocation.

use std::collections::HashMap;

use wp_mem::{CallpointId, Heap, PoolId, VirtAddr};

/// The allocator shim: callpoint → pool routing over a pool-aware heap.
#[derive(Debug)]
pub struct WhirlToolRuntime {
    heap: Heap,
    /// Callpoint → pool (from the analyzer's assignment).
    routes: HashMap<CallpointId, PoolId>,
    /// Cluster label → pool id (one pool per cluster).
    cluster_pools: HashMap<usize, PoolId>,
    /// Allocations that fell back to the thread-private pool.
    unprofiled: u64,
}

impl WhirlToolRuntime {
    /// Builds the runtime from an analyzer assignment
    /// (callpoint → cluster label).
    pub fn new(assignment: &HashMap<CallpointId, usize>) -> Self {
        let mut heap = Heap::new();
        let mut cluster_pools = HashMap::new();
        let mut labels: Vec<usize> = assignment.values().copied().collect();
        labels.sort_unstable();
        labels.dedup();
        for label in labels {
            cluster_pools.insert(label, heap.create_pool());
        }
        let routes = assignment
            .iter()
            .map(|(&cp, &label)| (cp, cluster_pools[&label]))
            .collect();
        Self {
            heap,
            routes,
            cluster_pools,
            unprofiled: 0,
        }
    }

    /// `malloc(size)` intercepted at `callpoint`: routes to the assigned
    /// pool, or the default (thread-private) heap when unprofiled.
    pub fn malloc(&mut self, size: u64, callpoint: CallpointId) -> VirtAddr {
        match self.routes.get(&callpoint) {
            Some(&pool) => self.heap.pool_malloc(size, pool, callpoint),
            None => {
                self.unprofiled += 1;
                self.heap.malloc(size, callpoint)
            }
        }
    }

    /// `free(ptr)`.
    ///
    /// # Panics
    ///
    /// Panics on double/wild frees.
    pub fn free(&mut self, addr: VirtAddr) {
        self.heap.free(addr);
    }

    /// The pool serving a cluster label.
    pub fn pool_of_cluster(&self, label: usize) -> Option<PoolId> {
        self.cluster_pools.get(&label).copied()
    }

    /// The underlying heap (for descriptor export).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Number of unprofiled-callpoint allocations served.
    pub fn unprofiled_allocations(&self) -> u64 {
        self.unprofiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment() -> HashMap<CallpointId, usize> {
        let mut m = HashMap::new();
        m.insert(CallpointId(10), 0);
        m.insert(CallpointId(11), 0);
        m.insert(CallpointId(20), 1);
        m
    }

    #[test]
    fn same_cluster_shares_pool() {
        let mut rt = WhirlToolRuntime::new(&assignment());
        let a = rt.malloc(4096, CallpointId(10));
        let b = rt.malloc(4096, CallpointId(11));
        let c = rt.malloc(4096, CallpointId(20));
        let pa = rt.heap().pool_of_addr(a);
        let pb = rt.heap().pool_of_addr(b);
        let pc = rt.heap().pool_of_addr(c);
        assert_eq!(pa, pb);
        assert_ne!(pa, pc);
        assert_eq!(pa, rt.pool_of_cluster(0));
    }

    #[test]
    fn unprofiled_goes_to_default_heap() {
        let mut rt = WhirlToolRuntime::new(&assignment());
        let x = rt.malloc(100, CallpointId(999));
        assert_eq!(rt.heap().pool_of_addr(x), None);
        assert_eq!(rt.unprofiled_allocations(), 1);
    }

    #[test]
    fn free_works() {
        let mut rt = WhirlToolRuntime::new(&assignment());
        let a = rt.malloc(64, CallpointId(10));
        rt.free(a);
    }

    #[test]
    fn empty_assignment_routes_everything_to_default() {
        let mut rt = WhirlToolRuntime::new(&HashMap::new());
        let a = rt.malloc(64, CallpointId(1));
        assert_eq!(rt.heap().pool_of_addr(a), None);
    }
}
