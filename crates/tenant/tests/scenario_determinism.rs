//! The scenario engine's determinism contract: the report line and the
//! tenant timeline are bit-identical whatever `WP_JOBS` or the exec
//! mode — the same projection contract `SweepResult::cells_json` keeps
//! for sweeps.

use whirlpool_repro::harness::SchemeKind;
use wp_sim::ExecMode;
use wp_tenant::{run_scenario, validate_timeline, Scenario, ScenarioOpts};

const WPS: &str = r#"{
  "name": "determinism-smoke",
  "seed": 42,
  "cores": 4,
  "epochs": 4,
  "epoch_instrs": 40000,
  "warmup_instrs": 5000,
  "tenants": [
    {"name": "alpha", "app": "mcf", "weight": 2,
     "arrival": 0, "departure": 4, "slo": {"max_miss_ratio": 0.9}},
    {"name": "beta", "app": "delaunay", "arrival": 0, "departure": 3,
     "slo": {"min_norm_ipc": 0.2}},
    {"name": "gamma", "app": "lbm", "arrival": 1, "departure": 4},
    {"name": "delta", "app": "isort", "arrival": 2, "departure": 4},
    {"name": "eps", "app": "mcf", "arrival": 2, "departure": 4}
  ]
}"#;

const KINDS: [SchemeKind; 2] = [SchemeKind::SNucaLru, SchemeKind::Memshare];

fn run(jobs: usize, exec: ExecMode) -> (String, String) {
    let scenario = Scenario::from_json_str(WPS).expect("valid scenario");
    let opts = ScenarioOpts {
        jobs: Some(jobs),
        exec: Some(exec),
        cancel: None,
    };
    let report = run_scenario(&scenario, &KINDS, &opts).expect("scenario runs");
    (report.to_json(), report.timeline_jsonl())
}

#[test]
fn report_and_timeline_are_identical_across_jobs_and_exec_modes() {
    let (base_json, base_tl) = run(1, ExecMode::PerEvent);
    for (jobs, exec) in [
        (4, ExecMode::PerEvent),
        (1, ExecMode::Batched),
        (3, ExecMode::Batched),
    ] {
        let (j, t) = run(jobs, exec);
        assert_eq!(base_json, j, "report differs at jobs={jobs} exec={exec:?}");
        assert_eq!(base_tl, t, "timeline differs at jobs={jobs} exec={exec:?}");
    }
    // The report is one line of valid JSON with every scheme present.
    assert!(!base_json.contains('\n'));
    let doc = whirlpool_repro::bench_check::parse(&base_json).expect("report parses");
    let schemes = match doc.get("schemes") {
        Some(whirlpool_repro::bench_check::Json::Arr(a)) => a,
        other => panic!("schemes should be an array, got {other:?}"),
    };
    assert_eq!(schemes.len(), KINDS.len());
    for s in schemes {
        assert!(s.get("weighted_speedup").and_then(|v| v.as_f64()).is_some());
        assert!(s.get("jain_fairness").and_then(|v| v.as_f64()).is_some());
        assert!(s.get("slo_violation_fraction").is_some());
    }
    // The timeline validates and covers both schemes.
    let n = validate_timeline(&base_tl).expect("timeline validates");
    assert!(n > 0);
    for kind in KINDS {
        assert!(
            base_tl.contains(&format!("\"scheme\":\"{}\"", kind.label())),
            "timeline must cover {}",
            kind.label()
        );
    }
}

#[test]
fn fcfs_admission_shows_up_in_the_accounting() {
    let scenario = Scenario::from_json_str(WPS).unwrap();
    let report = run_scenario(
        &scenario,
        &[SchemeKind::SNucaLru],
        &ScenarioOpts {
            jobs: Some(2),
            exec: None,
            cancel: None,
        },
    )
    .unwrap();
    let out = &report.schemes[0];
    // Epoch 2 has 5 residents on 4 cores; "eps" (latest arrival,
    // highest index) waits, then gets beta's core when beta departs at
    // epoch 3.
    let eps = out.tenants.iter().find(|t| t.name == "eps").unwrap();
    assert_eq!(eps.epochs_admitted, 1);
    assert_eq!(eps.epochs_waiting, 1);
    // "alpha" was admitted every epoch it was resident.
    let alpha = out.tenants.iter().find(|t| t.name == "alpha").unwrap();
    assert_eq!(alpha.epochs_admitted, 4);
    assert_eq!(alpha.epochs_waiting, 0);
    assert!(alpha.instructions > 0);
    assert!(alpha.alone_ipc > 0.0);
    assert!(alpha.progress > 0.0);
    // Cancellation: a pre-fired token surfaces as Cancelled.
    let token = whirlpool_repro::harness::CancelToken::new();
    token.cancel();
    let res = run_scenario(
        &scenario,
        &[SchemeKind::SNucaLru],
        &ScenarioOpts {
            jobs: Some(1),
            exec: None,
            cancel: Some(token),
        },
    );
    assert!(matches!(
        res,
        Err(whirlpool_repro::harness::HarnessError::Cancelled)
    ));
}
