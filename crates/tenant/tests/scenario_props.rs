//! Property tests: every malformed `.wps` document surfaces as a
//! one-line typed [`HarnessError`] — never a panic, never a multi-line
//! dump — whatever the corruption.

use proptest::prelude::*;
use whirlpool_repro::harness::HarnessError;
use wp_tenant::Scenario;

fn base_doc(seed: u64, epochs: u64) -> String {
    format!(
        r#"{{"name":"prop","seed":{seed},"cores":4,"epochs":{epochs},"epoch_instrs":50000,
            "tenants":[{{"name":"a","app":"mcf"}},{{"name":"b","app":"delaunay"}}]}}"#
    )
}

/// The error contract every defect must satisfy.
fn assert_one_line_typed(res: Result<Scenario, HarnessError>) {
    match res {
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "error must render something");
            assert!(!msg.contains('\n'), "one line, got {msg:?}");
            assert!(
                matches!(
                    e,
                    HarnessError::Scenario(_) | HarnessError::UnknownApp { .. }
                ),
                "scenario defects must be Scenario or UnknownApp, got {e:?}"
            );
        }
        Ok(s) => panic!("malformed scenario parsed: {s:?}"),
    }
}

proptest! {
    /// Truncating a valid document anywhere never panics: it either
    /// still errors (almost always) with one line, or cannot succeed.
    #[test]
    fn truncated_json_is_a_one_line_error(seed in 0u64..1000, cut in 1usize..120) {
        let doc = base_doc(seed, 8);
        let cut = cut.min(doc.len() - 1);
        // Cut at a char boundary (the doc is ASCII, so every byte is one).
        let truncated = &doc[..cut];
        assert_one_line_typed(Scenario::from_json_str(truncated));
    }

    /// Negative or fractional times are rejected with a message naming
    /// the offending value.
    #[test]
    fn bad_times_are_rejected(arrival in -50i64..-1, dep in 0i64..50) {
        let doc = format!(
            r#"{{"name":"p","seed":1,"cores":4,"epochs":8,"epoch_instrs":1000,
                "tenants":[{{"name":"a","app":"mcf","arrival":{arrival},"departure":{dep}}}]}}"#
        );
        match Scenario::from_json_str(&doc) {
            Err(HarnessError::Scenario(msg)) => {
                prop_assert!(msg.contains("non-negative"), "{msg:?}");
                prop_assert!(!msg.contains('\n'));
            }
            other => prop_assert!(false, "expected Scenario error, got {other:?}"),
        }
    }

    /// Inverted or out-of-range residency windows are rejected.
    #[test]
    fn inconsistent_windows_are_rejected(a in 0u64..20, d in 0u64..40, epochs in 1u64..16) {
        let doc = format!(
            r#"{{"name":"p","seed":1,"cores":4,"epochs":{epochs},"epoch_instrs":1000,
                "tenants":[{{"name":"a","app":"mcf","arrival":{a},"departure":{d}}}]}}"#
        );
        let res = Scenario::from_json_str(&doc);
        if d > a && d <= epochs {
            let s = res.expect("valid window must parse");
            prop_assert_eq!((s.tenants[0].arrival, s.tenants[0].departure), (a, d));
        } else {
            assert_one_line_typed(res);
        }
    }

    /// Unknown apps keep the registry's did-you-mean contract whatever
    /// the rest of the document looks like.
    #[test]
    fn unknown_apps_are_unknown_app_errors(seed in 0u64..1000, suffix in 0u32..100) {
        let doc = base_doc(seed, 4).replace("mcf", &format!("app{suffix}"));
        match Scenario::from_json_str(&doc) {
            Err(HarnessError::UnknownApp { name, .. }) => {
                prop_assert_eq!(name, format!("app{suffix}"));
            }
            other => prop_assert!(false, "expected UnknownApp, got {other:?}"),
        }
    }

    /// Synthesized churn windows are always within bounds and a pure
    /// function of (seed, index, epochs).
    #[test]
    fn synthesized_churn_is_bounded_and_deterministic(seed in 0u64..10_000, epochs in 1u64..64) {
        let doc = format!(
            r#"{{"name":"p","seed":{seed},"cores":4,"epochs":{epochs},"epoch_instrs":1000,
                "tenants":[{{"name":"a","app":"mcf"}},{{"name":"b","app":"lbm"}}]}}"#
        );
        let s1 = Scenario::from_json_str(&doc).expect("parses");
        let s2 = Scenario::from_json_str(&doc).expect("parses");
        prop_assert_eq!(&s1, &s2);
        for t in &s1.tenants {
            prop_assert!(t.arrival < t.departure);
            prop_assert!(t.departure <= epochs);
        }
    }
}
