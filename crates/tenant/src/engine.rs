//! The scenario engine: drives a [`Scenario`]'s churn over the
//! existing [`Experiment`] spine, once per scheme, and folds the
//! per-epoch run summaries into tenant-level metrics.
//!
//! The schedule is *static*: residency windows come from the scenario
//! file (or its deterministic churn synthesis), admission is
//! first-come-first-served by (arrival, file order) onto the chip's
//! cores, and every scheme replays the identical schedule. Schemes
//! therefore differ only in how well the shared LLC serves the admitted
//! set — which is exactly the comparison the multi-tenant evaluation
//! wants. Each non-empty epoch is one fixed-work `Experiment::mix` run;
//! membership changes between epochs re-trigger the scheme's
//! classification and allocation from scratch, modelling the
//! reconfiguration a real deployment performs on arrival/departure.
//!
//! Everything downstream of the schedule is deterministic: the report's
//! [`ScenarioReport::to_json`] line and the tenant timeline are
//! bit-identical whatever `WP_JOBS`, the exec mode, or the daemon/CLI
//! split.

use std::collections::HashMap;

use whirlpool_repro::harness::{
    sixteen_core_config, CancelToken, Experiment, HarnessError, SchemeKind,
};
use wp_bench::sweep::{default_jobs, parallel_map, CellWork, SweepSpec};
use wp_obs::{fmt_f64, quote, TenantEvent, TenantEventKind};
use wp_sim::ExecMode;

use crate::metrics::{jain_index, slo_violation_fraction, weighted_speedup, MetricError};
use crate::scenario::{Scenario, SloTarget};

/// Engine knobs. Unset fields fall back to the same environment
/// defaults the sweep engine uses (`WP_JOBS`, `WP_EXEC`).
#[derive(Debug, Clone, Default)]
pub struct ScenarioOpts {
    /// Worker threads for the alone grid and the per-scheme fan-out.
    pub jobs: Option<usize>,
    /// Event delivery path for every simulation.
    pub exec: Option<ExecMode>,
    /// Cooperative cancellation, checked between epochs.
    pub cancel: Option<CancelToken>,
}

/// One tenant's outcome under one scheme.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name from the scenario file.
    pub name: String,
    /// Its workload.
    pub app: String,
    /// Its weight in the weighted-speedup metric.
    pub weight: f64,
    /// IPC of the app running alone on the same chip under the same
    /// scheme (the normalization baseline).
    pub alone_ipc: f64,
    /// Normalized progress: shared-run IPC over [`alone_ipc`]
    /// (0 when the tenant was never admitted).
    ///
    /// [`alone_ipc`]: TenantOutcome::alone_ipc
    pub progress: f64,
    /// Instructions retired across all admitted epochs.
    pub instructions: u64,
    /// Core cycles across all admitted epochs.
    pub cycles: f64,
    /// Cumulative LLC miss ratio over admitted epochs (misses +
    /// bypasses over accesses + bypasses; 0 when idle).
    pub miss_ratio: f64,
    /// Epochs the tenant held a core.
    pub epochs_admitted: u64,
    /// Epochs the tenant was resident but queued out.
    pub epochs_waiting: u64,
    /// Epochs the tenant's SLO was violated (waiting epochs included).
    pub epochs_violating: u64,
    /// Whether the tenant declared an SLO at all.
    pub has_slo: bool,
}

/// One scheme's scenario outcome: per-tenant accounting plus the three
/// headline metrics.
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// The scheme that ran.
    pub scheme: SchemeKind,
    /// Per-tenant outcomes, in scenario file order.
    pub tenants: Vec<TenantOutcome>,
    /// `n · Σ(wᵢxᵢ)/Σwᵢ` over normalized progress.
    pub weighted_speedup: f64,
    /// Jain's fairness index over normalized progress.
    pub jain_fairness: f64,
    /// Violating over resident tenant-epochs, across SLO'd tenants;
    /// `None` when no tenant declares an SLO.
    pub slo_violation_fraction: Option<f64>,
    /// The scheme's tenant timeline (arrive/depart/admit/wait/violate).
    pub events: Vec<TenantEvent>,
}

/// A completed scenario: one [`SchemeOutcome`] per requested scheme,
/// in request order.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario seed (reported so the line is self-describing).
    pub seed: u64,
    /// Chip size the scenario ran on.
    pub cores: usize,
    /// Epoch count.
    pub epochs: u64,
    /// Per-core fixed-work budget per epoch.
    pub epoch_instrs: u64,
    /// Per-scheme outcomes.
    pub schemes: Vec<SchemeOutcome>,
}

/// The static schedule: which tenants run, wait, arrive, and depart at
/// every epoch. Identical for every scheme by construction.
struct Schedule {
    /// `admitted[e]` = tenant indices holding cores at epoch `e`.
    admitted: Vec<Vec<usize>>,
    /// `waiting[e]` = resident tenant indices without a core.
    waiting: Vec<Vec<usize>>,
}

fn build_schedule(scenario: &Scenario) -> Schedule {
    let mut admitted = Vec::with_capacity(scenario.epochs as usize);
    let mut waiting = Vec::with_capacity(scenario.epochs as usize);
    for e in 0..scenario.epochs {
        let mut resident: Vec<usize> = scenario
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.arrival <= e && e < t.departure)
            .map(|(i, _)| i)
            .collect();
        // First-come-first-served: earliest arrival wins a core, file
        // order breaks ties (resident is already in file order).
        resident.sort_by_key(|&i| (scenario.tenants[i].arrival, i));
        let cut = resident.len().min(scenario.cores);
        let mut adm = resident[..cut].to_vec();
        adm.sort_unstable();
        let mut wai = resident[cut..].to_vec();
        wai.sort_unstable();
        admitted.push(adm);
        waiting.push(wai);
    }
    Schedule { admitted, waiting }
}

/// Per-epoch workload seed: every scheme sees the identical interleave
/// seed so the comparison isolates the LLC scheme.
fn epoch_seed(scenario_seed: u64, epoch: u64) -> u64 {
    let mut z = scenario_seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `scenario` under every scheme in `kinds`.
///
/// The alone-run baselines (one grid cell per distinct app per scheme)
/// run first through the sweep engine, then the schemes fan out across
/// the same worker pool, each replaying the schedule epoch by epoch.
///
/// # Errors
///
/// Any [`HarnessError`] from the underlying experiments, a
/// [`HarnessError::Scenario`] wrapping a degenerate metric input, or
/// [`HarnessError::Cancelled`].
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[SchemeKind],
    opts: &ScenarioOpts,
) -> Result<ScenarioReport, HarnessError> {
    if kinds.is_empty() {
        return Err(HarnessError::Scenario(
            "scenario needs at least one scheme to evaluate".into(),
        ));
    }
    let cores16 = scenario.cores == 16;
    let apps = scenario.distinct_apps();

    // Alone baselines: one single-entry mix per (scheme, app), warmed
    // exactly like the shared epochs they normalize.
    let mut spec = SweepSpec::alone_grid(kinds, &apps, scenario.epoch_instrs, cores16)
        .budgets(scenario.warmup_instrs, scenario.epoch_instrs);
    if let Some(j) = opts.jobs {
        spec = spec.jobs(j);
    }
    if let Some(e) = opts.exec {
        spec = spec.exec_mode(e);
    }
    if let Some(c) = &opts.cancel {
        spec = spec.cancel_token(c.clone());
    }
    let alone = spec.run()?;
    let mut alone_ipc: HashMap<(SchemeKind, String), f64> = HashMap::new();
    for cell in &alone.cells {
        if let CellWork::Mix { apps, .. } = &cell.work {
            alone_ipc.insert((cell.scheme, apps[0].clone()), cell.summary.cores[0].ipc());
        }
    }

    let schedule = build_schedule(scenario);
    let jobs = opts.jobs.unwrap_or_else(default_jobs);
    let outcomes = parallel_map(jobs, kinds.len(), |k| {
        run_one_scheme(scenario, kinds[k], &schedule, &alone_ipc, opts)
    })?;

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        seed: scenario.seed,
        cores: scenario.cores,
        epochs: scenario.epochs,
        epoch_instrs: scenario.epoch_instrs,
        schemes: outcomes,
    })
}

/// One tenant's running totals while the schedule replays.
#[derive(Default, Clone)]
struct Account {
    instructions: u64,
    cycles: f64,
    accesses: u64,
    misses: u64,
    admitted: u64,
    waiting: u64,
    violating: u64,
}

fn run_one_scheme(
    scenario: &Scenario,
    kind: SchemeKind,
    schedule: &Schedule,
    alone_ipc: &HashMap<(SchemeKind, String), f64>,
    opts: &ScenarioOpts,
) -> Result<SchemeOutcome, HarnessError> {
    let label = kind.label().to_string();
    let mut accounts = vec![Account::default(); scenario.tenants.len()];
    let mut events: Vec<TenantEvent> = Vec::new();
    let push = |events: &mut Vec<TenantEvent>, epoch: u64, tenant: &str, k: TenantEventKind| {
        events.push(TenantEvent {
            scheme: label.clone(),
            epoch,
            tenant: tenant.to_string(),
            kind: k,
        });
    };

    for e in 0..scenario.epochs {
        // Fault-injection probes mirror the sweep cell loop: a scenario
        // worker can be made to panic (exercising `parallel_map`'s
        // catch_unwind isolation) or stall (exercising cancel deadlines)
        // at a seeded epoch.
        if wp_fault::fire(wp_fault::FaultPoint::WorkerPanic).is_some() {
            wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
            panic!("injected worker fault");
        }
        if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::WorkerSlow) {
            wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
            std::thread::sleep(std::time::Duration::from_millis(shot.millis));
        }
        if let Some(c) = &opts.cancel {
            if c.is_cancelled() {
                return Err(HarnessError::Cancelled);
            }
        }
        // Membership-change events first, in tenant file order.
        for (i, t) in scenario.tenants.iter().enumerate() {
            if t.arrival == e {
                push(&mut events, e, &t.name, TenantEventKind::Arrive);
                wp_obs::add(wp_obs::Counter::TenantArrivals, 1);
            }
            if t.departure == e {
                push(&mut events, e, &t.name, TenantEventKind::Depart);
                wp_obs::add(wp_obs::Counter::TenantDepartures, 1);
            }
            let _ = i;
        }
        let admitted = &schedule.admitted[e as usize];
        let waiting = &schedule.waiting[e as usize];
        for &i in waiting {
            let t = &scenario.tenants[i];
            accounts[i].waiting += 1;
            push(&mut events, e, &t.name, TenantEventKind::Wait);
            if t.slo.is_some() {
                // A queued-out tenant delivers nothing, so any SLO it
                // declared is violated for the whole epoch.
                accounts[i].violating += 1;
                push(&mut events, e, &t.name, TenantEventKind::Violate);
                wp_obs::add(wp_obs::Counter::TenantSloViolations, 1);
            }
        }
        if admitted.is_empty() {
            continue;
        }
        let apps: Vec<&str> = admitted
            .iter()
            .map(|&i| scenario.tenants[i].app.as_str())
            .collect();
        // Each epoch re-runs Experiment::mix from scratch: the scheme
        // re-classifies and re-allocates for the new membership, which
        // is the reconfiguration a real arrival/departure triggers.
        let mut exp = Experiment::mix(kind, &apps)
            .warmup(scenario.warmup_instrs)
            .measure(scenario.epoch_instrs)
            .seed(epoch_seed(scenario.seed, e));
        if scenario.cores == 16 {
            exp = exp.system(sixteen_core_config());
        }
        if let Some(x) = opts.exec {
            exp = exp.exec_mode(x);
        }
        if let Some(c) = &opts.cancel {
            exp = exp.cancel_token(c.clone());
        }
        let summary = exp.run()?;
        wp_obs::add(wp_obs::Counter::TenantEpochsRun, 1);

        for (slot, &i) in admitted.iter().enumerate() {
            let t = &scenario.tenants[i];
            let core = &summary.cores[slot];
            let acc = &mut accounts[i];
            acc.instructions += core.instructions;
            acc.cycles += core.cycles;
            let epoch_acc = core.llc_accesses + core.llc_bypasses;
            let epoch_miss = core.llc_misses + core.llc_bypasses;
            acc.accesses += epoch_acc;
            acc.misses += epoch_miss;
            acc.admitted += 1;
            push(&mut events, e, &t.name, TenantEventKind::Admit);
            if let Some(slo) = t.slo {
                let violated = match slo {
                    SloTarget::MaxMissRatio(bound) => {
                        let ratio = if epoch_acc == 0 {
                            0.0
                        } else {
                            epoch_miss as f64 / epoch_acc as f64
                        };
                        ratio > bound
                    }
                    SloTarget::MinNormIpc(bound) => {
                        let base = alone_ipc
                            .get(&(kind, t.app.clone()))
                            .copied()
                            .unwrap_or(0.0);
                        let nipc = if base > 0.0 { core.ipc() / base } else { 0.0 };
                        nipc < bound
                    }
                };
                if violated {
                    acc.violating += 1;
                    push(&mut events, e, &t.name, TenantEventKind::Violate);
                    wp_obs::add(wp_obs::Counter::TenantSloViolations, 1);
                }
            }
        }
    }

    let as_scenario_err = |e: MetricError| HarnessError::Scenario(e.to_string());
    let mut tenants = Vec::with_capacity(scenario.tenants.len());
    for (t, acc) in scenario.tenants.iter().zip(&accounts) {
        let base = alone_ipc
            .get(&(kind, t.app.clone()))
            .copied()
            .unwrap_or(0.0);
        let shared_ipc = if acc.cycles > 0.0 {
            acc.instructions as f64 / acc.cycles
        } else {
            0.0
        };
        let progress = if base > 0.0 { shared_ipc / base } else { 0.0 };
        tenants.push(TenantOutcome {
            name: t.name.clone(),
            app: t.app.clone(),
            weight: t.weight,
            alone_ipc: base,
            progress,
            instructions: acc.instructions,
            cycles: acc.cycles,
            miss_ratio: if acc.accesses == 0 {
                0.0
            } else {
                acc.misses as f64 / acc.accesses as f64
            },
            epochs_admitted: acc.admitted,
            epochs_waiting: acc.waiting,
            epochs_violating: acc.violating,
            has_slo: t.slo.is_some(),
        });
    }

    let progress: Vec<f64> = tenants.iter().map(|t| t.progress).collect();
    let weights: Vec<f64> = tenants.iter().map(|t| t.weight).collect();
    let ws = weighted_speedup(&progress, &weights).map_err(as_scenario_err)?;
    let jain = jain_index(&progress).map_err(as_scenario_err)?;
    let slo_tenants: Vec<&TenantOutcome> = tenants.iter().filter(|t| t.has_slo).collect();
    let slo_fraction = if slo_tenants.is_empty() {
        None
    } else {
        let viol: Vec<u64> = slo_tenants.iter().map(|t| t.epochs_violating).collect();
        let res: Vec<u64> = slo_tenants
            .iter()
            .map(|t| t.epochs_admitted + t.epochs_waiting)
            .collect();
        Some(slo_violation_fraction(&viol, &res).map_err(as_scenario_err)?)
    };

    Ok(SchemeOutcome {
        scheme: kind,
        tenants,
        weighted_speedup: ws,
        jain_fairness: jain,
        slo_violation_fraction: slo_fraction,
        events,
    })
}

impl ScenarioReport {
    /// One deterministic JSON line for the whole scenario. Excludes
    /// everything environmental (jobs, exec mode, wall clock), so the
    /// line is bit-identical across `WP_JOBS`, exec modes, and the
    /// offline/daemon split — the determinism tests diff it verbatim.
    pub fn to_json(&self) -> String {
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|s| {
                let tenants: Vec<String> = s
                    .tenants
                    .iter()
                    .map(|t| {
                        format!(
                            "{{\"name\":{},\"app\":{},\"weight\":{},\"alone_ipc\":{},\"progress\":{},\"instructions\":{},\"miss_ratio\":{},\"epochs_admitted\":{},\"epochs_waiting\":{},\"epochs_violating\":{}}}",
                            quote(&t.name),
                            quote(&t.app),
                            fmt_f64(t.weight),
                            fmt_f64(t.alone_ipc),
                            fmt_f64(t.progress),
                            t.instructions,
                            fmt_f64(t.miss_ratio),
                            t.epochs_admitted,
                            t.epochs_waiting,
                            t.epochs_violating,
                        )
                    })
                    .collect();
                let slo = match s.slo_violation_fraction {
                    Some(f) => fmt_f64(f),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"scheme\":{},\"weighted_speedup\":{},\"jain_fairness\":{},\"slo_violation_fraction\":{slo},\"tenants\":[{}]}}",
                    quote(s.scheme.label()),
                    fmt_f64(s.weighted_speedup),
                    fmt_f64(s.jain_fairness),
                    tenants.join(","),
                )
            })
            .collect();
        format!(
            "{{\"scenario\":{},\"seed\":{},\"cores\":{},\"epochs\":{},\"epoch_instrs\":{},\"schemes\":[{}]}}",
            quote(&self.name),
            self.seed,
            self.cores,
            self.epochs,
            self.epoch_instrs,
            schemes.join(","),
        )
    }

    /// The tenant timeline as JSONL: every scheme's events concatenated
    /// in request order, one [`TenantEvent`] per line. Deterministic for
    /// the same reasons as [`to_json`](Self::to_json).
    pub fn timeline_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.schemes {
            for e in &s.events {
                out.push_str(&e.to_json_line());
                out.push('\n');
            }
        }
        out
    }
}

/// Validates a tenant timeline produced by
/// [`ScenarioReport::timeline_jsonl`]: every line must be a JSON object
/// with `type:"tenant"`, a string scheme and tenant, a non-negative
/// integer epoch, and a known event name.
///
/// # Errors
///
/// A one-line description of the first offending line.
pub fn validate_timeline(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| format!("timeline line {}: {what}", lineno + 1);
        let doc = whirlpool_repro::bench_check::parse(line)
            .map_err(|e| bad(&format!("not JSON ({e})")))?;
        if doc.get("type").and_then(|v| v.as_str()) != Some("tenant") {
            return Err(bad("missing \"type\":\"tenant\""));
        }
        if doc.get("scheme").and_then(|v| v.as_str()).is_none() {
            return Err(bad("missing string \"scheme\""));
        }
        if doc.get("tenant").and_then(|v| v.as_str()).is_none() {
            return Err(bad("missing string \"tenant\""));
        }
        match doc.get("epoch").and_then(|v| v.as_f64()) {
            Some(e) if e >= 0.0 && e.fract() == 0.0 => {}
            _ => return Err(bad("missing non-negative integer \"epoch\"")),
        }
        match doc.get("event").and_then(|v| v.as_str()) {
            Some("arrive" | "depart" | "admit" | "wait" | "violate") => {}
            Some(other) => return Err(bad(&format!("unknown event '{other}'"))),
            None => return Err(bad("missing string \"event\"")),
        }
        n += 1;
    }
    if n == 0 {
        return Err("timeline has no tenant events".into());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(epochs: u64, cores: u64, tenants: &str) -> Scenario {
        Scenario::from_json_str(&format!(
            r#"{{"name":"tiny","seed":3,"cores":{cores},"epochs":{epochs},
                "epoch_instrs":1000,"warmup_instrs":100,"tenants":[{tenants}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn schedule_is_fcfs_with_file_order_tiebreak() {
        // 4 cores, 5 resident tenants at epoch 2: the latest arrival waits.
        let s = tiny(
            4,
            4,
            r#"{"name":"t0","app":"mcf","arrival":0,"departure":4},
               {"name":"t1","app":"mcf","arrival":0,"departure":4},
               {"name":"t2","app":"mcf","arrival":1,"departure":4},
               {"name":"t3","app":"mcf","arrival":1,"departure":4},
               {"name":"t4","app":"mcf","arrival":2,"departure":4}"#,
        );
        let sched = build_schedule(&s);
        assert_eq!(sched.admitted[0], vec![0, 1]);
        assert_eq!(sched.admitted[2], vec![0, 1, 2, 3]);
        assert_eq!(sched.waiting[2], vec![4]);
        assert_eq!(sched.admitted[3], vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_epochs_are_skipped() {
        let s = tiny(
            3,
            4,
            r#"{"name":"t0","app":"mcf","arrival":2,"departure":3}"#,
        );
        let sched = build_schedule(&s);
        assert!(sched.admitted[0].is_empty() && sched.admitted[1].is_empty());
        assert_eq!(sched.admitted[2], vec![0]);
    }

    #[test]
    fn epoch_seed_varies_by_epoch_but_not_callsite() {
        assert_ne!(epoch_seed(7, 0), epoch_seed(7, 1));
        assert_eq!(epoch_seed(7, 3), epoch_seed(7, 3));
    }

    #[test]
    fn timeline_validator_accepts_real_lines_and_rejects_junk() {
        let good = "{\"type\":\"tenant\",\"scheme\":\"Jigsaw\",\"epoch\":0,\"tenant\":\"a\",\"event\":\"arrive\"}\n";
        assert_eq!(validate_timeline(good), Ok(1));
        assert!(validate_timeline("").is_err());
        assert!(validate_timeline("not json\n")
            .unwrap_err()
            .contains("line 1"));
        let wrong_event = good.replace("arrive", "explode");
        assert!(validate_timeline(&wrong_event)
            .unwrap_err()
            .contains("unknown event"));
        let wrong_type = good.replace("tenant\",", "pool_sample\",");
        assert!(validate_timeline(&wrong_type).is_err());
    }

    #[test]
    fn no_schemes_is_a_scenario_error() {
        let s = tiny(
            1,
            4,
            r#"{"name":"t0","app":"mcf","arrival":0,"departure":1}"#,
        );
        match run_scenario(&s, &[], &ScenarioOpts::default()) {
            Err(HarnessError::Scenario(m)) => assert!(m.contains("at least one scheme")),
            other => panic!("expected Scenario error, got {other:?}"),
        }
    }
}
