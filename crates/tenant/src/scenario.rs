//! The `.wps` scenario format: a self-describing JSON document listing
//! the tenant set (app, weight, optional SLO) and the epoch-granular
//! churn trace that drives arrivals and departures.
//!
//! Parsing goes through the repo's own `bench_check` JSON parser (no
//! external deps) and every defect — malformed JSON, unknown keys,
//! ill-typed fields, negative times, inconsistent churn windows — maps
//! to a one-line [`HarnessError::Scenario`], so the CLI and daemon
//! render identical messages.
//!
//! Churn is deterministic: tenants that do not pin `arrival`/`departure`
//! get both synthesized from the scenario `seed` with splitmix64, so the
//! same file always describes the same timeline on every machine.

use whirlpool_repro::bench_check::{parse, Json};
use whirlpool_repro::harness::{resolve_app, HarnessError};

/// A tenant's service-level objective, checked once per admitted epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloTarget {
    /// The epoch's LLC miss ratio (misses + bypasses over accesses +
    /// bypasses) must stay at or below this bound.
    MaxMissRatio(f64),
    /// The epoch's IPC normalized to the tenant's alone-run IPC under
    /// the same scheme must stay at or above this bound.
    MinNormIpc(f64),
}

/// One tenant: a workload plus its weight, SLO, and residency window.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name (used in reports and timelines).
    pub name: String,
    /// Registry benchmark or `trace:<path>` URI.
    pub app: String,
    /// Relative importance in the weighted-speedup metric (> 0).
    pub weight: f64,
    /// Optional service-level objective.
    pub slo: Option<SloTarget>,
    /// First epoch the tenant is resident (0-based, inclusive).
    pub arrival: u64,
    /// First epoch the tenant is gone (exclusive; ≤ `epochs`).
    pub departure: u64,
}

/// A parsed, validated multi-tenant scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reported verbatim).
    pub name: String,
    /// Seed for churn synthesis and per-epoch experiment seeds.
    pub seed: u64,
    /// Chip size: 4 or 16 cores.
    pub cores: usize,
    /// Number of scheduling epochs.
    pub epochs: u64,
    /// Fixed-work measurement budget per core per epoch.
    pub epoch_instrs: u64,
    /// Per-epoch warmup budget (also used for the alone baselines).
    pub warmup_instrs: u64,
    /// The tenant set, in file order.
    pub tenants: Vec<TenantSpec>,
}

/// Default per-epoch warmup when the file does not set `warmup_instrs`.
pub const DEFAULT_WARMUP_INSTRS: u64 = 200_000;

fn err(msg: impl Into<String>) -> HarnessError {
    HarnessError::Scenario(msg.into())
}

/// The splitmix64 mixer — the repo's stock deterministic hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A non-negative integer field (rejects fractions, negatives, and
/// anything past 2^53 where `f64` stops being exact).
fn as_u64(v: &Json, what: &str) -> Result<u64, HarnessError> {
    match v {
        Json::Num(n) => {
            if *n < 0.0 {
                Err(err(format!("'{what}' must be non-negative (got {n})")))
            } else if n.fract() != 0.0 || *n > 9_007_199_254_740_992.0 {
                Err(err(format!("'{what}' must be an integer (got {n})")))
            } else {
                Ok(*n as u64)
            }
        }
        _ => Err(err(format!("'{what}' must be a number"))),
    }
}

fn as_str<'j>(v: &'j Json, what: &str) -> Result<&'j str, HarnessError> {
    v.as_str()
        .ok_or_else(|| err(format!("'{what}' must be a string")))
}

fn fields<'j>(v: &'j Json, what: &str) -> Result<&'j [(String, Json)], HarnessError> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => Err(err(format!("{what} must be a JSON object"))),
    }
}

fn reject_unknown_keys(
    fields: &[(String, Json)],
    allowed: &[&str],
    what: &str,
) -> Result<(), HarnessError> {
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(err(format!(
                "unknown {what} key '{k}' (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn parse_slo(v: &Json, tenant: &str) -> Result<SloTarget, HarnessError> {
    let f = fields(v, &format!("tenant '{tenant}' slo"))?;
    reject_unknown_keys(f, &["max_miss_ratio", "min_norm_ipc"], "slo")?;
    let miss = v.get("max_miss_ratio");
    let ipc = v.get("min_norm_ipc");
    match (miss, ipc) {
        (Some(m), None) => {
            let m = m
                .as_f64()
                .ok_or_else(|| err(format!("tenant '{tenant}' max_miss_ratio must be a number")))?;
            if m > 0.0 && m <= 1.0 {
                Ok(SloTarget::MaxMissRatio(m))
            } else {
                Err(err(format!(
                    "tenant '{tenant}' max_miss_ratio must be in (0, 1] (got {m})"
                )))
            }
        }
        (None, Some(i)) => {
            let i = i
                .as_f64()
                .ok_or_else(|| err(format!("tenant '{tenant}' min_norm_ipc must be a number")))?;
            if i > 0.0 && i.is_finite() {
                Ok(SloTarget::MinNormIpc(i))
            } else {
                Err(err(format!(
                    "tenant '{tenant}' min_norm_ipc must be positive and finite (got {i})"
                )))
            }
        }
        _ => Err(err(format!(
            "tenant '{tenant}' slo must set exactly one of max_miss_ratio / min_norm_ipc"
        ))),
    }
}

impl Scenario {
    /// Reads and validates a `.wps` file.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Scenario`] for unreadable files and every schema
    /// defect; [`HarnessError::UnknownApp`] for apps outside the
    /// registry.
    pub fn load(path: &std::path::Path) -> Result<Scenario, HarnessError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read scenario '{}': {e}", path.display())))?;
        Scenario::from_json_str(&text)
    }

    /// Parses and validates a `.wps` document from memory.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scenario::load`].
    pub fn from_json_str(text: &str) -> Result<Scenario, HarnessError> {
        let doc = parse(text).map_err(|e| err(format!("malformed scenario JSON: {e}")))?;
        let top = fields(&doc, "a scenario")?;
        reject_unknown_keys(
            top,
            &[
                "name",
                "seed",
                "cores",
                "epochs",
                "epoch_instrs",
                "warmup_instrs",
                "tenants",
            ],
            "scenario",
        )?;
        let name = as_str(
            doc.get("name")
                .ok_or_else(|| err("scenario needs a 'name'"))?,
            "name",
        )?
        .to_string();
        if name.is_empty() {
            return Err(err("scenario 'name' must be non-empty"));
        }
        let seed = as_u64(
            doc.get("seed")
                .ok_or_else(|| err("scenario needs a 'seed'"))?,
            "seed",
        )?;
        let cores = as_u64(
            doc.get("cores")
                .ok_or_else(|| err("scenario needs 'cores' (4 or 16)"))?,
            "cores",
        )?;
        if cores != 4 && cores != 16 {
            return Err(err(format!("'cores' must be 4 or 16 (got {cores})")));
        }
        let epochs = as_u64(
            doc.get("epochs")
                .ok_or_else(|| err("scenario needs 'epochs'"))?,
            "epochs",
        )?;
        if epochs == 0 {
            return Err(err("'epochs' must be at least 1"));
        }
        let epoch_instrs = as_u64(
            doc.get("epoch_instrs")
                .ok_or_else(|| err("scenario needs 'epoch_instrs'"))?,
            "epoch_instrs",
        )?;
        if epoch_instrs == 0 {
            return Err(err("'epoch_instrs' must be positive"));
        }
        let warmup_instrs = match doc.get("warmup_instrs") {
            Some(v) => as_u64(v, "warmup_instrs")?,
            None => DEFAULT_WARMUP_INSTRS,
        };
        let tenant_rows = match doc.get("tenants") {
            Some(Json::Arr(rows)) if !rows.is_empty() => rows,
            Some(Json::Arr(_)) => return Err(err("'tenants' must list at least one tenant")),
            _ => return Err(err("scenario needs a 'tenants' array")),
        };

        let mut tenants = Vec::with_capacity(tenant_rows.len());
        for (i, row) in tenant_rows.iter().enumerate() {
            tenants.push(parse_tenant(row, i, seed, epochs)?);
        }
        validate_tenant_set(&tenants, epochs)?;

        Ok(Scenario {
            name,
            seed,
            cores: cores as usize,
            epochs,
            epoch_instrs,
            warmup_instrs,
            tenants,
        })
    }

    /// The distinct apps the scenario touches, in first-seen order —
    /// the work-list for the alone-run baseline grid.
    pub fn distinct_apps(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for t in &self.tenants {
            if !seen.contains(&t.app.as_str()) {
                seen.push(&t.app);
            }
        }
        seen
    }
}

fn parse_tenant(
    row: &Json,
    index: usize,
    seed: u64,
    epochs: u64,
) -> Result<TenantSpec, HarnessError> {
    let f = fields(row, &format!("tenant #{index}"))?;
    reject_unknown_keys(
        f,
        &["name", "app", "weight", "slo", "arrival", "departure"],
        "tenant",
    )?;
    let name = as_str(
        row.get("name")
            .ok_or_else(|| err(format!("tenant #{index} needs a 'name'")))?,
        &format!("tenant #{index} name"),
    )?
    .to_string();
    if name.is_empty() {
        return Err(err(format!("tenant #{index} 'name' must be non-empty")));
    }
    let app = as_str(
        row.get("app")
            .ok_or_else(|| err(format!("tenant '{name}' needs an 'app'")))?,
        &format!("tenant '{name}' app"),
    )?
    .to_string();
    resolve_app(&app)?;
    let weight = match row.get("weight") {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| err(format!("tenant '{name}' weight must be a number")))?,
        None => 1.0,
    };
    // `is_finite` also rejects NaN, so `<= 0.0` covers the rest.
    if weight <= 0.0 || !weight.is_finite() {
        return Err(err(format!(
            "tenant '{name}' weight must be positive and finite (got {weight})"
        )));
    }
    let slo = match row.get("slo") {
        Some(v) => Some(parse_slo(v, &name)?),
        None => None,
    };
    let (arrival, departure) = match (row.get("arrival"), row.get("departure")) {
        (Some(a), Some(d)) => {
            let a = as_u64(a, &format!("tenant '{name}' arrival"))?;
            let d = as_u64(d, &format!("tenant '{name}' departure"))?;
            if d <= a {
                return Err(err(format!(
                    "tenant '{name}' departs at epoch {d}, not after its arrival at {a}"
                )));
            }
            if d > epochs {
                return Err(err(format!(
                    "tenant '{name}' departure {d} exceeds the scenario's {epochs} epochs"
                )));
            }
            (a, d)
        }
        (None, None) => synth_window(seed, index as u64, epochs),
        _ => {
            return Err(err(format!(
                "tenant '{name}' must set both 'arrival' and 'departure', or neither"
            )));
        }
    };
    Ok(TenantSpec {
        name,
        app,
        weight,
        slo,
        arrival,
        departure,
    })
}

/// Deterministic churn synthesis: tenant `index` of a scenario with
/// `seed` always gets the same residency window, derived with splitmix64
/// so adjacent indices decorrelate.
fn synth_window(seed: u64, index: u64, epochs: u64) -> (u64, u64) {
    let r1 = splitmix64(seed ^ splitmix64(index.wrapping_mul(2)));
    let r2 = splitmix64(seed ^ splitmix64(index.wrapping_mul(2) + 1));
    let arrival = r1 % epochs;
    let duration = 1 + r2 % (epochs - arrival);
    (arrival, arrival + duration)
}

fn validate_tenant_set(tenants: &[TenantSpec], epochs: u64) -> Result<(), HarnessError> {
    for (i, a) in tenants.iter().enumerate() {
        for b in &tenants[i + 1..] {
            if a.name == b.name {
                return Err(err(format!("duplicate tenant name '{}'", a.name)));
            }
            // Two tenants replaying the same trace file would share an
            // address space when co-resident; mix_bundle's 1 TB spacing
            // separates registry apps but identical trace URIs collide.
            if a.app.starts_with("trace:") && a.app == b.app {
                return Err(err(format!(
                    "tenants '{}' and '{}' replay the same trace URI '{}' (overlapping address spaces)",
                    a.name, b.name, a.app
                )));
            }
        }
        debug_assert!(a.arrival < a.departure && a.departure <= epochs);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra_tenant_fields: &str) -> String {
        format!(
            r#"{{"name":"t","seed":7,"cores":4,"epochs":8,"epoch_instrs":100000,
                "tenants":[{{"name":"a","app":"delaunay"{extra_tenant_fields}}}]}}"#
        )
    }

    #[test]
    fn minimal_scenario_parses_with_synthesized_churn() {
        let s = Scenario::from_json_str(&minimal("")).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.warmup_instrs, DEFAULT_WARMUP_INSTRS);
        let t = &s.tenants[0];
        assert!(t.arrival < t.departure && t.departure <= s.epochs);
        assert_eq!(t.weight, 1.0);
        assert!(t.slo.is_none());
        // Same file, same windows — churn is a pure function of the seed.
        let again = Scenario::from_json_str(&minimal("")).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn explicit_windows_and_slos_parse() {
        let s = Scenario::from_json_str(&minimal(
            r#","arrival":2,"departure":6,"weight":2.5,"slo":{"max_miss_ratio":0.4}"#,
        ))
        .unwrap();
        let t = &s.tenants[0];
        assert_eq!((t.arrival, t.departure), (2, 6));
        assert_eq!(t.slo, Some(SloTarget::MaxMissRatio(0.4)));
    }

    #[test]
    fn malformed_scenarios_are_one_line_scenario_errors() {
        let cases: &[(&str, &str)] = &[
            ("{\"name\":", "malformed scenario JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"name":"x","bogus":1}"#, "unknown scenario key 'bogus'"),
            (&minimal(r#","arrival":-1,"departure":3"#), "non-negative"),
            (&minimal(r#","arrival":1.5,"departure":3"#), "integer"),
            (
                &minimal(r#","arrival":5,"departure":3"#),
                "not after its arrival",
            ),
            (&minimal(r#","arrival":5,"departure":99"#), "exceeds"),
            (
                &minimal(r#","arrival":5"#),
                "both 'arrival' and 'departure'",
            ),
            (&minimal(r#","weight":0"#), "positive"),
            (&minimal(r#","slo":{}"#), "exactly one"),
            (
                &minimal(r#","slo":{"max_miss_ratio":0.1,"min_norm_ipc":0.5}"#),
                "exactly one",
            ),
            (&minimal(r#","slo":{"max_miss_ratio":1.7}"#), "(0, 1]"),
        ];
        for (text, needle) in cases {
            match Scenario::from_json_str(text) {
                Err(HarnessError::Scenario(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
                    assert!(!msg.contains('\n'), "one line: {msg:?}");
                }
                other => panic!("expected Scenario error containing {needle:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_apps_keep_the_did_you_mean_contract() {
        let text = minimal("").replace("delaunay", "delauny");
        match Scenario::from_json_str(&text) {
            Err(HarnessError::UnknownApp { name, suggestion }) => {
                assert_eq!(name, "delauny");
                assert_eq!(suggestion.as_deref(), Some("delaunay"));
            }
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_and_trace_uris_are_rejected() {
        let dup = r#"{"name":"t","seed":1,"cores":4,"epochs":4,"epoch_instrs":1000,
            "tenants":[{"name":"a","app":"delaunay"},{"name":"a","app":"mcf"}]}"#;
        assert!(matches!(
            Scenario::from_json_str(dup),
            Err(HarnessError::Scenario(m)) if m.contains("duplicate tenant name")
        ));
        let shared = r#"{"name":"t","seed":1,"cores":4,"epochs":4,"epoch_instrs":1000,
            "tenants":[{"name":"a","app":"trace:/tmp/x.wpt"},{"name":"b","app":"trace:/tmp/x.wpt"}]}"#;
        assert!(matches!(
            Scenario::from_json_str(shared),
            Err(HarnessError::Scenario(m)) if m.contains("overlapping address spaces")
        ));
    }

    #[test]
    fn distinct_apps_keeps_first_seen_order() {
        let s = Scenario::from_json_str(
            r#"{"name":"t","seed":1,"cores":4,"epochs":4,"epoch_instrs":1000,
            "tenants":[{"name":"a","app":"mcf"},{"name":"b","app":"delaunay"},
                       {"name":"c","app":"mcf"}]}"#,
        )
        .unwrap();
        assert_eq!(s.distinct_apps(), vec!["mcf", "delaunay"]);
    }
}
