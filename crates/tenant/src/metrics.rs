//! Tenant-level metrics reported alongside the repo's gmean speedup:
//! weighted speedup, Jain fairness, and SLO-violation time fraction.
//!
//! Every helper returns a typed [`MetricError`] on degenerate input
//! (empty tenant sets, zero weight sums, all-zero progress) instead of
//! `NaN` or a panic — the same contract the PR 3 `gmean` fix
//! established for the figure pipeline.

/// A degenerate metric input, rendered as one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// No tenants to aggregate over.
    EmptyTenantSet,
    /// Parallel slices (progress vs. weights, violations vs. residency)
    /// disagree in length.
    MismatchedLengths {
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
    /// Weights sum to zero (or are not finite), so the weighted mean is
    /// undefined.
    NonPositiveWeightSum,
    /// Every tenant made zero progress; fairness over all-zero shares is
    /// undefined.
    ZeroProgress,
    /// No tenant was ever resident, so a time fraction is undefined.
    NoResidentEpochs,
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::EmptyTenantSet => write!(f, "metric over an empty tenant set"),
            MetricError::MismatchedLengths { left, right } => {
                write!(f, "metric inputs disagree in length ({left} vs {right})")
            }
            MetricError::NonPositiveWeightSum => {
                write!(f, "tenant weights must sum to a positive finite value")
            }
            MetricError::ZeroProgress => {
                write!(
                    f,
                    "fairness is undefined when every tenant made zero progress"
                )
            }
            MetricError::NoResidentEpochs => {
                write!(
                    f,
                    "SLO violation fraction is undefined with no resident epochs"
                )
            }
        }
    }
}

impl std::error::Error for MetricError {}

/// Weighted speedup: `n · Σ(wᵢ·xᵢ) / Σwᵢ`, where `xᵢ` is tenant *i*'s
/// normalized progress (shared IPC over alone IPC). With equal weights
/// this reduces to the classic system-throughput `Σxᵢ`.
///
/// # Errors
///
/// [`MetricError::EmptyTenantSet`] on empty input,
/// [`MetricError::MismatchedLengths`] when the slices disagree, and
/// [`MetricError::NonPositiveWeightSum`] when the weights cannot
/// normalize a mean.
pub fn weighted_speedup(progress: &[f64], weights: &[f64]) -> Result<f64, MetricError> {
    if progress.is_empty() {
        return Err(MetricError::EmptyTenantSet);
    }
    if progress.len() != weights.len() {
        return Err(MetricError::MismatchedLengths {
            left: progress.len(),
            right: weights.len(),
        });
    }
    let weight_sum: f64 = weights.iter().sum();
    // `is_finite` also rejects NaN, so `<= 0.0` covers the rest.
    if weight_sum <= 0.0 || !weight_sum.is_finite() {
        return Err(MetricError::NonPositiveWeightSum);
    }
    let weighted: f64 = progress.iter().zip(weights).map(|(x, w)| x * w).sum();
    Ok(progress.len() as f64 * weighted / weight_sum)
}

/// Jain's fairness index over normalized progress: `(Σx)² / (n·Σx²)`.
/// 1 when every tenant progresses equally; `1/n` when one tenant
/// monopolizes the system.
///
/// # Errors
///
/// [`MetricError::EmptyTenantSet`] on empty input and
/// [`MetricError::ZeroProgress`] when every share is zero (the index
/// would be `0/0`).
pub fn jain_index(progress: &[f64]) -> Result<f64, MetricError> {
    if progress.is_empty() {
        return Err(MetricError::EmptyTenantSet);
    }
    let sum: f64 = progress.iter().sum();
    let sum_sq: f64 = progress.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return Err(MetricError::ZeroProgress);
    }
    Ok(sum * sum / (progress.len() as f64 * sum_sq))
}

/// SLO-violation time fraction: total violating tenant-epochs over
/// total resident tenant-epochs, across the tenants that declare an
/// SLO. Waiting epochs (resident but not admitted) count as violations
/// upstream, so a starved tenant shows up here rather than vanishing.
///
/// # Errors
///
/// [`MetricError::EmptyTenantSet`] when no tenant declares an SLO,
/// [`MetricError::MismatchedLengths`] when the slices disagree, and
/// [`MetricError::NoResidentEpochs`] when the denominator is zero.
pub fn slo_violation_fraction(violating: &[u64], resident: &[u64]) -> Result<f64, MetricError> {
    if violating.is_empty() {
        return Err(MetricError::EmptyTenantSet);
    }
    if violating.len() != resident.len() {
        return Err(MetricError::MismatchedLengths {
            left: violating.len(),
            right: resident.len(),
        });
    }
    let total: u64 = resident.iter().sum();
    if total == 0 {
        return Err(MetricError::NoResidentEpochs);
    }
    let bad: u64 = violating.iter().sum();
    Ok(bad as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tenant_sets_are_typed_errors_not_nan() {
        assert_eq!(weighted_speedup(&[], &[]), Err(MetricError::EmptyTenantSet));
        assert_eq!(jain_index(&[]), Err(MetricError::EmptyTenantSet));
        assert_eq!(
            slo_violation_fraction(&[], &[]),
            Err(MetricError::EmptyTenantSet)
        );
        for e in [
            MetricError::EmptyTenantSet,
            MetricError::MismatchedLengths { left: 2, right: 3 },
            MetricError::NonPositiveWeightSum,
            MetricError::ZeroProgress,
            MetricError::NoResidentEpochs,
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }

    #[test]
    fn weighted_speedup_reduces_to_throughput_for_equal_weights() {
        let x = [0.5, 1.0, 0.25];
        let ws = weighted_speedup(&x, &[1.0, 1.0, 1.0]).unwrap();
        assert!((ws - 1.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_favors_heavy_tenants() {
        let x = [1.0, 0.1];
        let even = weighted_speedup(&x, &[1.0, 1.0]).unwrap();
        let skewed = weighted_speedup(&x, &[10.0, 1.0]).unwrap();
        assert!(skewed > even);
    }

    #[test]
    fn weighted_speedup_degenerate_weights() {
        assert_eq!(
            weighted_speedup(&[1.0], &[1.0, 2.0]),
            Err(MetricError::MismatchedLengths { left: 1, right: 2 })
        );
        assert_eq!(
            weighted_speedup(&[1.0, 1.0], &[0.0, 0.0]),
            Err(MetricError::NonPositiveWeightSum)
        );
        assert_eq!(
            weighted_speedup(&[1.0], &[f64::INFINITY]),
            Err(MetricError::NonPositiveWeightSum)
        );
    }

    #[test]
    fn jain_bounds() {
        let even = jain_index(&[0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!((even - 1.0).abs() < 1e-12);
        let mono = jain_index(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((mono - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), Err(MetricError::ZeroProgress));
    }

    #[test]
    fn slo_fraction_counts_epochs() {
        let f = slo_violation_fraction(&[1, 0, 3], &[4, 4, 4]).unwrap();
        assert!((f - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(
            slo_violation_fraction(&[0], &[0]),
            Err(MetricError::NoResidentEpochs)
        );
        assert_eq!(
            slo_violation_fraction(&[1, 2], &[4]),
            Err(MetricError::MismatchedLengths { left: 2, right: 1 })
        );
    }
}
