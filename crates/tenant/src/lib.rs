//! `wp-tenant`: multi-tenant datacenter scenarios for the Whirlpool
//! reproduction.
//!
//! The paper evaluates Whirlpool on fixed multi-program mixes; a
//! datacenter deployment instead sees a *churning* tenant population
//! with per-tenant priorities and SLOs. This crate closes that gap with
//! three pieces:
//!
//! 1. **The `.wps` scenario format** ([`scenario`]) — a self-describing
//!    JSON document naming the tenant set (registry app or `trace:` URI,
//!    weight, optional SLO as a max miss-ratio or min normalized IPC)
//!    plus a deterministic, seeded arrival/departure trace. Every
//!    defect surfaces as a one-line typed error.
//! 2. **The scenario engine** ([`engine`]) — replays the churn schedule
//!    over the existing `Experiment` spine once per scheme: admitted
//!    tenants share the chip for an epoch, membership changes
//!    re-trigger classification and allocation, and per-tenant
//!    instruction/cycle/miss accounting accumulates across epochs. The
//!    report line and the tenant timeline are bit-identical whatever
//!    `WP_JOBS`, the exec mode, or the daemon/CLI split.
//! 3. **Tenant metrics** ([`metrics`]) — weighted speedup, Jain
//!    fairness, and the SLO-violation time fraction, all returning
//!    typed errors (never `NaN`) on degenerate input.
//!
//! The Memshare-style greedy marginal-benefit baseline this engine
//! compares against lives in `wp-baselines`
//! (`SchemeKind::Memshare`), next to the other eight schemes.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod scenario;

pub use engine::{
    run_scenario, validate_timeline, ScenarioOpts, ScenarioReport, SchemeOutcome, TenantOutcome,
};
pub use metrics::{jain_index, slo_violation_fraction, weighted_speedup, MetricError};
pub use scenario::{Scenario, SloTarget, TenantSpec, DEFAULT_WARMUP_INSTRS};
