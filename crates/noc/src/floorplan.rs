//! Chip floorplans: where cores, banks, and memory controllers sit on the
//! mesh, and the distance queries the rest of the system asks.

use crate::mesh::{Coord, Mesh};
use crate::NocParams;

/// Identifies an LLC bank (one per mesh tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankId(pub u16);

/// Identifies a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u16);

/// Identifies a memory-controller unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct McuId(pub u16);

/// A chip floorplan: a mesh whose every tile holds one LLC bank, with cores
/// and MCUs attached to specific routers.
///
/// The two constructors reproduce the paper's evaluated systems (Table 3,
/// Fig. 1, Fig. 12). [`Floorplan::custom`] builds arbitrary layouts for
/// tests and ablations.
#[derive(Debug, Clone)]
pub struct Floorplan {
    mesh: Mesh,
    cores: Vec<Coord>,
    mcus: Vec<Coord>,
    params: NocParams,
    /// `banks_by_distance[c]` = bank ids sorted by hops from core `c`
    /// (ties broken by id, so placement is deterministic).
    banks_by_distance: Vec<Vec<BankId>>,
}

impl Floorplan {
    /// The 4-core chip of Fig. 1: 5×5 banks (12.5 MB of 512 KB banks), four
    /// cores at the edge midpoints, one MCU attached at the center tile
    /// (neutral with respect to all cores). Core 0 is the *leftmost* core
    /// where the paper runs `dt`.
    pub fn four_core() -> Self {
        let mesh = Mesh::new(5, 5);
        let cores = vec![
            Coord::new(0, 2), // core 0: left
            Coord::new(2, 0), // core 1: top
            Coord::new(4, 2), // core 2: right
            Coord::new(2, 4), // core 3: bottom
        ];
        let mcus = vec![Coord::new(2, 2)];
        Self::custom(mesh, cores, mcus, NocParams::default())
    }

    /// The 16-core chip of Fig. 12: 9×9 banks (40.5 MB), sixteen cores
    /// spread around the perimeter, four MCUs at the corners.
    pub fn sixteen_core() -> Self {
        let mesh = Mesh::new(9, 9);
        let mut cores = Vec::with_capacity(16);
        // Four per side, clockwise from the top edge, matching Fig. 12's
        // even spread of cores around the cache.
        for x in [1u16, 3, 5, 7] {
            cores.push(Coord::new(x, 0));
        }
        for y in [1u16, 3, 5, 7] {
            cores.push(Coord::new(8, y));
        }
        for x in [7u16, 5, 3, 1] {
            cores.push(Coord::new(x, 8));
        }
        for y in [7u16, 5, 3, 1] {
            cores.push(Coord::new(0, y));
        }
        let mcus = vec![
            Coord::new(0, 0),
            Coord::new(8, 0),
            Coord::new(8, 8),
            Coord::new(0, 8),
        ];
        Self::custom(mesh, cores, mcus, NocParams::default())
    }

    /// Builds an arbitrary floorplan.
    ///
    /// # Panics
    ///
    /// Panics if any core/MCU coordinate lies outside the mesh, or if there
    /// are no cores or MCUs.
    pub fn custom(mesh: Mesh, cores: Vec<Coord>, mcus: Vec<Coord>, params: NocParams) -> Self {
        assert!(!cores.is_empty(), "need at least one core");
        assert!(!mcus.is_empty(), "need at least one MCU");
        for &c in cores.iter().chain(mcus.iter()) {
            assert!(mesh.contains(c), "endpoint {c} outside the mesh");
        }
        let mut banks_by_distance = Vec::with_capacity(cores.len());
        for &cc in &cores {
            let mut banks: Vec<BankId> = (0..mesh.tiles() as u16).map(BankId).collect();
            banks.sort_by_key(|&b| (mesh.hops(cc, mesh.coord_of(b.0 as usize)), b.0));
            banks_by_distance.push(banks);
        }
        Self {
            mesh,
            cores,
            mcus,
            params,
            banks_by_distance,
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// NoC parameters.
    pub fn params(&self) -> NocParams {
        self.params
    }

    /// Number of LLC banks (= mesh tiles).
    pub fn num_banks(&self) -> usize {
        self.mesh.tiles()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of MCUs.
    pub fn num_mcus(&self) -> usize {
        self.mcus.len()
    }

    /// Coordinate of a bank.
    pub fn bank_coord(&self, b: BankId) -> Coord {
        self.mesh.coord_of(b.0 as usize)
    }

    /// Router a core is attached to.
    pub fn core_coord(&self, c: CoreId) -> Coord {
        self.cores[c.0 as usize]
    }

    /// Router an MCU is attached to.
    pub fn mcu_coord(&self, m: McuId) -> Coord {
        self.mcus[m.0 as usize]
    }

    /// Hops from a core to a bank.
    pub fn hops_core_bank(&self, c: CoreId, b: BankId) -> u64 {
        self.mesh.hops(self.core_coord(c), self.bank_coord(b))
    }

    /// Hops from a bank to an MCU.
    pub fn hops_bank_mcu(&self, b: BankId, m: McuId) -> u64 {
        self.mesh.hops(self.bank_coord(b), self.mcu_coord(m))
    }

    /// Hops from a core to an MCU.
    pub fn hops_core_mcu(&self, c: CoreId, m: McuId) -> u64 {
        self.mesh.hops(self.core_coord(c), self.mcu_coord(m))
    }

    /// The MCU closest to a core (addresses interleave across MCUs, but the
    /// simulator routes each request to the owning MCU; this helper is used
    /// for latency estimates).
    pub fn nearest_mcu(&self, c: CoreId) -> McuId {
        (0..self.mcus.len() as u16)
            .map(McuId)
            .min_by_key(|&m| (self.hops_core_mcu(c, m), m.0))
            .expect("at least one MCU")
    }

    /// MCU owning a line address (static interleave by line number).
    pub fn mcu_of_line(&self, line_addr: u64) -> McuId {
        McuId((line_addr % self.mcus.len() as u64) as u16)
    }

    /// Banks sorted by distance from core `c` (nearest first, stable).
    pub fn banks_by_distance(&self, c: CoreId) -> &[BankId] {
        &self.banks_by_distance[c.0 as usize]
    }

    /// Banks sorted by distance from an arbitrary coordinate (used for
    /// placing shared VCs at their consumers' center of mass).
    pub fn banks_by_distance_from(&self, from: Coord) -> Vec<BankId> {
        let mut banks: Vec<BankId> = (0..self.mesh.tiles() as u16).map(BankId).collect();
        banks.sort_by_key(|&b| (self.mesh.hops(from, self.bank_coord(b)), b.0));
        banks
    }

    /// Round-trip core→bank→core latency in cycles, including the bank
    /// access itself.
    pub fn bank_access_latency(&self, c: CoreId, b: BankId, bank_cycles: u64) -> u64 {
        self.params.round_trip_latency(self.hops_core_bank(c, b)) + bank_cycles
    }

    /// Builds Jigsaw's size→latency model for a VC consumed from `center`:
    /// the average round-trip + bank latency when the VC's capacity occupies
    /// the nearest banks first, each bank contributing `granules_per_bank`
    /// granules (Sec. 2.4). Index 0 (an empty VC) reuses the nearest bank's
    /// latency — Whirlpool's bypass handling replaces it where allowed.
    pub fn nearest_latency_curve(
        &self,
        center: Coord,
        granules_per_bank: usize,
        bank_cycles: u64,
        max_granules: usize,
    ) -> Vec<f64> {
        assert!(granules_per_bank > 0);
        let banks = self.banks_by_distance_from(center);
        let mut out = Vec::with_capacity(max_granules + 1);
        let mut sum_latency = 0.0f64;
        let mut granules = 0usize;
        let lat = |b: BankId| {
            self.params
                .round_trip_latency(self.mesh.hops(center, self.bank_coord(b))) as f64
                + bank_cycles as f64
        };
        out.push(lat(banks[0]));
        'outer: for &b in &banks {
            let l = lat(b);
            for _ in 0..granules_per_bank {
                sum_latency += l;
                granules += 1;
                out.push(sum_latency / granules as f64);
                if granules >= max_granules {
                    break 'outer;
                }
            }
        }
        // Saturate if the chip ran out of banks.
        while out.len() <= max_granules {
            out.push(*out.last().expect("non-empty"));
        }
        out
    }
}

/// A [`wp_mrc::AccessLatencyModel`] backed by a floorplan's
/// nearest-banks-first latency curve.
#[derive(Debug, Clone)]
pub struct NearestBanksLatency {
    curve: Vec<f64>,
}

impl NearestBanksLatency {
    /// Builds the model for a VC consumed from `center`.
    pub fn new(
        plan: &Floorplan,
        center: Coord,
        granules_per_bank: usize,
        bank_cycles: u64,
        max_granules: usize,
    ) -> Self {
        Self {
            curve: plan.nearest_latency_curve(center, granules_per_bank, bank_cycles, max_granules),
        }
    }
}

impl wp_mrc::AccessLatencyModel for NearestBanksLatency {
    fn access_latency(&self, granules: usize) -> f64 {
        self.curve[granules.min(self.curve.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mrc::AccessLatencyModel;

    #[test]
    fn four_core_layout() {
        let p = Floorplan::four_core();
        assert_eq!(p.num_banks(), 25);
        assert_eq!(p.num_cores(), 4);
        assert_eq!(p.num_mcus(), 1);
        // Core 0 sits at the left edge; its nearest bank is its own tile.
        let nearest = p.banks_by_distance(CoreId(0))[0];
        assert_eq!(p.bank_coord(nearest), Coord::new(0, 2));
    }

    #[test]
    fn sixteen_core_layout() {
        let p = Floorplan::sixteen_core();
        assert_eq!(p.num_banks(), 81);
        assert_eq!(p.num_cores(), 16);
        assert_eq!(p.num_mcus(), 4);
        // All cores on the perimeter.
        for c in 0..16 {
            let cc = p.core_coord(CoreId(c));
            assert!(cc.x == 0 || cc.x == 8 || cc.y == 0 || cc.y == 8);
        }
    }

    #[test]
    fn banks_sorted_by_distance() {
        let p = Floorplan::four_core();
        for core in 0..4u16 {
            let banks = p.banks_by_distance(CoreId(core));
            assert_eq!(banks.len(), 25);
            let mut last = 0;
            for &b in banks {
                let h = p.hops_core_bank(CoreId(core), b);
                assert!(h >= last, "distance order violated");
                last = h;
            }
        }
    }

    #[test]
    fn latency_curve_is_non_decreasing() {
        let p = Floorplan::four_core();
        let curve = p.nearest_latency_curve(p.core_coord(CoreId(0)), 8, 9, 8 * 25 + 10);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "avg latency must grow with size");
        }
        // First point: nearest bank (own tile): round trip 2*3 + bank 9.
        assert!((curve[0] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn latency_model_adapter() {
        let p = Floorplan::four_core();
        let m = NearestBanksLatency::new(&p, p.core_coord(CoreId(0)), 8, 9, 200);
        assert!(m.access_latency(0) <= m.access_latency(100));
        assert!(m.access_latency(10_000) >= m.access_latency(200));
    }

    #[test]
    fn mcu_interleaving_covers_all() {
        let p = Floorplan::sixteen_core();
        let seen: std::collections::HashSet<u16> =
            (0..100u64).map(|a| p.mcu_of_line(a).0).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn nearest_mcu_is_deterministic() {
        let p = Floorplan::sixteen_core();
        let m1 = p.nearest_mcu(CoreId(0));
        let m2 = p.nearest_mcu(CoreId(0));
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn out_of_mesh_core_panics() {
        Floorplan::custom(
            Mesh::new(2, 2),
            vec![Coord::new(5, 0)],
            vec![Coord::new(0, 0)],
            NocParams::default(),
        );
    }
}
