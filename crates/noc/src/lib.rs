//! Mesh network-on-chip model for the Whirlpool reproduction.
//!
//! Models the paper's Table-3 NoC: an X-Y-routed mesh with 3-cycle pipelined
//! routers, 2-cycle links, and 128-bit flits, connecting cores, LLC banks,
//! and memory-controller units (MCUs). Two floorplans match the paper's
//! evaluated chips:
//!
//! * [`Floorplan::four_core`] — 5×5 banks (12.5 MB LLC) with 4 cores around
//!   the perimeter (Fig. 1, the Oracle M7-like chip).
//! * [`Floorplan::sixteen_core`] — 9×9 banks (40.5 MB) with 16 cores around
//!   the perimeter (Fig. 12).
//!
//! The crate answers the questions the rest of the system asks of the NoC:
//! hop counts between endpoints, round-trip access latencies, flit-hop
//! counts for energy accounting, and the distance-sorted bank lists that
//! drive Jigsaw's latency model and placement.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod floorplan;
mod mesh;

pub use floorplan::{BankId, CoreId, Floorplan, McuId, NearestBanksLatency};
pub use mesh::{Coord, Mesh};

/// NoC timing/sizing parameters (Table 3 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocParams {
    /// Pipelined router traversal, cycles per hop.
    pub router_cycles: u64,
    /// Link traversal, cycles per hop.
    pub link_cycles: u64,
    /// Flits in a data-bearing message (64 B line over 128-bit flits,
    /// plus one header flit).
    pub data_flits: u64,
    /// Flits in an address/control message.
    pub ctrl_flits: u64,
}

impl Default for NocParams {
    fn default() -> Self {
        Self {
            router_cycles: 3,
            link_cycles: 2,
            data_flits: 5,
            ctrl_flits: 1,
        }
    }
}

impl NocParams {
    /// One-way latency over `hops` hops (each hop = one router + one link),
    /// in cycles. Zero hops (core accessing its own tile) still pays one
    /// router traversal.
    pub fn one_way_latency(&self, hops: u64) -> u64 {
        if hops == 0 {
            self.router_cycles
        } else {
            hops * (self.router_cycles + self.link_cycles)
        }
    }

    /// Round-trip latency: request (control) out, response (data) back.
    pub fn round_trip_latency(&self, hops: u64) -> u64 {
        2 * self.one_way_latency(hops)
    }

    /// Flit-hops consumed by a request/response pair over `hops` hops —
    /// the quantity the energy model charges for.
    pub fn round_trip_flit_hops(&self, hops: u64) -> u64 {
        (self.ctrl_flits + self.data_flits) * hops.max(1)
    }

    /// Flit-hops for a one-way data transfer (e.g. a writeback).
    pub fn data_flit_hops(&self, hops: u64) -> u64 {
        self.data_flits * hops.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_hops() {
        let p = NocParams::default();
        assert_eq!(p.one_way_latency(1), 5);
        assert_eq!(p.one_way_latency(4), 20);
        assert_eq!(p.round_trip_latency(2), 20);
    }

    #[test]
    fn zero_hop_pays_router() {
        let p = NocParams::default();
        assert_eq!(p.one_way_latency(0), 3);
    }

    #[test]
    fn flit_hops_count_both_directions() {
        let p = NocParams::default();
        assert_eq!(p.round_trip_flit_hops(3), 6 * 3);
        assert_eq!(p.data_flit_hops(2), 10);
    }
}
