//! Mesh topology and X-Y routing distances.

/// A tile coordinate in the mesh (column `x`, row `y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A rectangular mesh of tiles with deterministic X-Y (dimension-ordered)
/// routing. Hop counts are Manhattan distances, which X-Y routing realizes
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh must be non-empty");
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether `c` is inside the mesh.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// X-Y routing hop count between two tiles (Manhattan distance).
    ///
    /// # Panics
    ///
    /// Panics (debug) if either coordinate is outside the mesh.
    pub fn hops(&self, a: Coord, b: Coord) -> u64 {
        debug_assert!(self.contains(a) && self.contains(b));
        let dx = (a.x as i32 - b.x as i32).unsigned_abs() as u64;
        let dy = (a.y as i32 - b.y as i32).unsigned_abs() as u64;
        dx + dy
    }

    /// The route taken by X-Y routing from `a` to `b`, as the list of tiles
    /// traversed (inclusive of both endpoints). Useful for link-utilization
    /// accounting and debugging.
    pub fn route(&self, a: Coord, b: Coord) -> Vec<Coord> {
        debug_assert!(self.contains(a) && self.contains(b));
        let mut path = vec![a];
        let mut cur = a;
        while cur.x != b.x {
            cur.x = if b.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != b.y {
            cur.y = if b.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// Iterates all tile coordinates in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.height).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Tile index of a coordinate (row-major).
    pub fn index_of(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c));
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Coordinate of a tile index (row-major).
    pub fn coord_of(&self, index: usize) -> Coord {
        debug_assert!(index < self.tiles());
        Coord::new(
            (index % self.width as usize) as u16,
            (index / self.width as usize) as u16,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::new(5, 5);
        assert_eq!(m.hops(Coord::new(0, 0), Coord::new(4, 4)), 8);
        assert_eq!(m.hops(Coord::new(2, 2), Coord::new(2, 2)), 0);
        assert_eq!(m.hops(Coord::new(1, 3), Coord::new(3, 1)), 4);
    }

    #[test]
    fn route_matches_hop_count() {
        let m = Mesh::new(9, 9);
        let a = Coord::new(1, 7);
        let b = Coord::new(6, 2);
        let r = m.route(a, b);
        assert_eq!(r.len() as u64, m.hops(a, b) + 1);
        assert_eq!(r[0], a);
        assert_eq!(*r.last().unwrap(), b);
        // X first, then Y.
        assert_eq!(r[1], Coord::new(2, 7));
    }

    #[test]
    fn index_roundtrip() {
        let m = Mesh::new(5, 3);
        for (i, c) in m.iter_coords().enumerate() {
            assert_eq!(m.index_of(c), i);
            assert_eq!(m.coord_of(i), c);
        }
        assert_eq!(m.tiles(), 15);
    }

    #[test]
    fn symmetry() {
        let m = Mesh::new(7, 7);
        let a = Coord::new(0, 6);
        let b = Coord::new(5, 1);
        assert_eq!(m.hops(a, b), m.hops(b, a));
    }
}
