//! Private per-core cache hierarchy (L1D + L2).
//!
//! Application models in this reproduction emit L2-filtered streams (see
//! [`crate::TraceEvent`]), so the private hierarchy is not on their access
//! path; it exists for raw-trace workloads, for tests, and as the building
//! block of IdealSPD's private L3.

use wp_cache::{AccessOutcome, LruPolicy, SetAssocCache};
use wp_mem::LineAddr;

use crate::config::SystemConfig;

/// Which level served a private-hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateLookup {
    /// L1 hit (latency folded into base CPI).
    L1Hit,
    /// L2 hit.
    L2Hit,
    /// Missed both: the access proceeds to the LLC scheme.
    LlcBound,
}

/// One core's private L1D + inclusive L2.
#[derive(Debug)]
pub struct PrivateHierarchy {
    l1: SetAssocCache<LruPolicy>,
    l2: SetAssocCache<LruPolicy>,
    l2_latency: u64,
}

impl PrivateHierarchy {
    /// Builds the hierarchy from the system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            l1: SetAssocCache::with_capacity_bytes(
                config.l1_bytes,
                config.l1_ways,
                LruPolicy::new(),
            ),
            l2: SetAssocCache::with_capacity_bytes(
                config.l2_bytes,
                config.l2_ways,
                LruPolicy::new(),
            ),
            l2_latency: config.l2_latency,
        }
    }

    /// Looks up `line`, filling on miss (L2 is inclusive of L1: an L2
    /// eviction back-invalidates L1).
    pub fn access(&mut self, line: LineAddr) -> PrivateLookup {
        if matches!(self.l1.access(line.0), AccessOutcome::Hit) {
            return PrivateLookup::L1Hit;
        }
        match self.l2.access(line.0) {
            AccessOutcome::Hit => PrivateLookup::L2Hit,
            AccessOutcome::Miss { evicted } => {
                if let Some(victim) = evicted {
                    // Inclusion: L1 cannot keep a line L2 lost.
                    self.l1.invalidate(victim);
                }
                PrivateLookup::LlcBound
            }
        }
    }

    /// L2 hit latency in cycles.
    pub fn l2_latency(&self) -> u64 {
        self.l2_latency
    }

    /// Invalidates a line from both levels (coherence, VC mode switches).
    pub fn invalidate(&mut self, line: LineAddr) {
        self.l1.invalidate(line.0);
        self.l2.invalidate(line.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> PrivateHierarchy {
        PrivateHierarchy::new(&SystemConfig::four_core())
    }

    #[test]
    fn first_touch_goes_to_llc() {
        let mut h = hierarchy();
        assert_eq!(h.access(LineAddr(1)), PrivateLookup::LlcBound);
        assert_eq!(h.access(LineAddr(1)), PrivateLookup::L1Hit);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = hierarchy();
        // Touch more lines than L1 holds (512) but fewer than L2 (2048).
        for i in 0..1024u64 {
            h.access(LineAddr(i));
        }
        // Line 0 fell out of L1 but should still be in L2.
        let r = h.access(LineAddr(0));
        assert!(
            matches!(r, PrivateLookup::L2Hit | PrivateLookup::L1Hit),
            "expected L2 hit, got {r:?}"
        );
    }

    #[test]
    fn inclusion_is_maintained() {
        let mut h = hierarchy();
        // Blow out L2 entirely; early lines must be gone from L1 too.
        for i in 0..10_000u64 {
            h.access(LineAddr(i));
        }
        assert_eq!(h.access(LineAddr(0)), PrivateLookup::LlcBound);
    }

    #[test]
    fn invalidate_removes_from_both() {
        let mut h = hierarchy();
        h.access(LineAddr(42));
        h.invalidate(LineAddr(42));
        assert_eq!(h.access(LineAddr(42)), PrivateLookup::LlcBound);
    }
}
