//! The pluggable LLC interface and workload types.

use wp_mem::{LineAddr, PageId, PoolId};
use wp_noc::CoreId;
use wp_trace::EventBatch;

use crate::uncore::Uncore;

/// One event of a workload's LLC-bound access stream.
///
/// The reproduction's application models emit *L2-filtered* streams: each
/// event is an access that missed the private caches, with `gap_instrs`
/// instructions retired since the previous event. This matches the paper's
/// level of abstraction (per-pool APKI at the LLC) and the >5 L2 MPKI
/// selection criterion of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Instructions executed since the previous event.
    pub gap_instrs: u32,
    /// The line accessed.
    pub line: LineAddr,
    /// Whether the access is a write.
    pub is_write: bool,
}

/// A workload: an infinite (or finite) LLC-bound access stream.
///
/// Workloads are `Send` so a whole simulation — bundle, scheme, driver —
/// can be handed to a worker thread; the parallel sweep runner fans
/// (scheme × app) cells across a thread pool on this guarantee.
pub trait Workload: Send {
    /// The next event, or `None` when the workload has finished.
    fn next_event(&mut self) -> Option<TraceEvent>;

    /// Appends up to `max` events to `batch`, returning how many were
    /// produced. Fewer than `max` (including zero) means the workload has
    /// finished — exactly the condition under which
    /// [`next_event`](Workload::next_event) would have returned `None`
    /// within the next `max` pulls.
    ///
    /// The default pulls through `next_event`, so every workload is
    /// batchable; sources with a cheaper bulk path
    /// ([`TraceWorkload`](crate::TraceWorkload)) override it. A workload
    /// must be driven through one interface or the other for the whole
    /// run, not a mix — both consume the same underlying stream.
    fn fill_batch(&mut self, batch: &mut EventBatch, max: usize) -> usize {
        let start = batch.len();
        while batch.len() - start < max {
            match self.next_event() {
                Some(ev) => batch.push(ev.gap_instrs, ev.line, ev.is_write),
                None => break,
            }
        }
        batch.len() - start
    }
}

impl<F: FnMut() -> Option<TraceEvent> + Send> Workload for F {
    fn next_event(&mut self) -> Option<TraceEvent> {
        self()
    }
}

/// Static description of one memory pool of a workload, for schemes that
/// consume classification (Whirlpool) and for reporting.
#[derive(Debug, Clone)]
pub struct PoolDescriptor {
    /// Human-readable name ("points", "vertices", …).
    pub name: String,
    /// Allocator pool id, if the data was pool-allocated.
    pub pool: Option<PoolId>,
    /// Pages belonging to the pool.
    pub pages: Vec<PageId>,
    /// Footprint in bytes.
    pub bytes: u64,
}

/// A workload plus its static classification, as handed to the simulator.
pub struct WorkloadBundle {
    /// The access stream.
    pub trace: Box<dyn Workload>,
    /// The workload's memory pools. Schemes that ignore classification
    /// (everything except Whirlpool) simply disregard these.
    pub pools: Vec<PoolDescriptor>,
    /// Workload name for reports.
    pub name: String,
}

impl std::fmt::Debug for WorkloadBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadBundle")
            .field("name", &self.name)
            .field("pools", &self.pools.len())
            .finish()
    }
}

/// Where an LLC access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOutcome {
    /// Served by an LLC bank.
    Hit,
    /// Missed; served by memory through a bank.
    Miss,
    /// Never looked up the LLC: went straight to memory (bypass VC).
    Bypass,
}

/// The scheme's answer to one access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcResponse {
    /// Cycles of data stall this access contributes (beyond the private
    /// caches).
    pub latency: f64,
    /// How it was served.
    pub outcome: LlcOutcome,
}

/// The per-event clock protocol of a batched quantum.
///
/// The driver's per-event loop advances the core clock and the uncore's
/// notion of "now" around every scheme access:
///
/// ```text
/// cycles += gap · base_cpi;  now = max(now, cycles as u64);   // pre
/// resp = scheme.access(...);
/// cycles += resp.latency / mlp;                               // post
/// ```
///
/// Event *i+1*'s memory queueing depends on event *i*'s latency through
/// `now`, so a batched scheme cannot reorder accesses — what it gains from
/// the batch is *lookahead* (prefetching tag arrays for upcoming lines),
/// not reordering. `BatchClock` packages the exact f64 arithmetic above so
/// every [`LlcScheme::access_batch`] implementation replays it
/// bit-identically; the driver then replays the same sequence once more
/// when it folds latencies into per-core statistics.
#[derive(Debug, Clone, Copy)]
pub struct BatchClock {
    /// The executing core's local clock, in cycles.
    pub cycles: f64,
    base_cpi: f64,
    mlp: f64,
    core_idx: usize,
}

impl BatchClock {
    /// Starts a quantum clock at `cycles` for core `core_idx`.
    pub fn new(cycles: f64, base_cpi: f64, mlp: f64, core_idx: usize) -> Self {
        Self {
            cycles,
            base_cpi,
            mlp,
            core_idx,
        }
    }

    /// Advances past the instruction gap before an access and publishes
    /// the core's clock to the uncore — must precede the scheme access.
    #[inline]
    pub fn pre_access(&mut self, gap_instrs: u32, uncore: &mut Uncore) {
        self.cycles += f64::from(gap_instrs) * self.base_cpi;
        uncore.interval_instructions[self.core_idx] += u64::from(gap_instrs);
        uncore.now = uncore.now.max(self.cycles as u64);
    }

    /// Charges an access's stall to the clock — must follow the scheme
    /// access, before the next event's `pre_access`.
    #[inline]
    pub fn post_access(&mut self, latency: f64) {
        self.cycles += latency / self.mlp;
    }
}

/// A last-level cache management scheme.
///
/// Implementations receive every LLC-bound access, charge latency/energy
/// through the [`Uncore`] helpers (so accounting is identical across
/// schemes), and may reorganize themselves at reconfiguration boundaries.
///
/// Like [`Workload`], schemes are `Send`: every evaluated scheme is plain
/// data, and the parallel sweep runner runs one simulator per worker
/// thread.
pub trait LlcScheme: Send {
    /// Scheme name for reports ("S-NUCA (LRU)", "Jigsaw", "Whirlpool", …).
    fn name(&self) -> String;

    /// Called once per core before simulation with the core's workload
    /// classification. Schemes that use static information (Whirlpool)
    /// build per-pool VCs here; others ignore it.
    fn attach_core(&mut self, core: CoreId, pools: &[PoolDescriptor]);

    /// Serves one LLC-bound access.
    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse;

    /// Serves one quantum of accesses from `core`, pushing one response
    /// per event onto `out`.
    ///
    /// Must be observably identical to calling [`access`](Self::access)
    /// per event under the [`BatchClock`] protocol — same responses, same
    /// uncore/energy mutations, same internal state. The default does
    /// exactly that. Overrides exist purely for speed: with the whole
    /// batch visible, a scheme can software-prefetch the tag/replacement
    /// arrays of *upcoming* events' banks while serving the current one,
    /// which per-event virtual dispatch can never do.
    fn access_batch(
        &mut self,
        core: CoreId,
        batch: &EventBatch,
        clock: &mut BatchClock,
        uncore: &mut Uncore,
        out: &mut Vec<LlcResponse>,
    ) {
        for i in 0..batch.len() {
            clock.pre_access(batch.gaps[i], uncore);
            let resp = self.access(
                AccessContext {
                    core,
                    line: batch.lines[i],
                    is_write: batch.writes[i],
                },
                uncore,
            );
            clock.post_access(resp.latency);
            out.push(resp);
        }
    }

    /// Called at every reconfiguration interval (25 ms in the paper).
    /// Dynamic schemes re-size/re-place here; static ones do nothing.
    fn reconfigure(&mut self, uncore: &mut Uncore);

    /// Optional: per-bank occupancy fractions by logical owner, for the
    /// placement maps of Figs. 3–5. Keyed by `(bank index, owner label,
    /// fraction of bank)`. Default: unknown.
    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        Vec::new()
    }

    /// Optional: a read-only snapshot of every pool/VC's current
    /// allocation and cumulative demand, for the driver's occupancy
    /// timeline probe ([`SimConfig::observe`](crate::SimConfig::observe)).
    /// Pool-less schemes report nothing.
    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        Vec::new()
    }

    /// Optional: the log of runtime reallocations performed so far —
    /// one [`wp_obs::ReconfigEvent`] per [`reconfigure`](Self::reconfigure)
    /// for dynamic schemes, empty for static ones.
    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        Vec::new()
    }
}

impl LlcScheme for Box<dyn LlcScheme> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn attach_core(&mut self, core: CoreId, pools: &[PoolDescriptor]) {
        self.as_mut().attach_core(core, pools);
    }

    fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
        self.as_mut().access(ctx, uncore)
    }

    fn access_batch(
        &mut self,
        core: CoreId,
        batch: &EventBatch,
        clock: &mut BatchClock,
        uncore: &mut Uncore,
        out: &mut Vec<LlcResponse>,
    ) {
        // Forward explicitly so a concrete scheme's override still fires
        // through the usual `Box<dyn LlcScheme>` the harness hands around.
        self.as_mut().access_batch(core, batch, clock, uncore, out);
    }

    fn reconfigure(&mut self, uncore: &mut Uncore) {
        self.as_mut().reconfigure(uncore);
    }

    fn bank_occupancy(&self) -> Vec<(usize, String, f64)> {
        self.as_ref().bank_occupancy()
    }

    fn pool_occupancy(&self) -> Vec<wp_obs::PoolOcc> {
        self.as_ref().pool_occupancy()
    }

    fn reconfig_log(&self) -> Vec<wp_obs::ReconfigEvent> {
        self.as_ref().reconfig_log()
    }
}

/// Context for one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessContext {
    /// The requesting core.
    pub core: CoreId,
    /// The line accessed.
    pub line: LineAddr,
    /// Whether the access is a write.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_workload() {
        let mut n = 0u64;
        let mut w = move || {
            n += 1;
            if n <= 2 {
                Some(TraceEvent {
                    gap_instrs: 10,
                    line: LineAddr(n),
                    is_write: false,
                })
            } else {
                None
            }
        };
        assert!(w.next_event().is_some());
        assert!(w.next_event().is_some());
        assert!(w.next_event().is_none());
    }

    #[test]
    fn simulation_stack_is_send() {
        // Compile-time guarantee the sweep runner relies on: bundles,
        // boxed schemes, and whole simulators cross thread boundaries.
        fn assert_send<T: Send>() {}
        assert_send::<WorkloadBundle>();
        assert_send::<Box<dyn Workload>>();
        assert_send::<Box<dyn LlcScheme>>();
        assert_send::<crate::MultiCoreSim<Box<dyn LlcScheme>>>();
        assert_send::<crate::RunSummary>();
    }

    #[test]
    fn bundle_debug_is_compact() {
        let b = WorkloadBundle {
            trace: Box::new(|| None),
            pools: vec![],
            name: "dt".into(),
        };
        let s = format!("{b:?}");
        assert!(s.contains("dt"));
    }
}
