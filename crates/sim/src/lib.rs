//! The NUCA multicore simulator substrate.
//!
//! This crate stands in for the paper's zsim testbed (Appendix A, Table 3):
//! a model-driven simulator of 4- or 16-core chips with private L1/L2
//! caches, a distributed NUCA LLC reached over a mesh NoC, and one or more
//! memory controllers. It deliberately adopts the paper's own additive
//! latency model (Sec. 2.4 footnote 1): core cycles = instructions ×
//! base CPI + data-stall cycles, where each LLC/memory access contributes
//! its round-trip latency.
//!
//! The LLC itself is pluggable through the [`LlcScheme`] trait — S-NUCA,
//! IdealSPD, Awasthi (in `wp-baselines`), Jigsaw (`wp-jigsaw`) and Whirlpool
//! (`whirlpool`) all implement it — so every scheme runs on an identical
//! substrate with identical energy accounting, as in the paper's
//! methodology.
//!
//! Energy is *data-movement (uncore) energy*: NoC flit-hops, LLC bank
//! accesses, and DRAM accesses ([`EnergyMeter`]), the three components the
//! paper's figures break out.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod driver;
mod energy;
mod hierarchy;
mod memory;
mod replay;
mod scheme;
mod stats;
mod uncore;

pub use config::SystemConfig;
pub use driver::{CoreRunner, ExecMode, MultiCoreSim, RunSummary, SimConfig};
pub use energy::{EnergyBreakdown, EnergyMeter, EnergyParams};
pub use hierarchy::{PrivateHierarchy, PrivateLookup};
pub use memory::MemoryChannels;
pub use replay::{trace_bundle, trace_pools, TraceWorkload};
pub use scheme::{
    AccessContext, BatchClock, LlcOutcome, LlcResponse, LlcScheme, PoolDescriptor, TraceEvent,
    Workload, WorkloadBundle,
};
// The batch type workloads and schemes exchange, re-exported so scheme
// crates need not name `wp-trace` directly.
pub use stats::{json_string, CoreStats};
pub use uncore::Uncore;
pub use wp_trace::EventBatch;
