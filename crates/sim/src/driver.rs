//! The simulation driver: interleaves per-core workloads over a shared
//! uncore and a pluggable LLC scheme.
//!
//! Multi-program runs follow the paper's fixed-work methodology
//! (Appendix A): all workloads run until every one of them has retired its
//! instruction target; statistics only count each workload's first `N`
//! instructions, but finished workloads keep executing (wrapping their
//! traces) so late finishers still see contention.

use std::path::PathBuf;

use wp_noc::CoreId;
use wp_trace::{EventBatch, TraceError, TraceWriter};

use crate::config::SystemConfig;
use crate::scheme::{
    AccessContext, BatchClock, LlcOutcome, LlcResponse, LlcScheme, Workload, WorkloadBundle,
};
use crate::stats::CoreStats;
use crate::uncore::Uncore;
use crate::EnergyBreakdown;

/// Events processed per scheduling quantum (per core, before the driver
/// re-picks the laggard core).
const QUANTUM_EVENTS: usize = 256;

/// How the driver moves events from workloads into the scheme.
///
/// Both modes produce bit-identical [`RunSummary`]s (and bit-identical
/// captures): the scheduling quanta, the per-event clock arithmetic, and
/// the access sequence the scheme observes are the same. `Batched` pulls
/// each quantum as one [`EventBatch`] slice instead of 256 virtual calls,
/// which lets trace replay decode chunks in bulk (zero-copy from an mmap,
/// on a lookahead thread) and lets schemes prefetch ahead — the warm-sweep
/// throughput path. `PerEvent` remains as the reference implementation and
/// regression baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One `next_event` virtual call per event (reference path).
    PerEvent,
    /// Quantum-sized event slices through `fill_batch`/`access_batch`.
    #[default]
    Batched,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecMode::PerEvent => "per-event",
            ExecMode::Batched => "batched",
        })
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-event" | "perevent" | "event" => Ok(ExecMode::PerEvent),
            "batched" | "batch" => Ok(ExecMode::Batched),
            other => Err(format!(
                "unknown exec mode '{other}' (expected 'per-event' or 'batched')"
            )),
        }
    }
}

/// Run-level configuration: the simulated system plus driver options that
/// are not part of the modelled hardware.
///
/// The only such option today is trace capture: with `capture_to` set,
/// every event the driver pulls from every attached workload — warmup
/// included — is recorded to a `.wpt` file (one stream per core, with the
/// core's pool descriptors in the stream header), so the run can later be
/// replayed bit-identically through any scheme via
/// [`TraceWorkload`](crate::TraceWorkload).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulated system (Table 3 parameters, floorplan, energy).
    pub system: SystemConfig,
    /// Record every pulled event to this `.wpt` file.
    pub capture_to: Option<PathBuf>,
    /// How events are moved from workloads into the scheme.
    pub exec: ExecMode,
    /// Observability probes: with this set, the driver samples every
    /// pool's occupancy and demand each
    /// [`sample_every`](wp_obs::ObsConfig::sample_every) events (read
    /// back via [`MultiCoreSim::take_timeline`]). Sampling is read-only —
    /// results stay bit-identical with or without it.
    pub obs: Option<wp_obs::ObsConfig>,
}

impl SimConfig {
    /// A plain run of `system` with no capture and no probes.
    pub fn new(system: SystemConfig) -> Self {
        Self {
            system,
            capture_to: None,
            exec: ExecMode::default(),
            obs: None,
        }
    }

    /// Captures the run's full event stream to `path`.
    #[must_use]
    pub fn capture_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.capture_to = Some(path.into());
        self
    }

    /// Selects the event delivery path (see [`ExecMode`]).
    #[must_use]
    pub fn exec_mode(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Enables the pool-occupancy timeline probe.
    #[must_use]
    pub fn observe(mut self, obs: wp_obs::ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }
}

impl From<SystemConfig> for SimConfig {
    fn from(system: SystemConfig) -> Self {
        Self::new(system)
    }
}

/// Capture state: the open writer plus each core's stream id.
struct Capture {
    writer: TraceWriter<std::io::BufWriter<std::fs::File>>,
    streams: Vec<Option<u16>>,
    /// First write error, surfaced by [`MultiCoreSim::finish_capture`];
    /// recording stops once set so one bad disk doesn't spam.
    error: Option<TraceError>,
}

impl Capture {
    fn record(&mut self, core: usize, ev: &crate::scheme::TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let Some(stream) = self.streams[core] else {
            return;
        };
        if let Err(e) = self
            .writer
            .record(stream, ev.gap_instrs, ev.line, ev.is_write)
        {
            self.error = Some(e);
        }
    }
}

/// One core's execution state.
pub struct CoreRunner {
    trace: Box<dyn Workload>,
    stats: CoreStats,
    /// Measurement baseline (snapshot at the end of warmup).
    baseline: CoreStats,
    /// Stats frozen at the fixed-work boundary (delta vs baseline).
    counted: Option<CoreStats>,
    active: bool,
}

impl std::fmt::Debug for CoreRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreRunner")
            .field("active", &self.active)
            .field("instructions", &self.stats.instructions)
            .finish()
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scheme name.
    pub scheme: String,
    /// Per-core statistics (fixed-work window for multi-program runs).
    pub cores: Vec<CoreStats>,
    /// Uncore energy over the whole run.
    pub energy: EnergyBreakdown,
    /// Final global time in cycles.
    pub cycles: u64,
}

impl RunSummary {
    /// Sum of per-core instruction counts.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Uncore energy per kilo-instruction (nJ/KI) — the normalized
    /// data-movement energy the paper's bar charts compare.
    pub fn energy_per_ki(&self) -> f64 {
        let ki = self.total_instructions() as f64 / 1000.0;
        if ki == 0.0 {
            0.0
        } else {
            self.energy.total_nj() / ki
        }
    }
}

/// The pool-occupancy sampling probe (active only with
/// [`SimConfig::observe`]).
struct TimelineProbe {
    /// Sample once per this many processed events.
    sample_every: u64,
    /// Event count at (or past) which the next sample fires.
    next_at: u64,
    samples: Vec<wp_obs::PoolSample>,
}

/// The multicore simulator: cores + uncore + one LLC scheme.
pub struct MultiCoreSim<S: LlcScheme> {
    uncore: Uncore,
    scheme: S,
    runners: Vec<Option<CoreRunner>>,
    last_reconfig: u64,
    capture: Option<Capture>,
    exec: ExecMode,
    obs: Option<TimelineProbe>,
    /// Quantum scratch for the batched path, reused across quanta so the
    /// steady state allocates nothing.
    batch: EventBatch,
    responses: Vec<LlcResponse>,
}

impl<S: LlcScheme> std::fmt::Debug for MultiCoreSim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSim")
            .field("scheme", &self.scheme.name())
            .finish()
    }
}

impl<S: LlcScheme> MultiCoreSim<S> {
    /// Creates a simulator for `config` managed by `scheme`.
    pub fn new(config: SystemConfig, scheme: S) -> Self {
        let cores = config.floorplan.num_cores();
        Self {
            uncore: Uncore::new(config),
            scheme,
            runners: (0..cores).map(|_| None).collect(),
            last_reconfig: 0,
            capture: None,
            exec: ExecMode::default(),
            obs: None,
            batch: EventBatch::with_capacity(QUANTUM_EVENTS),
            responses: Vec::with_capacity(QUANTUM_EVENTS),
        }
    }

    /// Creates a simulator from a full [`SimConfig`], opening the capture
    /// file if one is configured. Errors only on capture-file creation.
    pub fn with_config(config: SimConfig, scheme: S) -> Result<Self, TraceError> {
        let mut sim = Self::new(config.system, scheme);
        sim.exec = config.exec;
        if let Some(obs) = &config.obs {
            let every = obs.sample_every.max(1);
            sim.obs = Some(TimelineProbe {
                sample_every: every,
                next_at: every,
                samples: Vec::new(),
            });
        }
        if let Some(path) = &config.capture_to {
            let cores = sim.runners.len();
            sim.capture = Some(Capture {
                writer: TraceWriter::create(path)?,
                streams: vec![None; cores],
                error: None,
            });
        }
        Ok(sim)
    }

    /// Finalizes the capture file (flushes chunks, writes the `End`
    /// block) and surfaces any write error hit mid-run. Returns `true`
    /// if a capture was active. Without this the file lacks its `End`
    /// block and readers report it truncated (`Drop` still makes a
    /// best-effort attempt).
    pub fn finish_capture(&mut self) -> Result<bool, TraceError> {
        let Some(mut cap) = self.capture.take() else {
            return Ok(false);
        };
        if let Some(e) = cap.error.take() {
            return Err(e);
        }
        cap.writer.finish()?;
        Ok(true)
    }

    /// Attaches a workload to a core, registering its pools with the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range or already occupied.
    pub fn attach(&mut self, core: CoreId, bundle: WorkloadBundle) {
        let slot = &mut self.runners[core.0 as usize];
        assert!(slot.is_none(), "core {core:?} already has a workload");
        self.scheme.attach_core(core, &bundle.pools);
        if let Some(cap) = &mut self.capture {
            let pools = crate::replay::pool_metas_of(&bundle.pools);
            match cap.writer.add_stream(&bundle.name, &pools) {
                Ok(id) => cap.streams[core.0 as usize] = Some(id),
                Err(e) => cap.error = Some(e),
            }
        }
        let slot = &mut self.runners[core.0 as usize];
        *slot = Some(CoreRunner {
            trace: bundle.trace,
            stats: CoreStats::default(),
            baseline: CoreStats::default(),
            counted: None,
            active: true,
        });
    }

    /// Selects the event delivery path for subsequent `run` calls.
    pub fn set_exec_mode(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// The current event delivery path.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Immutable access to the scheme (for occupancy maps etc.).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Mutable access to the scheme (for tests and phase injection).
    pub fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }

    /// Consumes the simulator, returning the scheme with its end-of-run
    /// state — occupancy maps, reconfiguration histories — for post-run
    /// introspection. Call [`finish_capture`](Self::finish_capture)
    /// first if a capture is active.
    pub fn into_scheme(self) -> S {
        self.scheme
    }

    /// The uncore (energy, time).
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// Runs `warmup_instructions` per core without counting (the paper's
    /// fast-forward: caches and monitors warm, statistics reset), then
    /// measures `target_instructions` per core.
    ///
    /// A *finite* workload (e.g. a replayed trace) that runs dry during
    /// warmup keeps its warmup-window statistics as its counted result —
    /// it executed, just not past the fast-forward boundary. When
    /// replaying a capture, use warmup/measure budgets no larger than the
    /// recording's so the measurement window lands inside the trace.
    pub fn run_with_warmup(
        &mut self,
        warmup_instructions: u64,
        target_instructions: u64,
    ) -> RunSummary {
        if warmup_instructions > 0 {
            let _span = wp_obs::span(wp_obs::Phase::Warmup);
            self.run(warmup_instructions);
            for r in self.runners.iter_mut().flatten() {
                if r.active {
                    r.baseline = r.stats;
                    r.counted = None;
                }
            }
            self.uncore.reset_energy();
        }
        let _span = wp_obs::span(wp_obs::Phase::Measure);
        self.run(target_instructions)
    }

    /// Runs every attached workload for `target_instructions` (fixed-work).
    /// Returns the per-core summaries.
    pub fn run(&mut self, target_instructions: u64) -> RunSummary {
        loop {
            // Pick the attached, active core with the smallest cycle count
            // that has not yet been counted out — the laggard.
            let mut pick: Option<usize> = None;
            for (i, r) in self.runners.iter().enumerate() {
                if let Some(r) = r {
                    if r.active && r.counted.is_none() {
                        let better = match pick {
                            None => true,
                            Some(j) => {
                                let rj = self.runners[j].as_ref().expect("picked exists");
                                r.stats.cycles < rj.stats.cycles
                            }
                        };
                        if better {
                            pick = Some(i);
                        }
                    }
                }
            }
            let Some(core_idx) = pick else { break };
            self.step_core(core_idx, target_instructions);
            // Fixed-work: cores past their target keep running (their
            // stats are frozen) so laggards still see contention.
            let laggard_cycles = self.runners[core_idx]
                .as_ref()
                .map(|r| r.stats.cycles)
                .unwrap_or(0.0);
            for i in 0..self.runners.len() {
                if i == core_idx {
                    continue;
                }
                let needs_catchup = self.runners[i].as_ref().is_some_and(|r| {
                    r.active && r.counted.is_some() && r.stats.cycles < laggard_cycles
                });
                if needs_catchup {
                    self.step_core(i, target_instructions);
                }
            }
            self.maybe_reconfigure();
            if self.obs.is_some() {
                self.maybe_sample();
            }
        }
        self.summary()
    }

    /// Takes a pool-occupancy sample when the processed-event count has
    /// crossed the probe's next threshold. Pure observation: it reads
    /// scheme state and per-core counters, mutating nothing the
    /// simulation depends on.
    fn maybe_sample(&mut self) {
        let events: u64 = self
            .runners
            .iter()
            .flatten()
            .map(|r| r.stats.llc_accesses + r.stats.llc_bypasses)
            .sum();
        {
            let probe = self.obs.as_ref().expect("probe checked by caller");
            if events < probe.next_at {
                return;
            }
        }
        let cycle = self.global_cycle();
        let probe = self.obs.as_mut().expect("probe exists");
        // One sample per crossing, however many thresholds a quantum
        // jumped (a quantum is 256 events; sample_every is usually much
        // larger).
        probe.next_at = events - (events % probe.sample_every) + probe.sample_every;
        let occs = self.scheme.pool_occupancy();
        wp_obs::add(wp_obs::Counter::PoolSamplesTaken, occs.len() as u64);
        let probe = self.obs.as_mut().expect("probe exists");
        for occ in occs {
            probe.samples.push(wp_obs::PoolSample {
                cycle,
                event: events,
                occ,
            });
        }
    }

    /// Global time: the laggard's clock (monotone, never outruns work).
    fn global_cycle(&self) -> u64 {
        self.runners
            .iter()
            .flatten()
            .filter(|r| r.active && r.counted.is_none())
            .map(|r| r.stats.cycles as u64)
            .min()
            .unwrap_or(self.uncore.now)
    }

    /// Drains the pool-occupancy timeline collected so far (empty unless
    /// the simulator was built with [`SimConfig::observe`]).
    pub fn take_timeline(&mut self) -> Vec<wp_obs::PoolSample> {
        self.obs
            .as_mut()
            .map(|p| std::mem::take(&mut p.samples))
            .unwrap_or_default()
    }

    fn step_core(&mut self, core_idx: usize, target: u64) {
        match self.exec {
            ExecMode::PerEvent => self.step_core_events(core_idx, target),
            ExecMode::Batched => self.step_core_batched(core_idx, target),
        }
    }

    /// One quantum through the batched path. Bit-identical to
    /// [`step_core_events`](Self::step_core_events): the batch is filled in
    /// pull order (capture sees the same stream), the scheme replays the
    /// per-event clock protocol via [`BatchClock`], and the stats fold
    /// below repeats the identical f64 sequence per event.
    fn step_core_batched(&mut self, core_idx: usize, target: u64) {
        let core = CoreId(core_idx as u16);
        let config = self.uncore.config().clone();
        let mut batch = std::mem::take(&mut self.batch);
        let mut responses = std::mem::take(&mut self.responses);
        batch.clear();
        responses.clear();

        let runner = self.runners[core_idx].as_mut().expect("runner exists");
        let n = runner.trace.fill_batch(&mut batch, QUANTUM_EVENTS);
        debug_assert_eq!(n, batch.len());
        if let Some(cap) = &mut self.capture {
            for i in 0..n {
                cap.record(
                    core_idx,
                    &crate::scheme::TraceEvent {
                        gap_instrs: batch.gaps[i],
                        line: batch.lines[i],
                        is_write: batch.writes[i],
                    },
                );
            }
        }

        let runner = self.runners[core_idx].as_mut().expect("runner exists");
        let mut clock = BatchClock::new(runner.stats.cycles, config.base_cpi, config.mlp, core_idx);
        self.scheme
            .access_batch(core, &batch, &mut clock, &mut self.uncore, &mut responses);
        debug_assert_eq!(responses.len(), n, "one response per event");

        let runner = self.runners[core_idx].as_mut().expect("runner exists");
        for (i, resp) in responses.iter().enumerate() {
            runner.stats.instructions += batch.gaps[i] as u64;
            runner.stats.cycles += batch.gaps[i] as f64 * config.base_cpi;
            let stall = resp.latency / config.mlp;
            runner.stats.cycles += stall;
            runner.stats.stall_cycles += stall;
            runner.stats.llc_accesses += 1;
            match resp.outcome {
                LlcOutcome::Hit => runner.stats.llc_hits += 1,
                LlcOutcome::Miss => runner.stats.llc_misses += 1,
                LlcOutcome::Bypass => {
                    runner.stats.llc_bypasses += 1;
                    runner.stats.llc_accesses -= 1;
                }
            }
            let measured = runner.stats.instructions - runner.baseline.instructions;
            if runner.counted.is_none() && measured >= target {
                runner.counted = Some(runner.stats.delta(&runner.baseline));
            }
        }
        debug_assert_eq!(
            runner.stats.cycles.to_bits(),
            clock.cycles.to_bits(),
            "stats fold must replay the batch clock exactly"
        );
        // A short fill is the batched form of `next_event() == None`.
        if n < QUANTUM_EVENTS {
            runner.active = false;
            if runner.counted.is_none() {
                runner.counted = Some(runner.stats.delta(&runner.baseline));
            }
        }

        self.batch = batch;
        self.responses = responses;
    }

    fn step_core_events(&mut self, core_idx: usize, target: u64) {
        let core = CoreId(core_idx as u16);
        let config = self.uncore.config().clone();
        for _ in 0..QUANTUM_EVENTS {
            let runner = self.runners[core_idx].as_mut().expect("runner exists");
            let Some(ev) = runner.trace.next_event() else {
                runner.active = false;
                if runner.counted.is_none() {
                    runner.counted = Some(runner.stats.delta(&runner.baseline));
                }
                return;
            };
            if let Some(cap) = &mut self.capture {
                cap.record(core_idx, &ev);
            }
            let runner = self.runners[core_idx].as_mut().expect("runner exists");
            runner.stats.instructions += ev.gap_instrs as u64;
            runner.stats.cycles += ev.gap_instrs as f64 * config.base_cpi;
            self.uncore.interval_instructions[core_idx] += ev.gap_instrs as u64;
            // The event stream is L2-filtered: go straight to the scheme.
            let ctx = AccessContext {
                core,
                line: ev.line,
                is_write: ev.is_write,
            };
            // Time for memory queueing: the requesting core's local clock.
            let runner_cycles = runner.stats.cycles as u64;
            self.uncore.now = self.uncore.now.max(runner_cycles);
            let resp = self.scheme.access(ctx, &mut self.uncore);
            let runner = self.runners[core_idx].as_mut().expect("runner exists");
            let stall = resp.latency / config.mlp;
            runner.stats.cycles += stall;
            runner.stats.stall_cycles += stall;
            runner.stats.llc_accesses += 1;
            match resp.outcome {
                LlcOutcome::Hit => runner.stats.llc_hits += 1,
                LlcOutcome::Miss => runner.stats.llc_misses += 1,
                LlcOutcome::Bypass => {
                    runner.stats.llc_bypasses += 1;
                    // A bypass never performed an LLC access.
                    runner.stats.llc_accesses -= 1;
                }
            }
            let measured = runner.stats.instructions - runner.baseline.instructions;
            if runner.counted.is_none() && measured >= target {
                runner.counted = Some(runner.stats.delta(&runner.baseline));
            }
        }
    }

    fn maybe_reconfigure(&mut self) {
        let interval = self.uncore.config().reconfig_interval_cycles;
        let global = self.global_cycle();
        if global >= self.last_reconfig + interval {
            self.last_reconfig = global;
            self.uncore.now = self.uncore.now.max(global);
            self.scheme.reconfigure(&mut self.uncore);
            wp_obs::add(wp_obs::Counter::Reconfigurations, 1);
            for n in &mut self.uncore.interval_instructions {
                *n = 0;
            }
        }
    }

    fn summary(&self) -> RunSummary {
        let cores = self
            .runners
            .iter()
            .map(|r| match r {
                Some(r) => r.counted.unwrap_or_else(|| r.stats.delta(&r.baseline)),
                None => CoreStats::default(),
            })
            .collect();
        RunSummary {
            scheme: self.scheme.name(),
            cores,
            energy: self.uncore.energy(),
            cycles: self.uncore.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{LlcResponse, PoolDescriptor, TraceEvent};
    use wp_mem::LineAddr;

    /// A trivial scheme: everything hits in the core's nearest bank.
    #[derive(Debug, Default)]
    struct NearestHit {
        reconfigs: usize,
    }

    impl LlcScheme for NearestHit {
        fn name(&self) -> String {
            "nearest-hit".into()
        }

        fn attach_core(&mut self, _core: CoreId, _pools: &[PoolDescriptor]) {}

        fn access(&mut self, ctx: AccessContext, uncore: &mut Uncore) -> LlcResponse {
            let bank = uncore.plan().banks_by_distance(ctx.core)[0];
            let latency = uncore.bank_hit(ctx.core, bank);
            LlcResponse {
                latency,
                outcome: LlcOutcome::Hit,
            }
        }

        fn reconfigure(&mut self, _uncore: &mut Uncore) {
            self.reconfigs += 1;
        }
    }

    fn stream(n: u64) -> WorkloadBundle {
        let mut i = 0u64;
        WorkloadBundle {
            trace: Box::new(move || {
                if i < n {
                    i += 1;
                    Some(TraceEvent {
                        gap_instrs: 100,
                        line: LineAddr(i),
                        is_write: false,
                    })
                } else {
                    None
                }
            }),
            pools: vec![],
            name: "stream".into(),
        }
    }

    #[test]
    fn single_core_run_counts_instructions() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        sim.attach(CoreId(0), stream(1000));
        let out = sim.run(50_000);
        assert_eq!(out.cores[0].instructions, 50_000);
        assert_eq!(out.cores[0].llc_accesses, 500);
        assert_eq!(out.cores[0].llc_hits, 500);
        assert!(out.cores[0].cycles > 50_000.0); // base CPI + stalls
        assert!(out.energy.bank_nj > 0.0);
    }

    #[test]
    fn fixed_work_freezes_stats_at_target() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        sim.attach(CoreId(0), stream(10_000));
        let out = sim.run(10_000);
        // Target 10k instructions = 100 events.
        assert_eq!(out.cores[0].instructions, 10_000);
        assert_eq!(out.cores[0].llc_accesses, 100);
    }

    #[test]
    fn multicore_runs_all_cores() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        for c in 0..4 {
            sim.attach(CoreId(c), stream(1000));
        }
        let out = sim.run(20_000);
        for c in 0..4 {
            assert_eq!(out.cores[c].instructions, 20_000);
        }
    }

    #[test]
    fn reconfigure_fires_periodically() {
        let mut config = SystemConfig::four_core();
        config.reconfig_interval_cycles = 10_000;
        let mut sim = MultiCoreSim::new(config, NearestHit::default());
        sim.attach(CoreId(0), stream(100_000));
        sim.run(1_000_000);
        assert!(
            sim.scheme().reconfigs >= 5,
            "expected several reconfigs, got {}",
            sim.scheme().reconfigs
        );
    }

    #[test]
    fn exhausted_trace_stops_cleanly() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        sim.attach(CoreId(0), stream(10));
        let out = sim.run(1_000_000_000);
        assert_eq!(out.cores[0].instructions, 1000);
    }

    #[test]
    #[should_panic(expected = "already has a workload")]
    fn double_attach_panics() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        sim.attach(CoreId(0), stream(1));
        sim.attach(CoreId(0), stream(1));
    }

    #[test]
    fn capture_records_every_pulled_event() {
        let path =
            std::env::temp_dir().join(format!("wp-sim-capture-{}-driver.wpt", std::process::id()));
        let cfg = SimConfig::new(SystemConfig::four_core()).capture_to(&path);
        let mut sim = MultiCoreSim::with_config(cfg, NearestHit::default()).unwrap();
        sim.attach(CoreId(0), stream(1000));
        let out = sim.run(50_000);
        assert!(sim.finish_capture().unwrap());
        assert!(!sim.finish_capture().unwrap(), "second finish is a no-op");
        // The capture holds exactly what the run pulled: the counted 500
        // events plus the tail of the final scheduling quantum (the
        // driver finishes a quantum after the fixed-work target, so a
        // replay re-walks the identical stream).
        let mut replay = crate::TraceWorkload::open(&path).unwrap();
        let mut events = 0u64;
        while let Some(ev) = replay.next_event() {
            events += 1;
            assert_eq!(ev.gap_instrs, 100);
            assert!(!ev.is_write);
        }
        let counted = out.cores[0].llc_accesses;
        assert!(
            events >= counted && events <= counted + QUANTUM_EVENTS as u64,
            "captured {events}, counted {counted}"
        );
        assert_eq!(events % QUANTUM_EVENTS as u64, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn energy_per_ki_normalizes() {
        let mut sim = MultiCoreSim::new(SystemConfig::four_core(), NearestHit::default());
        sim.attach(CoreId(0), stream(1000));
        let out = sim.run(100_000);
        assert!(out.energy_per_ki() > 0.0);
    }
}
