//! Replaying recorded `.wpt` traces through the simulator.
//!
//! [`TraceWorkload`] adapts one stream of a trace file to the [`Workload`]
//! trait, so a recorded (or externally authored) access stream drives any
//! [`LlcScheme`](crate::LlcScheme) exactly like a live model. Because
//! capture tees *every* event the driver pulls, replaying a capture with
//! the same system configuration and run budgets reproduces the original
//! run's statistics bit for bit.

use std::path::{Path, PathBuf};

use wp_mem::PoolId;
use wp_trace::{BatchReader, EventBatch, PrefetchBatches};

use crate::scheme::{PoolDescriptor, TraceEvent, Workload, WorkloadBundle};

/// The batched decode source behind [`TraceWorkload::fill_batch`].
enum BatchSource {
    /// Decode chunks inline, on the simulating thread.
    Direct(BatchReader),
    /// Decode chunk N+1 on a lookahead thread while N simulates.
    Prefetch(PrefetchBatches),
}

impl BatchSource {
    fn next_chunk(&mut self, batch: &mut EventBatch) -> Result<Option<u16>, wp_trace::TraceError> {
        match self {
            BatchSource::Direct(r) => r.next_chunk(batch),
            BatchSource::Prefetch(p) => p.next_chunk(batch),
        }
    }
}

/// A [`Workload`] that streams one stream of a `.wpt` trace file.
///
/// Under the per-event interface, reading is streaming (one chunk in
/// memory) through [`wp_trace::TraceReader`]. Under the batched interface
/// ([`Workload::fill_batch`], the default [`ExecMode`](crate::ExecMode)),
/// chunks decode zero-copy out of an mmapped image — by default on a
/// lookahead thread, so decode overlaps simulation; set `WP_PREFETCH=0`
/// to decode inline. Both interfaces yield the identical event sequence;
/// a run uses one or the other, never a mix.
///
/// The workload ends when the stream does. I/O or corruption mid-replay
/// panics with the underlying [`TraceError`](wp_trace::TraceError) — a
/// half-replayed trace would otherwise masquerade as a short but valid
/// run. Use [`wp_trace::TraceReader`] directly for fallible consumption.
pub struct TraceWorkload {
    reader: wp_trace::TraceReader<std::io::BufReader<std::fs::File>>,
    /// Lazily opened on first `fill_batch`, so per-event runs never pay
    /// for a mapping (and batched runs never pay for `reader` beyond the
    /// header validation it performed at open).
    batched: Option<BatchSource>,
    /// The current decoded chunk of our stream, and the read cursor into it.
    chunk: EventBatch,
    chunk_pos: usize,
    stream: u16,
    path: PathBuf,
}

impl std::fmt::Debug for TraceWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWorkload")
            .field("path", &self.path)
            .field("stream", &self.stream)
            .finish()
    }
}

impl TraceWorkload {
    /// Opens stream 0 of `path` (the whole trace for single-app captures).
    pub fn open(path: &Path) -> Result<Self, wp_trace::TraceError> {
        Self::open_stream(path, 0)
    }

    /// Opens stream `stream` of `path` (per-core streams of a multi-core
    /// capture).
    pub fn open_stream(path: &Path, stream: u16) -> Result<Self, wp_trace::TraceError> {
        Ok(Self {
            reader: wp_trace::TraceReader::open(path)?,
            batched: None,
            chunk: EventBatch::new(),
            chunk_pos: 0,
            stream,
            path: path.to_path_buf(),
        })
    }

    /// Decodes chunks until the next one belonging to our stream sits in
    /// `self.chunk`; false at end of trace.
    ///
    /// Counted as [`wp_obs::Phase::Decode`] time — under prefetch this is
    /// the *wait* for the decode thread, which is exactly the share of
    /// decode cost the simulating thread could not hide.
    fn refill(&mut self) -> bool {
        let _span = wp_obs::span(wp_obs::Phase::Decode);
        let batched = match &mut self.batched {
            Some(b) => b,
            None => {
                let prefetch = !matches!(
                    std::env::var("WP_PREFETCH").as_deref(),
                    Ok("0") | Ok("off") | Ok("false")
                );
                let source = if prefetch {
                    PrefetchBatches::open_stream(&self.path, self.stream).map(BatchSource::Prefetch)
                } else {
                    BatchReader::open_stream(&self.path, self.stream).map(BatchSource::Direct)
                };
                match source {
                    Ok(s) => self.batched.insert(s),
                    Err(e) => panic!("replay of {} failed: {e}", self.path.display()),
                }
            }
        };
        loop {
            match batched.next_chunk(&mut self.chunk) {
                Ok(Some(sid)) if sid == self.stream => {
                    self.chunk_pos = 0;
                    return true;
                }
                Ok(Some(_)) => continue, // another core's stream
                Ok(None) => {
                    self.chunk_pos = self.chunk.len();
                    return false;
                }
                Err(e) => panic!("replay of {} failed: {e}", self.path.display()),
            }
        }
    }
}

impl Workload for TraceWorkload {
    fn next_event(&mut self) -> Option<TraceEvent> {
        loop {
            match self.reader.next_record() {
                Ok(Some((sid, rec))) if sid == self.stream => {
                    return Some(TraceEvent {
                        gap_instrs: rec.gap_instrs,
                        line: rec.line,
                        is_write: rec.is_write,
                    })
                }
                Ok(Some(_)) => continue, // another core's stream
                Ok(None) => return None,
                Err(e) => panic!("replay of {} failed: {e}", self.path.display()),
            }
        }
    }

    fn fill_batch(&mut self, batch: &mut EventBatch, max: usize) -> usize {
        let mut filled = 0;
        while filled < max {
            if self.chunk_pos == self.chunk.len() && !self.refill() {
                break;
            }
            let take = (max - filled).min(self.chunk.len() - self.chunk_pos);
            batch.extend_from(&self.chunk, self.chunk_pos, take);
            self.chunk_pos += take;
            filled += take;
        }
        wp_obs::observe(wp_obs::HistKind::BatchFill, filled as u64);
        filled
    }
}

/// Converts a stream's recorded pool table into simulator descriptors —
/// the single place the `wp_trace::PoolMeta` ↔ [`PoolDescriptor`] field
/// mapping lives (capture uses [`pool_metas_of`] for the inverse).
fn descriptors_of(pools: &[wp_trace::PoolMeta]) -> Vec<PoolDescriptor> {
    pools
        .iter()
        .map(|p| PoolDescriptor {
            name: p.name.clone(),
            pool: p.pool.map(PoolId),
            pages: p.pages.clone(),
            bytes: p.bytes,
        })
        .collect()
}

/// The inverse of [`descriptors_of`], for the driver's capture hook.
pub(crate) fn pool_metas_of(pools: &[PoolDescriptor]) -> Vec<wp_trace::PoolMeta> {
    pools
        .iter()
        .map(|p| wp_trace::PoolMeta {
            name: p.name.clone(),
            pool: p.pool.map(|id| id.0),
            bytes: p.bytes,
            pages: p.pages.clone(),
        })
        .collect()
}

/// Reads the definition of stream `stream` without decoding past it.
/// Stream definitions precede their chunks, so this usually touches only
/// the head of the file.
fn stream_meta(path: &Path, stream: u16) -> Result<wp_trace::StreamMeta, wp_trace::TraceError> {
    let mut reader = wp_trace::TraceReader::open(path)?;
    loop {
        if let Some(meta) = reader.stream(stream) {
            return Ok(meta.clone());
        }
        if reader.next_record()?.is_none() {
            return Err(wp_trace::TraceError::Corrupt(format!(
                "stream {stream} is not defined in the trace"
            )));
        }
    }
}

/// The pool descriptors recorded in stream `stream` of `path` — the exact
/// classification the captured run was given, so pools-consuming schemes
/// (Whirlpool) replay identically.
pub fn trace_pools(path: &Path, stream: u16) -> Result<Vec<PoolDescriptor>, wp_trace::TraceError> {
    Ok(descriptors_of(&stream_meta(path, stream)?.pools))
}

/// Builds a ready-to-attach [`WorkloadBundle`] from stream `stream` of
/// `path`. `with_pools` controls whether the recorded classification is
/// handed to the scheme (pools-agnostic baselines ignore it either way).
pub fn trace_bundle(
    path: &Path,
    stream: u16,
    with_pools: bool,
) -> Result<WorkloadBundle, wp_trace::TraceError> {
    let meta = stream_meta(path, stream)?;
    let pools = if with_pools {
        descriptors_of(&meta.pools)
    } else {
        Vec::new()
    };
    Ok(WorkloadBundle {
        trace: Box::new(TraceWorkload::open_stream(path, stream)?),
        pools,
        name: meta.name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::{LineAddr, PageId};
    use wp_trace::{PoolMeta, TraceWriter};

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wp-sim-replay-{}-{name}", std::process::id()))
    }

    fn write_demo(path: &Path) {
        let mut w = TraceWriter::create(path).unwrap();
        let pools = [PoolMeta {
            name: "pts".into(),
            pool: Some(4),
            bytes: 4096 * 2,
            pages: vec![PageId(10), PageId(11)],
        }];
        let s = w.add_stream("demo", &pools).unwrap();
        for i in 0..300u64 {
            w.record(s, 50, LineAddr(640 + i % 128), i % 5 == 0)
                .unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn replays_all_events_then_ends() {
        let path = temp("basic.wpt");
        write_demo(&path);
        let mut wl = TraceWorkload::open(&path).unwrap();
        let mut n = 0;
        let mut instrs = 0u64;
        while let Some(ev) = wl.next_event() {
            assert_eq!(ev.gap_instrs, 50);
            instrs += u64::from(ev.gap_instrs);
            n += 1;
        }
        assert_eq!(n, 300);
        assert_eq!(instrs, 300 * 50);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bundle_restores_recorded_pools() {
        let path = temp("pools.wpt");
        write_demo(&path);
        let b = trace_bundle(&path, 0, true).unwrap();
        assert_eq!(b.name, "demo");
        assert_eq!(b.pools.len(), 1);
        assert_eq!(b.pools[0].name, "pts");
        assert_eq!(b.pools[0].pool, Some(PoolId(4)));
        assert_eq!(b.pools[0].pages, vec![PageId(10), PageId(11)]);
        let stripped = trace_bundle(&path, 0, false).unwrap();
        assert!(stripped.pools.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_stream_is_an_error() {
        let path = temp("missing.wpt");
        write_demo(&path);
        assert!(trace_pools(&path, 3).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
