//! Per-core execution statistics.

/// Counters for one core's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed (base CPI + data stalls).
    pub cycles: f64,
    /// L1 hits (only populated when the private hierarchy is simulated).
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Accesses that reached the LLC scheme.
    pub llc_accesses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses (served by memory through a bank).
    pub llc_misses: u64,
    /// Accesses that bypassed the LLC entirely (Whirlpool bypass VCs).
    pub llc_bypasses: u64,
    /// Cycles stalled on data (after MLP division).
    pub stall_cycles: f64,
}

impl CoreStats {
    /// Counter-wise difference `self − base` (measurement windows are
    /// deltas against a warmup baseline).
    pub fn delta(&self, base: &CoreStats) -> CoreStats {
        CoreStats {
            instructions: self.instructions - base.instructions,
            cycles: self.cycles - base.cycles,
            l1_hits: self.l1_hits - base.l1_hits,
            l2_hits: self.l2_hits - base.l2_hits,
            llc_accesses: self.llc_accesses - base.llc_accesses,
            llc_hits: self.llc_hits - base.llc_hits,
            llc_misses: self.llc_misses - base.llc_misses,
            llc_bypasses: self.llc_bypasses - base.llc_bypasses,
            stall_cycles: self.stall_cycles - base.stall_cycles,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// LLC accesses per kilo-instruction (the APKI of Fig. 10/21).
    pub fn llc_apki(&self) -> f64 {
        per_ki(self.llc_accesses + self.llc_bypasses, self.instructions)
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        per_ki(self.llc_misses, self.instructions)
    }

    /// LLC hits per kilo-instruction.
    pub fn llc_hpki(&self) -> f64 {
        per_ki(self.llc_hits, self.instructions)
    }

    /// Bypasses per kilo-instruction.
    pub fn llc_bpki(&self) -> f64 {
        per_ki(self.llc_bypasses, self.instructions)
    }

    /// Memory accesses per kilo-instruction (misses + bypasses, which both
    /// go to DRAM).
    pub fn mem_apki(&self) -> f64 {
        per_ki(self.llc_misses + self.llc_bypasses, self.instructions)
    }
}

fn per_ki(count: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / instructions as f64
    }
}

/// Renders `s` as a JSON string literal (quotes, backslashes, and
/// control characters escaped) — for callers assembling JSON around
/// [`RunSummary::to_json`](crate::RunSummary::to_json), e.g. app names
/// that may be `trace:<path>` URIs.
pub fn json_string(s: &str) -> String {
    json::string(s)
}

/// Dependency-free JSON rendering of run results, so figure binaries and
/// `trace_tool replay` can emit machine-readable output.
///
/// Numbers use Rust's shortest-round-trip float formatting, so two
/// summaries render to the same string iff their statistics are
/// bit-identical — which is exactly what the replay-determinism tests
/// compare.
mod json {
    /// A finite float as a JSON number (non-finite values become `null`,
    /// which JSON cannot represent as a number).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// A JSON string literal with minimal escaping.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl CoreStats {
    /// This core's counters and derived rates as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"instructions\":{},\"cycles\":{},\"stall_cycles\":{},\"ipc\":{},\
             \"llc_accesses\":{},\"llc_hits\":{},\"llc_misses\":{},\"llc_bypasses\":{},\
             \"llc_apki\":{},\"llc_mpki\":{},\"llc_bpki\":{}}}",
            self.instructions,
            json::num(self.cycles),
            json::num(self.stall_cycles),
            json::num(self.ipc()),
            self.llc_accesses,
            self.llc_hits,
            self.llc_misses,
            self.llc_bypasses,
            json::num(self.llc_apki()),
            json::num(self.llc_mpki()),
            json::num(self.llc_bpki()),
        )
    }
}

impl crate::RunSummary {
    /// The whole run — scheme, per-core stats, energy — as one JSON
    /// object (single line, no trailing newline).
    pub fn to_json(&self) -> String {
        let cores: Vec<String> = self.cores.iter().map(CoreStats::to_json).collect();
        format!(
            "{{\"scheme\":{},\"cycles\":{},\"energy\":{{\"network_nj\":{},\"bank_nj\":{},\
             \"memory_nj\":{},\"total_nj\":{}}},\"energy_per_ki\":{},\"cores\":[{}]}}",
            json::string(&self.scheme),
            self.cycles,
            json::num(self.energy.network_nj),
            json::num(self.energy.bank_nj),
            json::num(self.energy.memory_nj),
            json::num(self.energy.total_nj()),
            json::num(self.energy_per_ki()),
            cores.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CoreStats {
            instructions: 10_000,
            cycles: 20_000.0,
            llc_accesses: 100,
            llc_hits: 60,
            llc_misses: 40,
            llc_bypasses: 50,
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.llc_apki() - 15.0).abs() < 1e-12);
        assert!((s.llc_mpki() - 4.0).abs() < 1e-12);
        assert!((s.mem_apki() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn idle_core_rates_are_zero() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.llc_apki(), 0.0);
    }

    #[test]
    fn core_stats_json_is_well_formed() {
        let s = CoreStats {
            instructions: 1000,
            cycles: 2500.5,
            llc_accesses: 10,
            llc_hits: 6,
            llc_misses: 4,
            ..Default::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"instructions\":1000"));
        assert!(j.contains("\"cycles\":2500.5"));
        assert!(j.contains("\"llc_mpki\":4"));
        // Balanced braces and quotes (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn summary_json_includes_all_cores() {
        let sum = crate::RunSummary {
            scheme: "S-NUCA \"LRU\"".into(),
            cores: vec![CoreStats::default(), CoreStats::default()],
            energy: crate::EnergyBreakdown::default(),
            cycles: 42,
        };
        let j = sum.to_json();
        assert!(j.contains("\\\"LRU\\\""), "quotes escaped: {j}");
        assert!(j.contains("\"cycles\":42"));
        assert_eq!(j.matches("\"instructions\"").count(), 2);
    }
}
