//! Per-core execution statistics.

/// Counters for one core's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed (base CPI + data stalls).
    pub cycles: f64,
    /// L1 hits (only populated when the private hierarchy is simulated).
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Accesses that reached the LLC scheme.
    pub llc_accesses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses (served by memory through a bank).
    pub llc_misses: u64,
    /// Accesses that bypassed the LLC entirely (Whirlpool bypass VCs).
    pub llc_bypasses: u64,
    /// Cycles stalled on data (after MLP division).
    pub stall_cycles: f64,
}

impl CoreStats {
    /// Counter-wise difference `self − base` (measurement windows are
    /// deltas against a warmup baseline).
    pub fn delta(&self, base: &CoreStats) -> CoreStats {
        CoreStats {
            instructions: self.instructions - base.instructions,
            cycles: self.cycles - base.cycles,
            l1_hits: self.l1_hits - base.l1_hits,
            l2_hits: self.l2_hits - base.l2_hits,
            llc_accesses: self.llc_accesses - base.llc_accesses,
            llc_hits: self.llc_hits - base.llc_hits,
            llc_misses: self.llc_misses - base.llc_misses,
            llc_bypasses: self.llc_bypasses - base.llc_bypasses,
            stall_cycles: self.stall_cycles - base.stall_cycles,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// LLC accesses per kilo-instruction (the APKI of Fig. 10/21).
    pub fn llc_apki(&self) -> f64 {
        per_ki(self.llc_accesses + self.llc_bypasses, self.instructions)
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        per_ki(self.llc_misses, self.instructions)
    }

    /// LLC hits per kilo-instruction.
    pub fn llc_hpki(&self) -> f64 {
        per_ki(self.llc_hits, self.instructions)
    }

    /// Bypasses per kilo-instruction.
    pub fn llc_bpki(&self) -> f64 {
        per_ki(self.llc_bypasses, self.instructions)
    }

    /// Memory accesses per kilo-instruction (misses + bypasses, which both
    /// go to DRAM).
    pub fn mem_apki(&self) -> f64 {
        per_ki(self.llc_misses + self.llc_bypasses, self.instructions)
    }
}

fn per_ki(count: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CoreStats {
            instructions: 10_000,
            cycles: 20_000.0,
            llc_accesses: 100,
            llc_hits: 60,
            llc_misses: 40,
            llc_bypasses: 50,
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.llc_apki() - 15.0).abs() < 1e-12);
        assert!((s.llc_mpki() - 4.0).abs() < 1e-12);
        assert!((s.mem_apki() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn idle_core_rates_are_zero() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.llc_apki(), 0.0);
    }
}
