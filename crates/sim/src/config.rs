//! System configuration (Table 3).

use wp_noc::Floorplan;

use crate::energy::EnergyParams;

/// Full system configuration, defaulting to the paper's Table 3.
///
/// Use [`SystemConfig::four_core`] / [`SystemConfig::sixteen_core`] for the
/// two evaluated chips; fields are public for ablations.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Chip floorplan (cores, banks, MCUs on the mesh).
    pub floorplan: Floorplan,
    /// L1D capacity in bytes (32 KB).
    pub l1_bytes: u64,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles (4; folded into the base CPI for hits).
    pub l1_latency: u64,
    /// Private L2 capacity in bytes (128 KB).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles (6).
    pub l2_latency: u64,
    /// LLC bank capacity in bytes (512 KB).
    pub bank_bytes: u64,
    /// LLC bank access latency in cycles (9).
    pub bank_latency: u64,
    /// Zero-load memory latency in cycles (120).
    pub mem_zero_load_latency: u64,
    /// Memory bandwidth per channel, bytes per cycle (12.8 GB/s at 2 GHz =
    /// 6.4 B/cycle).
    pub mem_bytes_per_cycle: f64,
    /// Core clock in GHz (2.0) — used only to convert the paper's 25 ms
    /// reconfiguration interval into cycles.
    pub freq_ghz: f64,
    /// Non-memory CPI of the OOO core model.
    pub base_cpi: f64,
    /// Divisor applied to data stalls to model memory-level parallelism.
    /// The paper's model ignores MLP (Sec. 2.4 footnote 1), i.e. 1.0.
    pub mlp: f64,
    /// Capacity-allocation granule in lines (1024 = 64 KB).
    pub granule_lines: u64,
    /// Cycles between LLC reconfigurations. The paper uses 25 ms = 50 M
    /// cycles on 10 B-instruction runs; scaled-down runs scale this in
    /// proportion (default 5 M).
    pub reconfig_interval_cycles: u64,
    /// Per-event energies.
    pub energy: EnergyParams,
}

impl SystemConfig {
    /// The 4-core, 5×5-bank chip of Fig. 1 (12.5 MB LLC, one MCU).
    pub fn four_core() -> Self {
        Self::with_floorplan(Floorplan::four_core())
    }

    /// The 16-core, 9×9-bank chip of Fig. 12 (40.5 MB LLC, four MCUs).
    pub fn sixteen_core() -> Self {
        Self::with_floorplan(Floorplan::sixteen_core())
    }

    /// Table-3 parameters on an arbitrary floorplan.
    pub fn with_floorplan(floorplan: Floorplan) -> Self {
        Self {
            floorplan,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_latency: 4,
            l2_bytes: 128 * 1024,
            l2_ways: 8,
            l2_latency: 6,
            bank_bytes: 512 * 1024,
            bank_latency: 9,
            mem_zero_load_latency: 120,
            mem_bytes_per_cycle: 6.4,
            freq_ghz: 2.0,
            base_cpi: 1.0,
            mlp: 1.0,
            granule_lines: 1024,
            reconfig_interval_cycles: 5_000_000,
            energy: EnergyParams::default(),
        }
    }

    /// Lines per LLC bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.bank_bytes / wp_mem::LINE_BYTES
    }

    /// Capacity granules per LLC bank.
    pub fn granules_per_bank(&self) -> usize {
        (self.lines_per_bank() / self.granule_lines) as usize
    }

    /// Total LLC granules across all banks.
    pub fn total_granules(&self) -> usize {
        self.granules_per_bank() * self.floorplan.num_banks()
    }

    /// Total LLC capacity in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.bank_bytes * self.floorplan.num_banks() as u64
    }

    /// Average LLC miss penalty estimate used by latency-curve construction:
    /// zero-load memory latency plus the mean core→MCU round trip.
    pub fn miss_penalty(&self) -> f64 {
        let plan = &self.floorplan;
        let mut hops = 0.0;
        for c in 0..plan.num_cores() {
            let core = wp_noc::CoreId(c as u16);
            let mcu = plan.nearest_mcu(core);
            hops += plan.hops_core_mcu(core, mcu) as f64;
        }
        hops /= plan.num_cores() as f64;
        self.mem_zero_load_latency as f64
            + plan.params().round_trip_latency(hops.round() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_capacities() {
        let c = SystemConfig::four_core();
        assert_eq!(c.llc_bytes(), 25 * 512 * 1024); // 12.5 MB
        assert_eq!(c.lines_per_bank(), 8192);
        assert_eq!(c.granules_per_bank(), 8);
        assert_eq!(c.total_granules(), 200);
    }

    #[test]
    fn sixteen_core_capacities() {
        let c = SystemConfig::sixteen_core();
        assert_eq!(c.llc_bytes(), 81 * 512 * 1024); // 40.5 MB
        assert_eq!(c.total_granules(), 648);
    }

    #[test]
    fn miss_penalty_exceeds_dram_latency() {
        let c = SystemConfig::four_core();
        assert!(c.miss_penalty() >= 120.0);
        assert!(c.miss_penalty() < 250.0);
    }
}
