//! Data-movement (uncore) energy accounting.
//!
//! The paper reports *data movement energy*: dynamic energy of the NoC, LLC
//! banks, and main memory (McPAT 22 nm + Micron DDR3L, Appendix A). We keep
//! the same three-way decomposition with per-event constants calibrated to
//! the paper's §1 figures (256 bits across the chip ≈ 300 pJ, ~1 nJ per MB
//! cache access, 20–50 nJ per DRAM access).

/// Per-event energy constants in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One LLC bank lookup/fill (512 KB bank read at 22 nm).
    pub bank_access_nj: f64,
    /// One flit traversing one hop (router + link).
    pub flit_hop_nj: f64,
    /// One 64 B DRAM access (activate+read+IO amortized).
    pub dram_access_nj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            bank_access_nj: 0.4,
            // 256 bits (2 flits) over ~10 hops ≈ 300 pJ → ~15 pJ per
            // flit-hop; round up for router overheads.
            flit_hop_nj: 0.026,
            dram_access_nj: 22.0,
        }
    }
}

/// Accumulated uncore energy, split the way the paper's figures are.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// NoC energy (nJ).
    pub network_nj: f64,
    /// LLC bank energy (nJ).
    pub bank_nj: f64,
    /// Main-memory energy (nJ).
    pub memory_nj: f64,
}

impl EnergyBreakdown {
    /// Total data-movement energy (nJ).
    pub fn total_nj(&self) -> f64 {
        self.network_nj + self.bank_nj + self.memory_nj
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            network_nj: self.network_nj + rhs.network_nj,
            bank_nj: self.bank_nj + rhs.bank_nj,
            memory_nj: self.memory_nj + rhs.memory_nj,
        }
    }
}

/// An energy meter: counts events, reports the breakdown.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    params: EnergyParams,
    breakdown: EnergyBreakdown,
    flit_hops: u64,
    bank_accesses: u64,
    dram_accesses: u64,
}

impl EnergyMeter {
    /// Creates a meter with the given constants.
    pub fn new(params: EnergyParams) -> Self {
        Self {
            params,
            breakdown: EnergyBreakdown::default(),
            flit_hops: 0,
            bank_accesses: 0,
            dram_accesses: 0,
        }
    }

    /// Charges `n` flit-hops of NoC traffic.
    pub fn add_flit_hops(&mut self, n: u64) {
        self.flit_hops += n;
        self.breakdown.network_nj += n as f64 * self.params.flit_hop_nj;
    }

    /// Charges `n` LLC bank accesses.
    pub fn add_bank_accesses(&mut self, n: u64) {
        self.bank_accesses += n;
        self.breakdown.bank_nj += n as f64 * self.params.bank_access_nj;
    }

    /// Charges `n` DRAM accesses.
    pub fn add_dram_accesses(&mut self, n: u64) {
        self.dram_accesses += n;
        self.breakdown.memory_nj += n as f64 * self.params.dram_access_nj;
    }

    /// The current breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Raw event counts `(flit_hops, bank_accesses, dram_accesses)`.
    pub fn event_counts(&self) -> (u64, u64, u64) {
        (self.flit_hops, self.bank_accesses, self.dram_accesses)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.breakdown = EnergyBreakdown::default();
        self.flit_hops = 0;
        self.bank_accesses = 0;
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates() {
        let mut m = EnergyMeter::new(EnergyParams {
            bank_access_nj: 1.0,
            flit_hop_nj: 0.1,
            dram_access_nj: 10.0,
        });
        m.add_flit_hops(20);
        m.add_bank_accesses(3);
        m.add_dram_accesses(2);
        let b = m.breakdown();
        assert!((b.network_nj - 2.0).abs() < 1e-12);
        assert!((b.bank_nj - 3.0).abs() < 1e-12);
        assert!((b.memory_nj - 20.0).abs() < 1e-12);
        assert!((b.total_nj() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_defaults() {
        // Sanity: one DRAM access costs far more than one bank access —
        // the 1000x gap of §1 compressed to the uncore scale.
        let p = EnergyParams::default();
        assert!(p.dram_access_nj > 20.0 * p.bank_access_nj);
    }

    #[test]
    fn breakdown_addition() {
        let a = EnergyBreakdown {
            network_nj: 1.0,
            bank_nj: 2.0,
            memory_nj: 3.0,
        };
        let s = a + a;
        assert_eq!(s.total_nj(), 12.0);
    }
}
