//! Shared uncore state: floorplan, energy meter, memory channels.
//!
//! All schemes charge latency and energy through these helpers, so the
//! accounting (flit-hops per message, bank accesses, DRAM events) is
//! identical across S-NUCA, IdealSPD, Awasthi, Jigsaw, and Whirlpool — the
//! property that makes the paper's cross-scheme energy comparisons fair.

use wp_mem::LineAddr;
use wp_noc::{BankId, CoreId, Floorplan};

use crate::config::SystemConfig;
use crate::energy::{EnergyBreakdown, EnergyMeter};
use crate::memory::MemoryChannels;

/// The uncore: everything below the private caches that schemes share.
#[derive(Debug)]
pub struct Uncore {
    config: SystemConfig,
    energy: EnergyMeter,
    channels: MemoryChannels,
    /// Global time (cycles), advanced by the driver; used for memory
    /// queueing and reconfiguration cadence.
    pub now: u64,
    /// Instructions retired per core this interval (for MPKI normalization
    /// inside schemes' monitors).
    pub interval_instructions: Vec<u64>,
}

impl Uncore {
    /// Builds the uncore for a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let channels = MemoryChannels::new(
            config.floorplan.num_mcus(),
            config.mem_bytes_per_cycle,
            config.mem_zero_load_latency,
        );
        let energy = EnergyMeter::new(config.energy);
        let cores = config.floorplan.num_cores();
        Self {
            config,
            energy,
            channels,
            now: 0,
            interval_instructions: vec![0; cores],
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The floorplan.
    pub fn plan(&self) -> &Floorplan {
        &self.config.floorplan
    }

    /// Accumulated energy breakdown.
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy.breakdown()
    }

    /// Raw energy event counts `(flit_hops, bank_accesses, dram_accesses)`.
    pub fn energy_events(&self) -> (u64, u64, u64) {
        self.energy.event_counts()
    }

    /// Serves an LLC hit in `bank`: request + data response over the NoC
    /// plus one bank access. Returns the latency in cycles.
    pub fn bank_hit(&mut self, core: CoreId, bank: BankId) -> f64 {
        let plan = &self.config.floorplan;
        let hops = plan.hops_core_bank(core, bank);
        let p = plan.params();
        self.energy.add_flit_hops(p.round_trip_flit_hops(hops));
        self.energy.add_bank_accesses(1);
        (p.round_trip_latency(hops) + self.config.bank_latency) as f64
    }

    /// A lookup that misses in `bank` (tag check, no data): charged as a
    /// bank access with a control round trip. Returns the latency.
    /// Multi-level D-NUCAs (IdealSPD) pay this repeatedly — the data
    /// movement the paper charges them for.
    pub fn bank_lookup_miss(&mut self, core: CoreId, bank: BankId) -> f64 {
        let plan = &self.config.floorplan;
        let hops = plan.hops_core_bank(core, bank);
        let p = plan.params();
        self.energy.add_flit_hops(p.ctrl_flits * 2 * hops.max(1));
        self.energy.add_bank_accesses(1);
        (p.round_trip_latency(hops) + self.config.bank_latency) as f64
    }

    /// Serves an LLC miss through `bank`: the bank forwards to the line's
    /// MCU, memory responds, data returns via the bank to the core.
    /// Returns total latency.
    pub fn bank_miss_to_memory(&mut self, core: CoreId, bank: BankId, line: LineAddr) -> f64 {
        let plan = &self.config.floorplan;
        let p = plan.params();
        let mcu = plan.mcu_of_line(line.0);
        let h_cb = plan.hops_core_bank(core, bank);
        let h_bm = plan.hops_bank_mcu(bank, mcu);
        // Request to bank (ctrl), bank to MCU (ctrl), data back MCU→bank→core.
        self.energy.add_flit_hops(p.ctrl_flits * h_cb.max(1));
        self.energy.add_flit_hops(p.ctrl_flits * h_bm.max(1));
        self.energy.add_flit_hops(p.data_flits * h_bm.max(1));
        self.energy.add_flit_hops(p.data_flits * h_cb.max(1));
        self.energy.add_bank_accesses(1); // tag check + fill, charged once
        let mem_lat = self.mem_access(line);
        (p.round_trip_latency(h_cb) + self.config.bank_latency) as f64
            + p.round_trip_latency(h_bm) as f64
            + mem_lat
    }

    /// Serves a bypassed access: core's L2 miss goes straight to the MCU
    /// with no LLC lookup (Whirlpool bypass VCs, Sec. 3.2). Returns latency.
    pub fn bypass_to_memory(&mut self, core: CoreId, line: LineAddr) -> f64 {
        let plan = &self.config.floorplan;
        let p = plan.params();
        let mcu = plan.mcu_of_line(line.0);
        let hops = plan.hops_core_mcu(core, mcu);
        self.energy.add_flit_hops(p.ctrl_flits * hops.max(1));
        self.energy.add_flit_hops(p.data_flits * hops.max(1));
        let mem_lat = self.mem_access(line);
        p.round_trip_latency(hops) as f64 + mem_lat
    }

    /// Charges the traffic of invalidating `lines` lines in `bank` during a
    /// reconfiguration (bank reads + writeback-ish data movement to the
    /// MCU for a conservative fraction).
    pub fn reconfiguration_invalidations(&mut self, bank: BankId, lines: u64) {
        if lines == 0 {
            return;
        }
        let plan = &self.config.floorplan;
        let p = plan.params();
        self.energy.add_bank_accesses(lines);
        // Assume a third of invalidated lines are dirty and write back.
        let dirty = lines / 3;
        if dirty > 0 {
            let mcu = plan.mcu_of_line(0);
            let hops = plan.hops_bank_mcu(bank, mcu);
            self.energy
                .add_flit_hops(dirty * p.data_flits * hops.max(1));
            self.energy.add_dram_accesses(dirty);
        }
    }

    /// Charges one bank access with no network traffic (e.g. a victim-cache
    /// insertion performed locally at the bank).
    pub fn charge_bank_insert(&mut self) {
        self.energy.add_bank_accesses(1);
    }

    /// Charges a one-way data transfer between a core's tile and a bank
    /// (e.g. an eviction spilling from a private region to a victim bank).
    pub fn charge_core_bank_data(&mut self, core: CoreId, bank: BankId) {
        let plan = &self.config.floorplan;
        let hops = plan.hops_core_bank(core, bank);
        let flits = plan.params().data_flits;
        self.energy.add_flit_hops(flits * hops.max(1));
    }

    /// One DRAM access for `line` at the current time; returns latency
    /// including queueing.
    fn mem_access(&mut self, line: LineAddr) -> f64 {
        let mcu = self.config.floorplan.mcu_of_line(line.0);
        self.energy.add_dram_accesses(1);
        self.channels.access(mcu.0 as usize, self.now) as f64
    }

    /// Total DRAM accesses served so far.
    pub fn dram_accesses(&self) -> u64 {
        self.channels.accesses()
    }

    /// Zeroes the energy meter (measurement reset after warmup).
    pub fn reset_energy(&mut self) {
        self.energy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn uncore() -> Uncore {
        Uncore::new(SystemConfig::four_core())
    }

    #[test]
    fn hit_latency_grows_with_distance() {
        let mut u = uncore();
        let plan = u.plan().clone();
        let near = plan.banks_by_distance(CoreId(0))[0];
        let far = *plan.banks_by_distance(CoreId(0)).last().unwrap();
        let l_near = u.bank_hit(CoreId(0), near);
        let l_far = u.bank_hit(CoreId(0), far);
        assert!(l_far > l_near);
    }

    #[test]
    fn miss_costs_more_than_hit() {
        let mut u = uncore();
        let bank = u.plan().banks_by_distance(CoreId(0))[0];
        let hit = u.bank_hit(CoreId(0), bank);
        let miss = u.bank_miss_to_memory(CoreId(0), bank, LineAddr(1));
        assert!(miss > hit + 100.0, "miss {miss} vs hit {hit}");
    }

    #[test]
    fn bypass_skips_bank_energy() {
        let mut u = uncore();
        let (_, banks_before, _) = u.energy_events();
        u.bypass_to_memory(CoreId(0), LineAddr(7));
        let (_, banks_after, dram) = u.energy_events();
        assert_eq!(banks_before, banks_after, "bypass must not touch banks");
        assert_eq!(dram, 1);
    }

    #[test]
    fn energy_splits_into_three_buckets() {
        let mut u = uncore();
        let bank = u.plan().banks_by_distance(CoreId(0))[5];
        u.bank_miss_to_memory(CoreId(0), bank, LineAddr(3));
        let e = u.energy();
        assert!(e.network_nj > 0.0 && e.bank_nj > 0.0 && e.memory_nj > 0.0);
    }

    #[test]
    fn invalidations_charge_banks() {
        let mut u = uncore();
        let (_, b0, d0) = u.energy_events();
        u.reconfiguration_invalidations(BankId(0), 300);
        let (_, b1, d1) = u.energy_events();
        assert_eq!(b1 - b0, 300);
        assert_eq!(d1 - d0, 100);
    }
}
