//! Memory-controller bandwidth model.
//!
//! Each channel serves one 64 B line per `line_bytes / bytes_per_cycle`
//! cycles (12.8 GB/s at 2 GHz → 10 cycles per line). Requests queue FIFO
//! behind the channel's next-free time, adding a queueing delay on top of
//! the 120-cycle zero-load latency — enough fidelity to capture the
//! bandwidth pressure of mixes without a full DRAM model.

/// Per-channel service state for all MCUs.
#[derive(Debug, Clone)]
pub struct MemoryChannels {
    next_free: Vec<u64>,
    service_cycles: u64,
    zero_load: u64,
    accesses: u64,
    total_queue_cycles: u64,
}

impl MemoryChannels {
    /// Creates `channels` channels with the given service rate.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `bytes_per_cycle <= 0`.
    pub fn new(channels: usize, bytes_per_cycle: f64, zero_load: u64) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            next_free: vec![0; channels],
            service_cycles: (wp_mem::LINE_BYTES as f64 / bytes_per_cycle).ceil() as u64,
            zero_load,
            accesses: 0,
            total_queue_cycles: 0,
        }
    }

    /// Issues one line access on `channel` at time `now`; returns total
    /// latency (zero-load + queueing).
    pub fn access(&mut self, channel: usize, now: u64) -> u64 {
        let idx = channel % self.next_free.len();
        let ch = &mut self.next_free[idx];
        let start = (*ch).max(now);
        let queue = start - now;
        *ch = start + self.service_cycles;
        self.accesses += 1;
        self.total_queue_cycles += queue;
        self.zero_load + queue
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.next_free.len()
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Mean queueing delay over all accesses (cycles).
    pub fn avg_queue_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_queue_cycles as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_channel_has_zero_queue() {
        let mut m = MemoryChannels::new(1, 6.4, 120);
        // Sparse accesses: no queueing.
        assert_eq!(m.access(0, 0), 120);
        assert_eq!(m.access(0, 1000), 120);
        assert_eq!(m.avg_queue_cycles(), 0.0);
    }

    #[test]
    fn saturated_channel_queues() {
        let mut m = MemoryChannels::new(1, 6.4, 120);
        // Burst of 10 simultaneous requests: each waits behind the previous.
        let lats: Vec<u64> = (0..10).map(|_| m.access(0, 0)).collect();
        assert_eq!(lats[0], 120);
        assert!(lats[9] > lats[0]);
        assert_eq!(lats[9], 120 + 9 * 10); // 10-cycle service at 6.4 B/cyc
    }

    #[test]
    fn channels_are_independent() {
        let mut m = MemoryChannels::new(2, 6.4, 120);
        m.access(0, 0);
        assert_eq!(m.access(1, 0), 120, "other channel unaffected");
    }

    #[test]
    fn channel_index_wraps() {
        let mut m = MemoryChannels::new(2, 6.4, 100);
        m.access(5, 0); // maps to channel 1
        assert_eq!(m.access(1, 0), 100 + 10);
    }
}
