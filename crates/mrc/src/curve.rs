//! The [`MissCurve`] type and its algebra.

use crate::histogram::StackDistanceHistogram;

/// A miss-rate curve: expected misses per kilo-instruction (MPKI) as a
/// function of allocated cache capacity.
///
/// Point `i` of the curve is the MPKI the owning access stream would incur
/// when given exactly `i` *granules* of capacity, where one granule is
/// [`granule_lines`](MissCurve::granule_lines) cache lines. Point `0` is the
/// miss rate with no cache at all (every access misses, i.e. the access
/// rate), and the last point is the miss rate with the full modelled
/// capacity.
///
/// Miss curves produced from LRU stack-distance histograms are monotonically
/// non-increasing; curve algebra preserves this invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct MissCurve {
    /// MPKI at capacity `i` granules; `points.len() >= 1`.
    points: Vec<f64>,
    /// Lines per granule.
    granule_lines: u64,
}

impl MissCurve {
    /// Creates a curve from raw MPKI points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, contains a negative or non-finite value,
    /// or if `granule_lines` is zero.
    pub fn new(points: Vec<f64>, granule_lines: u64) -> Self {
        assert!(!points.is_empty(), "miss curve needs at least one point");
        assert!(granule_lines > 0, "granule must hold at least one line");
        for (i, &p) in points.iter().enumerate() {
            assert!(
                p.is_finite() && p >= 0.0,
                "miss curve point {i} is invalid: {p}"
            );
        }
        Self {
            points,
            granule_lines,
        }
    }

    /// A flat curve: the same `mpki` at every capacity (streaming data that
    /// never hits, for example).
    pub fn flat(mpki: f64, num_points: usize, granule_lines: u64) -> Self {
        Self::new(vec![mpki; num_points.max(1)], granule_lines)
    }

    /// Builds the curve implied by an LRU stack-distance histogram.
    ///
    /// `instructions` is the number of instructions over which the histogram
    /// was collected (used to convert miss counts to MPKI); `granule_lines`
    /// sets the capacity quantum. The curve extends to the histogram's
    /// maximum observed distance, rounded up to a whole granule.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn from_histogram(
        hist: &StackDistanceHistogram,
        instructions: u64,
        granule_lines: u64,
    ) -> Self {
        assert!(instructions > 0, "cannot normalize by zero instructions");
        let granule_lines = granule_lines.max(1);
        let max_dist = hist.max_distance();
        let num_granules = max_dist.div_ceil(granule_lines);
        let per_ki = 1000.0 / instructions as f64;
        // Misses at capacity c = accesses with stack distance > c lines,
        // plus all cold (infinite-distance) accesses.
        let total_finite: u64 = hist.finite_total();
        let cold = hist.cold_misses();
        let mut points = Vec::with_capacity(num_granules as usize + 1);
        let mut seen_below = 0u64; // accesses with distance <= capacity
        points.push((total_finite + cold) as f64 * per_ki);
        let mut dist_iter = hist.iter_finite().peekable();
        for g in 1..=num_granules {
            let cap_lines = g * granule_lines;
            while let Some(&(d, count)) = dist_iter.peek() {
                if d <= cap_lines {
                    seen_below += count;
                    dist_iter.next();
                } else {
                    break;
                }
            }
            let misses = (total_finite - seen_below) + cold;
            points.push(misses as f64 * per_ki);
        }
        Self::new(points, granule_lines)
    }

    /// MPKI at a capacity of `granules` granules. Capacities beyond the last
    /// point saturate at the final value.
    pub fn mpki_at(&self, granules: usize) -> f64 {
        let idx = granules.min(self.points.len() - 1);
        self.points[idx]
    }

    /// MPKI at a byte capacity (rounded down to whole granules).
    pub fn mpki_at_bytes(&self, bytes: u64) -> f64 {
        let granules = bytes / (self.granule_lines * crate::LINE_BYTES);
        self.mpki_at(granules as usize)
    }

    /// The raw points slice.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points (max capacity in granules is `len() - 1`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has a single point only.
    pub fn is_empty(&self) -> bool {
        false // invariant: never empty; kept for clippy-compatible API shape
    }

    /// Lines per capacity granule.
    pub fn granule_lines(&self) -> u64 {
        self.granule_lines
    }

    /// Bytes per capacity granule.
    pub fn granule_bytes(&self) -> u64 {
        self.granule_lines * crate::LINE_BYTES
    }

    /// MPKI with no cache (the LLC access rate of this stream, APKI).
    pub fn at_zero(&self) -> f64 {
        self.points[0]
    }

    /// MPKI with the maximum modelled capacity.
    pub fn floor(&self) -> f64 {
        *self.points.last().expect("non-empty")
    }

    /// Extends (or truncates) the curve to exactly `num_points` points,
    /// repeating the final value when extending.
    pub fn resized(&self, num_points: usize) -> Self {
        let num_points = num_points.max(1);
        let mut points = self.points.clone();
        points.resize(num_points, self.floor());
        Self::new(points, self.granule_lines)
    }

    /// Re-quantizes the curve onto a different granule size by linear
    /// interpolation in capacity space.
    pub fn regranulated(&self, new_granule_lines: u64) -> Self {
        let new_granule_lines = new_granule_lines.max(1);
        if new_granule_lines == self.granule_lines {
            return self.clone();
        }
        let max_lines = (self.points.len() - 1) as u64 * self.granule_lines;
        let num_new = max_lines.div_ceil(new_granule_lines);
        let mut points = Vec::with_capacity(num_new as usize + 1);
        for g in 0..=num_new {
            let lines = g * new_granule_lines;
            points.push(self.interp_at_lines(lines));
        }
        Self::new(points, new_granule_lines)
    }

    /// Linearly interpolated MPKI at an arbitrary line capacity.
    pub fn interp_at_lines(&self, lines: u64) -> f64 {
        let pos = lines as f64 / self.granule_lines as f64;
        let lo = pos.floor() as usize;
        if lo + 1 >= self.points.len() {
            return self.floor();
        }
        let frac = pos - lo as f64;
        self.points[lo] * (1.0 - frac) + self.points[lo + 1] * frac
    }

    /// Pointwise sum of two curves on a shared granule (the miss curve of two
    /// *partitioned* streams each given the same capacity; used in tests and
    /// as a building block).
    ///
    /// # Panics
    ///
    /// Panics if granule sizes differ.
    pub fn pointwise_add(&self, other: &Self) -> Self {
        assert_eq!(
            self.granule_lines, other.granule_lines,
            "granule mismatch in curve addition"
        );
        let n = self.points.len().max(other.points.len());
        let points = (0..n).map(|i| self.mpki_at(i) + other.mpki_at(i)).collect();
        Self::new(points, self.granule_lines)
    }

    /// Scales all points by a non-negative factor (e.g. EWMA blending or
    /// normalizing a sampled monitor).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale {factor}");
        Self::new(
            self.points.iter().map(|p| p * factor).collect(),
            self.granule_lines,
        )
    }

    /// Exponentially-weighted blend: `alpha * self + (1 - alpha) * older`.
    /// Used by monitors to age curves across reconfiguration intervals.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or granules differ.
    pub fn ewma(&self, older: &Self, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert_eq!(self.granule_lines, older.granule_lines);
        let n = self.points.len().max(older.points.len());
        let points = (0..n)
            .map(|i| alpha * self.mpki_at(i) + (1.0 - alpha) * older.mpki_at(i))
            .collect();
        Self::new(points, self.granule_lines)
    }

    /// Enforces monotone non-increase by taking a running minimum. Sampled
    /// monitors can produce small non-monotonicities; Jigsaw's runtime cleans
    /// them before partitioning.
    pub fn monotonized(&self) -> Self {
        let mut points = self.points.clone();
        for i in 1..points.len() {
            if points[i] > points[i - 1] {
                points[i] = points[i - 1];
            }
        }
        Self::new(points, self.granule_lines)
    }

    /// True if the curve never increases with capacity.
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| w[1] <= w[0] + 1e-9)
    }

    /// Area under the curve between capacities `[0, upto]` granules
    /// (trapezoidal). This is the building block of WhirlTool's distance
    /// metric (area between combined and partitioned curves).
    pub fn area(&self, upto: usize) -> f64 {
        let upto = upto.min(self.points.len() - 1);
        let mut area = 0.0;
        for i in 0..upto {
            area += 0.5 * (self.points[i] + self.points[i + 1]);
        }
        area
    }

    /// Total misses saved by growing from zero to full capacity.
    pub fn total_utility(&self) -> f64 {
        self.at_zero() - self.floor()
    }

    /// The smallest capacity (granules) at which the curve comes within
    /// `epsilon` MPKI of its floor — a working-set-size estimate.
    pub fn knee(&self, epsilon: f64) -> usize {
        let target = self.floor() + epsilon;
        self.points
            .iter()
            .position(|&p| p <= target)
            .unwrap_or(self.points.len() - 1)
    }
}

impl Default for MissCurve {
    fn default() -> Self {
        Self::new(vec![0.0], crate::DEFAULT_GRANULE_LINES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackDistanceHistogram;

    fn curve(points: &[f64]) -> MissCurve {
        MissCurve::new(points.to_vec(), 4)
    }

    #[test]
    fn mpki_lookup_saturates() {
        let c = curve(&[10.0, 5.0, 1.0]);
        assert_eq!(c.mpki_at(0), 10.0);
        assert_eq!(c.mpki_at(2), 1.0);
        assert_eq!(c.mpki_at(99), 1.0);
    }

    #[test]
    fn from_histogram_basic() {
        let mut h = StackDistanceHistogram::new();
        // 6 accesses: 2 cold, 2 at distance 2, 2 at distance 6.
        h.record_cold();
        h.record_cold();
        h.record(2);
        h.record(2);
        h.record(6);
        h.record(6);
        let c = MissCurve::from_histogram(&h, 1000, 4);
        // At zero capacity everything misses: 6 misses / 1 KI.
        assert!((c.at_zero() - 6.0).abs() < 1e-9);
        // One granule (4 lines) captures the distance-2 reuses: 4 misses.
        assert!((c.mpki_at(1) - 4.0).abs() < 1e-9);
        // Two granules (8 lines) capture everything but cold misses.
        assert!((c.mpki_at(2) - 2.0).abs() < 1e-9);
        assert!(c.is_monotone());
    }

    #[test]
    fn histogram_curve_is_monotone() {
        let mut h = StackDistanceHistogram::new();
        for d in [1u64, 3, 3, 9, 120, 7, 1, 44] {
            h.record(d);
        }
        h.record_cold();
        let c = MissCurve::from_histogram(&h, 10_000, 8);
        assert!(c.is_monotone());
        assert!((c.floor() - 0.1).abs() < 1e-9); // only the cold miss left
    }

    #[test]
    fn pointwise_add_takes_max_len() {
        let a = curve(&[4.0, 2.0]);
        let b = curve(&[3.0, 2.0, 1.0]);
        let s = a.pointwise_add(&b);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mpki_at(0), 7.0);
        assert_eq!(s.mpki_at(2), 3.0); // a saturates at 2.0
    }

    #[test]
    fn ewma_blends() {
        let new = curve(&[10.0, 0.0]);
        let old = curve(&[0.0, 10.0]);
        let b = new.ewma(&old, 0.25);
        assert!((b.mpki_at(0) - 2.5).abs() < 1e-9);
        assert!((b.mpki_at(1) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn monotonize_fixes_bumps() {
        let c = curve(&[5.0, 6.0, 3.0, 4.0]);
        let m = c.monotonized();
        assert!(m.is_monotone());
        assert_eq!(m.points(), &[5.0, 5.0, 3.0, 3.0]);
    }

    #[test]
    fn area_trapezoidal() {
        let c = curve(&[4.0, 2.0, 0.0]);
        assert!((c.area(2) - (3.0 + 1.0)).abs() < 1e-9);
        assert!((c.area(100) - 4.0).abs() < 1e-9); // clamps
    }

    #[test]
    fn regranulate_roundtrip_shape() {
        let c = curve(&[8.0, 6.0, 4.0, 2.0, 0.0]); // granule 4
        let fine = c.regranulated(2);
        assert_eq!(fine.granule_lines(), 2);
        // Midpoint of first segment interpolates.
        assert!((fine.mpki_at(1) - 7.0).abs() < 1e-9);
        let back = fine.regranulated(4);
        for i in 0..c.len() {
            assert!((back.mpki_at(i) - c.mpki_at(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn knee_finds_working_set() {
        let c = curve(&[10.0, 10.0, 2.0, 2.0, 2.0]);
        assert_eq!(c.knee(0.1), 2);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_curve_panics() {
        MissCurve::new(vec![], 4);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_point_panics() {
        MissCurve::new(vec![1.0, -0.5], 4);
    }
}
