//! Lower convex hulls of miss/latency curves.
//!
//! Jigsaw partitions capacity on the *convex hulls* of per-VC curves (a
//! linear-time operation, Sec. 4.2): with convex curves, greedy marginal
//! allocation is optimal, and convex performance is practically realizable
//! via Talus-style partitioning within each VC.

use crate::curve::MissCurve;

/// A vertex of a curve's lower convex hull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HullPoint {
    /// Capacity in granules.
    pub granules: usize,
    /// Curve value (MPKI or CPI) at that capacity.
    pub value: f64,
}

/// Computes the vertices of the lower convex hull of `points`
/// (x = index, y = value) using a single monotone-chain pass.
///
/// The first and last points are always vertices. For the non-increasing
/// curves used in this crate the hull is convex and non-increasing.
pub fn convex_hull_points(points: &[f64]) -> Vec<HullPoint> {
    assert!(!points.is_empty(), "cannot hull an empty curve");
    let mut hull: Vec<HullPoint> = Vec::new();
    for (i, &y) in points.iter().enumerate() {
        let p = HullPoint {
            granules: i,
            value: y,
        };
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Remove b if it lies on or above segment a->p (cross product).
            let cross = (b.granules as f64 - a.granules as f64) * (p.value - a.value)
                - (b.value - a.value) * (p.granules as f64 - a.granules as f64);
            if cross <= 1e-12 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

/// Evaluates a hull (as returned by [`convex_hull_points`]) at every integer
/// capacity, producing the convex minorant of the original points.
pub fn hull_to_points(hull: &[HullPoint], len: usize) -> Vec<f64> {
    assert!(!hull.is_empty());
    let mut out = Vec::with_capacity(len);
    let mut seg = 0;
    for i in 0..len {
        while seg + 1 < hull.len() && hull[seg + 1].granules < i {
            seg += 1;
        }
        if seg + 1 >= hull.len() {
            out.push(hull[hull.len() - 1].value);
            continue;
        }
        let (a, b) = (hull[seg], hull[seg + 1]);
        if i <= a.granules {
            out.push(a.value);
        } else {
            let t = (i - a.granules) as f64 / (b.granules - a.granules) as f64;
            out.push(a.value + t * (b.value - a.value));
        }
    }
    out
}

/// Returns the convex minorant of a miss curve as a new curve.
///
/// The result is pointwise ≤ the input and convex; partitioning algorithms
/// in the partitioning module (`partition.rs`) operate on these.
pub fn convex_hull(curve: &MissCurve) -> MissCurve {
    let hull = convex_hull_points(curve.points());
    let pts = hull_to_points(&hull, curve.len());
    MissCurve::new(pts, curve.granule_lines())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_convex_curve_is_identity() {
        let c = MissCurve::new(vec![10.0, 6.0, 3.0, 1.0, 0.0], 4);
        let h = convex_hull(&c);
        for i in 0..c.len() {
            assert!((h.mpki_at(i) - c.mpki_at(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn hull_cuts_cliffs() {
        // A cliff at 3: flat then sudden drop. Hull is the straight chord.
        let c = MissCurve::new(vec![9.0, 9.0, 9.0, 0.0], 4);
        let h = convex_hull(&c);
        assert!((h.mpki_at(0) - 9.0).abs() < 1e-9);
        assert!((h.mpki_at(1) - 6.0).abs() < 1e-9);
        assert!((h.mpki_at(2) - 3.0).abs() < 1e-9);
        assert!((h.mpki_at(3) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn hull_below_or_equal_everywhere() {
        let c = MissCurve::new(vec![8.0, 7.5, 2.0, 1.9, 1.9, 0.0], 4);
        let h = convex_hull(&c);
        for i in 0..c.len() {
            assert!(h.mpki_at(i) <= c.mpki_at(i) + 1e-9);
        }
    }

    #[test]
    fn hull_endpoints_preserved() {
        let c = MissCurve::new(vec![5.0, 4.0, 4.0, 3.5], 4);
        let h = convex_hull(&c);
        assert_eq!(h.mpki_at(0), 5.0);
        assert!((h.mpki_at(3) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn single_point_hull() {
        let c = MissCurve::new(vec![2.0], 4);
        let h = convex_hull(&c);
        assert_eq!(h.points(), &[2.0]);
    }

    #[test]
    fn hull_vertices_are_sparse() {
        let c = MissCurve::new(vec![10.0, 8.0, 6.0, 4.0, 2.0, 0.0], 4);
        let verts = convex_hull_points(c.points());
        // Perfectly linear: just the two endpoints.
        assert_eq!(verts.len(), 2);
        assert_eq!(verts[0].granules, 0);
        assert_eq!(verts[1].granules, 5);
    }
}
