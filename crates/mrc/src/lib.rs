//! Miss-rate-curve mathematics for the Whirlpool reproduction.
//!
//! This crate implements the analytical substrate that both Jigsaw's runtime
//! and WhirlTool's analyzer depend on:
//!
//! * [`MissCurve`] — misses-per-kilo-instruction (MPKI) as a function of
//!   cache capacity, plus the algebra defined on such curves.
//! * [`StackDistanceHistogram`] and [`MattsonStack`] — exact and sampled
//!   LRU stack-distance profiling, from which miss curves are derived.
//! * [`ShardsStack`] — SHARDS spatial-hash sampling over the Mattson
//!   machinery: ~constant-memory miss curves over whole traces at a small,
//!   bounded miss-ratio error, with fixed-rate and `s_max`-adaptive modes
//!   (see [`ShardsConfig`]); [`profile_streams`] profiles any set of a
//!   trace's streams, exact or sampled, in one file scan.
//! * [`convex_hull`] — the lower convex hull of a miss or latency curve
//!   (Jigsaw partitions on hulls; convex performance is realizable via
//!   Talus-style partitioning within a VC, per Sec. 4.2 of the paper).
//! * [`combine_miss_curves`] — the Appendix-B *flow model* that estimates
//!   the miss curve of two pools sharing one cache.
//! * [`partition_capacity`] / [`partitioned_curve`] — convex-optimization
//!   capacity partitioning (the hill-climbing step WhirlTool and Jigsaw use).
//! * [`LatencyCurve`] — Jigsaw's end-to-end latency model: access rate ×
//!   access latency plus miss rate × miss penalty, with optional bypassing
//!   at zero capacity (Whirlpool's Sec. 3.2/3.3 extension).
//!
//! # Example
//!
//! ```
//! use wp_mrc::{MattsonStack, MissCurve};
//!
//! let mut stack = MattsonStack::new();
//! // A tiny loop over 4 lines, twice: second pass hits at distance 4.
//! for _ in 0..2 {
//!     for line in 0..4u64 {
//!         stack.access(line);
//!     }
//! }
//! let hist = stack.histogram();
//! // 4 cold misses and 4 reuses at stack distance 4 (need >= 4 lines to hit).
//! assert_eq!(hist.cold_misses(), 4);
//! let curve = MissCurve::from_histogram(&hist, 8_000, 1);
//! // With at least 4 lines of capacity, only the cold misses remain.
//! assert!(curve.mpki_at(4) <= curve.mpki_at(0));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combine;
mod curve;
pub mod fxmap;
mod histogram;
mod hull;
mod latency;
mod mattson;
mod partition;
mod shards;
mod trace;

pub use combine::{combine_many, combine_miss_curves};
pub use curve::MissCurve;
pub use fxmap::{FastMap, FastSet};
pub use histogram::{
    max_miss_ratio_error, max_miss_ratio_error_with_slack, StackDistanceHistogram,
};
pub use hull::{convex_hull, convex_hull_points, hull_to_points, HullPoint};
pub use latency::{AccessLatencyModel, LatencyCurve, UniformLatency};
pub use mattson::{MattsonStack, SampledStack};
pub use partition::{
    partition_capacity, partition_capacity_hulled, partitioned_curve, PartitionOutcome,
};
pub use shards::{ShardsConfig, ShardsStack, SHARDS_MODULUS};
pub use trace::{
    curve_from_trace, curve_from_trace_sampled, histogram_from_trace, histogram_from_trace_sampled,
    profile_streams, profile_streams_scanned, ProfileMode, StreamProfile,
};

/// A cache line is 64 bytes throughout the reproduction (Table 3).
pub const LINE_BYTES: u64 = 64;

/// Default capacity granule used when quantizing curves: 64 KB = 1024 lines.
///
/// Jigsaw partitions bank capacity at sub-bank granularity; 64 KB gives
/// 8 granules per 512 KB bank and 200 points across the 4-core, 12.5 MB LLC.
pub const DEFAULT_GRANULE_LINES: u64 = 1024;
