//! SHARDS-style spatially-sampled stack-distance profiling.
//!
//! Exact Mattson profiling ([`MattsonStack`]) holds one reuse-map entry
//! per distinct line, which makes whole-trace miss curves the slowest and
//! hungriest step of the pipeline. SHARDS (Waldspurger et al., FAST'15)
//! observes that a *spatial* hash filter — track line `L` iff
//! `hash(L) mod P < T` — selects a uniform, consistent subset of lines,
//! and that stack distances measured over that subset estimate true
//! distances after scaling by the inverse sampling rate `1/R`, `R = T/P`.
//!
//! [`ShardsStack`] implements both SHARDS variants:
//!
//! * **fixed-rate** — a constant threshold chosen from
//!   [`ShardsConfig::fixed`]'s rate;
//! * **fixed-size (`s_max`)** — the tracked-line set is capped: when it
//!   overflows, the tracked line(s) with the highest hash are evicted and
//!   the threshold drops to that hash, so the rate adapts downward until
//!   memory is ~constant whatever the trace footprint.
//!
//! On [`take_histogram`](ShardsStack::take_histogram) each observation is
//! expanded by the rate in effect when it was recorded, and a SHARDS_adj
//! style correction renormalizes the histogram so its total matches the
//! number of references actually processed (done proportionally rather
//! than via the paper's first-bucket shift, so miss *ratios* — what every
//! consumer here reads — pick up no bias from it; see
//! [`snapshot_histogram`](ShardsStack::snapshot_histogram)).

use std::collections::BinaryHeap;

use crate::histogram::StackDistanceHistogram;
use crate::mattson::MattsonStack;

/// The hash modulus `P`: thresholds live in `[1, P]` and the sampling
/// rate is `T / P`. 2^24 matches the SHARDS paper and gives rate
/// resolution of ~6e-8.
pub const SHARDS_MODULUS: u64 = 1 << 24;

/// The spatial hash: a 64-bit finalizer (SplitMix64) reduced mod
/// [`SHARDS_MODULUS`]. Fixed — not seeded — so sampling is deterministic
/// across runs and processes, and every profiler observing a line agrees
/// on whether it is sampled.
#[inline]
fn spatial_hash(line: u64) -> u64 {
    let mut x = line.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x & (SHARDS_MODULUS - 1)
}

/// Configuration of a [`ShardsStack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardsConfig {
    /// Initial sampling rate in `(0, 1]`; the effective threshold is
    /// `round(rate * P)` clamped to `[1, P]`.
    pub rate: f64,
    /// Cap on the tracked-line set. When present, overflowing the cap
    /// evicts the highest-hash tracked line(s) and lowers the threshold,
    /// SHARDS fixed-size style; `None` keeps the rate fixed.
    pub s_max: Option<usize>,
}

impl ShardsConfig {
    /// Exact profiling: rate 1, no cap. A [`ShardsStack`] so configured
    /// produces histograms identical to a plain [`MattsonStack`].
    pub fn exact() -> Self {
        Self {
            rate: 1.0,
            s_max: None,
        }
    }

    /// Fixed-rate sampling at `rate` (clamped into `(0, 1]`).
    pub fn fixed(rate: f64) -> Self {
        Self { rate, s_max: None }
    }

    /// Rate-adaptive sampling: start at `rate`, never track more than
    /// `s_max` lines.
    pub fn adaptive(rate: f64, s_max: usize) -> Self {
        Self {
            rate,
            s_max: Some(s_max),
        }
    }

    /// Parses the `WP_MRC_SAMPLE` spelling: `"R"` (fixed rate) or
    /// `"R:SMAX"` (adaptive). Returns `None` for anything unparsable or
    /// out of range, matching the forgiving env-knob convention
    /// (`RUN_SCALE` etc.).
    ///
    /// ```
    /// use wp_mrc::ShardsConfig;
    /// assert_eq!(ShardsConfig::parse("0.01"), Some(ShardsConfig::fixed(0.01)));
    /// assert_eq!(
    ///     ShardsConfig::parse("0.1:8192"),
    ///     Some(ShardsConfig::adaptive(0.1, 8192))
    /// );
    /// assert_eq!(ShardsConfig::parse("banana"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let (rate_s, smax_s) = match s.split_once(':') {
            Some((r, m)) => (r, Some(m)),
            None => (s, None),
        };
        let rate: f64 = rate_s.parse().ok()?;
        if !(rate > 0.0 && rate <= 1.0) {
            return None;
        }
        let s_max = match smax_s {
            Some(m) => Some(
                m.replace('_', "")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)?,
            ),
            None => None,
        };
        Some(Self { rate, s_max })
    }

    fn threshold(&self) -> u64 {
        let t = (self.rate.clamp(0.0, 1.0) * SHARDS_MODULUS as f64).round() as u64;
        t.clamp(1, SHARDS_MODULUS)
    }
}

impl Default for ShardsConfig {
    fn default() -> Self {
        Self::exact()
    }
}

/// A SHARDS-sampled LRU stack-distance profiler.
///
/// Drives a [`MattsonStack`] with only the lines selected by the spatial
/// hash filter, recording each observed distance with the expansion and
/// weight implied by the sampling rate in effect at the time. With
/// [`ShardsConfig::adaptive`] the tracked set never exceeds `s_max`, so
/// memory is constant however large the trace.
///
/// # Example
///
/// ```
/// use wp_mrc::{ShardsConfig, ShardsStack};
/// let mut s = ShardsStack::new(ShardsConfig::adaptive(0.5, 128));
/// for i in 0..100_000u64 {
///     s.access(i % 4096);
/// }
/// assert!(s.tracked() <= 128);
/// let hist = s.take_histogram();
/// // SHARDS_adj pins the expanded total to the true access count.
/// assert_eq!(hist.total(), 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct ShardsStack {
    inner: MattsonStack,
    config: ShardsConfig,
    /// Current hash threshold `T`; a line is tracked iff
    /// `spatial_hash(line) < T`. Only ever decreases.
    threshold: u64,
    /// Max-heap of `(hash, line)` for every tracked line, so overflow
    /// evicts the highest-hash line(s) in `O(log n)`.
    tracked: BinaryHeap<(u64, u64)>,
    /// Expanded distance → accumulated weight (each observation weighs
    /// `1/R` at its recording time).
    finite: std::collections::BTreeMap<u64, f64>,
    cold: f64,
    /// Every reference offered, sampled or not — the SHARDS_adj target.
    total_seen: u64,
    peak_tracked: usize,
}

impl ShardsStack {
    /// Creates a sampled profiler. The underlying Mattson stack is
    /// pre-sized to `s_max` when one is set (the tracked set can never
    /// outgrow it).
    pub fn new(config: ShardsConfig) -> Self {
        let inner = match config.s_max {
            Some(cap) => MattsonStack::with_line_capacity(cap),
            None => MattsonStack::new(),
        };
        Self {
            inner,
            config,
            threshold: config.threshold(),
            tracked: BinaryHeap::new(),
            finite: std::collections::BTreeMap::new(),
            cold: 0.0,
            total_seen: 0,
            peak_tracked: 0,
        }
    }

    /// Processes one reference. Unsampled lines cost one hash; sampled
    /// lines drive the Mattson stack.
    pub fn access(&mut self, line: u64) {
        self.total_seen += 1;
        let h = spatial_hash(line);
        if h >= self.threshold {
            return;
        }
        // Weight and expansion use the rate in effect *now*.
        let weight = SHARDS_MODULUS as f64 / self.threshold as f64;
        match self.inner.access(line) {
            Some(d) => {
                // A sampled distance d estimates true distance d / R.
                let expanded = (d.saturating_mul(SHARDS_MODULUS) / self.threshold).max(1);
                *self.finite.entry(expanded).or_insert(0.0) += weight;
            }
            None => {
                self.cold += weight;
                // The eviction heap only exists to serve `s_max`
                // adaptation; fixed-rate mode would push one dead entry
                // per distinct sampled line and never pop.
                if let Some(cap) = self.config.s_max {
                    self.tracked.push((h, line));
                    if self.tracked.len() > cap {
                        self.evict_highest();
                    }
                    self.peak_tracked = self.peak_tracked.max(self.tracked.len());
                } else {
                    self.peak_tracked = self.inner.distinct_lines();
                }
            }
        }
    }

    /// Drops the tracked line(s) with the highest hash and lowers the
    /// threshold to that hash, so no future reference re-admits them.
    fn evict_highest(&mut self) {
        let Some(&(h_max, _)) = self.tracked.peek() else {
            return;
        };
        wp_obs::add(wp_obs::Counter::ShardsEvictions, 1);
        self.threshold = h_max;
        while let Some(&(h, line)) = self.tracked.peek() {
            if h < self.threshold {
                break;
            }
            self.tracked.pop();
            self.inner.remove(line);
        }
    }

    /// The current sampling rate `T / P` (≤ the configured rate; equal to
    /// it unless `s_max` adaptation has lowered the threshold).
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / SHARDS_MODULUS as f64
    }

    /// Lines currently tracked (the sampled LRU stack's distinct-line
    /// set; the eviction heap mirrors it only in `s_max` mode).
    pub fn tracked(&self) -> usize {
        self.inner.distinct_lines()
    }

    /// The largest tracked-set size ever reached — bounded by `s_max`
    /// when one is configured.
    pub fn peak_tracked(&self) -> usize {
        self.peak_tracked
    }

    /// References offered so far (sampled or not).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> ShardsConfig {
        self.config
    }

    #[cfg(test)]
    fn tracked_heap_len(&self) -> usize {
        self.tracked.len()
    }

    /// Builds the expanded, total-corrected histogram without resetting
    /// any state.
    ///
    /// The correction is the miss-ratio-preserving variant of SHARDS_adj:
    /// the expanded total should equal the number of references actually
    /// processed, so every bucket is rescaled by `total_seen / expanded`.
    /// (The paper's first-bucket adjustment pins the total too, but it
    /// converts the sampled-set's access-share noise — ±1/√n_s of the
    /// total — into phantom shortest-distance hits, which offsets the
    /// *entire* miss-ratio curve by that amount; proportional rescaling
    /// pins the total while leaving every miss ratio exactly as sampled.)
    ///
    /// When references were processed but *none* were sampled (a tiny
    /// footprint at a very low rate), there is no distance information at
    /// all; the histogram reports every reference as cold — the
    /// conservative all-miss curve — rather than coming back empty and
    /// masquerading as an all-hit stream.
    pub fn snapshot_histogram(&self) -> StackDistanceHistogram {
        let mut cold = self.cold;
        let mut buckets: Vec<(u64, f64)> = self.finite.iter().map(|(&d, &w)| (d, w)).collect();
        let expanded: f64 = cold + buckets.iter().map(|&(_, w)| w).sum::<f64>();
        if expanded > 0.0 {
            let scale = self.total_seen as f64 / expanded;
            cold *= scale;
            for b in &mut buckets {
                b.1 *= scale;
            }
        } else {
            cold = self.total_seen as f64;
        }
        // Cascade rounding: round cumulative weights, not buckets, so the
        // CDF shape survives quantization and the histogram total lands
        // exactly on `total_seen`.
        let mut hist = StackDistanceHistogram::new();
        let mut acc = 0.0f64;
        let mut emitted = 0u64;
        for (d, w) in buckets {
            acc += w;
            let count = (acc.round().max(0.0) as u64).saturating_sub(emitted);
            if count > 0 {
                hist.record_weighted(d, count);
                emitted += count;
            }
        }
        acc += cold;
        let cold_count = (acc.round().max(0.0) as u64).saturating_sub(emitted);
        if cold_count > 0 {
            hist.record_cold_weighted(cold_count);
        }
        hist
    }

    /// Takes the corrected histogram and resets the accumulated counts
    /// (the sampled LRU stack, threshold, and peak statistics survive, so
    /// reuse across interval boundaries is still seen — matching
    /// [`MattsonStack::take_histogram`]).
    pub fn take_histogram(&mut self) -> StackDistanceHistogram {
        let hist = self.snapshot_histogram();
        self.finite.clear();
        self.cold = 0.0;
        self.total_seen = 0;
        // Drop the inner stack's shadow histogram too: nothing reads it,
        // and clearing keeps long multi-interval profiles lean.
        let _ = self.inner.take_histogram();
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_stream(n: usize, lines: u64) -> Vec<u64> {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % lines
            })
            .collect()
    }

    use crate::histogram::max_miss_ratio_error as max_mr_err;

    #[test]
    fn rate_one_matches_exact_mattson_exactly() {
        let trace = xorshift_stream(20_000, 700);
        let mut exact = MattsonStack::new();
        let mut shards = ShardsStack::new(ShardsConfig::exact());
        for &l in &trace {
            exact.access(l);
            shards.access(l);
        }
        assert_eq!(exact.take_histogram(), shards.take_histogram());
    }

    #[test]
    fn fixed_rate_curve_is_close_to_exact() {
        let trace = xorshift_stream(200_000, 20_000);
        let mut exact = MattsonStack::new();
        let mut shards = ShardsStack::new(ShardsConfig::fixed(0.1));
        for &l in &trace {
            exact.access(l);
            shards.access(l);
        }
        let he = exact.take_histogram();
        let hs = shards.take_histogram();
        assert_eq!(hs.total(), he.total(), "SHARDS_adj pins the total");
        let err = max_mr_err(&he, &hs, 256);
        assert!(err <= 0.02, "miss-ratio error {err} > 0.02");
    }

    #[test]
    fn adaptive_cap_holds_and_stays_accurate() {
        let trace = xorshift_stream(300_000, 50_000);
        let mut exact = MattsonStack::new();
        let mut shards = ShardsStack::new(ShardsConfig::adaptive(1.0, 2048));
        for &l in &trace {
            exact.access(l);
            shards.access(l);
            assert!(shards.tracked() <= 2048);
        }
        assert!(shards.peak_tracked() <= 2048);
        assert!(shards.rate() < 1.0, "cap must have lowered the threshold");
        let err = max_mr_err(&exact.take_histogram(), &shards.take_histogram(), 512);
        assert!(err <= 0.03, "adaptive miss-ratio error {err} > 0.03");
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = xorshift_stream(100_000, 10_000);
        let run = || {
            let mut s = ShardsStack::new(ShardsConfig::adaptive(0.25, 1024));
            for &l in &trace {
                s.access(l);
            }
            s.take_histogram()
        };
        assert_eq!(run(), run(), "same input, same config => same histogram");
    }

    #[test]
    fn take_histogram_resets_counts_not_stack() {
        let mut s = ShardsStack::new(ShardsConfig::exact());
        s.access(1);
        s.access(2);
        let h = s.take_histogram();
        assert_eq!(h.total(), 2);
        assert_eq!(s.total_seen(), 0);
        // The stack survives: re-touching line 1 is a distance-2 hit.
        s.access(1);
        let h2 = s.take_histogram();
        assert_eq!(h2.cold_misses(), 0);
        assert_eq!(h2.hits_at(2), 1);
    }

    #[test]
    fn zero_sampled_references_report_all_cold() {
        // A 3-line footprint at a rate so low nothing is sampled: the
        // histogram must still pin its total and read as all-miss, not
        // come back empty (which downstream would read as all-hit).
        let mut s = ShardsStack::new(ShardsConfig::fixed(1e-7));
        for i in 0..1000u64 {
            s.access(i % 3);
        }
        assert_eq!(s.tracked(), 0, "nothing should be sampled");
        let h = s.take_histogram();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.cold_misses(), 1000);
        assert!((h.miss_ratio_at(1 << 30) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_rate_keeps_no_eviction_heap() {
        let mut s = ShardsStack::new(ShardsConfig::fixed(0.5));
        for i in 0..10_000u64 {
            s.access(i);
        }
        // tracked()/peak_tracked() still report the sampled line set…
        assert!(s.tracked() > 3000);
        assert_eq!(s.peak_tracked(), s.tracked());
        // …while the heap (only needed for s_max eviction) stays empty.
        assert_eq!(s.tracked_heap_len(), 0);
    }

    #[test]
    fn config_parse_spellings() {
        assert_eq!(ShardsConfig::parse(" 0.5 "), Some(ShardsConfig::fixed(0.5)));
        assert_eq!(
            ShardsConfig::parse("0.01:16_384"),
            Some(ShardsConfig::adaptive(0.01, 16_384))
        );
        for bad in ["", "0", "-0.1", "1.5", "0.1:", "0.1:0", "0.1:x", "nan"] {
            assert_eq!(ShardsConfig::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn hash_is_uniform_enough() {
        // Low 24 bits of the finalizer over sequential lines: each
        // quartile of the modulus should get ~25% of lines.
        let mut quartiles = [0u32; 4];
        for line in 0..100_000u64 {
            quartiles[(spatial_hash(line) * 4 / SHARDS_MODULUS) as usize] += 1;
        }
        for q in quartiles {
            assert!(
                (20_000..30_000).contains(&q),
                "skewed quartiles {quartiles:?}"
            );
        }
    }
}
