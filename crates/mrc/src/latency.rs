//! Jigsaw's end-to-end memory latency model (Sec. 2.4), with Whirlpool's
//! bypass extension (Sec. 3.2/3.3).
//!
//! The total latency of a VC is the sum of VC access latency (access rate ×
//! network-plus-bank latency) and memory latency (miss rate × miss penalty).
//! Jigsaw sizes VCs on these curves rather than raw miss curves, so a VC is
//! not grown when the miss-rate reduction does not pay for the extra network
//! distance. Whirlpool's only change for bypassable VCs is to drop the cache
//! access latency at size zero — after which the unmodified partitioning
//! algorithm chooses bypassing whenever it wins.

use crate::curve::MissCurve;

/// Average LLC access latency (network round trip + bank) as a function of
/// VC size, for a VC placed in the banks nearest its consumer.
///
/// `wp-noc` provides the real mesh-based implementation; [`UniformLatency`]
/// is a trivial one for tests and monolithic-cache modelling.
pub trait AccessLatencyModel {
    /// Average access latency in cycles when the VC spans `granules`
    /// granules of capacity (placed greedily in the nearest banks).
    fn access_latency(&self, granules: usize) -> f64;
}

/// A constant access latency regardless of size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformLatency(pub f64);

impl AccessLatencyModel for UniformLatency {
    fn access_latency(&self, _granules: usize) -> f64 {
        self.0
    }
}

impl<F: Fn(usize) -> f64> AccessLatencyModel for F {
    fn access_latency(&self, granules: usize) -> f64 {
        self(granules)
    }
}

/// A total-latency curve: expected data-stall cycles per instruction (CPI)
/// as a function of VC capacity — the curves of Fig. 8b / 9b / 11b-c.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyCurve {
    points: Vec<f64>,
    granule_lines: u64,
}

impl LatencyCurve {
    /// Builds the latency curve for a VC.
    ///
    /// * `misses` — the VC's miss curve (MPKI vs capacity).
    /// * `apki` — the VC's LLC access rate (accesses per kilo-instruction);
    ///   normally `misses.at_zero()`.
    /// * `lat` — access-latency model (network + bank, cycles).
    /// * `miss_penalty` — cycles added per LLC miss (memory latency).
    /// * `bypassable` — if true, the size-0 point excludes the cache access
    ///   latency entirely: L2 misses go straight to memory (Whirlpool's VC
    ///   bypassing). Only single-thread VCs may be bypassed; the caller
    ///   enforces that rule.
    pub fn build(
        misses: &MissCurve,
        apki: f64,
        lat: &dyn AccessLatencyModel,
        miss_penalty: f64,
        bypassable: bool,
    ) -> Self {
        assert!(apki >= 0.0 && miss_penalty >= 0.0);
        let mut points = Vec::with_capacity(misses.len());
        for s in 0..misses.len() {
            let access_lat = if s == 0 && bypassable {
                0.0
            } else {
                lat.access_latency(s)
            };
            let cpi = (apki * access_lat + misses.mpki_at(s) * miss_penalty) / 1000.0;
            points.push(cpi);
        }
        Self {
            points,
            granule_lines: misses.granule_lines(),
        }
    }

    /// Stall CPI at `granules` of capacity (saturating beyond the end).
    pub fn cpi_at(&self, granules: usize) -> f64 {
        self.points[granules.min(self.points.len() - 1)]
    }

    /// Raw points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Latency curves are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lines per granule.
    pub fn granule_lines(&self) -> u64 {
        self.granule_lines
    }

    /// The capacity (granules) minimizing total latency — where Jigsaw stops
    /// growing a VC even if more capacity would still cut misses (Fig. 8b).
    pub fn argmin(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.points.iter().enumerate() {
            if p < self.points[best] - 1e-12 {
                best = i;
            }
        }
        best
    }

    /// The cost vector for the partitioning machinery: the curve's running
    /// minimum (so that cost never increases with capacity — allocating
    /// beyond the latency-optimal point is modelled as keeping the optimum,
    /// since the runtime would simply not use the excess).
    pub fn to_cost_curve(&self) -> Vec<f64> {
        let mut out = self.points.clone();
        for i in 1..out.len() {
            if out[i] > out[i - 1] {
                out[i] = out[i - 1];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss_curve() -> MissCurve {
        MissCurve::new(vec![50.0, 20.0, 8.0, 3.0, 1.0, 1.0, 1.0], 4)
    }

    #[test]
    fn latency_decomposition() {
        let m = miss_curve();
        let lc = LatencyCurve::build(&m, 50.0, &UniformLatency(20.0), 120.0, false);
        // at s=2: (50*20 + 8*120)/1000
        assert!((lc.cpi_at(2) - (1000.0 + 960.0) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bypass_zeroes_access_latency_at_zero() {
        let m = miss_curve();
        let with = LatencyCurve::build(&m, 50.0, &UniformLatency(20.0), 120.0, true);
        let without = LatencyCurve::build(&m, 50.0, &UniformLatency(20.0), 120.0, false);
        assert!(with.cpi_at(0) < without.cpi_at(0));
        assert_eq!(with.cpi_at(1), without.cpi_at(1));
        // Bypassed point = only miss traffic.
        assert!((with.cpi_at(0) - 50.0 * 120.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_pool_prefers_bypass() {
        // Flat miss curve: caching never helps, bypassing removes lookup cost.
        let m = MissCurve::flat(40.0, 6, 4);
        let lc = LatencyCurve::build(&m, 40.0, &UniformLatency(25.0), 120.0, true);
        assert_eq!(lc.argmin(), 0, "streaming data should bypass");
    }

    #[test]
    fn growing_latency_caps_useful_size() {
        // Miss curve flattens at 3 granules; latency grows with size, so the
        // optimum is at the knee, not the end (dt's unused banks, Fig. 4).
        let m = miss_curve();
        let grow = |g: usize| 10.0 + 4.0 * g as f64;
        let lc = LatencyCurve::build(&m, 50.0, &grow, 120.0, false);
        let opt = lc.argmin();
        assert!(
            (2..=4).contains(&opt),
            "optimum {opt} should sit at the knee"
        );
        assert!(lc.cpi_at(opt) < lc.cpi_at(6));
    }

    #[test]
    fn cost_curve_is_non_increasing() {
        let m = miss_curve();
        let grow = |g: usize| 10.0 + 6.0 * g as f64;
        let lc = LatencyCurve::build(&m, 50.0, &grow, 120.0, false);
        let cc = lc.to_cost_curve();
        assert!(cc.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn closure_models_work() {
        let m = miss_curve();
        let lc = LatencyCurve::build(&m, 10.0, &|_g: usize| 15.0, 100.0, false);
        assert!(lc.cpi_at(0) > 0.0);
    }
}
