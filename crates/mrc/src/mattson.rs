//! Exact and sampled LRU stack-distance profiling (Mattson's algorithm).

use crate::fxmap::FastMap;
use crate::histogram::StackDistanceHistogram;

/// A Fenwick (binary-indexed) tree over access timestamps, used to count the
/// number of distinct lines touched since a given time in `O(log n)`.
///
/// Keeps a shadow array of point values so the tree can be rebuilt exactly
/// when it grows (zero-extending a Fenwick array is incorrect once prefix
/// queries cross the old boundary).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
    vals: Vec<u32>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
            vals: vec![0; n],
        }
    }

    /// Returns `true` when the tree had to reallocate (the caller counts
    /// these; a properly pre-sized profiler never grows).
    fn grow_to(&mut self, n: usize) -> bool {
        if n <= self.vals.len() {
            return false;
        }
        let new_len = (n + 1).next_power_of_two();
        self.vals.resize(new_len, 0);
        self.tree = vec![0; new_len + 1];
        self.build_tree();
        true
    }

    /// O(len) Fenwick build from `vals`: push each node's partial sum to
    /// its parent. `tree` must already be zeroed.
    fn build_tree(&mut self) {
        let len = self.vals.len();
        for i in 1..=len {
            self.tree[i] += self.vals[i - 1];
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    /// Resets the tree *in place* to `1` at ranks `0..n` and `0` above —
    /// the shape timestamp compaction needs — growing only if `n` exceeds
    /// the current capacity. Returns `true` on a reallocation.
    fn rebuild_ones(&mut self, n: usize) -> bool {
        let grew = if n > self.vals.len() {
            let new_len = (n + 1).next_power_of_two();
            self.vals.resize(new_len, 0);
            self.tree.resize(new_len + 1, 0);
            true
        } else {
            false
        };
        self.vals[..n].fill(1);
        self.vals[n..].fill(0);
        self.tree.fill(0);
        self.build_tree();
        grew
    }

    fn add(&mut self, i: usize, delta: i32) {
        self.vals[i] = (self.vals[i] as i64 + delta as i64) as u32;
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of `[a, b]` inclusive; zero if the range is empty.
    fn range(&self, a: usize, b: usize) -> u64 {
        if a > b {
            return 0;
        }
        let lo = if a == 0 { 0 } else { self.prefix(a - 1) };
        self.prefix(b) - lo
    }
}

/// Exact LRU stack-distance profiler.
///
/// Feed it line addresses with [`access`](MattsonStack::access); it returns
/// the stack distance of each access (or `None` for a cold first touch) and
/// accumulates a [`StackDistanceHistogram`]. The implementation is the
/// classic timestamp + Fenwick-tree formulation: `O(log n)` per access,
/// with periodic timestamp compaction so memory stays proportional to the
/// number of *distinct* lines rather than total accesses.
///
/// # Example
///
/// ```
/// use wp_mrc::MattsonStack;
/// let mut s = MattsonStack::new();
/// assert_eq!(s.access(0xA), None);    // cold
/// assert_eq!(s.access(0xB), None);    // cold
/// assert_eq!(s.access(0xA), Some(2)); // B then A touched since last A
/// ```
#[derive(Debug, Clone)]
pub struct MattsonStack {
    last_time: FastMap<u64, usize>,
    present: Fenwick,
    /// Reused compaction buffer of `(timestamp, line)` pairs, so
    /// steady-state compaction allocates nothing.
    scratch: Vec<(usize, u64)>,
    time: usize,
    live: usize,
    reallocations: u64,
    hist: StackDistanceHistogram,
}

impl Default for MattsonStack {
    fn default() -> Self {
        Self::new()
    }
}

impl MattsonStack {
    /// Compaction slack: timestamps are compacted once the time axis
    /// exceeds this multiple of the live set.
    const SLACK: usize = 4;

    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self {
            last_time: FastMap::default(),
            present: Fenwick::with_capacity(1 << 12),
            scratch: Vec::new(),
            time: 0,
            live: 0,
            reallocations: 0,
            hist: StackDistanceHistogram::new(),
        }
    }

    /// Creates a profiler pre-sized for a stream expected to touch up to
    /// `expected_lines` distinct lines — e.g. a recorded trace's
    /// [`line_span`](wp_trace::StreamInfo::line_span). The Fenwick tree
    /// is sized for the worst pre-compaction time axis and the reuse map
    /// for the full line set, so steady-state profiling performs zero
    /// reallocations ([`reallocations`](Self::reallocations) stays 0) as
    /// long as the estimate holds.
    pub fn with_line_capacity(expected_lines: usize) -> Self {
        let lines = expected_lines.max(1);
        // Timestamps compact once time >= max(2^16, SLACK * live), so the
        // time axis never exceeds that bound while `live <= lines`.
        let time_cap = (Self::SLACK * lines).max(1 << 16);
        Self {
            last_time: FastMap::with_capacity_and_hasher(lines, Default::default()),
            present: Fenwick::with_capacity(time_cap),
            scratch: Vec::with_capacity(lines),
            time: 0,
            live: 0,
            reallocations: 0,
            hist: StackDistanceHistogram::new(),
        }
    }

    /// Processes one access to `line` and returns its stack distance
    /// (`None` for a cold miss). Distances count distinct lines including
    /// the accessed line itself, so a hit immediately after the previous
    /// access to the same line has distance 1.
    pub fn access(&mut self, line: u64) -> Option<u64> {
        self.maybe_compact();
        let t = self.time;
        self.reallocations += u64::from(self.present.grow_to(t + 1));
        let dist = match self.last_time.insert(line, t) {
            Some(t0) => {
                // Distinct lines touched strictly after t0, plus this line.
                let between = self.present.range(t0 + 1, t.saturating_sub(1));
                self.present.add(t0, -1);
                Some(between + 1)
            }
            None => {
                self.live += 1;
                None
            }
        };
        self.present.add(t, 1);
        self.time += 1;
        match dist {
            Some(d) => self.hist.record(d),
            None => self.hist.record_cold(),
        }
        dist
    }

    /// Number of distinct lines seen so far.
    pub fn distinct_lines(&self) -> usize {
        self.live
    }

    /// Buffer reallocations performed so far (Fenwick growths). A stack
    /// built with [`with_line_capacity`](Self::with_line_capacity) whose
    /// estimate holds reports 0 after any number of accesses.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Forgets `line` entirely: its next access is a cold miss and it no
    /// longer counts towards other lines' stack distances. Sampled
    /// profilers use this to evict lines when their hash threshold drops
    /// (SHARDS-style rate adaptation). Returns whether the line was
    /// present.
    pub fn remove(&mut self, line: u64) -> bool {
        match self.last_time.remove(&line) {
            Some(t0) => {
                self.present.add(t0, -1);
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.hist
    }

    /// Takes the histogram, leaving an empty one (the LRU stack itself is
    /// preserved, so reuse across interval boundaries is still seen).
    pub fn take_histogram(&mut self) -> StackDistanceHistogram {
        std::mem::take(&mut self.hist)
    }

    /// Compacts timestamps when the time axis is much larger than the live
    /// set, keeping the Fenwick tree small on long runs. Compaction reuses
    /// the existing buffers (the Fenwick capacity is the high-water mark),
    /// so a pre-sized stack compacts without allocating.
    fn maybe_compact(&mut self) {
        if self.time < (1 << 16) || self.time < Self::SLACK * self.live.max(1) {
            return;
        }
        self.scratch.clear();
        self.scratch
            .extend(self.last_time.iter().map(|(&a, &t)| (t, a)));
        self.scratch.sort_unstable();
        let n = self.scratch.len();
        for (rank, &(_, addr)) in self.scratch.iter().enumerate() {
            self.last_time.insert(addr, rank);
        }
        self.reallocations += u64::from(self.present.rebuild_ones(n));
        self.time = n;
    }
}

/// A spatially-sampled stack-distance profiler (SHARDS-style).
///
/// Only lines whose hash falls under a threshold are tracked; observed
/// distances and counts are scaled by the inverse sampling rate. This is the
/// model for Jigsaw/Whirlpool's GMON hardware monitors, which sample a
/// subset of sets/lines to keep overheads low (Sec. 2.4/3.2).
#[derive(Debug, Clone)]
pub struct SampledStack {
    inner: MattsonStack,
    rate_log2: u32,
    hist: StackDistanceHistogram,
}

impl SampledStack {
    /// Creates a profiler that samples one in `2^rate_log2` lines.
    /// `rate_log2 == 0` degenerates to exact profiling.
    pub fn new(rate_log2: u32) -> Self {
        Self {
            inner: MattsonStack::new(),
            rate_log2,
            hist: StackDistanceHistogram::new(),
        }
    }

    fn sampled(&self, line: u64) -> bool {
        if self.rate_log2 == 0 {
            return true;
        }
        // Fibonacci hashing: cheap, well-mixed low bits.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.rate_log2)) == 0
    }

    /// Processes one access; untracked lines are ignored.
    pub fn access(&mut self, line: u64) {
        if !self.sampled(line) {
            return;
        }
        let scale = 1u64 << self.rate_log2;
        match self.inner.access(line) {
            Some(d) => self.hist.record_weighted(d * scale, scale),
            None => self.hist.record_cold_weighted(scale),
        }
    }

    /// The accumulated (scaled) histogram.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.hist
    }

    /// Takes the scaled histogram, leaving an empty one.
    pub fn take_histogram(&mut self) -> StackDistanceHistogram {
        std::mem::take(&mut self.hist)
    }

    /// One in `2^rate_log2` lines are tracked.
    pub fn rate_log2(&self) -> u32 {
        self.rate_log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force stack distance for cross-checking.
    fn brute_distances(trace: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &a) in trace.iter().enumerate() {
            let mut prev = None;
            for j in (0..i).rev() {
                if trace[j] == a {
                    prev = Some(j);
                    break;
                }
            }
            match prev {
                None => out.push(None),
                Some(j) => {
                    let mut distinct = std::collections::HashSet::new();
                    for &b in &trace[j + 1..=i] {
                        distinct.insert(b);
                    }
                    out.push(Some(distinct.len() as u64));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_small() {
        let trace = [1u64, 2, 3, 1, 2, 2, 4, 3, 1];
        let mut s = MattsonStack::new();
        let got: Vec<_> = trace.iter().map(|&a| s.access(a)).collect();
        assert_eq!(got, brute_distances(&trace));
    }

    #[test]
    fn matches_brute_force_random() {
        // Deterministic xorshift trace over a small address set.
        let mut x = 0x1234_5678u64;
        let mut trace = Vec::new();
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.push(x % 23);
        }
        let mut s = MattsonStack::new();
        let got: Vec<_> = trace.iter().map(|&a| s.access(a)).collect();
        assert_eq!(got, brute_distances(&trace));
    }

    #[test]
    fn compaction_preserves_distances() {
        // Long trace over few lines forces compaction; distances must stay
        // correct afterwards.
        let mut s = MattsonStack::new();
        for i in 0..200_000u64 {
            s.access(i % 8);
        }
        // Steady state: every access is distance 8.
        assert_eq!(s.access(0), Some(8));
        assert_eq!(s.distinct_lines(), 8);
    }

    #[test]
    fn sequential_scan_is_all_cold_then_cyclic() {
        let mut s = MattsonStack::new();
        for i in 0..64u64 {
            assert_eq!(s.access(i), None);
        }
        for i in 0..64u64 {
            assert_eq!(s.access(i), Some(64));
        }
    }

    #[test]
    fn sampled_rate_zero_is_exact() {
        let mut exact = MattsonStack::new();
        let mut sampled = SampledStack::new(0);
        for i in 0..100u64 {
            exact.access(i % 10);
            sampled.access(i % 10);
        }
        assert_eq!(exact.histogram(), sampled.histogram());
    }

    #[test]
    fn sampled_total_is_close_to_exact() {
        // With rate 1/4 over many uniformly-hashed lines, totals should be
        // within a reasonable factor.
        let mut sampled = SampledStack::new(2);
        let n = 40_000u64;
        for i in 0..n {
            sampled.access(i.wrapping_mul(2654435761) % 4096);
        }
        let total = sampled.histogram().total();
        assert!(
            total > n / 2 && total < n * 2,
            "scaled total {total} too far from {n}"
        );
    }

    #[test]
    fn take_histogram_resets_counts_not_stack() {
        let mut s = MattsonStack::new();
        s.access(1);
        s.access(2);
        let h = s.take_histogram();
        assert_eq!(h.total(), 2);
        assert_eq!(s.histogram().total(), 0);
        // Stack survives: this is a hit at distance 2, not a cold miss.
        assert_eq!(s.access(1), Some(2));
    }
}
