//! The Appendix-B *flow model* for combining miss-rate curves.
//!
//! When two pools share one LRU cache, accesses from either pool push lines
//! from both towards eviction. The paper models this with *flow*: the rate
//! at which lines move down the stack equals the miss rate at the current
//! size, so when pools are merged each pool's read head advances in
//! proportion to its share of the combined flow (Listing 1, Fig. 23).

use crate::curve::MissCurve;

/// Estimates the miss curve of two pools sharing a single cache.
///
/// Direct transcription of the paper's Listing 1, generalized to fractional
/// read-head positions via linear interpolation:
///
/// ```text
/// def combineMissCurves(m1, m2):
///     s1, s2 = 0, 0
///     for s = 0 to N:
///         m[s] = m1[s1] + m2[s2]
///         s1 += m1[s1] / m[s]
///         s2 += m2[s2] / m[s]
///     return m
/// ```
///
/// The output has one "write head" at `s` and two "read heads" `s1`, `s2`
/// that advance according to their relative flows. The model is commutative
/// and (approximately) associative, recombines similar pools into a similar
/// result, and changes little when adding an infrequently-accessed pool —
/// the properties Fig. 23 illustrates (verified in this module's tests).
///
/// # Panics
///
/// Panics if the curves use different granule sizes.
pub fn combine_miss_curves(m1: &MissCurve, m2: &MissCurve) -> MissCurve {
    assert_eq!(
        m1.granule_lines(),
        m2.granule_lines(),
        "combine requires a shared granule"
    );
    let n = m1.len() + m2.len() - 1;
    // With imbalanced flows one read head can lag behind its curve's end at
    // step n; keep going (bounded) until both heads saturate so the combined
    // curve's floor equals the sum of the input floors.
    let max_steps = 8 * n + 16;
    let (end1, end2) = ((m1.len() - 1) as f64, (m2.len() - 1) as f64);
    let mut out = Vec::with_capacity(n);
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for step in 0..max_steps {
        let f1 = interp(m1, s1);
        let f2 = interp(m2, s2);
        let total = f1 + f2;
        if step >= n && s1 >= end1 - 1e-9 && s2 >= end2 - 1e-9 {
            break;
        }
        out.push(total);
        if total > 1e-12 {
            s1 += f1 / total;
            s2 += f2 / total;
        } else {
            // No remaining flow: both pools fit; heads drift equally.
            s1 += 0.5;
            s2 += 0.5;
        }
    }
    // Exact floor, in case the iteration cap cut convergence short.
    let floor = m1.floor() + m2.floor();
    match out.last_mut() {
        Some(last) if *last > floor => *last = floor,
        Some(_) => {}
        None => out.push(floor),
    }
    MissCurve::new(out, m1.granule_lines())
}

/// Folds [`combine_miss_curves`] over any number of pools.
///
/// The model is commutative/associative, so fold order does not
/// meaningfully affect the result.
///
/// # Panics
///
/// Panics if `curves` is empty or granules differ.
pub fn combine_many(curves: &[MissCurve]) -> MissCurve {
    assert!(!curves.is_empty(), "need at least one curve");
    let mut acc = curves[0].clone();
    for c in &curves[1..] {
        acc = combine_miss_curves(&acc, c);
    }
    acc
}

/// Linear interpolation of a curve at fractional granule position `s`.
fn interp(m: &MissCurve, s: f64) -> f64 {
    let lo = s.floor() as usize;
    if lo + 1 >= m.len() {
        return m.floor();
    }
    let frac = s - lo as f64;
    m.points()[lo] * (1.0 - frac) + m.points()[lo + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric(apki: f64, ratio: f64, n: usize) -> MissCurve {
        let pts = (0..n).map(|i| apki * ratio.powi(i as i32)).collect();
        MissCurve::new(pts, 4)
    }

    #[test]
    fn zero_capacity_sums_access_rates() {
        let a = geometric(10.0, 0.5, 8);
        let b = geometric(30.0, 0.8, 8);
        let c = combine_miss_curves(&a, &b);
        assert!((c.at_zero() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn commutative() {
        let a = geometric(10.0, 0.5, 10);
        let b = geometric(5.0, 0.9, 14);
        let ab = combine_miss_curves(&a, &b);
        let ba = combine_miss_curves(&b, &a);
        for i in 0..ab.len() {
            assert!((ab.mpki_at(i) - ba.mpki_at(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn approximately_associative() {
        let a = geometric(12.0, 0.6, 10);
        let b = geometric(6.0, 0.8, 12);
        let c = geometric(20.0, 0.4, 8);
        let left = combine_miss_curves(&combine_miss_curves(&a, &b), &c);
        let right = combine_miss_curves(&a, &combine_miss_curves(&b, &c));
        // The paper calls the model associative; numerically this holds to a
        // few percent of the total access rate (38 APKI here) — the residual
        // is interpolation error on the discrete grid.
        for i in 0..left.len().min(right.len()) {
            assert!(
                (left.mpki_at(i) - right.mpki_at(i)).abs() < 0.05 * 38.0,
                "divergence at {i}: {} vs {}",
                left.mpki_at(i),
                right.mpki_at(i)
            );
        }
    }

    #[test]
    fn recombining_split_pool_recovers_original() {
        // Fig. 23b: split a pool into two identical halves (each sees half
        // the accesses over half the footprint), recombine, and get the
        // original back.
        let orig = geometric(20.0, 0.7, 17);
        // Half-pool: mpki scaled by 1/2, capacity axis compressed by 2.
        let half_pts: Vec<f64> = (0..9).map(|i| orig.mpki_at(i * 2) / 2.0).collect();
        let half = MissCurve::new(half_pts, 4);
        let re = combine_miss_curves(&half, &half);
        for i in 0..orig.len() {
            let err = (re.mpki_at(i) - orig.mpki_at(i)).abs();
            // Tolerance: 5% of the access rate, the grid-interpolation error
            // floor of the flow model on a convex curve.
            assert!(
                err < 0.05 * orig.at_zero(),
                "point {i}: {} vs {}",
                re.mpki_at(i),
                orig.mpki_at(i)
            );
        }
    }

    #[test]
    fn tiny_pool_barely_perturbs() {
        let big = geometric(50.0, 0.7, 12);
        let tiny = geometric(0.05, 0.5, 4);
        let c = combine_miss_curves(&big, &tiny);
        for i in 0..big.len() {
            assert!(
                (c.mpki_at(i) - big.mpki_at(i)).abs() < 0.3,
                "tiny pool changed point {i} too much"
            );
        }
    }

    #[test]
    fn combined_needs_more_capacity_than_either() {
        // Merging competing pools inflates misses at intermediate sizes
        // relative to what each pool alone would see with that capacity.
        let a = geometric(20.0, 0.5, 10);
        let b = geometric(20.0, 0.5, 10);
        let c = combine_miss_curves(&a, &b);
        // At capacity 4, each alone has mpki a(4); combined at 4 behaves
        // like each at ~2, which is worse than 2*a(4).
        assert!(c.mpki_at(4) > 2.0 * a.mpki_at(4) - 1e-9);
    }

    #[test]
    fn monotone_inputs_give_monotone_output() {
        let a = geometric(9.0, 0.65, 9);
        let b = geometric(14.0, 0.85, 13);
        assert!(combine_miss_curves(&a, &b).is_monotone());
    }

    #[test]
    fn combine_many_matches_pairwise() {
        let a = geometric(8.0, 0.6, 8);
        let b = geometric(4.0, 0.7, 8);
        let all = combine_many(&[a.clone(), b.clone()]);
        let pair = combine_miss_curves(&a, &b);
        assert_eq!(all.points(), pair.points());
    }

    #[test]
    fn both_streams_flat_zero() {
        let a = MissCurve::new(vec![0.0, 0.0, 0.0], 4);
        let b = MissCurve::new(vec![0.0, 0.0], 4);
        let c = combine_miss_curves(&a, &b);
        assert!(c.points().iter().all(|&p| p == 0.0));
    }
}
