//! A fast, non-cryptographic hasher for the simulator's hot paths.
//!
//! The standard library's SipHash is robust against adversarial keys but
//! costs ~10× more than needed for line addresses and page numbers, which
//! dominate this workspace's inner loops. `FxHasher` is the classic
//! multiply-rotate mix (as used by rustc); [`FastMap`] / [`FastSet`] are
//! drop-in `HashMap`/`HashSet` aliases over it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small ints");
    }

    #[test]
    fn set_works() {
        let mut s: FastSet<u64> = FastSet::default();
        s.insert(42);
        assert!(s.contains(&42));
        assert!(!s.contains(&43));
    }
}
