//! Convex-optimization capacity partitioning.
//!
//! Given per-pool cost curves (miss curves for WhirlTool, end-to-end latency
//! curves for Jigsaw/Whirlpool), allocate a capacity budget across pools to
//! minimize total cost. On convex curves, greedy marginal allocation (hill
//! climbing) is optimal, which is why callers hull their curves first
//! (Sec. 4.2); [`partition_capacity`] does the hulling internally.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::curve::MissCurve;
use crate::hull::{convex_hull_points, hull_to_points};

/// Result of partitioning a capacity budget across pools.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Granules allocated to each input curve (sums to the budget, unless
    /// every curve saturated first).
    pub allocations: Vec<usize>,
    /// Total cost (sum over pools of their hulled curve at the allocation).
    pub total_cost: f64,
}

#[derive(Debug, PartialEq)]
struct Candidate {
    gain: f64,
    idx: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Partitions `total_granules` across cost curves that are **already convex**
/// (e.g. hull outputs), minimizing the summed cost.
///
/// Greedy: repeatedly give one granule to the pool with the largest marginal
/// cost reduction. For convex curves this is globally optimal. Pools whose
/// curves have flattened receive no further capacity, so not all of the
/// budget is necessarily spent — exactly how Jigsaw leaves far-away banks
/// unused when extra capacity does not pay for its latency (Fig. 4).
pub fn partition_capacity_hulled(costs: &[Vec<f64>], total_granules: usize) -> PartitionOutcome {
    let n = costs.len();
    let mut alloc = vec![0usize; n];
    let mut heap = BinaryHeap::with_capacity(n);
    let gain_at = |curve: &[f64], a: usize| -> f64 {
        if a + 1 < curve.len() {
            curve[a] - curve[a + 1]
        } else {
            0.0
        }
    };
    for (i, c) in costs.iter().enumerate() {
        if c.is_empty() {
            continue;
        }
        let g = gain_at(c, 0);
        if g > 1e-12 {
            heap.push(Candidate { gain: g, idx: i });
        }
    }
    let mut remaining = total_granules;
    while remaining > 0 {
        let Some(cand) = heap.pop() else { break };
        let i = cand.idx;
        // Stale-entry check: recompute the gain at the current allocation.
        let cur = gain_at(&costs[i], alloc[i]);
        if (cur - cand.gain).abs() > 1e-12 {
            if cur > 1e-12 {
                heap.push(Candidate { gain: cur, idx: i });
            }
            continue;
        }
        alloc[i] += 1;
        remaining -= 1;
        let next = gain_at(&costs[i], alloc[i]);
        if next > 1e-12 {
            heap.push(Candidate { gain: next, idx: i });
        }
    }
    let total_cost = costs
        .iter()
        .zip(&alloc)
        .map(|(c, &a)| {
            if c.is_empty() {
                0.0
            } else {
                c[a.min(c.len() - 1)]
            }
        })
        .sum();
    PartitionOutcome {
        allocations: alloc,
        total_cost,
    }
}

/// Partitions capacity across miss curves, hulling them first.
///
/// This is the WhirlTool analyzer's inner operation and the reference
/// behaviour for Jigsaw's sizing step (which uses latency curves through
/// the same machinery).
pub fn partition_capacity(curves: &[MissCurve], total_granules: usize) -> PartitionOutcome {
    let hulled: Vec<Vec<f64>> = curves
        .iter()
        .map(|c| {
            let h = convex_hull_points(c.points());
            hull_to_points(&h, c.len())
        })
        .collect();
    partition_capacity_hulled(&hulled, total_granules)
}

/// The *partitioned miss curve* of two pools: at every total capacity `s`,
/// the summed MPKI under the best split of `s` between the two pools.
///
/// Computed in a single greedy pass over the hulls (the paper's "partition
/// the full capacity in a single pass using convex optimization"). Always
/// pointwise ≤ the Appendix-B combined curve at the same size: partitioning
/// favours whichever pool uses the capacity best, while sharing lets pools
/// interfere. WhirlTool's clustering distance is the area between the two.
pub fn partitioned_curve(a: &MissCurve, b: &MissCurve) -> MissCurve {
    assert_eq!(a.granule_lines(), b.granule_lines());
    let ha = hull_to_points(&convex_hull_points(a.points()), a.len());
    let hb = hull_to_points(&convex_hull_points(b.points()), b.len());
    let n = a.len() + b.len() - 1;
    let mut out = Vec::with_capacity(n);
    let (mut ia, mut ib) = (0usize, 0usize);
    let val = |h: &[f64], i: usize| h[i.min(h.len() - 1)];
    let gain = |h: &[f64], i: usize| {
        if i + 1 < h.len() {
            h[i] - h[i + 1]
        } else {
            0.0
        }
    };
    out.push(val(&ha, 0) + val(&hb, 0));
    for _ in 1..n {
        if gain(&ha, ia) >= gain(&hb, ib) {
            ia += 1;
        } else {
            ib += 1;
        }
        out.push(val(&ha, ia) + val(&hb, ib));
    }
    MissCurve::new(out, a.granule_lines())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine_miss_curves;

    fn geometric(apki: f64, ratio: f64, n: usize) -> MissCurve {
        let pts = (0..n).map(|i| apki * ratio.powi(i as i32)).collect();
        MissCurve::new(pts, 4)
    }

    /// Exhaustive optimal split of `total` between two curves.
    fn brute_best(a: &MissCurve, b: &MissCurve, total: usize) -> f64 {
        let ha = crate::convex_hull(a);
        let hb = crate::convex_hull(b);
        (0..=total)
            .map(|x| ha.mpki_at(x) + hb.mpki_at(total - x))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn greedy_matches_exhaustive_two_pools() {
        let a = geometric(20.0, 0.5, 10);
        let b = geometric(12.0, 0.8, 14);
        for total in [0usize, 1, 3, 7, 12, 20] {
            let out = partition_capacity(&[a.clone(), b.clone()], total);
            let brute = brute_best(&a, &b, total);
            assert!(
                (out.total_cost - brute).abs() < 1e-9,
                "total {total}: greedy {} vs brute {brute}",
                out.total_cost
            );
        }
    }

    #[test]
    fn greedy_matches_exhaustive_three_pools() {
        let a = geometric(10.0, 0.4, 8);
        let b = geometric(10.0, 0.7, 8);
        let c = geometric(4.0, 0.9, 8);
        let total = 10;
        let out = partition_capacity(&[a.clone(), b.clone(), c.clone()], total);
        // Brute force over two nested splits.
        let (ha, hb, hc) = (
            crate::convex_hull(&a),
            crate::convex_hull(&b),
            crate::convex_hull(&c),
        );
        let mut best = f64::INFINITY;
        for x in 0..=total {
            for y in 0..=(total - x) {
                let v = ha.mpki_at(x) + hb.mpki_at(y) + hc.mpki_at(total - x - y);
                best = best.min(v);
            }
        }
        assert!((out.total_cost - best).abs() < 1e-9);
    }

    #[test]
    fn allocations_respect_budget() {
        let a = geometric(10.0, 0.6, 30);
        let b = geometric(10.0, 0.6, 30);
        let out = partition_capacity(&[a, b], 13);
        assert!(out.allocations.iter().sum::<usize>() <= 13);
    }

    #[test]
    fn saturated_curves_leave_budget_unused() {
        // Both curves flatten after 3 granules: no point allocating more.
        let a = MissCurve::new(vec![9.0, 4.0, 1.0, 0.5, 0.5, 0.5], 4);
        let b = MissCurve::new(vec![5.0, 2.0, 1.0, 1.0, 1.0], 4);
        let out = partition_capacity(&[a, b], 100);
        assert!(out.allocations.iter().sum::<usize>() <= 6);
    }

    #[test]
    fn streaming_pool_gets_nothing() {
        let friendly = geometric(10.0, 0.3, 10);
        let streaming = MissCurve::flat(40.0, 10, 4);
        let out = partition_capacity(&[friendly, streaming], 8);
        assert_eq!(out.allocations[1], 0, "streaming pool must get no capacity");
        assert!(out.allocations[0] > 0);
    }

    #[test]
    fn partitioned_below_combined() {
        // The defining inequality of WhirlTool's distance metric (Fig. 15).
        let a = geometric(20.0, 0.5, 10);
        let b = MissCurve::flat(25.0, 10, 4); // antagonist: streams
        let comb = combine_miss_curves(&a, &b);
        let part = partitioned_curve(&a, &b);
        for s in 0..part.len().min(comb.len()) {
            assert!(
                part.mpki_at(s) <= comb.mpki_at(s) + 1e-6,
                "partitioned above combined at {s}"
            );
        }
    }

    #[test]
    fn similar_pools_have_small_gap() {
        // Fig. 15 left: two cache-friendly pools — combining is nearly free.
        let a = geometric(10.0, 0.5, 12);
        let b = geometric(10.0, 0.55, 12);
        let comb = combine_miss_curves(&a, &b);
        let part = partitioned_curve(&a, &b);
        let n = part.len().min(comb.len());
        let gap: f64 = (0..n)
            .map(|s| (comb.mpki_at(s) - part.mpki_at(s)).max(0.0))
            .sum();
        // Antagonistic pairing for contrast.
        let stream = MissCurve::flat(10.0, 12, 4);
        let comb2 = combine_miss_curves(&a, &stream);
        let part2 = partitioned_curve(&a, &stream);
        let gap2: f64 = (0..n)
            .map(|s| (comb2.mpki_at(s) - part2.mpki_at(s)).max(0.0))
            .sum();
        assert!(
            gap < gap2,
            "similar pools ({gap}) should be closer than antagonistic ({gap2})"
        );
    }

    #[test]
    fn partitioned_curve_is_monotone() {
        let a = geometric(15.0, 0.6, 9);
        let b = geometric(3.0, 0.9, 20);
        assert!(partitioned_curve(&a, &b).is_monotone());
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let a = geometric(5.0, 0.5, 5);
        let out = partition_capacity(&[a], 0);
        assert_eq!(out.allocations, vec![0]);
    }
}
