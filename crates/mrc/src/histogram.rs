//! Stack-distance histograms.

use std::collections::BTreeMap;

/// A histogram of LRU stack distances (in cache lines), plus a count of
/// *cold* accesses whose distance is infinite (first touch).
///
/// Distances are exact and sparse: most programs touch a handful of distinct
/// reuse distances, so a `BTreeMap` keyed by distance keeps both memory and
/// iteration (in ascending distance order, which miss-curve construction
/// needs) cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackDistanceHistogram {
    finite: BTreeMap<u64, u64>,
    cold: u64,
    weight: u64,
}

impl StackDistanceHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finite stack distance (number of distinct lines touched
    /// since the last access to this line, inclusive of the line itself).
    ///
    /// A distance of `d` means the access hits in any cache holding at least
    /// `d` lines of this stream.
    pub fn record(&mut self, distance: u64) {
        self.record_weighted(distance, 1);
    }

    /// Records a finite distance with a multiplicity (used by sampled
    /// monitors, which scale each observation by the sampling rate).
    pub fn record_weighted(&mut self, distance: u64, count: u64) {
        *self.finite.entry(distance.max(1)).or_insert(0) += count;
        self.weight += count;
    }

    /// Records a cold (compulsory) access: infinite stack distance.
    pub fn record_cold(&mut self) {
        self.record_cold_weighted(1);
    }

    /// Records cold accesses with a multiplicity.
    pub fn record_cold_weighted(&mut self, count: u64) {
        self.cold += count;
        self.weight += count;
    }

    /// Total recorded accesses (finite + cold), with weights.
    pub fn total(&self) -> u64 {
        self.weight
    }

    /// Total finite-distance accesses.
    pub fn finite_total(&self) -> u64 {
        self.weight - self.cold
    }

    /// Number of cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Largest finite distance observed (0 if none).
    pub fn max_distance(&self) -> u64 {
        self.finite.keys().next_back().copied().unwrap_or(0)
    }

    /// Iterates `(distance, count)` pairs in ascending distance order.
    pub fn iter_finite(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.finite.iter().map(|(&d, &c)| (d, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (d, c) in other.iter_finite() {
            self.record_weighted(d, c);
        }
        self.record_cold_weighted(other.cold);
        self.weight -= other.cold + other.finite_total(); // record_* double-counted
        self.weight += other.weight;
    }

    /// Clears all recorded data.
    pub fn clear(&mut self) {
        self.finite.clear();
        self.cold = 0;
        self.weight = 0;
    }

    /// Number of accesses that would hit in a cache of `capacity_lines`
    /// lines (finite distances ≤ capacity).
    pub fn hits_at(&self, capacity_lines: u64) -> u64 {
        self.finite.range(..=capacity_lines).map(|(_, &c)| c).sum()
    }

    /// Number of accesses that would miss in a cache of `capacity_lines`.
    pub fn misses_at(&self, capacity_lines: u64) -> u64 {
        self.total() - self.hits_at(capacity_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut h = StackDistanceHistogram::new();
        h.record(3);
        h.record(3);
        h.record(10);
        h.record_cold();
        assert_eq!(h.total(), 4);
        assert_eq!(h.finite_total(), 3);
        assert_eq!(h.cold_misses(), 1);
        assert_eq!(h.max_distance(), 10);
    }

    #[test]
    fn zero_distance_clamps_to_one() {
        let mut h = StackDistanceHistogram::new();
        h.record(0);
        assert_eq!(h.hits_at(1), 1);
    }

    #[test]
    fn hits_and_misses_partition_total() {
        let mut h = StackDistanceHistogram::new();
        for d in [1u64, 5, 5, 9, 100] {
            h.record(d);
        }
        h.record_cold_weighted(3);
        for cap in [0u64, 1, 4, 5, 9, 99, 100, 1000] {
            assert_eq!(h.hits_at(cap) + h.misses_at(cap), h.total());
        }
        assert_eq!(h.hits_at(5), 3);
        assert_eq!(h.misses_at(5), 5);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = StackDistanceHistogram::new();
        a.record(2);
        a.record_cold();
        let mut b = StackDistanceHistogram::new();
        b.record(2);
        b.record(7);
        b.record_cold_weighted(2);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.cold_misses(), 3);
        assert_eq!(a.hits_at(2), 2);
        assert_eq!(a.hits_at(7), 3);
    }

    #[test]
    fn weighted_records_scale() {
        let mut h = StackDistanceHistogram::new();
        h.record_weighted(4, 64);
        assert_eq!(h.total(), 64);
        assert_eq!(h.hits_at(4), 64);
    }

    #[test]
    fn iter_is_ascending() {
        let mut h = StackDistanceHistogram::new();
        for d in [9u64, 1, 5] {
            h.record(d);
        }
        let ds: Vec<u64> = h.iter_finite().map(|(d, _)| d).collect();
        assert_eq!(ds, vec![1, 5, 9]);
    }
}
