//! Stack-distance histograms.

use std::collections::BTreeMap;

/// A histogram of LRU stack distances (in cache lines), plus a count of
/// *cold* accesses whose distance is infinite (first touch).
///
/// Distances are exact and sparse: most programs touch a handful of distinct
/// reuse distances, so a `BTreeMap` keyed by distance keeps both memory and
/// iteration (in ascending distance order, which miss-curve construction
/// needs) cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackDistanceHistogram {
    finite: BTreeMap<u64, u64>,
    cold: u64,
    weight: u64,
}

impl StackDistanceHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finite stack distance (number of distinct lines touched
    /// since the last access to this line, inclusive of the line itself).
    ///
    /// A distance of `d` means the access hits in any cache holding at least
    /// `d` lines of this stream.
    pub fn record(&mut self, distance: u64) {
        self.record_weighted(distance, 1);
    }

    /// Records a finite distance with a multiplicity (used by sampled
    /// monitors, which scale each observation by the sampling rate).
    pub fn record_weighted(&mut self, distance: u64, count: u64) {
        *self.finite.entry(distance.max(1)).or_insert(0) += count;
        self.weight += count;
    }

    /// Records a cold (compulsory) access: infinite stack distance.
    pub fn record_cold(&mut self) {
        self.record_cold_weighted(1);
    }

    /// Records cold accesses with a multiplicity.
    pub fn record_cold_weighted(&mut self, count: u64) {
        self.cold += count;
        self.weight += count;
    }

    /// Total recorded accesses (finite + cold), with weights.
    pub fn total(&self) -> u64 {
        self.weight
    }

    /// Total finite-distance accesses.
    pub fn finite_total(&self) -> u64 {
        self.weight - self.cold
    }

    /// Number of cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Largest finite distance observed (0 if none).
    pub fn max_distance(&self) -> u64 {
        self.finite.keys().next_back().copied().unwrap_or(0)
    }

    /// Iterates `(distance, count)` pairs in ascending distance order.
    pub fn iter_finite(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.finite.iter().map(|(&d, &c)| (d, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (d, c) in other.iter_finite() {
            self.record_weighted(d, c);
        }
        self.record_cold_weighted(other.cold);
        self.weight -= other.cold + other.finite_total(); // record_* double-counted
        self.weight += other.weight;
    }

    /// Clears all recorded data.
    pub fn clear(&mut self) {
        self.finite.clear();
        self.cold = 0;
        self.weight = 0;
    }

    /// Number of accesses that would hit in a cache of `capacity_lines`
    /// lines (finite distances ≤ capacity).
    pub fn hits_at(&self, capacity_lines: u64) -> u64 {
        self.finite.range(..=capacity_lines).map(|(_, &c)| c).sum()
    }

    /// Number of accesses that would miss in a cache of `capacity_lines`.
    pub fn misses_at(&self, capacity_lines: u64) -> u64 {
        self.total() - self.hits_at(capacity_lines)
    }

    /// Fraction of accesses that would miss in a cache of
    /// `capacity_lines` lines (0 for an empty histogram).
    pub fn miss_ratio_at(&self, capacity_lines: u64) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.misses_at(capacity_lines) as f64 / self.total() as f64
    }
}

/// Miss ratios of `h` at capacities `0, step, 2*step, …, hi`, computed
/// in one cumulative walk over the histogram (per-capacity
/// [`misses_at`](StackDistanceHistogram::misses_at) queries would make a
/// whole-curve sweep quadratic in the histogram size).
fn miss_ratio_sweep(h: &StackDistanceHistogram, step: u64, hi: u64) -> Vec<f64> {
    let total = h.total().max(1) as f64;
    let mut out = Vec::with_capacity((hi / step + 2) as usize);
    let mut finite = h.iter_finite().peekable();
    let mut hits = 0u64;
    let mut cap = 0u64;
    loop {
        while let Some(&(d, c)) = finite.peek() {
            if d > cap {
                break;
            }
            hits += c;
            finite.next();
        }
        out.push((h.total() - hits) as f64 / total);
        if cap > hi {
            return out;
        }
        cap += step;
    }
}

/// The largest absolute miss-ratio difference between two histograms,
/// swept over every capacity from 0 to past both histograms' maximum
/// distance in steps of `step_lines` — the error metric sampled MRC
/// profiling is judged by (sampled vs exact).
///
/// This pointwise metric is the right contract for smooth miss curves.
/// A trace with a near-vertical cliff (a cyclic sweep's working set)
/// defeats it: sampling reproduces the cliff's *height* exactly but can
/// place it a percent or two off in capacity, and every point between
/// the two cliff positions then reports the full cliff height. Judge
/// such traces with [`max_miss_ratio_error_with_slack`] instead.
pub fn max_miss_ratio_error(
    a: &StackDistanceHistogram,
    b: &StackDistanceHistogram,
    step_lines: u64,
) -> f64 {
    max_miss_ratio_error_with_slack(a, b, step_lines, 0.0)
}

/// [`max_miss_ratio_error`] with a relative *capacity* tolerance: point
/// `c` of one curve is compared against the closest value the other
/// curve attains anywhere in `[c / (1 + slack), c * (1 + slack)]`, in
/// both directions. `capacity_slack` of 0.05 means "within the miss
/// ratio the other curve has at ±5% capacity" — the standard way to
/// score MRCs whose knees sampling can displace slightly sideways
/// without misjudging their height.
pub fn max_miss_ratio_error_with_slack(
    a: &StackDistanceHistogram,
    b: &StackDistanceHistogram,
    step_lines: u64,
    capacity_slack: f64,
) -> f64 {
    let step = step_lines.max(1);
    let hi = a.max_distance().max(b.max_distance()) + step;
    let ra = miss_ratio_sweep(a, step, hi);
    let rb = miss_ratio_sweep(b, step, hi);
    let n = ra.len().min(rb.len());
    let slack = capacity_slack.max(0.0);
    let mut worst = 0.0f64;
    for i in 0..n {
        let lo = (i as f64 / (1.0 + slack)).floor() as usize;
        let hi = (((i as f64) * (1.0 + slack)).ceil() as usize).min(n - 1);
        // Miss ratios are monotone non-increasing in capacity, so over
        // the window a curve spans exactly `[curve[hi], curve[lo]]`.
        // Measure against that *range* (the completed graph of the step
        // function): a cliff jumps past intermediate values without
        // attaining them at any sampled capacity, and a point on the
        // other curve's smeared cliff should match the jump, not the
        // nearest attained value.
        let against = |curve: &[f64], v: f64| (v - curve[lo]).max(curve[hi] - v).max(0.0);
        worst = worst.max(against(&ra, rb[i]).max(against(&rb, ra[i])));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut h = StackDistanceHistogram::new();
        h.record(3);
        h.record(3);
        h.record(10);
        h.record_cold();
        assert_eq!(h.total(), 4);
        assert_eq!(h.finite_total(), 3);
        assert_eq!(h.cold_misses(), 1);
        assert_eq!(h.max_distance(), 10);
    }

    #[test]
    fn zero_distance_clamps_to_one() {
        let mut h = StackDistanceHistogram::new();
        h.record(0);
        assert_eq!(h.hits_at(1), 1);
    }

    #[test]
    fn hits_and_misses_partition_total() {
        let mut h = StackDistanceHistogram::new();
        for d in [1u64, 5, 5, 9, 100] {
            h.record(d);
        }
        h.record_cold_weighted(3);
        for cap in [0u64, 1, 4, 5, 9, 99, 100, 1000] {
            assert_eq!(h.hits_at(cap) + h.misses_at(cap), h.total());
        }
        assert_eq!(h.hits_at(5), 3);
        assert_eq!(h.misses_at(5), 5);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = StackDistanceHistogram::new();
        a.record(2);
        a.record_cold();
        let mut b = StackDistanceHistogram::new();
        b.record(2);
        b.record(7);
        b.record_cold_weighted(2);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.cold_misses(), 3);
        assert_eq!(a.hits_at(2), 2);
        assert_eq!(a.hits_at(7), 3);
    }

    #[test]
    fn weighted_records_scale() {
        let mut h = StackDistanceHistogram::new();
        h.record_weighted(4, 64);
        assert_eq!(h.total(), 64);
        assert_eq!(h.hits_at(4), 64);
    }

    #[test]
    fn error_metric_matches_naive_sweep() {
        let mut a = StackDistanceHistogram::new();
        let mut b = StackDistanceHistogram::new();
        for d in [1u64, 40, 40, 90, 300] {
            a.record(d);
        }
        a.record_cold_weighted(2);
        for d in [2u64, 35, 95, 95, 310] {
            b.record(d);
        }
        b.record_cold_weighted(2);
        let fast = max_miss_ratio_error(&a, &b, 8);
        let mut naive = 0.0f64;
        let mut cap = 0;
        while cap <= a.max_distance().max(b.max_distance()) + 8 {
            naive = naive.max((a.miss_ratio_at(cap) - b.miss_ratio_at(cap)).abs());
            cap += 8;
        }
        assert!((fast - naive).abs() < 1e-12);
        assert_eq!(max_miss_ratio_error(&a, &a, 8), 0.0);
    }

    #[test]
    fn capacity_slack_forgives_a_shifted_cliff() {
        // Two cliffs of the same height, 2% apart in capacity: pointwise
        // error is the full cliff height, slack error is ~0.
        let mut a = StackDistanceHistogram::new();
        let mut b = StackDistanceHistogram::new();
        a.record_weighted(1000, 100);
        b.record_weighted(1020, 100);
        let strict = max_miss_ratio_error(&a, &b, 4);
        assert!(strict > 0.9, "between the cliffs everything differs");
        let slack = max_miss_ratio_error_with_slack(&a, &b, 4, 0.05);
        assert!(slack < 1e-9, "5% capacity slack absorbs a 2% shift");
    }

    #[test]
    fn iter_is_ascending() {
        let mut h = StackDistanceHistogram::new();
        for d in [9u64, 1, 5] {
            h.record(d);
        }
        let ds: Vec<u64> = h.iter_finite().map(|(d, _)| d).collect();
        assert_eq!(ds, vec![1, 5, 9]);
    }
}
