//! Trace-file entry points: drive the Mattson machinery straight from a
//! recorded `.wpt` trace, no live workload model required.

use std::path::Path;

use wp_trace::{TraceError, TraceReader};

use crate::curve::MissCurve;
use crate::histogram::StackDistanceHistogram;
use crate::mattson::MattsonStack;

/// Runs an exact Mattson stack over stream `stream` of the trace at
/// `path`, returning the stack-distance histogram and the instruction
/// count the stream covers (for MPKI normalization).
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file (missing, truncated,
/// corrupt, undefined stream).
pub fn histogram_from_trace(
    path: &Path,
    stream: u16,
) -> Result<(StackDistanceHistogram, u64), TraceError> {
    let mut reader = TraceReader::open(path)?;
    let mut stack = MattsonStack::new();
    let mut instrs = 0u64;
    let mut seen = false;
    while let Some((sid, rec)) = reader.next_record()? {
        if sid != stream {
            continue;
        }
        seen = true;
        instrs += u64::from(rec.gap_instrs);
        stack.access(rec.line.0);
    }
    if !seen && reader.stream(stream).is_none() {
        return Err(TraceError::Corrupt(format!(
            "stream {stream} is not defined in the trace"
        )));
    }
    Ok((stack.take_histogram(), instrs))
}

/// The miss curve of stream `stream` of the trace at `path`, at
/// `granule_lines` capacity granularity — the trace-driven analogue of
/// the profiler's per-callpoint curves, over the whole stream.
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file.
pub fn curve_from_trace(
    path: &Path,
    stream: u16,
    granule_lines: u64,
) -> Result<MissCurve, TraceError> {
    let (hist, instrs) = histogram_from_trace(path, stream)?;
    Ok(MissCurve::from_histogram(
        &hist,
        instrs.max(1),
        granule_lines,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_trace::TraceWriter;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wp-mrc-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn curve_of_a_cyclic_sweep_has_the_right_knee() {
        // A cyclic sweep over 1024 lines at 10 APKI: every non-cold access
        // has stack distance exactly 1024, so the curve collapses to ~0
        // once capacity reaches the working set.
        let path = temp("sweep.wpt");
        let mut w = TraceWriter::create(&path).unwrap();
        let s = w.add_stream("sweep", &[]).unwrap();
        for i in 0..8192u64 {
            w.record(s, 100, wp_mem::LineAddr(i % 1024), false).unwrap();
        }
        w.finish().unwrap();

        let (hist, instrs) = histogram_from_trace(&path, 0).unwrap();
        assert_eq!(instrs, 819_200);
        assert_eq!(hist.total(), 8192);
        assert_eq!(hist.cold_misses(), 1024);

        let curve = curve_from_trace(&path, 0, 64).unwrap();
        // Below the working set everything misses (10 APKI); at ≥1024
        // lines only the cold misses remain.
        assert!(curve.at_zero() > 9.9);
        assert!(curve.interp_at_lines(512) > 9.9);
        assert!(curve.interp_at_lines(1088) < 1.5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn undefined_stream_is_an_error() {
        let path = temp("nostream.wpt");
        let mut w = TraceWriter::create(&path).unwrap();
        let _ = w.add_stream("only", &[]).unwrap();
        w.finish().unwrap();
        assert!(histogram_from_trace(&path, 5).is_err());
        assert!(histogram_from_trace(&path, 0).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(matches!(
            curve_from_trace(Path::new("/nonexistent/trace.wpt"), 0, 64),
            Err(TraceError::Io(_))
        ));
    }
}
