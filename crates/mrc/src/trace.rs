//! Trace-file entry points: drive the Mattson/SHARDS machinery straight
//! from a recorded `.wpt` trace, no live workload model required.
//!
//! Everything funnels through [`profile_streams`], which profiles any set
//! of a trace's streams — exact or SHARDS-sampled — in **one** file scan.
//! The single-stream helpers ([`histogram_from_trace`],
//! [`curve_from_trace`] and their `_sampled` variants) are thin wrappers
//! over it; profiling a whole mix capture no longer costs one decode pass
//! per stream.

use std::path::Path;

use wp_trace::{TraceError, TraceInfo, TraceReader};

use crate::curve::MissCurve;
use crate::histogram::StackDistanceHistogram;
use crate::mattson::MattsonStack;
use crate::shards::{ShardsConfig, ShardsStack};

/// How a trace stream is profiled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileMode {
    /// Exact Mattson: every reference drives the stack. Memory scales
    /// with the stream's distinct-line footprint; the stacks are
    /// pre-sized from the trace's per-stream line spans so steady-state
    /// profiling performs zero reallocations.
    Exact,
    /// SHARDS spatial-hash sampling: ~constant memory and roughly
    /// `1/rate` less stack work, at a small bounded miss-ratio error.
    Sampled(ShardsConfig),
}

/// One stream's profile out of [`profile_streams`].
#[derive(Debug, Clone)]
pub struct StreamProfile {
    /// The stream id this row profiles.
    pub stream: u16,
    /// The (expanded, corrected) stack-distance histogram.
    pub histogram: StackDistanceHistogram,
    /// Instructions the stream covers (for MPKI normalization).
    pub instructions: u64,
    /// References processed.
    pub events: u64,
    /// Final sampling rate (`None` for exact profiling; lower than the
    /// configured rate when `s_max` adaptation kicked in).
    pub sampled_rate: Option<f64>,
    /// Peak tracked-line-set size (`None` for exact profiling).
    pub peak_tracked: Option<usize>,
}

impl StreamProfile {
    /// The stream's miss curve at `granule_lines` capacity granularity.
    pub fn curve(&self, granule_lines: u64) -> MissCurve {
        MissCurve::from_histogram(&self.histogram, self.instructions.max(1), granule_lines)
    }
}

enum StackKind {
    Exact(MattsonStack),
    Sampled(ShardsStack),
}

impl StackKind {
    fn access(&mut self, line: u64) {
        match self {
            StackKind::Exact(s) => {
                s.access(line);
            }
            StackKind::Sampled(s) => s.access(line),
        }
    }

    fn finish(self) -> (StackDistanceHistogram, Option<f64>, Option<usize>) {
        match self {
            StackKind::Exact(mut s) => (s.take_histogram(), None, None),
            StackKind::Sampled(mut s) => {
                let rate = s.rate();
                let peak = s.peak_tracked();
                (s.take_histogram(), Some(rate), Some(peak))
            }
        }
    }
}

/// Profiles streams `streams` of the trace at `path` in a single file
/// scan, fanning each decoded record to its stream's stack. This is the
/// shared core every trace-profiling surface sits on: a 4-core mix
/// capture is profiled with one decode pass instead of four.
///
/// Results come back in the order of `streams`.
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file (missing, truncated,
/// corrupt); requesting an undefined or duplicate stream is reported as
/// [`TraceError::Corrupt`].
pub fn profile_streams(
    path: &Path,
    streams: &[u16],
    mode: ProfileMode,
) -> Result<Vec<StreamProfile>, TraceError> {
    // Exact stacks are pre-sized from the trace's own summary (see
    // `profile_streams_scanned`); the extra validating scan is cheap
    // next to exact Mattson work. Sampled profiling skips it and stays
    // strictly single-pass (its stacks are bounded by `s_max` instead).
    let info = match mode {
        ProfileMode::Exact => Some(TraceInfo::scan(path)?),
        ProfileMode::Sampled(_) => None,
    };
    run_profile(path, streams, mode, info.as_ref())
}

/// [`profile_streams`] for callers that already hold the trace's
/// [`TraceInfo`] (e.g. from enumerating its streams): exact-mode
/// pre-sizing reuses it instead of paying another whole-file scan.
///
/// # Errors
///
/// As for [`profile_streams`].
pub fn profile_streams_scanned(
    path: &Path,
    info: &TraceInfo,
    streams: &[u16],
    mode: ProfileMode,
) -> Result<Vec<StreamProfile>, TraceError> {
    run_profile(path, streams, mode, Some(info))
}

fn run_profile(
    path: &Path,
    streams: &[u16],
    mode: ProfileMode,
    info: Option<&TraceInfo>,
) -> Result<Vec<StreamProfile>, TraceError> {
    for (i, sid) in streams.iter().enumerate() {
        if streams[..i].contains(sid) {
            return Err(TraceError::Corrupt(format!(
                "stream {sid} requested more than once"
            )));
        }
    }
    // Pre-size exact stacks from the summary when one is available:
    // distinct lines can exceed neither the stream's line span nor its
    // event count.
    let mut slots: Vec<(u16, StackKind, u64, u64)> = match mode {
        ProfileMode::Exact => streams
            .iter()
            .map(|&sid| {
                let est = info
                    .and_then(|i| i.streams.iter().find(|s| s.meta.id == sid))
                    .map_or(0, |s| {
                        let span = s
                            .line_span
                            .map_or(0, |(lo, hi)| (hi - lo).saturating_add(1));
                        span.min(s.events)
                    });
                let stack = if est > 0 {
                    MattsonStack::with_line_capacity(est.min(1 << 20) as usize)
                } else {
                    MattsonStack::new()
                };
                (sid, StackKind::Exact(stack), 0u64, 0u64)
            })
            .collect(),
        ProfileMode::Sampled(cfg) => streams
            .iter()
            .map(|&sid| (sid, StackKind::Sampled(ShardsStack::new(cfg)), 0u64, 0u64))
            .collect(),
    };
    let mut reader = TraceReader::open(path)?;
    while let Some((sid, rec)) = reader.next_record()? {
        if let Some(slot) = slots.iter_mut().find(|s| s.0 == sid) {
            slot.2 += u64::from(rec.gap_instrs);
            slot.3 += 1;
            slot.1.access(rec.line.0);
        }
    }
    for &sid in streams {
        if reader.stream(sid).is_none() {
            return Err(TraceError::Corrupt(format!(
                "stream {sid} is not defined in the trace"
            )));
        }
    }
    Ok(slots
        .into_iter()
        .map(|(stream, stack, instructions, events)| {
            let (histogram, sampled_rate, peak_tracked) = stack.finish();
            StreamProfile {
                stream,
                histogram,
                instructions,
                events,
                sampled_rate,
                peak_tracked,
            }
        })
        .collect())
}

/// Runs an exact Mattson stack over stream `stream` of the trace at
/// `path`, returning the stack-distance histogram and the instruction
/// count the stream covers (for MPKI normalization).
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file (missing, truncated,
/// corrupt, undefined stream).
pub fn histogram_from_trace(
    path: &Path,
    stream: u16,
) -> Result<(StackDistanceHistogram, u64), TraceError> {
    let mut profiles = profile_streams(path, &[stream], ProfileMode::Exact)?;
    let p = profiles.pop().expect("one stream requested");
    Ok((p.histogram, p.instructions))
}

/// [`histogram_from_trace`] with SHARDS sampling: the histogram is
/// expanded and SHARDS_adj-corrected, so totals and miss ratios are
/// directly comparable to the exact ones.
///
/// # Errors
///
/// As for [`histogram_from_trace`].
pub fn histogram_from_trace_sampled(
    path: &Path,
    stream: u16,
    config: ShardsConfig,
) -> Result<(StackDistanceHistogram, u64), TraceError> {
    let mut profiles = profile_streams(path, &[stream], ProfileMode::Sampled(config))?;
    let p = profiles.pop().expect("one stream requested");
    Ok((p.histogram, p.instructions))
}

/// The miss curve of stream `stream` of the trace at `path`, at
/// `granule_lines` capacity granularity — the trace-driven analogue of
/// the profiler's per-callpoint curves, over the whole stream.
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file.
pub fn curve_from_trace(
    path: &Path,
    stream: u16,
    granule_lines: u64,
) -> Result<MissCurve, TraceError> {
    let (hist, instrs) = histogram_from_trace(path, stream)?;
    Ok(MissCurve::from_histogram(
        &hist,
        instrs.max(1),
        granule_lines,
    ))
}

/// [`curve_from_trace`] with SHARDS sampling.
///
/// # Errors
///
/// Propagates any [`TraceError`] from the file.
pub fn curve_from_trace_sampled(
    path: &Path,
    stream: u16,
    granule_lines: u64,
    config: ShardsConfig,
) -> Result<MissCurve, TraceError> {
    let (hist, instrs) = histogram_from_trace_sampled(path, stream, config)?;
    Ok(MissCurve::from_histogram(
        &hist,
        instrs.max(1),
        granule_lines,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_trace::TraceWriter;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wp-mrc-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn curve_of_a_cyclic_sweep_has_the_right_knee() {
        // A cyclic sweep over 1024 lines at 10 APKI: every non-cold access
        // has stack distance exactly 1024, so the curve collapses to ~0
        // once capacity reaches the working set.
        let path = temp("sweep.wpt");
        let mut w = TraceWriter::create(&path).unwrap();
        let s = w.add_stream("sweep", &[]).unwrap();
        for i in 0..8192u64 {
            w.record(s, 100, wp_mem::LineAddr(i % 1024), false).unwrap();
        }
        w.finish().unwrap();

        let (hist, instrs) = histogram_from_trace(&path, 0).unwrap();
        assert_eq!(instrs, 819_200);
        assert_eq!(hist.total(), 8192);
        assert_eq!(hist.cold_misses(), 1024);

        let curve = curve_from_trace(&path, 0, 64).unwrap();
        // Below the working set everything misses (10 APKI); at ≥1024
        // lines only the cold misses remain.
        assert!(curve.at_zero() > 9.9);
        assert!(curve.interp_at_lines(512) > 9.9);
        assert!(curve.interp_at_lines(1088) < 1.5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn undefined_stream_is_an_error() {
        let path = temp("nostream.wpt");
        let mut w = TraceWriter::create(&path).unwrap();
        let _ = w.add_stream("only", &[]).unwrap();
        w.finish().unwrap();
        assert!(histogram_from_trace(&path, 5).is_err());
        assert!(histogram_from_trace(&path, 0).is_ok());
        assert!(histogram_from_trace_sampled(&path, 5, ShardsConfig::fixed(0.5)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(matches!(
            curve_from_trace(Path::new("/nonexistent/trace.wpt"), 0, 64),
            Err(TraceError::Io(_))
        ));
        assert!(curve_from_trace_sampled(
            Path::new("/nonexistent/trace.wpt"),
            0,
            64,
            ShardsConfig::fixed(0.1)
        )
        .is_err());
    }

    /// Writes a 3-stream mix-like trace; returns the path.
    fn mix_trace(name: &str) -> std::path::PathBuf {
        let path = temp(name);
        let mut w = TraceWriter::create(&path).unwrap();
        let a = w.add_stream("hot", &[]).unwrap();
        let b = w.add_stream("scan", &[]).unwrap();
        let c = w.add_stream("mid", &[]).unwrap();
        let mut x = 0x9E37u64;
        for i in 0..6000u64 {
            w.record(a, 10, wp_mem::LineAddr(i % 64), false).unwrap();
            w.record(b, 20, wp_mem::LineAddr(1_000_000 + i), i % 2 == 0)
                .unwrap();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w.record(c, 30, wp_mem::LineAddr(500_000 + x % 2048), false)
                .unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn multi_stream_single_pass_matches_per_stream_wrappers() {
        let path = mix_trace("mix.wpt");
        let all = profile_streams(&path, &[0, 1, 2], ProfileMode::Exact).unwrap();
        assert_eq!(all.len(), 3);
        for p in &all {
            let (hist, instrs) = histogram_from_trace(&path, p.stream).unwrap();
            assert_eq!(p.histogram, hist, "stream {}", p.stream);
            assert_eq!(p.instructions, instrs);
            assert_eq!(p.events, 6000);
            assert_eq!(p.sampled_rate, None);
        }
        // Stream order in the request is the order of the results.
        let rev = profile_streams(&path, &[2, 0], ProfileMode::Exact).unwrap();
        assert_eq!(rev[0].stream, 2);
        assert_eq!(rev[1].stream, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sampled_profile_is_close_and_reports_rate() {
        let path = mix_trace("mix-sampled.wpt");
        let exact = profile_streams(&path, &[2], ProfileMode::Exact).unwrap();
        let sampled = profile_streams(
            &path,
            &[2],
            ProfileMode::Sampled(ShardsConfig::adaptive(0.5, 512)),
        )
        .unwrap();
        let p = &sampled[0];
        assert!(p.sampled_rate.is_some());
        assert!(p.peak_tracked.unwrap() <= 512);
        assert_eq!(p.histogram.total(), exact[0].histogram.total());
        let err = crate::histogram::max_miss_ratio_error(&exact[0].histogram, &p.histogram, 64);
        // A 6k-event stream is statistically tiny; the tight (≤0.02)
        // accuracy bounds are asserted on full-length streams in
        // crates/mrc/tests/shards.rs and tests/mrc_sampling.rs.
        assert!(err <= 0.10, "miss-ratio error {err} too large at rate 0.5");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_stream_request_is_an_error() {
        let path = mix_trace("dup.wpt");
        assert!(profile_streams(&path, &[1, 1], ProfileMode::Exact).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_profiling_from_trace_never_reallocates() {
        // The pre-sizing satellite: a pre-sized stack profiles a trace
        // with zero Fenwick growths, while a default stack on the same
        // footprint must grow.
        let path = temp("presize.wpt");
        let mut w = TraceWriter::create(&path).unwrap();
        let s = w.add_stream("big", &[]).unwrap();
        let mut x = 0xA5A5u64;
        for _ in 0..200_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w.record(s, 10, wp_mem::LineAddr(x % 40_000), false)
                .unwrap();
        }
        w.finish().unwrap();

        let mut presized = MattsonStack::with_line_capacity(40_000);
        let mut default = MattsonStack::new();
        let mut reader = TraceReader::open(&path).unwrap();
        while let Some((_, rec)) = reader.next_record().unwrap() {
            presized.access(rec.line.0);
            default.access(rec.line.0);
        }
        assert_eq!(presized.reallocations(), 0, "pre-sized stack grew");
        assert!(default.reallocations() > 0, "default stack never grew?");
        assert_eq!(presized.take_histogram(), default.take_histogram());
        std::fs::remove_file(&path).unwrap();
    }
}
