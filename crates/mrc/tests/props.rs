//! Property-based tests for the miss-rate-curve machinery.

use proptest::prelude::*;
use wp_mrc::{
    combine_miss_curves, convex_hull, partition_capacity, partitioned_curve, MattsonStack,
    MissCurve, StackDistanceHistogram,
};

/// Strategy: a monotone non-increasing, non-negative miss curve.
fn miss_curve(max_len: usize) -> impl Strategy<Value = MissCurve> {
    (2..max_len, 0.0f64..100.0)
        .prop_flat_map(|(len, start)| {
            proptest::collection::vec(0.0f64..1.0, len).prop_map(move |drops| {
                let mut v = Vec::with_capacity(drops.len() + 1);
                let mut cur = start;
                v.push(cur);
                for d in drops {
                    cur *= d;
                    v.push(cur);
                }
                MissCurve::new(v, 4)
            })
        })
        .boxed()
}

proptest! {
    #[test]
    fn hull_is_dominated_and_convex(c in miss_curve(24)) {
        let h = convex_hull(&c);
        for i in 0..c.len() {
            prop_assert!(h.mpki_at(i) <= c.mpki_at(i) + 1e-9);
        }
        // Convexity: second differences non-negative.
        let p = h.points();
        for w in p.windows(3) {
            prop_assert!(w[0] - 2.0 * w[1] + w[2] >= -1e-6);
        }
        // Endpoints preserved.
        prop_assert!((h.at_zero() - c.at_zero()).abs() < 1e-9);
        prop_assert!((h.floor() - c.floor()).abs() < 1e-9);
    }

    #[test]
    fn combine_is_commutative_and_monotone(a in miss_curve(16), b in miss_curve(16)) {
        let ab = combine_miss_curves(&a, &b);
        let ba = combine_miss_curves(&b, &a);
        for i in 0..ab.len() {
            prop_assert!((ab.mpki_at(i) - ba.mpki_at(i)).abs() < 1e-6);
        }
        prop_assert!(ab.is_monotone());
        // Zero-capacity point sums access rates.
        prop_assert!((ab.at_zero() - (a.at_zero() + b.at_zero())).abs() < 1e-6);
        // The combined floor is the sum of floors (cold misses add).
        prop_assert!((ab.floor() - (a.floor() + b.floor())).abs() < 1e-6);
    }

    #[test]
    fn partitioned_never_above_combined(a in miss_curve(12), b in miss_curve(12)) {
        let comb = combine_miss_curves(&a, &b);
        let part = partitioned_curve(&a, &b);
        for s in 0..part.len().min(comb.len()) {
            prop_assert!(part.mpki_at(s) <= comb.mpki_at(s) + 1e-6,
                "partitioned above combined at {s}");
        }
    }

    #[test]
    fn partition_allocations_within_budget(
        a in miss_curve(12), b in miss_curve(12), c in miss_curve(12),
        budget in 0usize..40,
    ) {
        let out = partition_capacity(&[a, b, c], budget);
        prop_assert!(out.allocations.iter().sum::<usize>() <= budget);
        prop_assert!(out.total_cost >= 0.0);
    }

    #[test]
    fn partition_cost_monotone_in_budget(a in miss_curve(12), b in miss_curve(12)) {
        let mut last = f64::INFINITY;
        for budget in 0..16 {
            let out = partition_capacity(&[a.clone(), b.clone()], budget);
            prop_assert!(out.total_cost <= last + 1e-9);
            last = out.total_cost;
        }
    }

    #[test]
    fn mattson_histogram_total_matches_accesses(trace in proptest::collection::vec(0u64..64, 1..400)) {
        let mut s = MattsonStack::new();
        for &a in &trace {
            s.access(a);
        }
        prop_assert_eq!(s.histogram().total(), trace.len() as u64);
        // Cold misses = number of distinct lines.
        let distinct = trace.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert_eq!(s.histogram().cold_misses(), distinct as u64);
    }

    #[test]
    fn miss_curve_from_histogram_is_monotone(trace in proptest::collection::vec(0u64..128, 1..500)) {
        let mut s = MattsonStack::new();
        for &a in &trace {
            s.access(a);
        }
        let c = MissCurve::from_histogram(s.histogram(), 1_000, 4);
        prop_assert!(c.is_monotone());
        // Full-capacity misses equal cold misses.
        let cold_mpki = s.histogram().cold_misses() as f64;
        prop_assert!((c.floor() - cold_mpki).abs() < 1e-9);
    }

    #[test]
    fn histogram_hits_misses_partition(dists in proptest::collection::vec(1u64..1000, 0..100), cold in 0u64..10, cap in 0u64..1200) {
        let mut h = StackDistanceHistogram::new();
        for &d in &dists {
            h.record(d);
        }
        h.record_cold_weighted(cold);
        prop_assert_eq!(h.hits_at(cap) + h.misses_at(cap), h.total());
    }
}
