//! Exact vs SHARDS-sampled trace profiling.
//!
//! Criterion mode (`cargo bench -p wp-mrc --bench mrc_profile`) times
//! whole-trace profiling of a captured registry stream at rates
//! R ∈ {1, 0.1, 0.01}.
//!
//! Smoke mode (`cargo bench -p wp-mrc --bench mrc_profile -- --json`)
//! profiles a full-length capture once per configuration and writes the
//! machine-readable `BENCH_mrc.json` (override the path with
//! `WP_BENCH_JSON`): wall-clock per pass, sampled-vs-exact speedup, max
//! absolute miss-ratio error (strict and with 5% capacity slack), and
//! peak tracked-set size — the repo's perf-trajectory data point for MRC
//! profiling.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use wp_mrc::{
    histogram_from_trace, histogram_from_trace_sampled, max_miss_ratio_error,
    max_miss_ratio_error_with_slack, ShardsConfig, StackDistanceHistogram,
};
use wp_sim::Workload;
use wp_trace::TraceWriter;
use wp_workloads::{registry, AppModel};

const S_MAX: usize = 16_384;

/// Captures `events` events of `app`'s model stream to a temp `.wpt` —
/// the same event stream a simulator capture of the app records, without
/// needing the simulator.
fn capture_model_stream(app: &str, events: u64, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "wp-mrc-bench-{}-{app}-{tag}.wpt",
        std::process::id()
    ));
    let model = AppModel::new(registry::spec(app));
    let mut stream = model.trace_seeded(0xBEEF);
    let mut w = TraceWriter::create(&path).expect("create bench trace");
    let s = w.add_stream(app, &[]).expect("add stream");
    for _ in 0..events {
        let ev = stream.next_event().expect("model streams are infinite");
        w.record(s, ev.gap_instrs, ev.line, ev.is_write)
            .expect("record");
    }
    w.finish().expect("finish");
    path
}

fn bench(c: &mut Criterion) {
    let path = capture_model_stream("mcf", 2_000_000, "criterion");
    c.bench_function("profile_trace/exact", |b| {
        b.iter(|| histogram_from_trace(&path, 0).unwrap())
    });
    for rate in [1.0, 0.1, 0.01] {
        c.bench_function(&format!("profile_trace/sampled-{rate}"), |b| {
            b.iter(|| {
                histogram_from_trace_sampled(&path, 0, ShardsConfig::adaptive(rate, S_MAX)).unwrap()
            })
        });
    }
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench);

struct SampledRow {
    rate: f64,
    ns: u128,
    hist: StackDistanceHistogram,
    peak: usize,
}

/// One-shot smoke measurement: exact and sampled passes over a
/// full-length capture, emitted as `BENCH_mrc.json`. The subject
/// defaults to 12 M events of `SA` (a large smooth-curve stream, so the
/// strict pointwise error bound is meaningful); override with
/// `WP_BENCH_APP` / `WP_BENCH_EVENTS` to probe other registry apps.
fn smoke() {
    const GRANULE: u64 = 64;
    let app = std::env::var("WP_BENCH_APP").unwrap_or_else(|_| "SA".into());
    let events: u64 = std::env::var("WP_BENCH_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000_000);
    let path = capture_model_stream(&app, events, "smoke");

    let t0 = Instant::now();
    let (exact_hist, instrs) = histogram_from_trace(&path, 0).expect("exact profile");
    let exact_ns = t0.elapsed().as_nanos();

    let mut rows = Vec::new();
    for rate in [0.1, 0.02, 0.01] {
        let cfg = ShardsConfig::adaptive(rate, S_MAX);
        let t0 = Instant::now();
        let profiles = wp_mrc::profile_streams(&path, &[0], wp_mrc::ProfileMode::Sampled(cfg))
            .expect("sampled profile");
        let ns = t0.elapsed().as_nanos();
        let p = profiles.into_iter().next().expect("one stream");
        rows.push(SampledRow {
            rate,
            ns,
            hist: p.histogram,
            peak: p.peak_tracked.unwrap_or(0),
        });
    }
    let _ = std::fs::remove_file(&path);

    let sampled_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"rate\":{},\"s_max\":{S_MAX},\"ns\":{},\"speedup\":{:.2},\
                 \"max_abs_miss_ratio_error\":{:.6},\"error_with_5pct_capacity_slack\":{:.6},\
                 \"peak_tracked\":{}}}",
                r.rate,
                r.ns,
                exact_ns as f64 / r.ns as f64,
                max_miss_ratio_error(&exact_hist, &r.hist, GRANULE),
                max_miss_ratio_error_with_slack(&exact_hist, &r.hist, GRANULE, 0.05),
                r.peak,
            )
        })
        .collect();
    // The perf-regression gate watches the rate-0.02 pass (the sweet spot
    // the sweep engine uses): sampled-vs-exact speedup plus the raw
    // sampled throughput, so a slowdown in either the exact or sampled
    // path trips the gate.
    let gated = rows
        .iter()
        .find(|r| (r.rate - 0.02).abs() < 1e-9)
        .unwrap_or(&rows[0]);
    let json = format!(
        "{{\"bench\":\"mrc_profile\",\"app\":\"{app}\",\"events\":{events},\
         \"instructions\":{instrs},\"distinct_lines\":{},\"granule_lines\":{GRANULE},\
         \"exact\":{{\"ns\":{exact_ns}}},\"sampled\":[{}],\
         \"gate\":{{\"sampled_speedup\":{:.2},\"sampled_events_per_sec\":{:.0}}}}}",
        exact_hist.cold_misses(),
        sampled_json.join(","),
        exact_ns as f64 / gated.ns as f64,
        events as f64 * 1e9 / gated.ns as f64,
    );
    let out = std::env::var_os("WP_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_mrc.json"));
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_mrc.json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        smoke();
        return;
    }
    let mut c = Criterion::from_args();
    benches(&mut c);
    c.final_summary();
}
