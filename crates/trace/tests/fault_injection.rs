//! `wp-fault` probes in the trace read paths: every armed reader point
//! surfaces as the typed [`TraceError`] the equivalent disk fault would
//! produce, the same spec + seed reproduces the same failure, and a
//! cleared plan reads the same bytes back cleanly.

use std::io::Write;

use wp_fault::FaultPlan;
use wp_mem::LineAddr;
use wp_trace::{BatchReader, EventBatch, PrefetchBatches, TraceError, TraceReader, TraceWriter};

/// A small multi-chunk trace on disk.
fn write_trace(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("wp-fault-trace-{}-{tag}.wpt", std::process::id()));
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(64);
    let s = w.add_stream("t", &[]).unwrap();
    for i in 0..1000u64 {
        w.record(s, 1, LineAddr(4096 + i * 7), i % 3 == 0).unwrap();
    }
    w.finish().unwrap();
    drop(w);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(&buf).unwrap();
    path
}

fn drain_stream(path: &std::path::Path) -> Result<u64, TraceError> {
    let mut r = TraceReader::open(path)?;
    let mut n = 0;
    while r.next_record()?.is_some() {
        n += 1;
    }
    Ok(n)
}

fn drain_batches(path: &std::path::Path) -> Result<u64, TraceError> {
    let mut r = BatchReader::open(path)?;
    let mut batch = EventBatch::new();
    let mut n = 0;
    while r.next_chunk(&mut batch)?.is_some() {
        n += batch.len() as u64;
    }
    Ok(n)
}

#[test]
fn armed_reader_points_surface_as_their_typed_errors() {
    let path = write_trace("typed");
    let _guard = wp_fault::test_guard();

    wp_fault::install(FaultPlan::parse("reader-io@1:3").unwrap());
    assert!(matches!(drain_stream(&path), Err(TraceError::Io(_))));

    wp_fault::install(FaultPlan::parse("reader-truncate@2:3").unwrap());
    assert!(matches!(drain_stream(&path), Err(TraceError::Truncated)));

    // The streaming reader flips a real payload bit; CRC catches it.
    wp_fault::install(FaultPlan::parse("reader-bitflip@1:3").unwrap());
    assert!(matches!(
        drain_stream(&path),
        Err(TraceError::Checksum { .. })
    ));

    // Same points through the mmap/batch path.
    wp_fault::install(FaultPlan::parse("reader-io@1:3").unwrap());
    assert!(matches!(drain_batches(&path), Err(TraceError::Io(_))));
    wp_fault::install(FaultPlan::parse("reader-bitflip@2:3").unwrap());
    assert!(matches!(
        drain_batches(&path),
        Err(TraceError::Checksum { .. })
    ));

    // Disarmed, both paths read the file cleanly — the injected faults
    // never touched the bytes on disk.
    wp_fault::clear();
    assert_eq!(drain_stream(&path).unwrap(), 1000);
    assert_eq!(drain_batches(&path).unwrap(), 1000);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn same_spec_and_seed_reproduce_the_same_failure() {
    let path = write_trace("determinism");
    let _guard = wp_fault::test_guard();
    let offset_of = |spec: &str| {
        wp_fault::install(FaultPlan::parse(spec).unwrap());
        match drain_stream(&path) {
            Err(TraceError::Checksum { offset }) => offset,
            other => panic!("expected a checksum error, got {other:?}"),
        }
    };
    assert_eq!(offset_of("reader-bitflip:7"), offset_of("reader-bitflip:7"));
    wp_fault::clear();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_prefetch_panic_is_joined_into_a_typed_error() {
    let path = write_trace("prefetch");
    let _guard = wp_fault::test_guard();
    wp_fault::install(FaultPlan::parse("prefetch-panic@1:1").unwrap());
    let mut r = PrefetchBatches::open(&path).unwrap();
    let mut batch = EventBatch::new();
    let err = loop {
        match r.next_chunk(&mut batch) {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("prefetch fault never surfaced"),
            Err(e) => break e,
        }
    };
    let msg = err.to_string();
    assert!(
        msg.contains("injected prefetch fault"),
        "panic payload lost: {msg}"
    );
    // One-shot: a fresh prefetch run over the same file succeeds.
    wp_fault::clear();
    let mut r = PrefetchBatches::open(&path).unwrap();
    let mut n = 0u64;
    while r.next_chunk(&mut batch).unwrap().is_some() {
        n += batch.len() as u64;
    }
    assert_eq!(n, 1000);
    let _ = std::fs::remove_file(&path);
}
