//! Property tests for the `.wpt` codec: arbitrary event streams must
//! round-trip exactly, and damaged files must fail with an error — never
//! a panic, never a silently wrong decode.

use std::sync::Arc;

use proptest::prelude::*;
use wp_mem::{LineAddr, PageId};
use wp_trace::{
    BatchReader, EventBatch, PoolMeta, PrefetchBatches, TraceData, TraceError, TraceReader,
    TraceWriter,
};

type Event = (u32, u64, bool);

/// Strategy: one event. Lines span the whole plausible range (sequential
/// neighbourhoods, pool-sized jumps, and full-address-space outliers) so
/// every column width gets exercised.
fn event() -> impl Strategy<Value = Event> {
    (0u32..200_000, 0u64..1 << 45, 0u32..4).prop_map(|(gap, line, w)| (gap, line, w == 0))
}

fn events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    (0..max)
        .prop_flat_map(|n| proptest::collection::vec(event(), n))
        .boxed()
}

fn encode(events: &[Event], chunk: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(chunk);
    let pools = [PoolMeta {
        name: "pool0".into(),
        pool: Some(7),
        bytes: 4096 * 4,
        pages: (100..104).map(PageId).collect(),
    }];
    let s = w.add_stream("prop", &pools).unwrap();
    for &(gap, line, wr) in events {
        w.record(s, gap, LineAddr(line), wr).unwrap();
    }
    w.finish().unwrap();
    drop(w);
    buf
}

fn decode(buf: &[u8]) -> Result<Vec<Event>, TraceError> {
    let mut r = TraceReader::new(buf)?;
    let mut out = Vec::new();
    while let Some((_, rec)) = r.next_record()? {
        out.push((rec.gap_instrs, rec.line.0, rec.is_write));
    }
    Ok(out)
}

/// Drains the batched (chunk-at-a-time, zero-copy) reader into the same
/// flat event list the streaming [`decode`] produces.
fn decode_batched(buf: &[u8]) -> Result<Vec<Event>, TraceError> {
    let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf.to_vec())))?;
    let mut batch = EventBatch::new();
    let mut out = Vec::new();
    while r.next_chunk(&mut batch)?.is_some() {
        for i in 0..batch.len() {
            out.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
        }
    }
    Ok(out)
}

/// Same, through the prefetch-thread pipeline.
fn decode_prefetched(buf: &[u8]) -> Result<Vec<Event>, TraceError> {
    let reader = BatchReader::new(Arc::new(TraceData::from_vec(buf.to_vec())))?;
    let mut p = PrefetchBatches::start(reader)?;
    let mut batch = EventBatch::new();
    let mut out = Vec::new();
    while p.next_chunk(&mut batch)?.is_some() {
        for i in 0..batch.len() {
            out.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
        }
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trips_exactly(evs in events(300), chunk in 1usize..80) {
        let buf = encode(&evs, chunk);
        prop_assert_eq!(decode(&buf).expect("clean file decodes"), evs);
    }

    #[test]
    fn chunk_boundaries_are_invisible(evs in events(120)) {
        // The decoded stream must not depend on where chunks fall: byte
        // streams differ, events must not.
        let a = decode(&encode(&evs, 1)).unwrap();
        let b = decode(&encode(&evs, evs.len().max(1))).unwrap();
        let c = decode(&encode(&evs, 7)).unwrap();
        prop_assert_eq!(&a, &evs);
        prop_assert_eq!(&b, &evs);
        prop_assert_eq!(&c, &evs);
    }

    #[test]
    fn batched_reader_matches_streaming(evs in events(300), chunk in 1usize..80) {
        // Chunk sizes from 1 (every chunk single-event) to larger than
        // the stream (one odd-sized chunk) — the final chunk is almost
        // always partial. Both batch paths must yield the exact event
        // sequence the streaming reader does.
        let buf = encode(&evs, chunk);
        let streaming = decode(&buf).expect("clean file decodes");
        prop_assert_eq!(&decode_batched(&buf).unwrap(), &streaming);
        prop_assert_eq!(&decode_prefetched(&buf).unwrap(), &streaming);
        prop_assert_eq!(streaming, evs);
    }

    #[test]
    fn batched_truncation_errors_match_streaming(
        evs in events(60),
        chunk in 1usize..20,
        frac in 0.0f64..1.0,
    ) {
        let buf = encode(&evs, chunk);
        let cut = ((buf.len() as f64 * frac) as usize).min(buf.len() - 1);
        let streaming = decode(&buf[..cut]).expect_err("prefix must not decode");
        let batched = decode_batched(&buf[..cut]).expect_err("prefix must not decode");
        prop_assert_eq!(streaming.to_string(), batched.to_string(), "cut at {}", cut);
    }

    #[test]
    fn batched_bit_flip_behavior_matches_streaming(
        evs in events(80),
        chunk in 1usize..20,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let clean = encode(&evs, chunk);
        let mut dirty = clean.clone();
        let pos = ((dirty.len() as f64 * pos_frac) as usize).min(dirty.len() - 1);
        dirty[pos] ^= 1 << bit;
        // Whatever the streaming reader does with the damage — reject it
        // (same TraceError) or, for a flip in dead space, decode the same
        // events — the batched reader must do identically.
        match (decode(&dirty), decode_batched(&dirty)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "flip at byte {}", pos),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string(), "flip at byte {}", pos);
            }
            (a, b) => {
                prop_assert!(
                    false,
                    "flip at byte {} diverged: streaming {:?} vs batched {:?}",
                    pos, a, b
                );
            }
        }
    }

    #[test]
    fn any_truncation_errors_not_panics(evs in events(60), chunk in 1usize..20, frac in 0.0f64..1.0) {
        let buf = encode(&evs, chunk);
        // Every strict prefix is missing at least the End block, so a
        // full drain must report an error (typically Truncated) rather
        // than panic or claim clean completion.
        let cut = ((buf.len() as f64 * frac) as usize).min(buf.len() - 1);
        prop_assert!(decode(&buf[..cut]).is_err(), "prefix of {} bytes decoded cleanly", cut);
    }

    #[test]
    fn every_prefix_of_a_small_file_errors(evs in events(12)) {
        let buf = encode(&evs, 3);
        for cut in 0..buf.len() {
            prop_assert!(decode(&buf[..cut]).is_err(), "prefix {} of {}", cut, buf.len());
        }
    }

    #[test]
    fn bit_flips_never_decode_to_wrong_events(
        evs in events(80),
        chunk in 1usize..20,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let clean = encode(&evs, chunk);
        let mut dirty = clean.clone();
        let pos = ((dirty.len() as f64 * pos_frac) as usize).min(dirty.len() - 1);
        dirty[pos] ^= 1 << bit;
        // A flipped bit must either be caught (header check, CRC, or
        // structural validation) or — never — produce a "clean" decode
        // with different events. CRC-32 guarantees detection for any
        // single-bit flip within a payload; flips in the 9 header/length
        // bytes are caught structurally.
        match decode(&dirty) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(got, evs, "corruption at byte {} decoded differently", pos),
        }
    }

    #[test]
    fn pool_tags_follow_the_page_table(lines in proptest::collection::vec(0u64..1 << 20, 50)) {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(16);
        let pools = [
            PoolMeta { name: "a".into(), pool: None, bytes: 4096 * 8, pages: (0..8).map(PageId).collect() },
            PoolMeta { name: "b".into(), pool: Some(1), bytes: 4096 * 4, pages: (64..68).map(PageId).collect() },
        ];
        let s = w.add_stream("tags", &pools).unwrap();
        for &l in &lines {
            w.record(s, 1, LineAddr(l), false).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        let mut r = TraceReader::new(&buf[..]).unwrap();
        let mut i = 0;
        while let Some((_, rec)) = r.next_record().unwrap() {
            let page = rec.line.0 / 64;
            let want = if page < 8 {
                Some(0)
            } else if (64..68).contains(&page) {
                Some(1)
            } else {
                None
            };
            prop_assert_eq!(rec.pool, want, "line {}", rec.line.0);
            i += 1;
        }
        prop_assert_eq!(i, lines.len());
    }
}

/// Non-random regression: a wrong-length file whose truncation point is
/// *exactly* a block boundary still errors (the End block is mandatory).
#[test]
fn clean_block_boundary_truncation_still_errors() {
    let evs: Vec<Event> = (0..40).map(|i| (2, 500 + i, false)).collect();
    let buf = encode(&evs, 8);
    // Walk blocks from the top to find each boundary: header is 8 bytes,
    // then tag(1) + len varint + crc(4) + payload.
    let mut boundaries = vec![8usize];
    let mut pos = 8usize;
    while pos < buf.len() {
        let mut p = pos + 1;
        let mut len = 0u64;
        let mut shift = 0;
        loop {
            let b = buf[p];
            p += 1;
            len |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        pos = p + 4 + len as usize;
        boundaries.push(pos);
    }
    assert_eq!(*boundaries.last().unwrap(), buf.len());
    for &b in &boundaries[..boundaries.len() - 1] {
        assert!(
            matches!(decode(&buf[..b]), Err(TraceError::Truncated)),
            "boundary {b}"
        );
    }
}
