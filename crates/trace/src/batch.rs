//! Column-batched chunk decode: the zero-copy fast path of the reader.
//!
//! The streaming [`TraceReader`](crate::TraceReader) yields one
//! [`TraceRecord`](crate::TraceRecord) at a time through a `VecDeque`,
//! which is the right shape for tools but costs a queue round-trip, a
//! pool lookup, and a virtual call per event when the simulator replays
//! millions of them. This module decodes whole chunks at once:
//!
//! * [`EventBatch`] — a chunk's events as three flat columns
//!   (gaps/lines/write flags), reused across chunks so steady-state decode
//!   allocates nothing.
//! * [`BatchReader`] — walks an in-memory (usually mmapped) `.wpt` image
//!   block by block, decoding each chunk payload in place into an
//!   `EventBatch`. Structural validation — CRCs, counts, overflow checks,
//!   `End`-block totals — is byte-for-byte the same as the streaming
//!   reader's, because both run on the shared decode in this module.
//! * [`PrefetchBatches`] — a `BatchReader` on a worker thread, decoding
//!   chunk N+1 while the simulator chews on chunk N; batches recycle
//!   through a bounded channel so the pair holds a fixed set of slabs.

use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use wp_mem::LineAddr;

use crate::bits::unpack_into;
use crate::crc::crc32;
use crate::meta::StreamMeta;
use crate::mmap::TraceData;
use crate::varint::{get_varint, unzigzag};
use crate::{
    TraceError, MAGIC, MAX_BLOCK_BYTES, MAX_CHUNK_EVENTS, TAG_CHUNK, TAG_END, TAG_STREAM_DEF,
    VERSION,
};

/// One chunk's worth of events, as flat columns.
///
/// The columns always have equal length. Reusing one batch across
/// [`BatchReader::next_chunk`] calls keeps decode allocation-free once the
/// slabs have grown to the trace's chunk size.
#[derive(Debug, Default, Clone)]
pub struct EventBatch {
    /// Instructions since the previous event, per event.
    pub gaps: Vec<u32>,
    /// Line accessed, per event.
    pub lines: Vec<LineAddr>,
    /// Write flag, per event.
    pub writes: Vec<bool>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` events per column.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            gaps: Vec::with_capacity(n),
            lines: Vec::with_capacity(n),
            writes: Vec::with_capacity(n),
        }
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Clears all columns, keeping their allocations.
    pub fn clear(&mut self) {
        self.gaps.clear();
        self.lines.clear();
        self.writes.clear();
    }

    /// Appends one event.
    pub fn push(&mut self, gap_instrs: u32, line: LineAddr, is_write: bool) {
        self.gaps.push(gap_instrs);
        self.lines.push(line);
        self.writes.push(is_write);
    }

    /// Appends `len` events of `src` starting at `start` — the column
    /// copy the replay workload uses to hand the driver quantum-sized
    /// slices of a decoded chunk.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds `src.len()`.
    pub fn extend_from(&mut self, src: &EventBatch, start: usize, len: usize) {
        self.gaps.extend_from_slice(&src.gaps[start..start + len]);
        self.lines.extend_from_slice(&src.lines[start..start + len]);
        self.writes
            .extend_from_slice(&src.writes[start..start + len]);
    }
}

/// Reusable column buffers for the packed→batch transform.
#[derive(Debug, Default)]
pub(crate) struct DecodeScratch {
    gaps: Vec<u64>,
    flags: Vec<u64>,
    deltas: Vec<u64>,
}

/// Parses the stream id off the front of a chunk payload, returning it and
/// the offset of the rest of the chunk body.
pub(crate) fn chunk_stream_id(payload: &[u8]) -> Result<(u64, usize), TraceError> {
    let mut pos = 0;
    let stream = get_varint(payload, &mut pos)?;
    Ok((stream, pos))
}

/// Decodes a chunk body (everything after the stream id) into `batch`,
/// appending its events and returning the instructions they cover.
///
/// `first_chunk` selects the absolute-base encoding of the stream's first
/// event. All validation (counts, widths, overflow, trailing bytes)
/// matches the historical streaming decoder exactly — this *is* the
/// streaming decoder now, hoisted out so both readers share it.
pub(crate) fn decode_chunk_body(
    payload: &[u8],
    mut pos: usize,
    first_chunk: bool,
    scratch: &mut DecodeScratch,
    batch: &mut EventBatch,
) -> Result<u64, TraceError> {
    let count = get_varint(payload, &mut pos)?;
    if count == 0 || count > MAX_CHUNK_EVENTS {
        return Err(TraceError::Corrupt(format!("chunk of {count} events")));
    }
    let count = count as usize;
    let base_line = get_varint(payload, &mut pos)?;

    let min_gap = get_varint(payload, &mut pos)?;
    let gap_bits = *payload.get(pos).ok_or(TraceError::Truncated)?;
    pos += 1;
    unpack_into(payload, &mut pos, count, gap_bits, &mut scratch.gaps)?;

    let write_mode = *payload.get(pos).ok_or(TraceError::Truncated)?;
    pos += 1;
    match write_mode {
        0 => {
            scratch.flags.clear();
            scratch.flags.resize(count, 0);
        }
        1 => {
            scratch.flags.clear();
            scratch.flags.resize(count, 1);
        }
        2 => unpack_into(payload, &mut pos, count, 1, &mut scratch.flags)?,
        m => return Err(TraceError::Corrupt(format!("write mode {m}"))),
    }

    // The first event of a stream is stored absolutely as the base line;
    // every later event is a delta off its predecessor.
    let skip = usize::from(first_chunk);
    let min_zz = get_varint(payload, &mut pos)?;
    let addr_bits = *payload.get(pos).ok_or(TraceError::Truncated)?;
    pos += 1;
    unpack_into(
        payload,
        &mut pos,
        count - skip,
        addr_bits,
        &mut scratch.deltas,
    )?;
    if pos != payload.len() {
        return Err(TraceError::Corrupt("trailing bytes in chunk".into()));
    }

    let mut line = base_line;
    let mut instrs = 0u64;
    for i in 0..count {
        let gap = min_gap
            .checked_add(scratch.gaps[i])
            .filter(|&g| g <= u64::from(u32::MAX))
            .ok_or_else(|| TraceError::Corrupt("gap overflows u32".into()))?;
        if i >= skip {
            let zz = min_zz
                .checked_add(scratch.deltas[i - skip])
                .ok_or_else(|| TraceError::Corrupt("address delta overflows".into()))?;
            line = line.wrapping_add(unzigzag(zz) as u64);
        }
        instrs += gap;
        batch.push(gap as u32, LineAddr(line), scratch.flags[i] == 1);
    }
    Ok(instrs)
}

#[derive(Debug)]
struct BatchStream {
    meta: StreamMeta,
    events: u64,
    instrs: u64,
    /// Chunks of this stream were frame-walked past undecoded (followed
    /// reads), so its totals are unknown and exempt from the end check.
    skipped: bool,
}

/// Chunk-at-a-time decoder over an in-memory `.wpt` image.
///
/// Equivalent in every observable way to draining a
/// [`TraceReader`](crate::TraceReader) — same events, same totals
/// validation, same [`TraceError`]s on the same malformed inputs — but it
/// hands back whole chunks as column batches and reads payloads directly
/// out of the (usually mmapped) file image, so there is no per-event or
/// per-block copy.
#[derive(Debug)]
pub struct BatchReader {
    data: Arc<TraceData>,
    pos: usize,
    streams: Vec<BatchStream>,
    scratch: DecodeScratch,
    ended: bool,
    chunks: u64,
    follow: Option<u16>,
}

impl BatchReader {
    /// Opens and maps `path`, validating the file header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(Arc::new(TraceData::open(path)?))
    }

    /// [`open`](Self::open), following only stream `stream` (see
    /// [`follow`](Self::follow)).
    pub fn open_stream(path: &Path, stream: u16) -> Result<Self, TraceError> {
        Ok(Self::new(Arc::new(TraceData::open(path)?))?.follow(stream))
    }

    /// Wraps an already-loaded trace image, validating the file header.
    pub fn new(data: Arc<TraceData>) -> Result<Self, TraceError> {
        let buf = data.bytes();
        let Some(head) = buf.get(..8) else {
            return Err(TraceError::Truncated);
        };
        if head[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        // head[6..8]: flags (reserved).
        Ok(Self {
            data,
            pos: 8,
            streams: Vec::new(),
            scratch: DecodeScratch::default(),
            ended: false,
            chunks: 0,
            follow: None,
        })
    }

    /// Follows one stream: [`next_chunk`](Self::next_chunk) skips other
    /// streams' chunks as a pure frame walk — no CRC, no decode — so a
    /// per-core replay of an N-stream capture does ~1/N of the file's
    /// validation and decode work instead of all of it. The followed
    /// stream's chunks, the stream definitions, the end block, and the
    /// block framing are still validated exactly as in an unfiltered
    /// read; skipped streams are exempt from the end-block totals check.
    /// An all-streams replay therefore still validates every chunk —
    /// each core's reader covers its own stream.
    #[must_use]
    pub fn follow(mut self, stream: u16) -> Self {
        self.follow = Some(stream);
        self
    }

    /// Stream definitions seen so far.
    pub fn streams(&self) -> impl Iterator<Item = &StreamMeta> {
        self.streams.iter().map(|s| &s.meta)
    }

    /// Metadata of stream `id`, if defined.
    pub fn stream(&self, id: u16) -> Option<&StreamMeta> {
        self.streams.get(usize::from(id)).map(|s| &s.meta)
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks
    }

    /// The shared trace image.
    pub fn data(&self) -> &Arc<TraceData> {
        &self.data
    }

    /// Decodes the next chunk into `batch` (cleared first), returning the
    /// stream it belongs to, or `Ok(None)` at a clean end of trace.
    pub fn next_chunk(&mut self, batch: &mut EventBatch) -> Result<Option<u16>, TraceError> {
        batch.clear();
        loop {
            if self.ended {
                return Ok(None);
            }
            crate::injected_read_fault()?;
            // Clone the Arc so `payload` borrows the image, not `self`
            // (check_end and the stream table need `&mut self`).
            let data = Arc::clone(&self.data);
            let buf = data.bytes();
            let block_offset = self.pos as u64;
            let Some(&tag) = buf.get(self.pos) else {
                // The image just stops (no End block): truncated, whatever
                // the boundary it stops on.
                return Err(TraceError::Truncated);
            };
            self.pos += 1;
            let len = get_varint(buf, &mut self.pos)?;
            if len > MAX_BLOCK_BYTES {
                return Err(TraceError::Corrupt(format!("block of {len} bytes")));
            }
            let Some(crc_bytes) = buf.get(self.pos..self.pos + 4) else {
                return Err(TraceError::Truncated);
            };
            let expect_crc =
                u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
            self.pos += 4;
            let Some(payload) = buf.get(self.pos..self.pos + len as usize) else {
                return Err(TraceError::Truncated);
            };
            self.pos += len as usize;
            // A followed read frame-walks past foreign chunks before the
            // CRC: their payloads are never consumed here, and their
            // owning stream's reader validates them.
            if tag == TAG_CHUNK {
                if let Some(f) = self.follow {
                    let (stream, _) = chunk_stream_id(payload)?;
                    if stream != u64::from(f) {
                        if let Some(state) = self.streams.get_mut(stream as usize) {
                            state.skipped = true;
                        }
                        wp_obs::add(wp_obs::Counter::FollowChunksSkipped, 1);
                        continue;
                    }
                }
            }
            // The mmapped image is read-only, so `reader-bitflip` here
            // surfaces the fault's observable result — the CRC error a
            // flipped payload bit would produce — rather than mutating
            // the shared page cache under every other reader.
            if tag == TAG_CHUNK && wp_fault::fire(wp_fault::FaultPoint::ReaderBitflip).is_some() {
                wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                return Err(TraceError::Checksum {
                    offset: block_offset,
                });
            }
            if crc32(payload) != expect_crc {
                return Err(TraceError::Checksum {
                    offset: block_offset,
                });
            }
            match tag {
                TAG_STREAM_DEF => {
                    let meta = StreamMeta::decode(payload)?;
                    if usize::from(meta.id) != self.streams.len() {
                        return Err(TraceError::Corrupt(format!(
                            "stream {} defined out of order (expected {})",
                            meta.id,
                            self.streams.len()
                        )));
                    }
                    self.streams.push(BatchStream {
                        meta,
                        events: 0,
                        instrs: 0,
                        skipped: false,
                    });
                }
                TAG_CHUNK => {
                    let (stream, body) = chunk_stream_id(payload)?;
                    let first_chunk = {
                        let state = self.streams.get(stream as usize).ok_or_else(|| {
                            TraceError::Corrupt(format!("chunk for undefined stream {stream}"))
                        })?;
                        state.events == 0
                    };
                    let instrs =
                        decode_chunk_body(payload, body, first_chunk, &mut self.scratch, batch)?;
                    let state = &mut self.streams[stream as usize];
                    state.events += batch.len() as u64;
                    state.instrs += instrs;
                    self.chunks += 1;
                    wp_obs::add(wp_obs::Counter::TraceChunksDecoded, 1);
                    wp_obs::add(wp_obs::Counter::TraceBytesDecoded, payload.len() as u64);
                    return Ok(Some(stream as u16));
                }
                TAG_END => {
                    self.check_end(payload)?;
                    // Loop once more: `ended` is set, so we return None.
                }
                t => return Err(TraceError::Corrupt(format!("unknown block tag {t}"))),
            }
        }
    }

    fn check_end(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        let mut pos = 0;
        let n = get_varint(payload, &mut pos)?;
        if n as usize != self.streams.len() {
            return Err(TraceError::Corrupt(format!(
                "end block lists {n} streams, file defined {}",
                self.streams.len()
            )));
        }
        for s in &self.streams {
            let id = get_varint(payload, &mut pos)?;
            let events = get_varint(payload, &mut pos)?;
            let instrs = get_varint(payload, &mut pos)?;
            // Skipped streams were frame-walked, not decoded, so their
            // totals are unknowable here; their own reader checks them.
            if id != u64::from(s.meta.id)
                || (!s.skipped && (events != s.events || instrs != s.instrs))
            {
                return Err(TraceError::Corrupt(format!(
                    "end block totals disagree for stream {}: {events} events / {instrs} \
                     instrs recorded, {} / {} decoded",
                    s.meta.id, s.events, s.instrs
                )));
            }
        }
        if pos != payload.len() {
            return Err(TraceError::Corrupt("trailing bytes in end block".into()));
        }
        // The End block must be the last thing in the file.
        if self.pos != self.data.bytes().len() {
            return Err(TraceError::Corrupt(
                "trailing data after the end block".into(),
            ));
        }
        self.ended = true;
        Ok(())
    }
}

/// How many decoded chunks the prefetch thread may run ahead.
const PREFETCH_DEPTH: usize = 4;

type PrefetchMsg = Result<Option<(u16, EventBatch)>, TraceError>;

/// A [`BatchReader`] running on its own thread, so chunk N+1 decodes while
/// the consumer simulates chunk N.
///
/// Batches travel through a bounded channel and are recycled back to the
/// decoder, so the pipeline owns a fixed set of slabs regardless of trace
/// length. The thread (named `wp-prefetch`) exits when the trace ends, an
/// error is delivered, or the handle is dropped. If it *panics*, the next
/// [`next_chunk`](Self::next_chunk) joins it and surfaces the panic
/// payload as a [`TraceError`] instead of a silent end-of-stream.
#[derive(Debug)]
pub struct PrefetchBatches {
    rx: Receiver<PrefetchMsg>,
    recycle: SyncSender<EventBatch>,
    handle: Option<std::thread::JoinHandle<()>>,
    done: bool,
}

impl PrefetchBatches {
    /// Opens `path` (header validated eagerly, on the calling thread) and
    /// starts the decode thread.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::start(BatchReader::open(path)?)
    }

    /// [`open`](Self::open) with the reader
    /// [following](BatchReader::follow) one stream, so the decode thread
    /// never spends time on (or ships) other streams' chunks.
    pub fn open_stream(path: &Path, stream: u16) -> Result<Self, TraceError> {
        Self::start(BatchReader::open_stream(path, stream)?)
    }

    /// Runs an existing reader on a decode thread.
    pub fn start(mut reader: BatchReader) -> Result<Self, TraceError> {
        let (tx, rx) = sync_channel::<PrefetchMsg>(PREFETCH_DEPTH);
        let (recycle, slabs) = sync_channel::<EventBatch>(PREFETCH_DEPTH + 2);
        for _ in 0..=PREFETCH_DEPTH {
            recycle
                .send(EventBatch::new())
                .expect("fresh channel has capacity");
        }
        let handle = std::thread::Builder::new()
            .name("wp-prefetch".into())
            .spawn(move || loop {
                // Slab starvation means the consumer went away; so does a
                // failed send. Either way the thread just leaves.
                let Ok(mut batch) = slabs.recv() else { return };
                // `prefetch-panic` exercises the consumer's join-and-
                // diagnose path; `prefetch-stall` the lookahead falling
                // behind (visible as PrefetchStalls, not an error).
                if wp_fault::fire(wp_fault::FaultPoint::PrefetchPanic).is_some() {
                    wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                    panic!("injected prefetch fault");
                }
                if let Some(shot) = wp_fault::fire(wp_fault::FaultPoint::PrefetchStall) {
                    wp_obs::add(wp_obs::Counter::FaultsInjected, 1);
                    std::thread::sleep(std::time::Duration::from_millis(shot.millis));
                }
                match reader.next_chunk(&mut batch) {
                    Ok(Some(stream)) => {
                        if tx.send(Ok(Some((stream, batch)))).is_err() {
                            return;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(Ok(None));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            })
            .map_err(TraceError::Io)?;
        wp_obs::add(wp_obs::Counter::ThreadsSpawned, 1);
        Ok(Self {
            rx,
            recycle,
            handle: Some(handle),
            done: false,
        })
    }

    /// The next decoded chunk, swapped into `batch`, and its stream id —
    /// or `Ok(None)` at a clean end of trace. Mirrors
    /// [`BatchReader::next_chunk`], including error behavior.
    pub fn next_chunk(&mut self, batch: &mut EventBatch) -> Result<Option<u16>, TraceError> {
        if self.done {
            batch.clear();
            return Ok(None);
        }
        // An empty channel means the consumer outran the decoder and the
        // recv below will block: that is a pipeline stall worth counting.
        let msg = match self.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(std::sync::mpsc::TryRecvError::Empty) => {
                wp_obs::add(wp_obs::Counter::PrefetchStalls, 1);
                self.rx.recv()
            }
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(std::sync::mpsc::RecvError),
        };
        match msg {
            Ok(Ok(Some((stream, mut filled)))) => {
                std::mem::swap(batch, &mut filled);
                // Hand the consumer's old slab back to the decoder. The
                // thread may already be gone (end of trace in flight);
                // then the slab is simply dropped.
                let _ = self.recycle.send(filled);
                Ok(Some(stream))
            }
            Ok(Ok(None)) => {
                self.done = true;
                batch.clear();
                Ok(None)
            }
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            // The thread only exits after sending a terminal message, so a
            // closed channel here means it panicked. Join it to recover
            // the payload instead of reporting a generic death.
            Err(_) => {
                self.done = true;
                Err(self.thread_died())
            }
        }
    }

    fn thread_died(&mut self) -> TraceError {
        let msg = match self.handle.take().map(std::thread::JoinHandle::join) {
            Some(Err(payload)) => {
                wp_obs::add(wp_obs::Counter::PrefetchPanics, 1);
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                format!("prefetch thread panicked: {what}")
            }
            _ => "prefetch decode thread died".into(),
        };
        TraceError::Corrupt(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use crate::TraceReader;

    fn encode(events: &[(u32, u64, bool)], chunk: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(chunk);
        let s = w.add_stream("t", &[]).unwrap();
        for &(gap, line, wr) in events {
            w.record(s, gap, LineAddr(line), wr).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        buf
    }

    fn drain_batched(buf: Vec<u8>) -> Result<Vec<(u32, u64, bool)>, TraceError> {
        let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf)))?;
        let mut batch = EventBatch::new();
        let mut out = Vec::new();
        while r.next_chunk(&mut batch)?.is_some() {
            for i in 0..batch.len() {
                out.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
            }
        }
        Ok(out)
    }

    fn drain_streaming(buf: &[u8]) -> Result<Vec<(u32, u64, bool)>, TraceError> {
        let mut r = TraceReader::new(buf)?;
        let mut out = Vec::new();
        while let Some((_, rec)) = r.next_record()? {
            out.push((rec.gap_instrs, rec.line.0, rec.is_write));
        }
        Ok(out)
    }

    #[test]
    fn batched_matches_streaming_across_chunk_sizes() {
        let events: Vec<(u32, u64, bool)> = (0..1000u64)
            .map(|i| ((i % 13) as u32, 4000 + (i * 97) % 512, i % 4 == 0))
            .collect();
        for chunk in [1, 3, 7, 100, 4096] {
            let buf = encode(&events, chunk);
            let streaming = drain_streaming(&buf).unwrap();
            let batched = drain_batched(buf).unwrap();
            assert_eq!(batched, streaming, "chunk size {chunk}");
            assert_eq!(batched, events);
        }
    }

    #[test]
    fn batch_slabs_are_reused() {
        let events: Vec<(u32, u64, bool)> = (0..4096u64).map(|i| (1, i, false)).collect();
        let buf = encode(&events, 256);
        let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf))).unwrap();
        let mut batch = EventBatch::new();
        r.next_chunk(&mut batch).unwrap();
        let cap = batch.gaps.capacity();
        let ptr = batch.gaps.as_ptr();
        while r.next_chunk(&mut batch).unwrap().is_some() {}
        assert_eq!(batch.gaps.capacity(), cap, "slab must not regrow");
        assert_eq!(batch.gaps.as_ptr(), ptr, "slab must not reallocate");
    }

    #[test]
    fn truncation_is_an_error_in_both_readers() {
        let events: Vec<(u32, u64, bool)> = (0..100).map(|i| (2, 50 + i, false)).collect();
        let buf = encode(&events, 16);
        for cut in [buf.len() - 1, buf.len() - 5, buf.len() / 2] {
            let cut_buf = buf[..cut].to_vec();
            let streaming = drain_streaming(&cut_buf);
            let batched = drain_batched(cut_buf);
            assert!(batched.is_err(), "cut at {cut}");
            assert_eq!(
                format!("{}", batched.unwrap_err()),
                format!("{}", streaming.unwrap_err()),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flips_error_identically() {
        let events: Vec<(u32, u64, bool)> = (0..200).map(|i| (3, 9 * i, i % 2 == 0)).collect();
        let buf = encode(&events, 32);
        for at in (8..buf.len()).step_by(11) {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            let streaming = drain_streaming(&bad);
            let batched = drain_batched(bad);
            match (streaming, batched) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "flip at {at}"),
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a}"), format!("{b}"), "flip at {at}")
                }
                (a, b) => panic!("flip at {at}: streaming {a:?} vs batched {b:?}"),
            }
        }
    }

    #[test]
    fn prefetch_matches_direct() {
        let events: Vec<(u32, u64, bool)> = (0..5000u64)
            .map(|i| ((i % 5) as u32, i * 3 % 701, i % 7 == 0))
            .collect();
        let buf = encode(&events, 64);
        let direct = drain_batched(buf.clone()).unwrap();
        let mut p =
            PrefetchBatches::start(BatchReader::new(Arc::new(TraceData::from_vec(buf))).unwrap())
                .unwrap();
        let mut batch = EventBatch::new();
        let mut out = Vec::new();
        while p.next_chunk(&mut batch).unwrap().is_some() {
            for i in 0..batch.len() {
                out.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
            }
        }
        assert_eq!(out, direct);
        // Draining past the end stays a clean None.
        assert!(p.next_chunk(&mut batch).unwrap().is_none());
    }

    #[test]
    fn prefetch_surfaces_errors() {
        let events: Vec<(u32, u64, bool)> = (0..100).map(|i| (1, i, false)).collect();
        let mut buf = encode(&events, 16);
        buf.truncate(buf.len() - 3);
        let mut p =
            PrefetchBatches::start(BatchReader::new(Arc::new(TraceData::from_vec(buf))).unwrap())
                .unwrap();
        let mut batch = EventBatch::new();
        let r = loop {
            match p.next_chunk(&mut batch) {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(matches!(r, Err(TraceError::Truncated)));
    }

    #[test]
    fn multi_stream_chunks_tagged_by_stream() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(4);
        let a = w.add_stream("a", &[]).unwrap();
        let b = w.add_stream("b", &[]).unwrap();
        for i in 0..16u64 {
            w.record(a, 10, LineAddr(i), false).unwrap();
            w.record(b, 20, LineAddr(1000 + i), true).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf))).unwrap();
        let mut batch = EventBatch::new();
        let mut per_stream = [0usize; 2];
        while let Some(sid) = r.next_chunk(&mut batch).unwrap() {
            per_stream[usize::from(sid)] += batch.len();
            let expect_gap = if sid == a { 10 } else { 20 };
            assert!(batch.gaps.iter().all(|&g| g == expect_gap));
        }
        assert_eq!(per_stream, [16, 16]);
        assert_eq!(r.streams().count(), 2);
    }

    fn two_stream_trace() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap().with_chunk_events(8);
        let a = w.add_stream("a", &[]).unwrap();
        let b = w.add_stream("b", &[]).unwrap();
        for i in 0..64u64 {
            w.record(a, 10, LineAddr(i), false).unwrap();
            w.record(b, 20, LineAddr(1000 + i * 2), true).unwrap();
        }
        w.finish().unwrap();
        drop(w);
        buf
    }

    #[test]
    fn followed_read_yields_one_stream_and_passes_end_check() {
        let buf = two_stream_trace();
        // Reference: drain unfiltered, keep stream 1's events.
        let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf.clone()))).unwrap();
        let mut batch = EventBatch::new();
        let mut want = Vec::new();
        while let Some(sid) = r.next_chunk(&mut batch).unwrap() {
            if sid == 1 {
                for i in 0..batch.len() {
                    want.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
                }
            }
        }
        // Followed: stream 0's chunks are skipped undecoded, the end
        // check (with stream 0's instr total unverifiable) still passes.
        let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf)))
            .unwrap()
            .follow(1);
        let mut got = Vec::new();
        while let Some(sid) = r.next_chunk(&mut batch).unwrap() {
            assert_eq!(sid, 1, "followed read must only yield stream 1");
            for i in 0..batch.len() {
                got.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
            }
        }
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    /// `(stream, payload byte range)` of every chunk block in `buf`, by
    /// walking the block framing by hand.
    fn chunk_spans(buf: &[u8]) -> Vec<(u64, std::ops::Range<usize>)> {
        let mut spans = Vec::new();
        let mut pos = 8;
        while pos < buf.len() {
            let tag = buf[pos];
            pos += 1;
            let len = get_varint(buf, &mut pos).unwrap() as usize;
            pos += 4; // crc
            if tag == crate::TAG_CHUNK {
                let mut p = pos;
                let stream = get_varint(buf, &mut p).unwrap();
                spans.push((stream, p..pos + len));
            }
            pos += len;
            if tag == crate::TAG_END {
                break;
            }
        }
        spans
    }

    #[test]
    fn followed_read_validates_own_chunks_and_walks_past_foreign_ones() {
        let buf = two_stream_trace();
        let spans = chunk_spans(&buf);
        let clean = {
            let mut r = BatchReader::new(Arc::new(TraceData::from_vec(buf.clone())))
                .unwrap()
                .follow(1);
            let mut batch = EventBatch::new();
            let mut out = Vec::new();
            while r.next_chunk(&mut batch).unwrap().is_some() {
                out.extend(batch.lines.iter().map(|l| l.0));
            }
            out
        };
        let drain = |data: Vec<u8>| {
            let mut r = BatchReader::new(Arc::new(TraceData::from_vec(data)))
                .unwrap()
                .follow(1);
            let mut batch = EventBatch::new();
            let mut out = Vec::new();
            loop {
                match r.next_chunk(&mut batch) {
                    Ok(Some(_)) => out.extend(batch.lines.iter().map(|l| l.0)),
                    Ok(None) => return Ok(out),
                    Err(e) => return Err(e),
                }
            }
        };
        // A flip inside a *followed* chunk body is a checksum error.
        let (_, own) = spans.iter().find(|(s, _)| *s == 1).unwrap().clone();
        let mut bad = buf.clone();
        bad[own.start + own.len() / 2] ^= 0x04;
        assert!(matches!(drain(bad), Err(TraceError::Checksum { .. })));
        // A flip inside a *foreign* chunk body never reaches this reader:
        // the frame walk steps over it and the followed stream decodes
        // unchanged (stream 0's reader is the one that validates it).
        let (_, foreign) = spans.iter().find(|(s, _)| *s == 0).unwrap().clone();
        let mut bad = buf.clone();
        bad[foreign.start + foreign.len() / 2] ^= 0x04;
        assert_eq!(drain(bad).unwrap(), clean);
    }

    #[test]
    fn prefetch_follow_matches_direct_follow() {
        let buf = two_stream_trace();
        let mut direct = BatchReader::new(Arc::new(TraceData::from_vec(buf.clone())))
            .unwrap()
            .follow(0);
        let mut batch = EventBatch::new();
        let mut want = Vec::new();
        while direct.next_chunk(&mut batch).unwrap().is_some() {
            for i in 0..batch.len() {
                want.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
            }
        }
        let reader = BatchReader::new(Arc::new(TraceData::from_vec(buf)))
            .unwrap()
            .follow(0);
        let mut p = PrefetchBatches::start(reader).unwrap();
        let mut got = Vec::new();
        while p.next_chunk(&mut batch).unwrap().is_some() {
            for i in 0..batch.len() {
                got.push((batch.gaps[i], batch.lines[i].0, batch.writes[i]));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn open_validates_header() {
        assert!(matches!(
            BatchReader::new(Arc::new(TraceData::from_vec(
                b"NOPE\x01\x00\x00\x00".to_vec()
            ))),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            BatchReader::new(Arc::new(TraceData::from_vec(vec![b'W']))),
            Err(TraceError::Truncated)
        ));
    }
}
