//! Trace records and per-stream metadata (names and pool tables).

use wp_mem::{LineAddr, PageId, LINES_PER_PAGE};

use crate::varint::{get_varint, put_varint};
use crate::TraceError;

/// One decoded trace event.
///
/// This is the paper-level event model: an L2-filtered LLC access with the
/// instruction gap since the previous one, plus the static classification
/// (pool index) the producer recorded, when any. The pool index refers
/// into the owning stream's [`StreamMeta::pools`] table; it is derived
/// from the pool page tables rather than stored per event, so tagging is
/// free on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instructions executed since the previous event of this stream.
    pub gap_instrs: u32,
    /// The cache line accessed.
    pub line: LineAddr,
    /// Whether the access is a write.
    pub is_write: bool,
    /// Index into the stream's pool table, if the line falls in a
    /// recorded pool.
    pub pool: Option<u16>,
}

/// Static description of one memory pool, as stored in a stream's header.
///
/// Mirrors `wp_sim::PoolDescriptor` (this crate sits below `wp-sim`, so
/// the conversion lives there) — enough to rebuild the exact descriptors
/// a captured run was given, making a `.wpt` file self-contained even for
/// classification-consuming schemes like Whirlpool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMeta {
    /// Human-readable name ("points", "vertices", …).
    pub name: String,
    /// Allocator pool id, if the data was pool-allocated.
    pub pool: Option<u32>,
    /// Footprint in bytes.
    pub bytes: u64,
    /// Pages belonging to the pool, ascending.
    pub pages: Vec<PageId>,
}

/// One stream of a trace file: a named event sequence with a pool table.
///
/// Single-app captures have one stream; multi-core captures store one
/// stream per core, chunks interleaved in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMeta {
    /// Stream id (dense, starting at 0).
    pub id: u16,
    /// Workload name the producer recorded.
    pub name: String,
    /// The stream's static classification (may be empty).
    pub pools: Vec<PoolMeta>,
}

impl StreamMeta {
    /// Encodes this stream's definition as a block payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, u64::from(self.id));
        put_string(&mut out, &self.name);
        put_varint(&mut out, self.pools.len() as u64);
        for p in &self.pools {
            put_string(&mut out, &p.name);
            put_varint(&mut out, p.pool.map_or(0, |id| u64::from(id) + 1));
            put_varint(&mut out, p.bytes);
            let runs = page_runs(&p.pages);
            put_varint(&mut out, runs.len() as u64);
            let mut prev_end = 0u64;
            for (first, n) in runs {
                put_varint(&mut out, first - prev_end);
                put_varint(&mut out, n);
                prev_end = first + n;
            }
        }
        out
    }

    /// Decodes a stream definition from a block payload.
    pub(crate) fn decode(buf: &[u8]) -> Result<Self, TraceError> {
        let mut pos = 0;
        let id = get_varint(buf, &mut pos)?;
        if id > u64::from(u16::MAX) {
            return Err(TraceError::Corrupt(format!("stream id {id} out of range")));
        }
        let name = get_string(buf, &mut pos)?;
        let pool_count = get_varint(buf, &mut pos)?;
        if pool_count > 1 << 16 {
            return Err(TraceError::Corrupt(format!("{pool_count} pools in stream")));
        }
        let mut pools = Vec::with_capacity(pool_count as usize);
        for _ in 0..pool_count {
            let pname = get_string(buf, &mut pos)?;
            let pool_id = get_varint(buf, &mut pos)?;
            let pool = if pool_id == 0 {
                None
            } else {
                u32::try_from(pool_id - 1)
                    .map(Some)
                    .map_err(|_| TraceError::Corrupt("pool id overflows u32".into()))?
            };
            let bytes = get_varint(buf, &mut pos)?;
            let run_count = get_varint(buf, &mut pos)?;
            if run_count > 1 << 24 {
                return Err(TraceError::Corrupt(format!(
                    "{run_count} page runs in pool"
                )));
            }
            let mut pages = Vec::new();
            let mut prev_end = 0u64;
            for _ in 0..run_count {
                let gap = get_varint(buf, &mut pos)?;
                let n = get_varint(buf, &mut pos)?;
                let first = prev_end
                    .checked_add(gap)
                    .ok_or_else(|| TraceError::Corrupt("page run overflows".into()))?;
                let end = first
                    .checked_add(n)
                    .ok_or_else(|| TraceError::Corrupt("page run overflows".into()))?;
                if pages.len() as u64 + n > 1 << 26 {
                    return Err(TraceError::Corrupt("pool page table too large".into()));
                }
                pages.extend((first..end).map(PageId));
                prev_end = end;
            }
            pools.push(PoolMeta {
                name: pname,
                pool,
                bytes,
                pages,
            });
        }
        if pos != buf.len() {
            return Err(TraceError::Corrupt("trailing bytes in stream def".into()));
        }
        Ok(StreamMeta {
            id: id as u16,
            name,
            pools,
        })
    }
}

/// Maps lines to pool indices for one stream, built from the pool page
/// tables (page-granular; where pools overlap, the lowest pool index
/// wins). Captured traces have exclusive pools, but externally authored
/// ones need not.
#[derive(Debug, Clone, Default)]
pub(crate) struct PoolLookup {
    /// `(first_page, end_page, pool_idx)` sorted by `first_page`.
    runs: Vec<(u64, u64, u16)>,
    /// `prefix_max_end[i]` = max end over `runs[..=i]`, so lookups can
    /// stop scanning left as soon as no earlier run can reach the page.
    prefix_max_end: Vec<u64>,
}

impl PoolLookup {
    pub(crate) fn new(pools: &[PoolMeta]) -> Self {
        let mut runs = Vec::new();
        for (i, p) in pools.iter().enumerate() {
            for (first, n) in page_runs(&p.pages) {
                runs.push((first, first + n, i as u16));
            }
        }
        runs.sort_unstable();
        let mut prefix_max_end = Vec::with_capacity(runs.len());
        let mut max_end = 0;
        for &(_, end, _) in &runs {
            max_end = max_end.max(end);
            prefix_max_end.push(max_end);
        }
        Self {
            runs,
            prefix_max_end,
        }
    }

    pub(crate) fn pool_of(&self, line: LineAddr) -> Option<u16> {
        let page = line.0 / LINES_PER_PAGE;
        let mut j = self.runs.partition_point(|&(first, _, _)| first <= page);
        let mut best: Option<u16> = None;
        // Runs are sorted by first page, but an enclosing run can start
        // well left of the insertion point; walk left until the prefix
        // maximum proves nothing earlier reaches this page. Disjoint
        // tables (every capture) stop after one step.
        while j > 0 {
            j -= 1;
            if self.prefix_max_end[j] <= page {
                break;
            }
            let (first, end, pool) = self.runs[j];
            if page >= first && page < end {
                best = Some(best.map_or(pool, |b| b.min(pool)));
            }
        }
        best
    }
}

/// Collapses a page list into sorted, disjoint `(first_page, count)` runs.
fn page_runs(pages: &[PageId]) -> Vec<(u64, u64)> {
    let mut ids: Vec<u64> = pages.iter().map(|p| p.0).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for id in ids {
        match runs.last_mut() {
            Some((first, n)) if *first + *n == id => *n += 1,
            _ => runs.push((id, 1)),
        }
    }
    runs
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let len = get_varint(buf, pos)?;
    if len > 1 << 16 {
        return Err(TraceError::Corrupt(format!("string of {len} bytes")));
    }
    let len = len as usize;
    let Some(bytes) = buf.get(*pos..*pos + len) else {
        return Err(TraceError::Truncated);
    };
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Corrupt("string is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> StreamMeta {
        StreamMeta {
            id: 3,
            name: "delaunay".into(),
            pools: vec![
                PoolMeta {
                    name: "points".into(),
                    pool: Some(0),
                    bytes: 512 * 1024,
                    pages: (16..144).map(PageId).collect(),
                },
                PoolMeta {
                    name: "scattered".into(),
                    pool: None,
                    bytes: 4096 * 3,
                    pages: vec![PageId(200), PageId(300), PageId(301)],
                },
            ],
        }
    }

    #[test]
    fn stream_def_round_trips() {
        let s = sample_stream();
        let buf = s.encode();
        let got = StreamMeta::decode(&buf).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn truncated_stream_def_is_an_error() {
        let buf = sample_stream().encode();
        for cut in 0..buf.len() {
            assert!(
                StreamMeta::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn pool_lookup_maps_lines() {
        let s = sample_stream();
        let l = PoolLookup::new(&s.pools);
        // Page 16 → pool 0; page 200 → pool 1; page 199 → none.
        assert_eq!(l.pool_of(PageId(16).first_line()), Some(0));
        assert_eq!(l.pool_of(PageId(143).first_line()), Some(0));
        assert_eq!(l.pool_of(PageId(144).first_line()), None);
        assert_eq!(l.pool_of(PageId(200).first_line()), Some(1));
        assert_eq!(l.pool_of(PageId(301).first_line()), Some(1));
        assert_eq!(l.pool_of(PageId(302).first_line()), None);
        assert_eq!(l.pool_of(LineAddr(0)), None);
    }

    #[test]
    fn pool_lookup_handles_overlapping_pools() {
        // Pool 0 encloses pages 0..100; pool 1 nests inside at 10..20;
        // pool 2 sits beyond. Lowest pool index wins on overlap, and
        // enclosed-but-uncovered pages still resolve to the outer pool.
        let pools = vec![
            PoolMeta {
                name: "outer".into(),
                pool: None,
                bytes: 0,
                pages: (0..100).map(PageId).collect(),
            },
            PoolMeta {
                name: "inner".into(),
                pool: None,
                bytes: 0,
                pages: (10..20).map(PageId).collect(),
            },
            PoolMeta {
                name: "after".into(),
                pool: None,
                bytes: 0,
                pages: (200..210).map(PageId).collect(),
            },
        ];
        let l = PoolLookup::new(&pools);
        assert_eq!(l.pool_of(PageId(5).first_line()), Some(0));
        assert_eq!(
            l.pool_of(PageId(15).first_line()),
            Some(0),
            "overlap: lowest wins"
        );
        assert_eq!(
            l.pool_of(PageId(50).first_line()),
            Some(0),
            "inside outer, past inner"
        );
        assert_eq!(l.pool_of(PageId(99).first_line()), Some(0));
        assert_eq!(l.pool_of(PageId(100).first_line()), None);
        assert_eq!(l.pool_of(PageId(205).first_line()), Some(2));
    }

    #[test]
    fn page_runs_collapse() {
        let pages: Vec<PageId> = [5u64, 6, 7, 10, 11, 20].map(PageId).to_vec();
        assert_eq!(page_runs(&pages), vec![(5, 3), (10, 2), (20, 1)]);
    }
}
